// Domain scenario: environmental monitoring (the paper's central case
// study, §5). A seasonal PM2.5-like regression stream with sensor
// installations/breakdowns (incremental/decremental features) and an
// extreme weather event. The example profiles the stream with the §4.3
// statistics pipeline, localises the event with ECOD and Isolation
// Forest, and compares imputation strategies — the user-facing version of
// Figures 4, 5 and 8.

#include <cstdio>

#include "core/evaluator.h"
#include "stats/missing_stats.h"
#include "stats/outlier_stats.h"
#include "stats/profile.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

int main() {
  // The AIR representative (Beijing Multi-Site Shunyi analogue): high
  // missing values, seasonal recurrent drift, plus one flood-like event.
  StreamSpec spec = RepresentativeSpec("AIR", 0.1);
  spec.anomaly_events.push_back({0.45, 0.48, 0.9, 2, 12.0});
  Result<GeneratedStream> stream = GenerateStream(spec);
  if (!stream.ok()) return 1;

  // 1. Open-environment profile.
  Result<DatasetProfile> profile = ProfileDataset(*stream);
  if (!profile.ok()) return 1;
  std::printf("profile of '%s': missing cells %.1f%%, drift score %.3f, "
              "anomaly score %.4f\n",
              profile->name.c_str(), 100.0 * profile->MissingScore(),
              profile->DriftScore(), profile->AnomalyScore());

  // 2. Sensor availability per window (Figure 4 analogue).
  Result<std::vector<WindowRange>> ranges =
      MakeWindows(stream->table.num_rows(), spec.window_size);
  if (!ranges.ok()) return 1;
  MissingValueStats missing =
      ComputeMissingValueStats(stream->table, *ranges);
  std::printf("\nsensor availability (valid ratio, first feature) per "
              "window:\n  ");
  for (const auto& window_ratios : missing.valid_ratio_per_window) {
    std::printf("%.0f", window_ratios[0] * 9.99);
  }
  std::printf("   (0 = sensor absent, 9 = fully present)\n");

  // 3. Outlier localisation (Figure 8 analogue).
  Result<PreparedStream> prepared = PrepareStream(*stream);
  if (!prepared.ok()) return 1;
  std::vector<OutlierStats> outliers = ComputeOutlierStats(*prepared);
  for (const OutlierStats& s : outliers) {
    std::printf("\n%s anomaly ratio per window:\n  ", s.detector.c_str());
    for (double ratio : s.ratio_per_window) {
      std::printf("%.0f", std::min(ratio * 100.0, 9.0));
    }
  }
  std::printf("\n  (the flood event sits near 45-48%% of the stream)\n");

  // 4. Does careful imputation pay off? (Figure 5/14 analogue.)
  LearnerConfig config;
  std::printf("\nNaive-NN mean MSE by imputer:\n");
  for (const char* imputer : {"knn", "regression", "mean", "zero"}) {
    PipelineOptions options;
    options.imputer = imputer;
    Result<PreparedStream> p = PrepareStream(*stream, options);
    if (!p.ok()) return 1;
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner("Naive-NN", config, p->task, p->num_classes);
    EvalResult result = RunPrequential(learner->get(), *p);
    std::printf("  %-12s %.4f\n", imputer, result.mean_loss);
  }
  return 0;
}
