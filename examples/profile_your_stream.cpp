// Portability demo (paper §4.1: "Our processing pipeline is applicable to
// new relational data streams"): load ANY CSV with a target column, run
// the full OEBench statistics pipeline on it, report its
// open-environment profile and the recommended algorithm.
//
//   ./profile_your_stream <csv-path> <target-column> [cls|reg] [window]
//
// With no arguments the example writes a demo CSV first so it always has
// something to chew on.

#include <cstdio>
#include <string>

#include "core/recommendation.h"
#include "dataframe/csv.h"
#include "preprocess/time_ordering.h"
#include "stats/profile.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

namespace {

/// Wraps an arbitrary table+target into the GeneratedStream shape the
/// profiling pipeline expects (the generator's ground-truth fields stay
/// empty — real data has none, exactly the paper's predicament).
Result<GeneratedStream> WrapTable(Table table,
                                  const std::string& target_column,
                                  TaskType task, int64_t window_size) {
  GeneratedStream stream;
  OE_ASSIGN_OR_RETURN(int64_t target_idx,
                      table.ColumnIndex(target_column));
  int num_classes = 2;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    Column col = table.column(c);
    if (c == target_idx) {
      if (col.type() == ColumnType::kCategorical) {
        // Encode class labels as numeric ids.
        num_classes = static_cast<int>(col.num_categories());
        Column numeric = Column::Numeric("target");
        for (int64_t r = 0; r < col.size(); ++r) {
          numeric.AppendNumeric(col.IsMissing(r) ? 0.0 : col.CodeAt(r));
        }
        OE_RETURN_NOT_OK(stream.table.AddColumn(std::move(numeric)));
      } else {
        col.set_name("target");
        OE_RETURN_NOT_OK(stream.table.AddColumn(std::move(col)));
      }
    } else {
      OE_RETURN_NOT_OK(stream.table.AddColumn(std::move(col)));
    }
  }
  stream.spec.name = "user_stream";
  stream.spec.task = task;
  stream.spec.num_classes = num_classes;
  stream.spec.num_instances = stream.table.num_rows();
  stream.spec.window_size = window_size;
  return stream;
}

void WriteDemoCsv(const std::string& path) {
  StreamSpec spec;
  spec.name = "demo";
  spec.num_instances = 2000;
  spec.num_numeric_features = 6;
  spec.num_categorical_features = 1;
  spec.drift_pattern = DriftPattern::kGradual;
  spec.base_missing_rate = 0.04;
  spec.point_anomaly_rate = 0.005;
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  OE_CHECK(WriteCsv(stream->table, path).ok());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/oebench_demo_stream.csv";
  std::string target = argc > 2 ? argv[2] : "target";
  TaskType task = (argc > 3 && std::string(argv[3]) == "cls")
                      ? TaskType::kClassification
                      : TaskType::kRegression;
  if (argc <= 1) {
    std::printf("no CSV given; writing a demo stream to %s\n",
                path.c_str());
    WriteDemoCsv(path);
  }

  Result<Table> table = ReadCsv(path);
  if (!table.ok()) {
    std::fprintf(stderr, "read: %s\n", table.status().ToString().c_str());
    return 1;
  }
  // Paper SS4.3 step 2: order by the first time-like column, then drop
  // time columns so they do not masquerade as features.
  std::vector<std::string> time_columns = GuessTimeColumns(*table);
  for (const std::string& tc : time_columns) {
    if (tc == target) continue;
    Result<Table> sorted = SortByColumn(*table, tc);
    if (sorted.ok()) {
      std::printf("ordered rows by time column '%s'\n", tc.c_str());
      Result<Table> cleaned = DropColumns(*sorted, time_columns);
      if (cleaned.ok()) table = std::move(cleaned);
    }
    break;
  }
  int64_t window = argc > 4 ? std::stoll(argv[4])
                            : std::max<int64_t>(50, table->num_rows() / 40);
  Result<GeneratedStream> stream =
      WrapTable(std::move(*table), target, task, window);
  if (!stream.ok()) {
    std::fprintf(stderr, "wrap: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  Result<DatasetProfile> profile = ProfileDataset(*stream);
  if (!profile.ok()) {
    std::fprintf(stderr, "profile: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== open-environment profile of %s ===\n", path.c_str());
  std::printf("rows %lld, windows %.0f, task %s\n",
              static_cast<long long>(stream->table.num_rows()),
              profile->num_windows, TaskTypeToString(profile->task));
  std::printf("missing: rows %.1f%% | columns %.1f%% | cells %.1f%%\n",
              100 * profile->missing.row_ratio,
              100 * profile->missing.column_ratio,
              100 * profile->missing.cell_ratio);
  std::printf("data drift ratios:");
  for (const DetectorStats& s : profile->data_drift) {
    std::printf(" %s=%.2f", s.detector.c_str(), s.drift_ratio_avg);
  }
  std::printf("\nconcept drift ratios:");
  for (const DetectorStats& s : profile->concept_drift) {
    std::printf(" %s=%.2f", s.detector.c_str(), s.drift_ratio_avg);
  }
  std::printf("\nanomaly ratios:");
  for (const OutlierStats& s : profile->outliers) {
    std::printf(" %s=%.4f", s.detector.c_str(), s.anomaly_ratio_avg);
  }

  auto bucket = [](double v, double lo, double mid, double hi) {
    if (v < lo) return Level::kLow;
    if (v < mid) return Level::kMedLow;
    if (v < hi) return Level::kMedHigh;
    return Level::kHigh;
  };
  Level drift = bucket(profile->DriftScore(), 0.05, 0.15, 0.30);
  Level anomaly = bucket(profile->AnomalyScore(), 0.002, 0.006, 0.012);
  Level missing = bucket(profile->MissingScore(), 0.01, 0.05, 0.15);
  std::printf("\n\nscenario: drift=%s anomaly=%s missing=%s\n",
              LevelToString(drift), LevelToString(anomaly),
              LevelToString(missing));
  std::printf("recommended algorithm: %s (tree-budget alternative: %s)\n",
              RecommendAlgorithm(task, drift, anomaly, missing).c_str(),
              RecommendAlgorithm(task, drift, anomaly, missing, true)
                  .c_str());
  return 0;
}
