// Materialises the 55-dataset synthetic corpus as CSV files so the
// streams can be inspected, versioned, or fed to other stream-learning
// systems (the paper's "Portability" design principle, §4.1).
//
//   ./export_corpus [output-dir] [scale]

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp/oebench_corpus";
  double scale = 0.02;
  if (argc > 2) {
    double v;
    if (ParseDouble(argv[2], &v)) scale = v;
  }
  std::string mkdir = "mkdir -p " + out_dir;
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", out_dir.c_str());
    return 1;
  }

  int64_t total_rows = 0;
  for (const CorpusEntry& entry : Corpus()) {
    StreamSpec spec = SpecFromEntry(entry, scale);
    Result<GeneratedStream> stream = GenerateStream(spec);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s: %s\n", entry.name.c_str(),
                   stream.status().ToString().c_str());
      return 1;
    }
    std::string path = out_dir + "/" + entry.name + ".csv";
    Status st = WriteCsv(stream->table, path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    total_rows += stream->table.num_rows();
    std::printf("%-28s %6lld rows  %2lld cols  (%s, %s drift)\n",
                entry.name.c_str(),
                static_cast<long long>(stream->table.num_rows()),
                static_cast<long long>(stream->table.num_columns()),
                TaskTypeToString(entry.task),
                DriftPatternToString(entry.pattern));
  }
  std::printf("\nwrote 55 CSVs (%lld rows total) to %s\n",
              static_cast<long long>(total_rows), out_dir.c_str());
  std::printf("Feed any of them back through examples/profile_your_stream.\n");
  return 0;
}
