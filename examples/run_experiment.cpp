// Full command-line experiment driver: pick a corpus dataset (or one of
// the five representatives), a learner, and pipeline knobs, run the
// test-then-train protocol and print a machine-readable result line.
//
//   ./run_experiment --dataset=tetouan_power --learner=SEA-GBDT
//                    --scale=0.1 --imputer=knn --epochs=10 --repeats=3
//
// Prints the per-window loss curve and a final JSON-ish summary that
// downstream scripts can parse.

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

namespace {

struct Args {
  std::string dataset = "POWER";
  std::string learner = "Naive-NN";
  std::string imputer = "knn";
  double scale = 0.1;
  double window_factor = 1.0;
  int epochs = 10;
  int repeats = 1;
  uint64_t seed = 1;
  bool shuffle = false;
  std::string outlier_removal;
};

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    double v = 0.0;
    if (arg.rfind("--dataset=", 0) == 0) {
      args->dataset = value_of("--dataset=");
    } else if (arg.rfind("--learner=", 0) == 0) {
      args->learner = value_of("--learner=");
    } else if (arg.rfind("--imputer=", 0) == 0) {
      args->imputer = value_of("--imputer=");
    } else if (arg.rfind("--outlier-removal=", 0) == 0) {
      args->outlier_removal = value_of("--outlier-removal=");
    } else if (arg == "--shuffle") {
      args->shuffle = true;
    } else if (arg.rfind("--scale=", 0) == 0 &&
               ParseDouble(value_of("--scale="), &v)) {
      args->scale = v;
    } else if (arg.rfind("--window-factor=", 0) == 0 &&
               ParseDouble(value_of("--window-factor="), &v)) {
      args->window_factor = v;
    } else if (arg.rfind("--epochs=", 0) == 0 &&
               ParseDouble(value_of("--epochs="), &v)) {
      args->epochs = static_cast<int>(v);
    } else if (arg.rfind("--repeats=", 0) == 0 &&
               ParseDouble(value_of("--repeats="), &v)) {
      args->repeats = static_cast<int>(v);
    } else if (arg.rfind("--seed=", 0) == 0 &&
               ParseDouble(value_of("--seed="), &v)) {
      args->seed = static_cast<uint64_t>(v);
    } else if (arg == "--list") {
      std::printf("datasets (5 representatives):");
      for (const RepresentativeInfo& info : RepresentativeDatasets()) {
        std::printf(" %s", info.short_name.c_str());
      }
      std::printf("\ndatasets (55-entry corpus):");
      for (const CorpusEntry& entry : Corpus()) {
        std::printf(" %s", entry.name.c_str());
      }
      std::printf("\nlearners:");
      for (const std::string& name :
           AllLearnerNames(TaskType::kClassification)) {
        std::printf(" %s", name.c_str());
      }
      for (const std::string& name :
           ExtendedLearnerNames(TaskType::kClassification)) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --list)\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

Result<StreamSpec> ResolveSpec(const Args& args) {
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    if (info.short_name == args.dataset) {
      return RepresentativeSpec(info.short_name, args.scale, args.seed);
    }
  }
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.name == args.dataset) {
      return SpecFromEntry(entry, args.scale, args.seed);
    }
  }
  return Status::NotFound("unknown dataset '" + args.dataset +
                          "' (try --list)");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;

  Result<StreamSpec> spec = ResolveSpec(args);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  Result<GeneratedStream> stream = GenerateStream(*spec);
  if (!stream.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  PipelineOptions options;
  options.imputer = args.imputer;
  options.window_factor = args.window_factor;
  options.shuffle = args.shuffle;
  options.outlier_removal = args.outlier_removal;
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  LearnerConfig config;
  config.epochs = args.epochs;
  config.seed = args.seed;
  std::printf("dataset=%s rows=%lld windows=%zu features=%zu task=%s\n",
              args.dataset.c_str(),
              static_cast<long long>(stream->table.num_rows()),
              prepared->windows.size(), prepared->feature_names.size(),
              TaskTypeToString(prepared->task));

  // Per-window curve from the first repeat.
  Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
      args.learner, config, prepared->task, prepared->num_classes);
  if (!learner.ok()) {
    std::fprintf(stderr, "learner: %s\n",
                 learner.status().ToString().c_str());
    return 1;
  }
  EvalResult first = RunPrequential(learner->get(), *prepared);
  std::printf("per_window_loss=[");
  for (size_t w = 0; w < first.per_window_loss.size(); ++w) {
    std::printf("%s%.5f", w > 0 ? "," : "", first.per_window_loss[w]);
  }
  std::printf("]\n");

  RepeatedResult repeated =
      RunRepeated(args.learner, config, *prepared, args.repeats);
  std::printf(
      "{\"dataset\":\"%s\",\"learner\":\"%s\",\"loss_mean\":%.6f,"
      "\"loss_std\":%.6f,\"faded_loss\":%.6f,\"throughput\":%.1f,"
      "\"peak_memory_kb\":%.1f,\"repeats\":%d}\n",
      args.dataset.c_str(), args.learner.c_str(), repeated.loss_mean,
      repeated.loss_stddev, first.faded_loss, repeated.throughput,
      static_cast<double>(repeated.peak_memory_bytes) / 1024.0,
      args.repeats);
  return 0;
}
