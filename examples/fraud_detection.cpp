// Domain scenario from the paper's introduction: financial fraud
// detection as an open-environment stream. Fraudsters invent new
// strategies (concept drift + outliers), payment technology changes the
// collected fields (incremental/decremental features). This example
// builds such a stream, monitors it with concept-drift detectors while a
// classifier learns online, and shows the drift alarms aligning with the
// injected strategy switch.

#include <cstdio>

#include "core/evaluator.h"
#include "drift/adwin.h"
#include "drift/ddm.h"
#include "drift/eddm.h"
#include "models/hoeffding_tree.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

int main() {
  // Transactions: amount, velocity, merchant-risk, geo-distance, hour,
  // device-age features; a categorical channel (card/mobile/crypto); the
  // label is fraud / legitimate. Mid-stream the fraud strategy flips
  // (abrupt concept drift) and a new payment field appears.
  StreamSpec spec;
  spec.name = "fraud";
  spec.task = TaskType::kClassification;
  spec.num_classes = 2;
  spec.num_instances = 6000;
  spec.num_numeric_features = 6;
  spec.num_categorical_features = 1;
  spec.categories_per_feature = 3;
  spec.window_size = 300;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 2.5;
  spec.point_anomaly_rate = 0.004;          // fraud bursts look anomalous
  spec.dropouts.push_back({5, 0.0, 0.5, 1.0});  // field appears mid-stream

  Result<GeneratedStream> stream = GenerateStream(spec);
  if (!stream.ok()) return 1;
  Result<PreparedStream> prepared = PrepareStream(*stream);
  if (!prepared.ok()) return 1;
  std::printf("fraud stream: %zu windows; true strategy switch at row %lld\n\n",
              prepared->windows.size(),
              static_cast<long long>(stream->true_drift_rows[0]));

  // Online Hoeffding tree + three concept-drift monitors on its errors.
  HoeffdingTreeConfig tree_config;
  tree_config.num_classes = 2;
  HoeffdingTree tree(tree_config, 7);
  Ddm ddm;
  Eddm eddm;
  AdwinAccuracyDetector adwin;

  std::printf("%-8s %8s %6s %6s %6s\n", "window", "error", "DDM", "EDDM",
              "ADWIN");
  for (size_t w = 0; w < prepared->windows.size(); ++w) {
    const WindowData& window = prepared->windows[w];
    int64_t wrong = 0;
    bool ddm_fired = false;
    bool eddm_fired = false;
    bool adwin_fired = false;
    for (int64_t r = 0; r < window.features.rows(); ++r) {
      const double* row = window.features.Row(r);
      int label = static_cast<int>(window.targets[static_cast<size_t>(r)]);
      int pred = tree.PredictClass(row, window.features.cols());
      double error = pred == label ? 0.0 : 1.0;
      wrong += static_cast<int64_t>(error);
      ddm_fired |= ddm.Update(error) == DriftSignal::kDrift;
      eddm_fired |= eddm.Update(error) == DriftSignal::kDrift;
      adwin_fired |= adwin.Update(error) == DriftSignal::kDrift;
      tree.Learn(row, window.features.cols(), label);
    }
    std::printf("%-8zu %8.3f %6s %6s %6s%s\n", w,
                static_cast<double>(wrong) /
                    static_cast<double>(window.features.rows()),
                ddm_fired ? "DRIFT" : "-", eddm_fired ? "DRIFT" : "-",
                adwin_fired ? "DRIFT" : "-",
                (stream->true_drift_rows[0] >= prepared->ranges[w].begin &&
                 stream->true_drift_rows[0] < prepared->ranges[w].end)
                    ? "   <== fraud strategy switches here"
                    : "");
  }
  std::printf(
      "\nTakeaway: error-rate monitors localise the strategy switch; the\n"
      "tree keeps adapting afterwards (open-environment challenge #2/#3\n"
      "from the paper's fraud example).\n");
  return 0;
}
