// Quickstart: generate a drifting relational stream, preprocess it with
// the paper's default pipeline (one-hot + KNN(k=2) imputation +
// first-window normalisation + windowing), and compare two stream
// learners under the test-then-train protocol.
//
//   ./quickstart [--rows=N]

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_generator.h"

using namespace oebench;  // NOLINT — example brevity

int main(int argc, char** argv) {
  int64_t rows = 4000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    double v;
    if (arg.rfind("--rows=", 0) == 0 && ParseDouble(arg.substr(7), &v)) {
      rows = static_cast<int64_t>(v);
    }
  }

  // 1. Describe the stream: a regression task with gradual concept drift,
  //    a few missing values and occasional point anomalies.
  StreamSpec spec;
  spec.name = "quickstart";
  spec.task = TaskType::kRegression;
  spec.num_instances = rows;
  spec.num_numeric_features = 8;
  spec.num_categorical_features = 1;
  spec.window_size = rows / 20;
  spec.drift_pattern = DriftPattern::kGradual;
  spec.drift_magnitude = 1.0;
  spec.base_missing_rate = 0.03;
  spec.point_anomaly_rate = 0.002;

  Result<GeneratedStream> stream = GenerateStream(spec);
  if (!stream.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %lld rows x %lld columns (%zu known outliers)\n",
              static_cast<long long>(stream->table.num_rows()),
              static_cast<long long>(stream->table.num_columns()),
              stream->true_outlier_rows.size());

  // 2. Preprocess (paper §4.3 defaults).
  Result<PreparedStream> prepared = PrepareStream(*stream);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("prepared %zu windows of ~%lld rows, %zu features\n",
              prepared->windows.size(),
              static_cast<long long>(spec.window_size),
              prepared->feature_names.size());

  // 3. Evaluate two learners test-then-train (§6.1).
  LearnerConfig config;
  for (const char* name : {"Naive-NN", "Naive-DT", "SEA-GBDT"}) {
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(name, config, prepared->task, prepared->num_classes);
    if (!learner.ok()) {
      std::fprintf(stderr, "learner: %s\n",
                   learner.status().ToString().c_str());
      return 1;
    }
    EvalResult result = RunPrequential(learner->get(), *prepared);
    std::printf("%-10s mean MSE %.4f | throughput %.0f items/s | peak "
                "memory %.1f KB\n",
                name, result.mean_loss, result.throughput,
                static_cast<double>(result.peak_memory_bytes) / 1024.0);
  }
  return 0;
}
