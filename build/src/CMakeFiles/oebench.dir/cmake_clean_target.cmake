file(REMOVE_RECURSE
  "liboebench.a"
)
