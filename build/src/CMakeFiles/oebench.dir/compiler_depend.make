# Empty compiler generated dependencies file for oebench.
# This may be replaced when dependencies are built.
