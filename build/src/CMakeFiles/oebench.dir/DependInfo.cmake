
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/oebench.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/oebench.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/tsne.cc" "src/CMakeFiles/oebench.dir/cluster/tsne.cc.o" "gcc" "src/CMakeFiles/oebench.dir/cluster/tsne.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/oebench.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/oebench.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/oebench.dir/common/random.cc.o" "gcc" "src/CMakeFiles/oebench.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/oebench.dir/common/status.cc.o" "gcc" "src/CMakeFiles/oebench.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/oebench.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/oebench.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/arf.cc" "src/CMakeFiles/oebench.dir/core/arf.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/arf.cc.o.d"
  "/root/repo/src/core/drift_reset.cc" "src/CMakeFiles/oebench.dir/core/drift_reset.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/drift_reset.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/oebench.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/ewc.cc" "src/CMakeFiles/oebench.dir/core/ewc.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/ewc.cc.o.d"
  "/root/repo/src/core/icarl.cc" "src/CMakeFiles/oebench.dir/core/icarl.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/icarl.cc.o.d"
  "/root/repo/src/core/lwf.cc" "src/CMakeFiles/oebench.dir/core/lwf.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/lwf.cc.o.d"
  "/root/repo/src/core/mas.cc" "src/CMakeFiles/oebench.dir/core/mas.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/mas.cc.o.d"
  "/root/repo/src/core/naive_bayes_learner.cc" "src/CMakeFiles/oebench.dir/core/naive_bayes_learner.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/naive_bayes_learner.cc.o.d"
  "/root/repo/src/core/naive_nn.cc" "src/CMakeFiles/oebench.dir/core/naive_nn.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/naive_nn.cc.o.d"
  "/root/repo/src/core/oza_bag.cc" "src/CMakeFiles/oebench.dir/core/oza_bag.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/oza_bag.cc.o.d"
  "/root/repo/src/core/recommendation.cc" "src/CMakeFiles/oebench.dir/core/recommendation.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/recommendation.cc.o.d"
  "/root/repo/src/core/sam_knn.cc" "src/CMakeFiles/oebench.dir/core/sam_knn.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/sam_knn.cc.o.d"
  "/root/repo/src/core/sea.cc" "src/CMakeFiles/oebench.dir/core/sea.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/sea.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/oebench.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/selection.cc.o.d"
  "/root/repo/src/core/si.cc" "src/CMakeFiles/oebench.dir/core/si.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/si.cc.o.d"
  "/root/repo/src/core/tree_learners.cc" "src/CMakeFiles/oebench.dir/core/tree_learners.cc.o" "gcc" "src/CMakeFiles/oebench.dir/core/tree_learners.cc.o.d"
  "/root/repo/src/dataframe/column.cc" "src/CMakeFiles/oebench.dir/dataframe/column.cc.o" "gcc" "src/CMakeFiles/oebench.dir/dataframe/column.cc.o.d"
  "/root/repo/src/dataframe/csv.cc" "src/CMakeFiles/oebench.dir/dataframe/csv.cc.o" "gcc" "src/CMakeFiles/oebench.dir/dataframe/csv.cc.o.d"
  "/root/repo/src/dataframe/table.cc" "src/CMakeFiles/oebench.dir/dataframe/table.cc.o" "gcc" "src/CMakeFiles/oebench.dir/dataframe/table.cc.o.d"
  "/root/repo/src/drift/adwin.cc" "src/CMakeFiles/oebench.dir/drift/adwin.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/adwin.cc.o.d"
  "/root/repo/src/drift/cdbd.cc" "src/CMakeFiles/oebench.dir/drift/cdbd.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/cdbd.cc.o.d"
  "/root/repo/src/drift/ddm.cc" "src/CMakeFiles/oebench.dir/drift/ddm.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/ddm.cc.o.d"
  "/root/repo/src/drift/ecdd.cc" "src/CMakeFiles/oebench.dir/drift/ecdd.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/ecdd.cc.o.d"
  "/root/repo/src/drift/eddm.cc" "src/CMakeFiles/oebench.dir/drift/eddm.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/eddm.cc.o.d"
  "/root/repo/src/drift/eia.cc" "src/CMakeFiles/oebench.dir/drift/eia.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/eia.cc.o.d"
  "/root/repo/src/drift/fw_ddm.cc" "src/CMakeFiles/oebench.dir/drift/fw_ddm.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/fw_ddm.cc.o.d"
  "/root/repo/src/drift/hdddm.cc" "src/CMakeFiles/oebench.dir/drift/hdddm.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/hdddm.cc.o.d"
  "/root/repo/src/drift/hddm_a.cc" "src/CMakeFiles/oebench.dir/drift/hddm_a.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/hddm_a.cc.o.d"
  "/root/repo/src/drift/kdq_tree.cc" "src/CMakeFiles/oebench.dir/drift/kdq_tree.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/kdq_tree.cc.o.d"
  "/root/repo/src/drift/ks_test.cc" "src/CMakeFiles/oebench.dir/drift/ks_test.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/ks_test.cc.o.d"
  "/root/repo/src/drift/lfr.cc" "src/CMakeFiles/oebench.dir/drift/lfr.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/lfr.cc.o.d"
  "/root/repo/src/drift/md3.cc" "src/CMakeFiles/oebench.dir/drift/md3.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/md3.cc.o.d"
  "/root/repo/src/drift/page_hinkley.cc" "src/CMakeFiles/oebench.dir/drift/page_hinkley.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/page_hinkley.cc.o.d"
  "/root/repo/src/drift/pca_cd.cc" "src/CMakeFiles/oebench.dir/drift/pca_cd.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/pca_cd.cc.o.d"
  "/root/repo/src/drift/perm.cc" "src/CMakeFiles/oebench.dir/drift/perm.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/perm.cc.o.d"
  "/root/repo/src/drift/wilcoxon.cc" "src/CMakeFiles/oebench.dir/drift/wilcoxon.cc.o" "gcc" "src/CMakeFiles/oebench.dir/drift/wilcoxon.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/oebench.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/oebench.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/oebench.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/oebench.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "src/CMakeFiles/oebench.dir/linalg/pca.cc.o" "gcc" "src/CMakeFiles/oebench.dir/linalg/pca.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/oebench.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/oebench.dir/linalg/vector_ops.cc.o.d"
  "/root/repo/src/models/decision_tree.cc" "src/CMakeFiles/oebench.dir/models/decision_tree.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/decision_tree.cc.o.d"
  "/root/repo/src/models/gbdt.cc" "src/CMakeFiles/oebench.dir/models/gbdt.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/gbdt.cc.o.d"
  "/root/repo/src/models/hoeffding_tree.cc" "src/CMakeFiles/oebench.dir/models/hoeffding_tree.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/hoeffding_tree.cc.o.d"
  "/root/repo/src/models/linear_model.cc" "src/CMakeFiles/oebench.dir/models/linear_model.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/linear_model.cc.o.d"
  "/root/repo/src/models/mlp.cc" "src/CMakeFiles/oebench.dir/models/mlp.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/mlp.cc.o.d"
  "/root/repo/src/models/naive_bayes.cc" "src/CMakeFiles/oebench.dir/models/naive_bayes.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/naive_bayes.cc.o.d"
  "/root/repo/src/models/serialization.cc" "src/CMakeFiles/oebench.dir/models/serialization.cc.o" "gcc" "src/CMakeFiles/oebench.dir/models/serialization.cc.o.d"
  "/root/repo/src/outlier/ecod.cc" "src/CMakeFiles/oebench.dir/outlier/ecod.cc.o" "gcc" "src/CMakeFiles/oebench.dir/outlier/ecod.cc.o.d"
  "/root/repo/src/outlier/isolation_forest.cc" "src/CMakeFiles/oebench.dir/outlier/isolation_forest.cc.o" "gcc" "src/CMakeFiles/oebench.dir/outlier/isolation_forest.cc.o.d"
  "/root/repo/src/preprocess/imputer.cc" "src/CMakeFiles/oebench.dir/preprocess/imputer.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/imputer.cc.o.d"
  "/root/repo/src/preprocess/normalizer.cc" "src/CMakeFiles/oebench.dir/preprocess/normalizer.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/normalizer.cc.o.d"
  "/root/repo/src/preprocess/one_hot.cc" "src/CMakeFiles/oebench.dir/preprocess/one_hot.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/one_hot.cc.o.d"
  "/root/repo/src/preprocess/pipeline.cc" "src/CMakeFiles/oebench.dir/preprocess/pipeline.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/pipeline.cc.o.d"
  "/root/repo/src/preprocess/time_ordering.cc" "src/CMakeFiles/oebench.dir/preprocess/time_ordering.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/time_ordering.cc.o.d"
  "/root/repo/src/preprocess/windowing.cc" "src/CMakeFiles/oebench.dir/preprocess/windowing.cc.o" "gcc" "src/CMakeFiles/oebench.dir/preprocess/windowing.cc.o.d"
  "/root/repo/src/stats/drift_stats.cc" "src/CMakeFiles/oebench.dir/stats/drift_stats.cc.o" "gcc" "src/CMakeFiles/oebench.dir/stats/drift_stats.cc.o.d"
  "/root/repo/src/stats/missing_stats.cc" "src/CMakeFiles/oebench.dir/stats/missing_stats.cc.o" "gcc" "src/CMakeFiles/oebench.dir/stats/missing_stats.cc.o.d"
  "/root/repo/src/stats/outlier_stats.cc" "src/CMakeFiles/oebench.dir/stats/outlier_stats.cc.o" "gcc" "src/CMakeFiles/oebench.dir/stats/outlier_stats.cc.o.d"
  "/root/repo/src/stats/profile.cc" "src/CMakeFiles/oebench.dir/stats/profile.cc.o" "gcc" "src/CMakeFiles/oebench.dir/stats/profile.cc.o.d"
  "/root/repo/src/streamgen/corpus.cc" "src/CMakeFiles/oebench.dir/streamgen/corpus.cc.o" "gcc" "src/CMakeFiles/oebench.dir/streamgen/corpus.cc.o.d"
  "/root/repo/src/streamgen/representative.cc" "src/CMakeFiles/oebench.dir/streamgen/representative.cc.o" "gcc" "src/CMakeFiles/oebench.dir/streamgen/representative.cc.o.d"
  "/root/repo/src/streamgen/stream_generator.cc" "src/CMakeFiles/oebench.dir/streamgen/stream_generator.cc.o" "gcc" "src/CMakeFiles/oebench.dir/streamgen/stream_generator.cc.o.d"
  "/root/repo/src/streamgen/stream_spec.cc" "src/CMakeFiles/oebench.dir/streamgen/stream_spec.cc.o" "gcc" "src/CMakeFiles/oebench.dir/streamgen/stream_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
