file(REMOVE_RECURSE
  "../bench/bench_fig16_outlier_removal"
  "../bench/bench_fig16_outlier_removal.pdb"
  "CMakeFiles/bench_fig16_outlier_removal.dir/bench_fig16_outlier_removal.cc.o"
  "CMakeFiles/bench_fig16_outlier_removal.dir/bench_fig16_outlier_removal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_outlier_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
