# Empty compiler generated dependencies file for bench_fig16_outlier_removal.
# This may be replaced when dependencies are built.
