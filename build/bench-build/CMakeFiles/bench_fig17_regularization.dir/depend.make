# Empty dependencies file for bench_fig17_regularization.
# This may be replaced when dependencies are built.
