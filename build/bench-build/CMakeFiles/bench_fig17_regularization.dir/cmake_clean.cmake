file(REMOVE_RECURSE
  "../bench/bench_fig17_regularization"
  "../bench/bench_fig17_regularization.pdb"
  "CMakeFiles/bench_fig17_regularization.dir/bench_fig17_regularization.cc.o"
  "CMakeFiles/bench_fig17_regularization.dir/bench_fig17_regularization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
