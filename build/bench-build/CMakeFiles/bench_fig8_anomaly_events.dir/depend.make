# Empty dependencies file for bench_fig8_anomaly_events.
# This may be replaced when dependencies are built.
