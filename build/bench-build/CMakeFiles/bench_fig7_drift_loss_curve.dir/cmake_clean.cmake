file(REMOVE_RECURSE
  "../bench/bench_fig7_drift_loss_curve"
  "../bench/bench_fig7_drift_loss_curve.pdb"
  "CMakeFiles/bench_fig7_drift_loss_curve.dir/bench_fig7_drift_loss_curve.cc.o"
  "CMakeFiles/bench_fig7_drift_loss_curve.dir/bench_fig7_drift_loss_curve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_drift_loss_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
