# Empty compiler generated dependencies file for bench_fig7_drift_loss_curve.
# This may be replaced when dependencies are built.
