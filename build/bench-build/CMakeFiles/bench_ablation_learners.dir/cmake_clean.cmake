file(REMOVE_RECURSE
  "../bench/bench_ablation_learners"
  "../bench/bench_ablation_learners.pdb"
  "CMakeFiles/bench_ablation_learners.dir/bench_ablation_learners.cc.o"
  "CMakeFiles/bench_ablation_learners.dir/bench_ablation_learners.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
