# Empty compiler generated dependencies file for bench_ablation_extended_table4.
# This may be replaced when dependencies are built.
