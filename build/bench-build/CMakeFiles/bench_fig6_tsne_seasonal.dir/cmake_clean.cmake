file(REMOVE_RECURSE
  "../bench/bench_fig6_tsne_seasonal"
  "../bench/bench_fig6_tsne_seasonal.pdb"
  "CMakeFiles/bench_fig6_tsne_seasonal.dir/bench_fig6_tsne_seasonal.cc.o"
  "CMakeFiles/bench_fig6_tsne_seasonal.dir/bench_fig6_tsne_seasonal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tsne_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
