# Empty dependencies file for bench_fig6_tsne_seasonal.
# This may be replaced when dependencies are built.
