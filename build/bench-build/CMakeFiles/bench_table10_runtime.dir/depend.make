# Empty dependencies file for bench_table10_runtime.
# This may be replaced when dependencies are built.
