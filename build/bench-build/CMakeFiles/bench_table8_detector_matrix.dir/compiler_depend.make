# Empty compiler generated dependencies file for bench_table8_detector_matrix.
# This may be replaced when dependencies are built.
