file(REMOVE_RECURSE
  "../bench/bench_micro_detectors"
  "../bench/bench_micro_detectors.pdb"
  "CMakeFiles/bench_micro_detectors.dir/bench_micro_detectors.cc.o"
  "CMakeFiles/bench_micro_detectors.dir/bench_micro_detectors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
