# Empty dependencies file for bench_micro_detectors.
# This may be replaced when dependencies are built.
