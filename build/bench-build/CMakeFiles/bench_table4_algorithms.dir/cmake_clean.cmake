file(REMOVE_RECURSE
  "../bench/bench_table4_algorithms"
  "../bench/bench_table4_algorithms.pdb"
  "CMakeFiles/bench_table4_algorithms.dir/bench_table4_algorithms.cc.o"
  "CMakeFiles/bench_table4_algorithms.dir/bench_table4_algorithms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
