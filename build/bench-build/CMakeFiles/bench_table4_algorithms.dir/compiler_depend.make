# Empty compiler generated dependencies file for bench_table4_algorithms.
# This may be replaced when dependencies are built.
