file(REMOVE_RECURSE
  "../bench/bench_fig15_drift_vs_shuffled"
  "../bench/bench_fig15_drift_vs_shuffled.pdb"
  "CMakeFiles/bench_fig15_drift_vs_shuffled.dir/bench_fig15_drift_vs_shuffled.cc.o"
  "CMakeFiles/bench_fig15_drift_vs_shuffled.dir/bench_fig15_drift_vs_shuffled.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_drift_vs_shuffled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
