# Empty compiler generated dependencies file for bench_fig15_drift_vs_shuffled.
# This may be replaced when dependencies are built.
