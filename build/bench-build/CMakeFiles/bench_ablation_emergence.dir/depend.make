# Empty dependencies file for bench_ablation_emergence.
# This may be replaced when dependencies are built.
