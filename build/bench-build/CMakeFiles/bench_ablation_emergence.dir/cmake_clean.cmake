file(REMOVE_RECURSE
  "../bench/bench_ablation_emergence"
  "../bench/bench_ablation_emergence.pdb"
  "CMakeFiles/bench_ablation_emergence.dir/bench_ablation_emergence.cc.o"
  "CMakeFiles/bench_ablation_emergence.dir/bench_ablation_emergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_emergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
