file(REMOVE_RECURSE
  "../bench/bench_fig13_model_depth"
  "../bench/bench_fig13_model_depth.pdb"
  "CMakeFiles/bench_fig13_model_depth.dir/bench_fig13_model_depth.cc.o"
  "CMakeFiles/bench_fig13_model_depth.dir/bench_fig13_model_depth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_model_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
