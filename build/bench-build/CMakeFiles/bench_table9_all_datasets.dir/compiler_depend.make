# Empty compiler generated dependencies file for bench_table9_all_datasets.
# This may be replaced when dependencies are built.
