file(REMOVE_RECURSE
  "../bench/bench_fig10_epochs"
  "../bench/bench_fig10_epochs.pdb"
  "CMakeFiles/bench_fig10_epochs.dir/bench_fig10_epochs.cc.o"
  "CMakeFiles/bench_fig10_epochs.dir/bench_fig10_epochs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
