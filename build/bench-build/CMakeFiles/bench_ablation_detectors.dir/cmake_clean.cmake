file(REMOVE_RECURSE
  "../bench/bench_ablation_detectors"
  "../bench/bench_ablation_detectors.pdb"
  "CMakeFiles/bench_ablation_detectors.dir/bench_ablation_detectors.cc.o"
  "CMakeFiles/bench_ablation_detectors.dir/bench_ablation_detectors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
