# Empty dependencies file for bench_fig3_stat_distribution.
# This may be replaced when dependencies are built.
