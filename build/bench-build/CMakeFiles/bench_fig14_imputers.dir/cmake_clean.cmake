file(REMOVE_RECURSE
  "../bench/bench_fig14_imputers"
  "../bench/bench_fig14_imputers.pdb"
  "CMakeFiles/bench_fig14_imputers.dir/bench_fig14_imputers.cc.o"
  "CMakeFiles/bench_fig14_imputers.dir/bench_fig14_imputers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_imputers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
