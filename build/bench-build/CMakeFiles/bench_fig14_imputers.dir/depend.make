# Empty dependencies file for bench_fig14_imputers.
# This may be replaced when dependencies are built.
