# Empty compiler generated dependencies file for bench_fig19_ensemble_size.
# This may be replaced when dependencies are built.
