# Empty dependencies file for bench_fig5_missing_strategies.
# This may be replaced when dependencies are built.
