file(REMOVE_RECURSE
  "../bench/bench_table3_selected"
  "../bench/bench_table3_selected.pdb"
  "CMakeFiles/bench_table3_selected.dir/bench_table3_selected.cc.o"
  "CMakeFiles/bench_table3_selected.dir/bench_table3_selected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_selected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
