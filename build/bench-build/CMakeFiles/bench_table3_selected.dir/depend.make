# Empty dependencies file for bench_table3_selected.
# This may be replaced when dependencies are built.
