file(REMOVE_RECURSE
  "../bench/bench_table2_corpus"
  "../bench/bench_table2_corpus.pdb"
  "CMakeFiles/bench_table2_corpus.dir/bench_table2_corpus.cc.o"
  "CMakeFiles/bench_table2_corpus.dir/bench_table2_corpus.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
