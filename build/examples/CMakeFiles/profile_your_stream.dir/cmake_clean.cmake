file(REMOVE_RECURSE
  "CMakeFiles/profile_your_stream.dir/profile_your_stream.cpp.o"
  "CMakeFiles/profile_your_stream.dir/profile_your_stream.cpp.o.d"
  "profile_your_stream"
  "profile_your_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_your_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
