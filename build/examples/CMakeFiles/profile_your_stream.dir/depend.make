# Empty dependencies file for profile_your_stream.
# This may be replaced when dependencies are built.
