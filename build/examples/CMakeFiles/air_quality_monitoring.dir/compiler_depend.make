# Empty compiler generated dependencies file for air_quality_monitoring.
# This may be replaced when dependencies are built.
