# Empty compiler generated dependencies file for oebench_tests.
# This may be replaced when dependencies are built.
