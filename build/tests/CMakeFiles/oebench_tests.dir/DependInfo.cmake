
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/oebench_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/oebench_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/oebench_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/corpus_sweep_test.cc" "tests/CMakeFiles/oebench_tests.dir/corpus_sweep_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/corpus_sweep_test.cc.o.d"
  "/root/repo/tests/dataframe_test.cc" "tests/CMakeFiles/oebench_tests.dir/dataframe_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/dataframe_test.cc.o.d"
  "/root/repo/tests/derived_recommendation_test.cc" "tests/CMakeFiles/oebench_tests.dir/derived_recommendation_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/derived_recommendation_test.cc.o.d"
  "/root/repo/tests/drift_test.cc" "tests/CMakeFiles/oebench_tests.dir/drift_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/drift_test.cc.o.d"
  "/root/repo/tests/edge_case_test.cc" "tests/CMakeFiles/oebench_tests.dir/edge_case_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/edge_case_test.cc.o.d"
  "/root/repo/tests/extension_test.cc" "tests/CMakeFiles/oebench_tests.dir/extension_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/extension_test.cc.o.d"
  "/root/repo/tests/generator_property_test.cc" "tests/CMakeFiles/oebench_tests.dir/generator_property_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/generator_property_test.cc.o.d"
  "/root/repo/tests/hoeffding_nb_test.cc" "tests/CMakeFiles/oebench_tests.dir/hoeffding_nb_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/hoeffding_nb_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/oebench_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/learner_behavior_test.cc" "tests/CMakeFiles/oebench_tests.dir/learner_behavior_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/learner_behavior_test.cc.o.d"
  "/root/repo/tests/linalg_test.cc" "tests/CMakeFiles/oebench_tests.dir/linalg_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/linalg_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/oebench_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/oebench_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/outlier_test.cc" "tests/CMakeFiles/oebench_tests.dir/outlier_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/outlier_test.cc.o.d"
  "/root/repo/tests/preprocess_test.cc" "tests/CMakeFiles/oebench_tests.dir/preprocess_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/preprocess_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/oebench_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/regression_guard_test.cc" "tests/CMakeFiles/oebench_tests.dir/regression_guard_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/regression_guard_test.cc.o.d"
  "/root/repo/tests/report_coverage_test.cc" "tests/CMakeFiles/oebench_tests.dir/report_coverage_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/report_coverage_test.cc.o.d"
  "/root/repo/tests/sam_knn_test.cc" "tests/CMakeFiles/oebench_tests.dir/sam_knn_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/sam_knn_test.cc.o.d"
  "/root/repo/tests/selection_test.cc" "tests/CMakeFiles/oebench_tests.dir/selection_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/selection_test.cc.o.d"
  "/root/repo/tests/serialization_test.cc" "tests/CMakeFiles/oebench_tests.dir/serialization_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/serialization_test.cc.o.d"
  "/root/repo/tests/shape_test.cc" "tests/CMakeFiles/oebench_tests.dir/shape_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/shape_test.cc.o.d"
  "/root/repo/tests/stats_classification_test.cc" "tests/CMakeFiles/oebench_tests.dir/stats_classification_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/stats_classification_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/oebench_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/streamgen_test.cc" "tests/CMakeFiles/oebench_tests.dir/streamgen_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/streamgen_test.cc.o.d"
  "/root/repo/tests/time_ordering_test.cc" "tests/CMakeFiles/oebench_tests.dir/time_ordering_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/time_ordering_test.cc.o.d"
  "/root/repo/tests/wilcoxon_nb_test.cc" "tests/CMakeFiles/oebench_tests.dir/wilcoxon_nb_test.cc.o" "gcc" "tests/CMakeFiles/oebench_tests.dir/wilcoxon_nb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oebench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
