#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace oebench {

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::SetMax(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (cur < v &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

const std::vector<double>& DefaultLatencyBounds() {
  // 100 ns .. 1 ms at 1/2.5/5 per decade — per-record serving latencies
  // are microseconds, and with decade-only buckets they would all
  // collapse into one bucket and quantile interpolation would be
  // meaningless — then decades up to 100 s for window/batch timings.
  static const std::vector<double> kBounds = {
      1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
      1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2,   0.1,  1.0,  10.0,   100.0};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (Stripe& stripe : stripes_) {
    stripe.buckets.assign(bounds_.size() + 1, 0);
  }
}

void Histogram::Record(double value) {
  // One stripe per thread (stable hash of the thread id) so pool
  // workers recording concurrently rarely contend on the same mutex.
  thread_local const size_t stripe_index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  Stripe& stripe = stripes_[stripe_index];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  std::lock_guard<std::mutex> lock(stripe.mu);
  ++stripe.buckets[bucket];
  if (stripe.count == 0) {
    stripe.min = value;
    stripe.max = value;
  } else {
    stripe.min = std::min(stripe.min, value);
    stripe.max = std::max(stripe.max, value);
  }
  ++stripe.count;
  stripe.sum += value;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.count == 0) continue;
    for (size_t i = 0; i < stripe.buckets.size(); ++i) {
      snap.buckets[i] += stripe.buckets[i];
    }
    if (snap.count == 0) {
      snap.min = stripe.min;
      snap.max = stripe.max;
    } else {
      snap.min = std::min(snap.min, stripe.min);
      snap.max = std::max(snap.max, stripe.max);
    }
    snap.count += stripe.count;
    snap.sum += stripe.sum;
  }
  return snap;
}

void Histogram::ResetValues() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    std::fill(stripe.buckets.begin(), stripe.buckets.end(), 0);
    stripe.count = 0;
    stripe.sum = 0.0;
    stripe.min = 0.0;
    stripe.max = 0.0;
  }
}

MetricsRegistry::MetricsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry* MetricsRegistry::Global() {
  // Leaked on purpose: worker threads may still record during static
  // destruction of other objects.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Counter* MetricsRegistry::GetVolatileCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = volatile_counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    slot.reset(new Histogram(std::move(bounds)));
  }
  return slot.get();
}

void MetricsRegistry::RecordSpan(std::string name, double start_seconds,
                                 double duration_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(
      SpanSnapshot{std::move(name), start_seconds, duration_seconds});
}

double MetricsRegistry::NowSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->value_.store(0);
  for (auto& [name, counter] : volatile_counters_) counter->value_.store(0);
  for (auto& [name, gauge] : gauges_) gauge->value_.store(0.0);
  for (auto& [name, hist] : histograms_) hist->ResetValues();
  spans_.clear();
  spans_dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, counter] : volatile_counters_) {
    snap.volatile_counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  snap.spans = spans_;
  snap.spans_dropped = spans_dropped_;
  return snap;
}

ScopedTimer::ScopedTimer(Histogram* hist, std::string span_name,
                         MetricsRegistry* registry)
    : hist_(hist),
      span_name_(std::move(span_name)),
      registry_(registry),
      start_(std::chrono::steady_clock::now()),
      armed_(hist != nullptr ||
             (registry != nullptr && !span_name_.empty())) {
  if (registry_ != nullptr && !span_name_.empty()) {
    start_seconds_ = registry_->NowSeconds();
  }
}

double ScopedTimer::Stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  if (hist_ != nullptr) hist_->Record(elapsed);
  if (registry_ != nullptr && !span_name_.empty()) {
    registry_->RecordSpan(span_name_, start_seconds_, elapsed);
  }
  return elapsed;
}

// ---------------------------------------------------------------------------
// JSON serialization. Hand-rolled on purpose: the format is a small
// closed subset (objects, arrays, strings, numbers, booleans) that we
// both write and read, and the repo takes no external dependencies.

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// %.17g round-trips every finite double exactly.
void AppendDouble(double v, std::string* out) {
  out->append(StrFormat("%.17g", v));
}

template <typename T, typename AppendValue>
void AppendStringMap(const char* key, const std::map<std::string, T>& values,
                     AppendValue&& append_value, std::string* out) {
  out->append(StrFormat("  \"%s\": {", key));
  bool first = true;
  for (const auto& [name, value] : values) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendEscaped(name, out);
    out->append(": ");
    append_value(value, out);
  }
  out->append(first ? "}" : "\n  }");
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot,
                          const MetricsJsonOptions& options) {
  // Top-level keys in fixed alphabetical order; map contents are
  // sorted by std::map. Deterministic mode emits only the sections
  // whose values are workload-derived (see the determinism contract).
  std::string out = "{\n";
  AppendStringMap(
      "counters", snapshot.counters,
      [](int64_t v, std::string* o) {
        o->append(StrFormat("%lld", static_cast<long long>(v)));
      },
      &out);
  out.append(StrFormat(",\n  \"deterministic\": %s",
                       options.deterministic ? "true" : "false"));
  if (!options.deterministic) {
    out.append(",\n");
    AppendStringMap(
        "gauges", snapshot.gauges,
        [](double v, std::string* o) { AppendDouble(v, o); }, &out);
    out.append(",\n");
    AppendStringMap(
        "histograms", snapshot.histograms,
        [](const HistogramSnapshot& h, std::string* o) {
          o->append("{\"bounds\": [");
          for (size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0) o->append(", ");
            AppendDouble(h.bounds[i], o);
          }
          o->append("], \"buckets\": [");
          for (size_t i = 0; i < h.buckets.size(); ++i) {
            if (i > 0) o->append(", ");
            o->append(
                StrFormat("%lld", static_cast<long long>(h.buckets[i])));
          }
          o->append(StrFormat("], \"count\": %lld, \"max\": ",
                              static_cast<long long>(h.count)));
          AppendDouble(h.max, o);
          o->append(", \"min\": ");
          AppendDouble(h.min, o);
          o->append(", \"sum\": ");
          AppendDouble(h.sum, o);
          o->append("}");
        },
        &out);
    out.append(",\n  \"spans\": [");
    for (size_t i = 0; i < snapshot.spans.size(); ++i) {
      const SpanSnapshot& span = snapshot.spans[i];
      out.append(i == 0 ? "\n    " : ",\n    ");
      out.append("{\"dur\": ");
      AppendDouble(span.duration_seconds, &out);
      out.append(", \"name\": ");
      AppendEscaped(span.name, &out);
      out.append(", \"start\": ");
      AppendDouble(span.start_seconds, &out);
      out.append("}");
    }
    out.append(snapshot.spans.empty() ? "]" : "\n  ]");
    out.append(StrFormat(",\n  \"spans_dropped\": %lld",
                         static_cast<long long>(snapshot.spans_dropped)));
  }
  out.append(",\n  \"version\": 1");
  if (!options.deterministic) {
    out.append(",\n");
    AppendStringMap(
        "volatile_counters", snapshot.volatile_counters,
        [](int64_t v, std::string* o) {
          o->append(StrFormat("%lld", static_cast<long long>(v)));
        },
        &out);
  }
  out.append("\n}\n");
  return out;
}

namespace {

// Minimal recursive-descent parser for the closed JSON subset emitted
// by MetricsToJson. Errors carry a byte offset for debuggability.
class MetricsJsonParser {
 public:
  explicit MetricsJsonParser(const std::string& text)
      : text_(text), pos_(0) {}

  Status Parse(MetricsSnapshot* out) {
    out->counters.clear();
    out->volatile_counters.clear();
    out->gauges.clear();
    out->histograms.clear();
    out->spans.clear();
    out->spans_dropped = 0;
    bool saw_version = false;
    Status status = ParseObject([&](const std::string& key) -> Status {
      if (key == "counters") {
        return ParseIntMap(&out->counters);
      } else if (key == "volatile_counters") {
        return ParseIntMap(&out->volatile_counters);
      } else if (key == "gauges") {
        return ParseDoubleMap(&out->gauges);
      } else if (key == "histograms") {
        return ParseHistogramMap(&out->histograms);
      } else if (key == "spans") {
        return ParseSpans(&out->spans);
      } else if (key == "spans_dropped") {
        return ParseInt(&out->spans_dropped);
      } else if (key == "deterministic") {
        bool ignored = false;
        return ParseBool(&ignored);
      } else if (key == "version") {
        int64_t version = 0;
        Status s = ParseInt(&version);
        if (!s.ok()) return s;
        if (version != 1) {
          return Error(StrFormat("unsupported metrics version %lld",
                                 static_cast<long long>(version)));
        }
        saw_version = true;
        return Status::OK();
      }
      return Error("unknown key \"" + key + "\"");
    });
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing data");
    if (!saw_version) return Error("missing \"version\"");
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(StrFormat(
        "metrics JSON: %s at byte %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(StrFormat("expected '%c'", c));
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    Status s = Expect('"');
    if (!s.ok()) return s;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          char* end = nullptr;
          const std::string hex = text_.substr(pos_, 4);
          long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code > 0xff) {
            return Error("bad \\u escape");
          }
          pos_ += 4;
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseDoubleValue(double* out) {
    SkipWhitespace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("bad number \"" + token + "\"");
    }
    return Status::OK();
  }

  Status ParseInt(int64_t* out) {
    double v = 0.0;
    Status s = ParseDoubleValue(&v);
    if (!s.ok()) return s;
    *out = static_cast<int64_t>(v);
    if (static_cast<double>(*out) != v) return Error("expected integer");
    return Status::OK();
  }

  Status ParseBool(bool* out) {
    SkipWhitespace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return Status::OK();
    }
    return Error("expected boolean");
  }

  Status ParseObject(const std::function<Status(const std::string&)>& on_key) {
    Status s = Expect('{');
    if (!s.ok()) return s;
    if (TryConsume('}')) return Status::OK();
    do {
      std::string key;
      s = ParseString(&key);
      if (!s.ok()) return s;
      s = Expect(':');
      if (!s.ok()) return s;
      s = on_key(key);
      if (!s.ok()) return s;
    } while (TryConsume(','));
    return Expect('}');
  }

  Status ParseIntMap(std::map<std::string, int64_t>* out) {
    return ParseObject([&](const std::string& key) {
      return ParseInt(&(*out)[key]);
    });
  }

  Status ParseDoubleMap(std::map<std::string, double>* out) {
    return ParseObject([&](const std::string& key) {
      return ParseDoubleValue(&(*out)[key]);
    });
  }

  Status ParseDoubleArray(std::vector<double>* out) {
    Status s = Expect('[');
    if (!s.ok()) return s;
    out->clear();
    if (TryConsume(']')) return Status::OK();
    do {
      double v = 0.0;
      s = ParseDoubleValue(&v);
      if (!s.ok()) return s;
      out->push_back(v);
    } while (TryConsume(','));
    return Expect(']');
  }

  Status ParseIntArray(std::vector<int64_t>* out) {
    Status s = Expect('[');
    if (!s.ok()) return s;
    out->clear();
    if (TryConsume(']')) return Status::OK();
    do {
      int64_t v = 0;
      s = ParseInt(&v);
      if (!s.ok()) return s;
      out->push_back(v);
    } while (TryConsume(','));
    return Expect(']');
  }

  Status ParseHistogramMap(std::map<std::string, HistogramSnapshot>* out) {
    return ParseObject([&](const std::string& name) {
      HistogramSnapshot& h = (*out)[name];
      return ParseObject([&](const std::string& key) -> Status {
        if (key == "bounds") return ParseDoubleArray(&h.bounds);
        if (key == "buckets") return ParseIntArray(&h.buckets);
        if (key == "count") return ParseInt(&h.count);
        if (key == "max") return ParseDoubleValue(&h.max);
        if (key == "min") return ParseDoubleValue(&h.min);
        if (key == "sum") return ParseDoubleValue(&h.sum);
        return Error("unknown histogram key \"" + key + "\"");
      });
    });
  }

  Status ParseSpans(std::vector<SpanSnapshot>* out) {
    Status s = Expect('[');
    if (!s.ok()) return s;
    out->clear();
    if (TryConsume(']')) return Status::OK();
    do {
      SpanSnapshot span;
      s = ParseObject([&](const std::string& key) -> Status {
        if (key == "dur") return ParseDoubleValue(&span.duration_seconds);
        if (key == "name") return ParseString(&span.name);
        if (key == "start") return ParseDoubleValue(&span.start_seconds);
        return Error("unknown span key \"" + key + "\"");
      });
      if (!s.ok()) return s;
      out->push_back(std::move(span));
    } while (TryConsume(','));
    return Expect(']');
  }

  const std::string& text_;
  size_t pos_;
};

}  // namespace

Status ParseMetricsJson(const std::string& text, MetricsSnapshot* out) {
  return MetricsJsonParser(text).Parse(out);
}

Status MergeMetricsSnapshots(const MetricsSnapshot& in, MetricsSnapshot* acc) {
  for (const auto& [name, value] : in.counters) {
    acc->counters[name] += value;
  }
  for (const auto& [name, value] : in.volatile_counters) {
    acc->volatile_counters[name] += value;
  }
  for (const auto& [name, value] : in.gauges) {
    auto [it, inserted] = acc->gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, hist] : in.histograms) {
    auto [it, inserted] = acc->histograms.emplace(name, hist);
    if (inserted) continue;
    HistogramSnapshot& target = it->second;
    if (target.bounds != hist.bounds ||
        target.buckets.size() != hist.buckets.size()) {
      return Status::InvalidArgument(
          "metrics merge: histogram \"" + name +
          "\" has incompatible bucket bounds across snapshots");
    }
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      target.buckets[i] += hist.buckets[i];
    }
    if (hist.count > 0) {
      if (target.count == 0) {
        target.min = hist.min;
        target.max = hist.max;
      } else {
        target.min = std::min(target.min, hist.min);
        target.max = std::max(target.max, hist.max);
      }
      target.count += hist.count;
      target.sum += hist.sum;
    }
  }
  // Per-shard spans are interval data relative to each shard's own
  // epoch; a cross-process rollup cannot place them on one timeline,
  // so they are dropped (and accounted) rather than merged wrongly.
  acc->spans_dropped +=
      in.spans_dropped + static_cast<int64_t>(in.spans.size());
  return Status::OK();
}

}  // namespace oebench
