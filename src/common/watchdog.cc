#include "common/watchdog.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace oebench {

TaskWatchdog::TaskWatchdog(int limit_ms, Report report)
    : limit_ms_(limit_ms), report_(std::move(report)) {
  OE_CHECK(limit_ms_ > 0);
  scanner_ = std::thread([this] { ScanLoop(); });
}

TaskWatchdog::~TaskWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  scanner_.join();
}

TaskWatchdog::Scope TaskWatchdog::Watch(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t token = ++next_token_;
  inflight_[token] = Entry{std::move(label),
                           std::chrono::steady_clock::now(), false};
  return Scope(this, token);
}

void TaskWatchdog::Unregister(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(token);
}

int64_t TaskWatchdog::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

void TaskWatchdog::ScanLoop() {
  // Scan a few times per limit so reports land promptly after the
  // deadline, but never busier than every 10ms.
  const auto poll = std::chrono::milliseconds(
      std::max(10, std::min(limit_ms_ / 4, 250)));
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    cv_.wait_for(lock, poll);
    if (shutdown_) break;
    const auto now = std::chrono::steady_clock::now();
    // Collect reports under the lock, fire them outside it so a slow
    // report sink cannot stall Watch()/Unregister() on worker threads.
    std::vector<std::pair<std::string, double>> due;
    for (auto& [token, entry] : inflight_) {
      if (entry.reported) continue;
      const double elapsed =
          std::chrono::duration<double>(now - entry.start).count();
      if (elapsed * 1000.0 >= static_cast<double>(limit_ms_)) {
        entry.reported = true;
        ++reports_;
        // Volatile: whether a task crosses the wall-clock limit
        // depends on machine load, not on the workload.
        MetricsRegistry::Global()
            ->GetVolatileCounter("watchdog.overlong_reports")
            ->Increment();
        due.emplace_back(entry.label, elapsed);
      }
    }
    if (due.empty()) continue;
    lock.unlock();
    for (const auto& [label, elapsed] : due) {
      if (report_) {
        report_(label, elapsed);
      } else {
        std::fprintf(stderr,
                     "[watchdog] task %s has been running %.1fs "
                     "(limit %dms); still alive, not killed\n",
                     label.c_str(), elapsed, limit_ms_);
      }
    }
    lock.lock();
  }
}

}  // namespace oebench
