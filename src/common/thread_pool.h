#ifndef OEBENCH_COMMON_THREAD_POOL_H_
#define OEBENCH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace oebench {

/// Fixed-size worker pool used by the parallel sweep engine. Design
/// goals, in order: determinism-friendliness, simplicity, clean
/// shutdown. There is deliberately no work stealing and no task
/// priority — callers that need reproducible results derive every
/// task's randomness from the task's *identity* (see
/// core/parallel_eval.h), so the pool is free to run tasks in any
/// order on any thread without affecting results.
///
/// - `Submit` wraps the callable in a `std::packaged_task` and returns
///   its future; an exception thrown by the task is captured and
///   rethrown from `future.get()` on the caller's thread.
/// - A pool constructed with 0 threads degrades to inline execution:
///   `Submit` runs the task on the calling thread before returning.
///   This is the `--threads 1` / serial path of the benches — no
///   queueing, no synchronisation, bit-for-bit today's behaviour.
/// - The destructor drains the queue: every task submitted before
///   destruction begins is executed, then the workers join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 (or negative) means inline
  /// execution on the submitting thread.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins the workers.
  ~ThreadPool();

  /// Schedules `fn` and returns a future for its result. Thread-safe:
  /// any thread (including pool workers) may submit.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline mode; exceptions are captured by the future
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Number of worker threads (0 in inline mode).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace oebench

#endif  // OEBENCH_COMMON_THREAD_POOL_H_
