#include "common/io_env.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace oebench {

namespace {

// ---------------------------------------------------------------------
// Default (passthrough) environment: stdio-backed.

class StdioWritableFile : public WritableFile {
 public:
  explicit StdioWritableFile(std::FILE* file) : file_(file) {}
  ~StdioWritableFile() override { Close().ok(); }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IoError("append to closed file");
    size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IoError(StrFormat(
          "short write: %zu of %zu bytes", written, data.size()));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IoError("sync of closed file");
    if (std::fflush(file_) != 0) return Status::IoError("fflush failed");
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) return Status::IoError("fclose failed");
    return Status::OK();
  }

 private:
  std::FILE* file_;
};

class StdioReadableFile : public ReadableFile {
 public:
  explicit StdioReadableFile(std::FILE* file) : file_(file) {}
  ~StdioReadableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(size_t max_bytes, std::string* out) override {
    out->clear();
    if (file_ == nullptr) return Status::IoError("read of closed file");
    out->resize(max_bytes);
    size_t got = std::fread(out->data(), 1, max_bytes, file_);
    out->resize(got);
    if (got < max_bytes && std::ferror(file_) != 0) {
      return Status::IoError("read failed");
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
};

class DefaultIoEnv : public IoEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) {
      return Status::IoError("cannot open for writing: " + path);
    }
    return std::unique_ptr<WritableFile>(new StdioWritableFile(file));
  }

  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return Status::IoError("cannot open: " + path);
    return std::unique_ptr<ReadableFile>(new StdioReadableFile(file));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return Status::IoError("cannot open: " + path);
    std::string text;
    char buffer[1 << 16];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      text.append(buffer, got);
    }
    bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) return Status::IoError("read failed: " + path);
    return text;
  }

  bool FileExists(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return false;
    std::fclose(file);
    return true;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("cannot move " + from + " over " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IoError("cannot remove: " + path);
    }
    return Status::OK();
  }
};

}  // namespace

IoEnv* IoEnv::Default() {
  static DefaultIoEnv* env = new DefaultIoEnv();
  return env;
}

// ---------------------------------------------------------------------
// Fault schedule parsing.

namespace {

bool ParsePositive(std::string_view text, int64_t* out) {
  if (!ParseInt64(text, out)) return false;
  return *out >= 1;
}

}  // namespace

Result<FaultSchedule> FaultSchedule::Parse(std::string_view spec) {
  FaultSchedule schedule;
  bool seen_fail = false, seen_torn = false, seen_sync = false,
       seen_enospc = false, seen_crash = false, seen_transient = false,
       seen_fail_read = false, seen_torn_read = false;
  for (const std::string& clause : Split(spec, ',')) {
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      return Status::InvalidArgument("bad fault clause '" + clause +
                                     "' (want key=value)");
    }
    std::string key = clause.substr(0, eq);
    std::string value = clause.substr(eq + 1);
    if (key == "fail-append" && !seen_fail) {
      if (!ParsePositive(value, &schedule.fail_append)) {
        return Status::InvalidArgument("fail-append needs N >= 1, got '" +
                                       value + "'");
      }
      seen_fail = true;
    } else if (key == "torn-append" && !seen_torn) {
      size_t colon = value.find(':');
      int64_t bytes = 0;
      if (colon == std::string::npos ||
          !ParsePositive(value.substr(0, colon), &schedule.torn_append) ||
          !ParseInt64(value.substr(colon + 1), &bytes) || bytes < 0) {
        return Status::InvalidArgument(
            "torn-append needs N:K with N >= 1, K >= 0, got '" + value + "'");
      }
      schedule.torn_bytes = static_cast<uint64_t>(bytes);
      seen_torn = true;
    } else if (key == "fail-sync" && !seen_sync) {
      if (!ParsePositive(value, &schedule.fail_sync)) {
        return Status::InvalidArgument("fail-sync needs N >= 1, got '" +
                                       value + "'");
      }
      seen_sync = true;
    } else if (key == "enospc" && !seen_enospc) {
      if (!ParsePositive(value, &schedule.enospc_append)) {
        return Status::InvalidArgument("enospc needs N >= 1, got '" + value +
                                       "'");
      }
      seen_enospc = true;
    } else if (key == "crash-at-byte" && !seen_crash) {
      if (!ParseInt64(value, &schedule.crash_after_bytes) ||
          schedule.crash_after_bytes < 0) {
        return Status::InvalidArgument("crash-at-byte needs K >= 0, got '" +
                                       value + "'");
      }
      seen_crash = true;
    } else if (key == "transient" && !seen_transient) {
      size_t colon = value.find(':');
      double p = 0.0;
      if (colon == std::string::npos ||
          !ParseUint64(value.substr(0, colon), &schedule.transient_seed) ||
          !ParseDouble(value.substr(colon + 1), &p) || !(p >= 0.0) ||
          !(p <= 1.0)) {
        return Status::InvalidArgument(
            "transient needs SEED:P with 0 <= P <= 1, got '" + value + "'");
      }
      schedule.transient_p = p;
      seen_transient = true;
    } else if (key == "fail-read" && !seen_fail_read) {
      if (!ParsePositive(value, &schedule.fail_read)) {
        return Status::InvalidArgument("fail-read needs N >= 1, got '" +
                                       value + "'");
      }
      seen_fail_read = true;
    } else if (key == "torn-read" && !seen_torn_read) {
      size_t colon = value.find(':');
      int64_t bytes = 0;
      if (colon == std::string::npos ||
          !ParsePositive(value.substr(0, colon), &schedule.torn_read) ||
          !ParseInt64(value.substr(colon + 1), &bytes) || bytes < 0) {
        return Status::InvalidArgument(
            "torn-read needs N:K with N >= 1, K >= 0, got '" + value + "'");
      }
      schedule.torn_read_bytes = static_cast<uint64_t>(bytes);
      seen_torn_read = true;
    } else {
      return Status::InvalidArgument("unknown or repeated fault clause '" +
                                     clause + "'");
    }
  }
  return schedule;
}

std::string FaultSchedule::ToString() const {
  std::vector<std::string> clauses;
  if (fail_append > 0) {
    clauses.push_back(StrFormat("fail-append=%lld",
                                static_cast<long long>(fail_append)));
  }
  if (torn_append > 0) {
    clauses.push_back(StrFormat("torn-append=%lld:%llu",
                                static_cast<long long>(torn_append),
                                static_cast<unsigned long long>(torn_bytes)));
  }
  if (fail_sync > 0) {
    clauses.push_back(StrFormat("fail-sync=%lld",
                                static_cast<long long>(fail_sync)));
  }
  if (enospc_append > 0) {
    clauses.push_back(StrFormat("enospc=%lld",
                                static_cast<long long>(enospc_append)));
  }
  if (crash_after_bytes >= 0) {
    clauses.push_back(StrFormat("crash-at-byte=%lld",
                                static_cast<long long>(crash_after_bytes)));
  }
  if (transient_p > 0.0) {
    clauses.push_back(StrFormat(
        "transient=%llu:%g",
        static_cast<unsigned long long>(transient_seed), transient_p));
  }
  if (fail_read > 0) {
    clauses.push_back(StrFormat("fail-read=%lld",
                                static_cast<long long>(fail_read)));
  }
  if (torn_read > 0) {
    clauses.push_back(StrFormat(
        "torn-read=%lld:%llu", static_cast<long long>(torn_read),
        static_cast<unsigned long long>(torn_read_bytes)));
  }
  return Join(clauses, ",");
}

// ---------------------------------------------------------------------
// Fault-injecting environment.

/// Wraps a base file; every append/sync consults the env's schedule
/// first, writing only the bytes the schedule allows through. Named
/// (not anonymous) so the env's friend declaration reaches it.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env,
                     std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override {
    OE_RETURN_NOT_OK(env_->CheckAlive());
    return base_->Close();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

Status FaultInjectingFile::Append(std::string_view data) {
  uint64_t allowed = 0;
  Status verdict = env_->OnAppend(data.size(), &allowed);
  if (allowed > 0) {
    // Torn/crash partial prefix: these bytes DID reach the disk before
    // the simulated failure, so they must reach the base file too.
    Status written = base_->Append(data.substr(0, allowed));
    Status synced = base_->Sync();  // make the torn tail observable
    if (verdict.ok() && !written.ok()) return written;
    if (verdict.ok() && !synced.ok()) return synced;
  }
  return verdict;
}

Status FaultInjectingFile::Sync() {
  OE_RETURN_NOT_OK(env_->OnSync());
  return base_->Sync();
}

/// Wraps a base readable file. A torn read silently serves at most
/// `byte_cap` bytes across all chunks and then reports end of file —
/// the reader cannot tell the file apart from one truncated by a
/// crash. Named so the env's friend declaration reaches it.
class FaultInjectingReadableFile : public ReadableFile {
 public:
  FaultInjectingReadableFile(FaultInjectingEnv* env,
                             std::unique_ptr<ReadableFile> base,
                             int64_t byte_cap)
      : env_(env), base_(std::move(base)), remaining_(byte_cap) {}

  Status Read(size_t max_bytes, std::string* out) override {
    out->clear();
    OE_RETURN_NOT_OK(env_->CheckAlive());
    if (remaining_ >= 0) {
      uint64_t cap = static_cast<uint64_t>(remaining_);
      if (max_bytes > cap) max_bytes = static_cast<size_t>(cap);
      if (max_bytes == 0) return Status::OK();  // silent early EOF
    }
    OE_RETURN_NOT_OK(base_->Read(max_bytes, out));
    if (remaining_ >= 0) remaining_ -= static_cast<int64_t>(out->size());
    return Status::OK();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<ReadableFile> base_;
  int64_t remaining_;  // -1 = unlimited
};

FaultInjectingEnv::FaultInjectingEnv(IoEnv* base,
                                     const FaultSchedule& schedule)
    : base_(base != nullptr ? base : IoEnv::Default()),
      schedule_(schedule),
      transient_rng_(schedule.transient_seed) {}

Status FaultInjectingEnv::CheckAlive() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IoError("simulated crash: I/O environment is down");
  }
  return Status::OK();
}

Status FaultInjectingEnv::OnAppend(uint64_t size, uint64_t* allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  *allowed = 0;
  if (crashed_) {
    return Status::IoError("simulated crash: I/O environment is down");
  }
  const int64_t op = ++append_ops_;
  if (schedule_.crash_after_bytes >= 0 &&
      bytes_written_ + static_cast<int64_t>(size) >
          schedule_.crash_after_bytes) {
    uint64_t prefix =
        static_cast<uint64_t>(schedule_.crash_after_bytes - bytes_written_);
    *allowed = prefix;
    bytes_written_ += static_cast<int64_t>(prefix);
    crashed_ = true;
    ++faults_;
    return Status::IoError(StrFormat(
        "simulated crash after %lld byte(s)",
        static_cast<long long>(schedule_.crash_after_bytes)));
  }
  if (op == schedule_.fail_append) {
    ++faults_;
    return Status::Unavailable(StrFormat(
        "injected transient failure on append #%lld",
        static_cast<long long>(op)));
  }
  if (op == schedule_.enospc_append) {
    ++faults_;
    return Status::IoError(StrFormat(
        "injected ENOSPC on append #%lld: no space left on device",
        static_cast<long long>(op)));
  }
  if (op == schedule_.torn_append) {
    uint64_t prefix = schedule_.torn_bytes < size ? schedule_.torn_bytes
                                                  : size;
    *allowed = prefix;
    bytes_written_ += static_cast<int64_t>(prefix);
    ++faults_;
    return Status::IoError(StrFormat(
        "injected torn write on append #%lld (%llu of %llu byte(s))",
        static_cast<long long>(op),
        static_cast<unsigned long long>(prefix),
        static_cast<unsigned long long>(size)));
  }
  if (schedule_.transient_p > 0.0 &&
      transient_rng_.Bernoulli(schedule_.transient_p)) {
    ++faults_;
    return Status::Unavailable(StrFormat(
        "injected transient failure on append #%lld (seeded)",
        static_cast<long long>(op)));
  }
  *allowed = size;
  bytes_written_ += static_cast<int64_t>(size);
  return Status::OK();
}

Status FaultInjectingEnv::OnSync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IoError("simulated crash: I/O environment is down");
  }
  if (++sync_ops_ == schedule_.fail_sync) {
    ++faults_;
    return Status::Unavailable(StrFormat(
        "injected transient failure on sync #%lld",
        static_cast<long long>(sync_ops_)));
  }
  return Status::OK();
}

Status FaultInjectingEnv::OnRead(const std::string& path, int64_t* byte_cap) {
  std::lock_guard<std::mutex> lock(mu_);
  *byte_cap = -1;
  if (crashed_) {
    return Status::IoError("simulated crash: I/O environment is down");
  }
  const int64_t op = ++read_ops_;
  if (op == schedule_.fail_read) {
    ++faults_;
    return Status::IoError(StrFormat(
        "injected read failure on read #%lld of '%s'",
        static_cast<long long>(op), path.c_str()));
  }
  if (op == schedule_.torn_read) {
    ++faults_;
    *byte_cap = static_cast<int64_t>(schedule_.torn_read_bytes);
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  OE_RETURN_NOT_OK(CheckAlive());
  Result<std::unique_ptr<WritableFile>> base =
      base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectingFile(this, std::move(*base)));
}

Result<std::unique_ptr<ReadableFile>> FaultInjectingEnv::NewReadableFile(
    const std::string& path) {
  int64_t byte_cap = -1;
  OE_RETURN_NOT_OK(OnRead(path, &byte_cap));
  Result<std::unique_ptr<ReadableFile>> base = base_->NewReadableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<ReadableFile>(
      new FaultInjectingReadableFile(this, std::move(*base), byte_cap));
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  int64_t byte_cap = -1;
  OE_RETURN_NOT_OK(OnRead(path, &byte_cap));
  Result<std::string> text = base_->ReadFile(path);
  if (!text.ok()) return text.status();
  if (byte_cap >= 0 && text->size() > static_cast<size_t>(byte_cap)) {
    text->resize(static_cast<size_t>(byte_cap));
  }
  return text;
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  if (!CheckAlive().ok()) return false;
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  OE_RETURN_NOT_OK(CheckAlive());
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  OE_RETURN_NOT_OK(CheckAlive());
  return base_->RemoveFile(path);
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int64_t FaultInjectingEnv::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_ops_;
}

int64_t FaultInjectingEnv::reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_ops_;
}

int64_t FaultInjectingEnv::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

int64_t FaultInjectingEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

}  // namespace oebench
