#ifndef OEBENCH_COMMON_RANDOM_H_
#define OEBENCH_COMMON_RANDOM_H_

#include <cstdint>
#include <iosfwd>
#include <random>
#include <vector>

namespace oebench {

/// Deterministic pseudo-random source used throughout the library. Every
/// stochastic component (stream generators, isolation forest, k-means,
/// MLP initialisation, ...) takes an explicit seed so that benchmarks are
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n) {
    return static_cast<int64_t>(
        std::uniform_int_distribution<int64_t>(0, n - 1)(engine_));
  }

  /// Standard normal deviate.
  double Gaussian() { return normal_(engine_); }

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Poisson deviate with the given rate. Used by ARF's online bagging.
  int Poisson(double lambda) {
    return std::poisson_distribution<int>(lambda)(engine_);
  }

  /// Samples an index according to non-negative weights (need not sum to 1).
  /// Returns the last index if weights are all zero.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `indices` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i)));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Derives a new independent seed; useful for spawning child RNGs.
  uint64_t NextSeed() {
    return std::uniform_int_distribution<uint64_t>()(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Serialises the full generator state — the engine *and* the cached
  /// distributions (normal_distribution keeps a spare Gaussian between
  /// calls) — as text, so a restored Rng continues the exact sequence
  /// the saved one would have produced. Used by the warm-start
  /// snapshots in sweep/reuse.
  void SaveState(std::ostream* out) const;

  /// Restores state written by SaveState. Returns false (leaving the
  /// Rng in an unspecified but valid state) on malformed input.
  bool LoadState(std::istream* in);

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace oebench

#endif  // OEBENCH_COMMON_RANDOM_H_
