#include "common/random.h"

#include "common/logging.h"

namespace oebench {

int64_t Rng::Categorical(const std::vector<double>& weights) {
  OE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return static_cast<int64_t>(weights.size()) - 1;
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  OE_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace oebench
