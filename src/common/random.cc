#include "common/random.h"

#include <istream>
#include <ostream>

#include "common/logging.h"

namespace oebench {

void Rng::SaveState(std::ostream* out) const {
  // The standard guarantees operator<</>> round-trip engine and
  // distribution state exactly (the values stream as integers / exact
  // decimal text). The distributions matter: normal_distribution
  // caches a spare deviate between Gaussian() calls, and dropping it
  // would shift every subsequent draw by one.
  *out << "rng v1\n";
  *out << engine_ << '\n';
  *out << unit_ << '\n';
  *out << normal_ << '\n';
}

bool Rng::LoadState(std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != "rng" || version != "v1") {
    return false;
  }
  if (!(*in >> engine_)) return false;
  if (!(*in >> unit_)) return false;
  if (!(*in >> normal_)) return false;
  return true;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  OE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return static_cast<int64_t>(weights.size()) - 1;
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  OE_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace oebench
