#include "common/thread_pool.h"

#include <algorithm>

namespace oebench {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(0, num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain the queue even when shutting down: destruction must run
      // every task already submitted (their futures are outstanding).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future, never escape here
  }
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace oebench
