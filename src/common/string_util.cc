#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace oebench {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string buf(StripWhitespace(text));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  std::string buf(StripWhitespace(text));
  if (buf.empty() || buf[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool IsMissingMarker(std::string_view raw) {
  std::string_view text = StripWhitespace(raw);
  if (text.empty()) return true;
  static const char* kMarkers[] = {"NA", "N/A", "na", "n/a", "nan",
                                   "NaN", "NAN", "null", "NULL", "?"};
  for (const char* m : kMarkers) {
    if (text == m) return true;
  }
  return false;
}

}  // namespace oebench
