#ifndef OEBENCH_COMMON_METRICS_H_
#define OEBENCH_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace oebench {

/// Process-wide metrics: named counters, gauges, and fixed-bound
/// histograms behind one registry, plus phase timers and per-task
/// trace spans. The registry is the single source of truth for every
/// measurement the sweep/bench stack reports — benches read tables
/// out of it instead of keeping their own stopwatches.
///
/// Determinism contract (see DESIGN.md "Observability"):
///   - *counters* hold deterministic work counts (items, windows,
///     tasks, appends). For a fixed workload they are bit-identical
///     across thread counts and across runs, so they are the only
///     section emitted in deterministic snapshot mode.
///   - *volatile counters* hold environment-derived counts (fault
///     retries, watchdog reports) that may legitimately differ
///     between runs.
///   - *gauges* and *histograms* carry time- or machine-valued data
///     (latencies, utilization, peak memory) and are always volatile.
///
/// Metric names are dot-scoped "<subsystem>.<what>[_<unit>]", e.g.
/// `eval.items`, `sweep.queue_wait_seconds`, `result_log.bytes_appended`.

/// Monotone event counter. Add() is a relaxed atomic increment —
/// cheap enough for per-item hot paths.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins double value with an atomic max variant
/// (utilization peaks, pool sizes). Always snapshot-volatile.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  /// Raises the gauge to `v` if `v` is larger; never lowers it.
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;    // inclusive upper bounds, ascending
  std::vector<int64_t> buckets;  // bounds.size() + 1 (last = overflow)
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;
};

/// Fixed-bound histogram. The bucket bounds are chosen at creation and
/// never change, so per-shard histograms merge exactly. Recording is
/// lock-striped: each stripe has its own mutex and bucket array,
/// merged only at Snapshot() time, so concurrent pool workers do not
/// serialize on one lock.
class Histogram {
 public:
  void Record(double value);
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  static constexpr int kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::vector<int64_t> buckets;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void ResetValues();

  const std::vector<double> bounds_;
  Stripe stripes_[kStripes];
  std::atomic<uint64_t> next_stripe_{0};
};

/// Exponential seconds-scale bounds (1us .. 100s) shared by every
/// latency/phase-timing histogram so shard snapshots merge.
const std::vector<double>& DefaultLatencyBounds();

/// One recorded task/phase interval, relative to the registry epoch.
struct SpanSnapshot {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> volatile_counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanSnapshot> spans;
  int64_t spans_dropped = 0;
};

/// Registry of named metrics. Get* calls are find-or-create and return
/// pointers that stay valid for the life of the process — Reset()
/// zeroes values but never deallocates, so call sites may cache the
/// pointer (e.g. in a function-local static) and skip the map lookup
/// on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry* Global();

  /// Deterministic counter (see the class comment's contract).
  Counter* GetCounter(const std::string& name);
  /// Volatile counter: environment-derived counts (retries, reports).
  Counter* GetVolatileCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Find-or-create. `bounds` is used only on first creation (empty =
  /// DefaultLatencyBounds()); later calls return the existing
  /// histogram regardless of bounds.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Records one trace span. `start_seconds` is relative to the
  /// registry epoch (construction or last Reset()); use NowSeconds()
  /// to stamp it. Spans are capped; overflow increments the
  /// `spans_dropped` count instead of growing without bound.
  void RecordSpan(std::string name, double start_seconds,
                  double duration_seconds);

  /// Seconds since the registry epoch (steady clock).
  double NowSeconds() const;

  /// Zeroes every value and clears spans without deallocating any
  /// metric object, and restarts the span epoch. Cached pointers from
  /// Get* stay valid.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  static constexpr size_t kMaxSpans = 4096;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Counter>> volatile_counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<SpanSnapshot> spans_;
  int64_t spans_dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII phase timer: records elapsed seconds into `hist` (and
/// optionally a span named `span_name`) when stopped or destroyed.
/// A null `hist` makes the timer inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, std::string span_name = "",
                       MetricsRegistry* registry = nullptr);
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records once and disarms; returns elapsed seconds (0 if already
  /// stopped or inert).
  double Stop();

 private:
  Histogram* hist_;
  std::string span_name_;
  MetricsRegistry* registry_;
  double start_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  bool armed_;
};

struct MetricsJsonOptions {
  /// Emit only the deterministic sections (version, flag, counters):
  /// no wall-clock-derived values, so two identical runs produce
  /// byte-identical files and shard snapshots diff cleanly.
  bool deterministic = false;
};

/// Serializes a snapshot as JSON with stable key order (maps are
/// sorted; doubles printed with %.17g so values round-trip exactly).
std::string MetricsToJson(const MetricsSnapshot& snapshot,
                          const MetricsJsonOptions& options = {});

/// Parses JSON produced by MetricsToJson (either mode) back into a
/// snapshot. Unknown keys are an error: the format is ours.
Status ParseMetricsJson(const std::string& text, MetricsSnapshot* out);

/// Folds `in` into `acc` for the merge-time rollup: counters and
/// volatile counters sum, gauges keep the max, histograms (which share
/// bounds by construction) add bucket-wise. Per-shard spans are not
/// carried into the rollup; their count is added to spans_dropped.
/// Fails if two histograms with the same name disagree on bounds.
Status MergeMetricsSnapshots(const MetricsSnapshot& in, MetricsSnapshot* acc);

}  // namespace oebench

#endif  // OEBENCH_COMMON_METRICS_H_
