#ifndef OEBENCH_COMMON_WATCHDOG_H_
#define OEBENCH_COMMON_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace oebench {

/// Wall-clock watchdog over in-flight tasks. A background thread
/// periodically scans the registered tasks and reports — once per task
/// — any that has been running longer than the limit. It only reports:
/// a slow task is not a dead task, and killing a pool worker mid-run
/// would forfeit the sweep's determinism contract. The report goes to
/// stderr by default, or to a callback (tests).
///
/// Thread-safe; Watch()/Scope may be used concurrently from any number
/// of worker threads.
class TaskWatchdog {
 public:
  /// `label` is the registered task's display name; `elapsed_seconds`
  /// is how long it had been running when the report fired.
  using Report = std::function<void(const std::string& label,
                                    double elapsed_seconds)>;

  /// Starts the scanner thread. Tasks running longer than `limit_ms`
  /// (must be > 0) are reported. A null `report` writes one line per
  /// overlong task to stderr.
  explicit TaskWatchdog(int limit_ms, Report report = nullptr);
  /// Joins the scanner thread. In-flight Scopes must be gone first.
  ~TaskWatchdog();

  TaskWatchdog(const TaskWatchdog&) = delete;
  TaskWatchdog& operator=(const TaskWatchdog&) = delete;

  /// RAII registration of one running task: registered on
  /// construction, deregistered on destruction. A default-constructed
  /// Scope watches nothing.
  class Scope {
   public:
    Scope() = default;
    Scope(Scope&& other) noexcept { *this = std::move(other); }
    Scope& operator=(Scope&& other) noexcept {
      Release();
      dog_ = other.dog_;
      token_ = other.token_;
      other.dog_ = nullptr;
      return *this;
    }
    ~Scope() { Release(); }

   private:
    friend class TaskWatchdog;
    Scope(TaskWatchdog* dog, uint64_t token) : dog_(dog), token_(token) {}
    void Release() {
      if (dog_ != nullptr) dog_->Unregister(token_);
      dog_ = nullptr;
    }

    TaskWatchdog* dog_ = nullptr;
    uint64_t token_ = 0;
  };

  /// Registers a running task under `label` until the Scope dies.
  Scope Watch(std::string label);

  /// Overlong-task reports fired so far.
  int64_t reports() const;

 private:
  struct Entry {
    std::string label;
    std::chrono::steady_clock::time_point start;
    bool reported = false;
  };

  void Unregister(uint64_t token);
  void ScanLoop();

  const int limit_ms_;
  const Report report_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> inflight_;
  uint64_t next_token_ = 0;
  int64_t reports_ = 0;
  bool shutdown_ = false;
  std::thread scanner_;
};

}  // namespace oebench

#endif  // OEBENCH_COMMON_WATCHDOG_H_
