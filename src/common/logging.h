#ifndef OEBENCH_COMMON_LOGGING_H_
#define OEBENCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace oebench {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by OE_LOG; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. Flushes one line to stderr on destruction.
/// Used through the OE_LOG / OE_CHECK macros; not part of the public API.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing. Used by OE_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace oebench

#define OE_LOG(level)                                              \
  ::oebench::internal::LogMessage(::oebench::LogLevel::k##level,   \
                                  __FILE__, __LINE__)

// Aborts with a message when `condition` is false. For programming errors
// (violated invariants), not for recoverable failures — those return Status.
#define OE_CHECK(condition)                                          \
  if (!(condition))                                                  \
  ::oebench::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define OE_DCHECK(condition) OE_CHECK(condition)

#endif  // OEBENCH_COMMON_LOGGING_H_
