#ifndef OEBENCH_COMMON_STRING_UTIL_H_
#define OEBENCH_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace oebench {

/// Splits `text` on `delim`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins the items with `sep` between them.
std::string Join(const std::vector<std::string>& items,
                 std::string_view sep);

/// Parses a double; returns false on malformed input. Empty or "NA"/"nan"
/// style markers are *not* handled here — callers decide missing-value
/// policy.
bool ParseDouble(std::string_view text, double* out);

/// Strictly parses a base-10 signed integer: the whole (whitespace-
/// stripped) text must be consumed and fit in int64_t. "2.7", "abc",
/// "12x" and out-of-range values all return false.
bool ParseInt64(std::string_view text, int64_t* out);

/// Strict base-10 unsigned parse; rejects leading '-' (strtoull would
/// silently wrap it).
bool ParseUint64(std::string_view text, uint64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `text` equals one of the common missing-value markers
/// ("", "NA", "N/A", "nan", "NaN", "null", "?").
bool IsMissingMarker(std::string_view text);

}  // namespace oebench

#endif  // OEBENCH_COMMON_STRING_UTIL_H_
