#ifndef OEBENCH_COMMON_STATUS_H_
#define OEBENCH_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace oebench {

/// Error categories used across the library. Modelled after the
/// Arrow/RocksDB convention: cheap to construct on success, carries a
/// message on failure, and is the return type of every fallible operation
/// instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
  /// A transient failure (e.g. an injected or real intermittent I/O
  /// error) that is expected to succeed if retried. Callers with a
  /// retry policy (sweep/shard_runner) retry kUnavailable with bounded
  /// backoff; every other code is permanent and propagates.
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "Invalid
/// argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. `Status::OK()` is the success value;
/// failures carry a code and a message. Copyable and cheaply movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, analogous to arrow::Result. On success holds a
/// T; on failure holds a non-OK Status. Accessing the value of a failed
/// Result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status: `return st;`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }

  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

// Propagates an error Status from an expression that returns Status.
#define OE_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::oebench::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or propagates the
// error. `lhs` may include a declaration, e.g. OE_ASSIGN_OR_RETURN(auto x, F()).
#define OE_ASSIGN_OR_RETURN(lhs, rexpr)              \
  OE_ASSIGN_OR_RETURN_IMPL(                          \
      OE_CONCAT_NAME(_result_, __LINE__), lhs, rexpr)

#define OE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).value()

#define OE_CONCAT_NAME_INNER(a, b) a##b
#define OE_CONCAT_NAME(a, b) OE_CONCAT_NAME_INNER(a, b)

}  // namespace oebench

#endif  // OEBENCH_COMMON_STATUS_H_
