#ifndef OEBENCH_COMMON_IO_ENV_H_
#define OEBENCH_COMMON_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace oebench {

/// Injectable I/O environment (LevelDB-Env style). Everything the
/// sweep subsystem's durability story touches — opening, appending,
/// syncing, renaming, reading — goes through this interface instead of
/// raw FILE*/fstream calls, so tests can substitute a fault-injecting
/// implementation and exercise torn writes, fsync errors, ENOSPC and
/// crashes deterministically, at every byte offset, without ever
/// killing a real process.
///
/// Error taxonomy: kUnavailable means transient — nothing (or nothing
/// new) reached the file and an identical retry may succeed; callers
/// with a retry policy (sweep/shard_runner) retry these with bounded
/// backoff. Every other failure is permanent: partial bytes may have
/// reached the file (a torn append) or the environment is gone
/// (crash), and the only safe recovery is resume-with-compaction.

/// An open file being read sequentially (merge and resume read shard
/// logs through this, so read-side faults — a poisoned disk block, a
/// log truncated by the crash that killed its shard — are injectable
/// too). Not thread-safe; callers serialise.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  /// Reads up to `max_bytes` from the current offset into *out
  /// (replacing its contents). OK with an empty *out means end of
  /// file. A failure poisons the whole read: callers must not trust
  /// bytes returned by earlier chunks of the same file.
  virtual Status Read(size_t max_bytes, std::string* out) = 0;
};

/// An open file being appended to. Not thread-safe; callers serialise
/// (ResultLogWriter holds its own mutex).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. On a permanent failure
  /// partial bytes may have been written (the torn-write case).
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes toward durable storage (the log's per-row
  /// flush point). A transient sync failure leaves already-appended
  /// bytes intact, so retrying the whole append is safe — duplicate
  /// rows are tolerated by the log reader and merge.
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; the destructor closes too.
  virtual Status Close() = 0;
};

class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// Opens `path` for writing. `truncate` starts an empty file
  /// (compaction's temp file); otherwise appends to an existing one.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Opens `path` for sequential reading (the merge/resume read path).
  virtual Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) = 0;

  /// Reads a whole file into memory. Counts as one read operation for
  /// fault accounting, exactly like NewReadableFile.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (the compaction commit).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// The process-wide passthrough environment (stdio-backed). Never
  /// null; callers treat a null IoEnv* option as "use Default()".
  static IoEnv* Default();
};

/// One deterministic fault plan for a FaultInjectingEnv. Append and
/// sync operations are counted 1-based across every file the env opens
/// (header, compaction temp and log appends alike), so a schedule pins
/// a fault to an exact operation — or, for crashes, an exact byte — of
/// a run, independent of wall clock.
struct FaultSchedule {
  /// Nth append fails before writing anything — transient
  /// (kUnavailable); a retry of the same append succeeds.
  int64_t fail_append = 0;
  /// Nth append writes only the first `torn_bytes` bytes, then fails
  /// permanently (kIoError) — the classic torn write.
  int64_t torn_append = 0;
  uint64_t torn_bytes = 0;
  /// Nth sync fails — transient (kUnavailable); the appended bytes are
  /// intact.
  int64_t fail_sync = 0;
  /// Nth append fails with no space left — permanent (kIoError),
  /// nothing written, but the environment stays up.
  int64_t enospc_append = 0;
  /// When >= 0: total append-byte budget. The append that would exceed
  /// it writes only up to the budget, then the whole environment dies —
  /// every later operation on every file fails (kIoError), exactly as
  /// if the process had been killed at that byte.
  int64_t crash_after_bytes = -1;
  /// When transient_p > 0: each append additionally fails transiently
  /// with probability transient_p, driven by a seeded common/random
  /// Rng — a deterministic model of a flaky disk.
  uint64_t transient_seed = 0;
  double transient_p = 0.0;
  /// Nth read operation (NewReadableFile/ReadFile, counted together,
  /// 1-based across the env) fails permanently (kIoError) — a poisoned
  /// disk block under a shard log.
  int64_t fail_read = 0;
  /// Nth read operation silently serves only the first
  /// `torn_read_bytes` bytes and then reports a clean end of file — a
  /// log truncated by the crash that killed its shard. The *read*
  /// succeeds; the missing tail must be caught by the log reader's
  /// structural checks (torn-line drop, coverage validation).
  int64_t torn_read = 0;
  uint64_t torn_read_bytes = 0;

  /// Parses the --fault-schedule= syntax: comma-separated clauses
  ///   fail-append=N | torn-append=N:K | fail-sync=N | enospc=N |
  ///   crash-at-byte=K | transient=SEED:P | fail-read=N |
  ///   torn-read=N:K
  /// e.g. "torn-append=3:7,fail-sync=1". Rejects unknown clauses,
  /// malformed numbers and duplicate clauses.
  static Result<FaultSchedule> Parse(std::string_view spec);

  /// Canonical rendering of the schedule (diagnostics, logs).
  std::string ToString() const;
};

/// Wraps a base environment and injects the scheduled faults. Thread-
/// safe: operation counters are guarded, so schedules stay meaningful
/// when appends come from pool workers (with one writer they are fully
/// deterministic; the crash harness runs single-threaded for exact
/// byte-offset control).
class FaultInjectingEnv : public IoEnv {
 public:
  /// `base` must outlive the env; null means IoEnv::Default().
  FaultInjectingEnv(IoEnv* base, const FaultSchedule& schedule);
  /// Convenience: injects over IoEnv::Default().
  explicit FaultInjectingEnv(const FaultSchedule& schedule)
      : FaultInjectingEnv(nullptr, schedule) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;

  /// True once crash_after_bytes has been hit; every operation fails
  /// from then on.
  bool crashed() const;
  /// Append operations attempted so far (including failed ones).
  int64_t appends() const;
  /// Read operations attempted so far (NewReadableFile + ReadFile).
  int64_t reads() const;
  /// Bytes that actually reached files through this env.
  int64_t bytes_written() const;
  /// Faults injected so far (of any kind).
  int64_t faults_injected() const;

 private:
  friend class FaultInjectingFile;
  friend class FaultInjectingReadableFile;

  /// Decides the fate of one append of `size` bytes. Returns OK with
  /// *allowed == size for a clean write; a fault status with *allowed
  /// set to how many bytes must still be written (torn/crash partial
  /// prefixes) otherwise.
  Status OnAppend(uint64_t size, uint64_t* allowed);
  Status OnSync();
  /// Decides the fate of one read operation on `path`. Returns OK with
  /// *byte_cap == -1 for a clean, unlimited read; OK with a
  /// non-negative cap for a torn read that must silently stop after
  /// that many bytes; a fault status for a failed read.
  Status OnRead(const std::string& path, int64_t* byte_cap);
  /// Fails fast when the simulated machine is down.
  Status CheckAlive() const;

  IoEnv* base_;
  FaultSchedule schedule_;
  mutable std::mutex mu_;
  Rng transient_rng_;
  int64_t append_ops_ = 0;
  int64_t sync_ops_ = 0;
  int64_t read_ops_ = 0;
  int64_t bytes_written_ = 0;
  int64_t faults_ = 0;
  bool crashed_ = false;
};

}  // namespace oebench

#endif  // OEBENCH_COMMON_IO_ENV_H_
