#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/simd.h"

namespace oebench {

EigenDecomposition SymmetricEigen(const Matrix& a_in, int max_sweeps,
                                  double tol) {
  OE_CHECK(a_in.rows() == a_in.cols()) << "matrix must be square";
  const int64_t n = a_in.rows();
  Matrix a = a_in;
  // Eigenvectors are accumulated TRANSPOSED (vt row k = eigenvector
  // column k of the classic formulation): the Jacobi rotation touches
  // two whole eigenvector columns, which are contiguous rows here, so
  // the update vectorizes. The arithmetic per element is unchanged.
  Matrix vt = Matrix::Identity(n);

  auto off_diag_norm = [&a, n]() {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum = simd::SumSquaresSeq(sum, a.Row(i) + i + 1, n - i - 1);
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() < tol) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = a.At(p, p);
        double aqq = a.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        // Apply the rotation to A on both sides: first the column pair
        // (strided), then the row pair (contiguous).
        simd::RotateStrided(a.Row(0) + p, a.Row(0) + q, n, n, c, s);
        simd::Rotate(a.Row(p), a.Row(q), n, c, s);
        // Accumulate eigenvectors (rows of vt = columns of v).
        simd::Rotate(vt.Row(p), vt.Row(q), n, c, s);
      }
    }
  }

  // Sort by descending eigenvalue, permuting eigenvector columns to match.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&a](int64_t i, int64_t j) {
    return a.At(i, i) > a.At(j, j);
  });

  EigenDecomposition out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    out.values[static_cast<size_t>(i)] = a.At(src, src);
    for (int64_t k = 0; k < n; ++k) out.vectors.At(k, i) = vt.At(src, k);
  }
  return out;
}

std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b,
                                      double pivot_tol) {
  const int64_t n = a.rows();
  OE_CHECK(a.cols() == n);
  OE_CHECK(static_cast<int64_t>(b.size()) == n);

  for (int64_t col = 0; col < n; ++col) {
    // Partial pivot.
    int64_t pivot = col;
    double best = std::abs(a.At(col, col));
    for (int64_t r = col + 1; r < n; ++r) {
      double v = std::abs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < pivot_tol) {
      return std::vector<double>(static_cast<size_t>(n), 0.0);
    }
    if (pivot != col) {
      std::swap_ranges(a.Row(pivot), a.Row(pivot) + n, a.Row(col));
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(col)]);
    }
    double inv = 1.0 / a.At(col, col);
    const double* pivot_row = a.Row(col);
    for (int64_t r = col + 1; r < n; ++r) {
      double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      // row_r[c] += (-factor) * pivot_row[c] is bit-identical to the
      // textbook row_r[c] -= factor * pivot_row[c]: negation is exact.
      simd::Axpy(a.Row(r) + col, pivot_row + col, n - col, -factor);
      b[static_cast<size_t>(r)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int64_t r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    const double* row = a.Row(r);
    for (int64_t c = r + 1; c < n; ++c) {
      sum -= row[c] * x[static_cast<size_t>(c)];
    }
    x[static_cast<size_t>(r)] = sum / a.At(r, r);
  }
  return x;
}

}  // namespace oebench
