#include "linalg/pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/simd.h"

namespace oebench {

Matrix CovarianceMatrix(const Matrix& data, const std::vector<double>& mean) {
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  OE_CHECK(static_cast<int64_t>(mean.size()) == d);
  OE_CHECK(n >= 2);
  // Upper-triangle accumulation; each cov(i,j) accumulates its n row
  // contributions in r-sequential order (the vectorized AccumCovRow
  // spans independent j outputs only).
  Matrix cov(d, d);
  for (int64_t r = 0; r < n; ++r) {
    const double* row = data.Row(r);
    for (int64_t i = 0; i < d; ++i) {
      double di = row[i] - mean[static_cast<size_t>(i)];
      simd::AccumCovRow(cov.Row(i) + i, row + i, mean.data() + i, d - i, di);
    }
  }
  double denom = static_cast<double>(n - 1);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i; j < d; ++j) {
      cov.At(i, j) /= denom;
      cov.At(j, i) = cov.At(i, j);
    }
  }
  return cov;
}

Status Pca::Fit(const Matrix& data, int n_components) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("PCA needs at least 2 rows");
  }
  if (n_components < 1) {
    return Status::InvalidArgument("PCA needs n_components >= 1");
  }
  const int64_t d = data.cols();
  const int64_t k = std::min<int64_t>(n_components, d);

  mean_ = data.ColumnMeans();

  // Covariance matrix (population normalisation, matching sklearn's n-1 is
  // irrelevant for eigenvector directions; we use n-1 for variance ratios).
  Matrix cov = CovarianceMatrix(data, mean_);

  EigenDecomposition eig = SymmetricEigen(cov);

  double total_var = 0.0;
  for (double v : eig.values) total_var += std::max(v, 0.0);
  if (total_var <= 0.0) total_var = 1.0;

  components_ = Matrix(d, k);
  explained_variance_ratio_.resize(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t r = 0; r < d; ++r) {
      components_.At(r, c) = eig.vectors.At(r, c);
    }
    explained_variance_ratio_[static_cast<size_t>(c)] =
        std::max(eig.values[static_cast<size_t>(c)], 0.0) / total_var;
  }
  fitted_ = true;
  return Status::OK();
}

Matrix Pca::Transform(const Matrix& data) const {
  OE_CHECK(fitted_) << "Pca::Transform before Fit";
  OE_CHECK(data.cols() == components_.rows());
  Matrix centered = data;
  for (int64_t r = 0; r < centered.rows(); ++r) {
    simd::Sub(centered.Row(r), mean_.data(), centered.cols());
  }
  return centered.MatMul(components_);
}

}  // namespace oebench
