#ifndef OEBENCH_LINALG_SIMD_H_
#define OEBENCH_LINALG_SIMD_H_

// Portable SIMD/blocked kernel layer for the dense hot paths (MLP
// GEMM/backprop, KNN-imputer distance scans, Hoeffding sufficient
// statistics, PCA/Jacobi, column statistics).
//
// Determinism contract (see DESIGN.md "SIMD kernels & determinism"):
// every kernel computes each output element in the exact arithmetic
// order of the canonical scalar loop. Vectorization is applied only
// ACROSS independent output elements (elementwise maps, per-column
// accumulators, AXPY rows) — never within a single output's floating-
// point reduction chain. Reductions (DotSeq, SumSquaresSeq,
// NanSquaredDistanceSeq) therefore stay strictly sequential; the
// speedups for those paths come from blocking (fewer passes over the
// output row), allocation removal, and layout, not from reassociation.
// Consequently results are bit-identical across -O levels, with or
// without OEBENCH_SIMD_DISABLE, and across thread counts.
//
// Dispatch: when the build provides `-fopenmp-simd` (OEBENCH_OPENMP_SIMD
// is then defined by CMake) and OEBENCH_SIMD_DISABLE is not set, the
// elementwise loops carry `#pragma omp simd`; otherwise they compile as
// plain scalar loops with identical semantics. The kernels live in an
// inline namespace selected by that switch, so one binary can link both
// variants (the kernel-equivalence tests compile a helper TU with
// -DOEBENCH_SIMD_DISABLE and compare the two paths bit-for-bit).

#include <cmath>
#include <cstdint>

namespace oebench {
namespace simd {

#if !defined(OEBENCH_SIMD_DISABLE) && defined(OEBENCH_OPENMP_SIMD)
#define OE_SIMD_LOOP _Pragma("omp simd")
inline namespace simd_path {
#else
#define OE_SIMD_LOOP
inline namespace scalar_path {
#endif

/// Canonical block width (doubles). One cache line; also the unit the
/// differential tests straddle ({1, kBlockDoubles +/- 1, primes}).
constexpr int64_t kBlockDoubles = 8;

/// dst[i] += a * src[i]. `dst` and `src` must be identical or disjoint.
inline void Axpy(double* dst, const double* src, int64_t n, double a) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

/// dst[i] += src[i] (Axpy with a == 1, kept separate so the compiler
/// drops the multiply).
inline void Add(double* dst, const double* src, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// dst[i] -= src[i].
inline void Sub(double* dst, const double* src, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) dst[i] -= src[i];
}

/// v[i] *= s.
inline void Scale(double* v, int64_t n, double s) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) v[i] *= s;
}

/// Four chained AXPYs per output element:
///   dst[j] = ((((dst[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j])
/// The per-j accumulation order matches four successive scalar Axpy
/// calls exactly, but the output row is read and written once instead
/// of four times. This is the k-blocked GEMM inner kernel.
inline void Axpy4(double* dst, const double* b0, const double* b1,
                  const double* b2, const double* b3, double a0, double a1,
                  double a2, double a3, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t j = 0; j < n; ++j) {
    double v = dst[j];
    v += a0 * b0[j];
    v += a1 * b1[j];
    v += a2 * b2[j];
    v += a3 * b3[j];
    dst[j] = v;
  }
}

/// out[j] += sum_i a[i] * w[i*stride + j], skipping terms with
/// a[i] == 0.0 (the MLP relies on the skip: ReLU zeros must not turn
/// 0 * inf into NaN, and -0.0 + 0.0 must stay +0.0-free). Accumulation
/// order per output j is the i-sequential order of the naive i-k-j
/// loop; blocks of four nonzero coefficients go through Axpy4.
inline void GemvAccum(const double* a, const double* w, int64_t rows,
                      int64_t cols, int64_t stride, double* out) {
  int64_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double a0 = a[i];
    const double a1 = a[i + 1];
    const double a2 = a[i + 2];
    const double a3 = a[i + 3];
    if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
      Axpy4(out, w + i * stride, w + (i + 1) * stride, w + (i + 2) * stride,
            w + (i + 3) * stride, a0, a1, a2, a3, cols);
    } else {
      for (int64_t k = i; k < i + 4; ++k) {
        if (a[k] != 0.0) Axpy(out, w + k * stride, cols, a[k]);
      }
    }
  }
  for (; i < rows; ++i) {
    if (a[i] != 0.0) Axpy(out, w + i * stride, cols, a[i]);
  }
}

/// Sequential dot product — the canonical reduction order. Not
/// vectorized on purpose: splitting the sum across lanes would
/// reassociate it.
inline double DotSeq(const double* a, const double* b, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// init + sum_i v[i]*v[i], accumulated sequentially so callers can chain
/// several buffers into one running sum without changing the order
/// (MLP grad-clip norm across layers).
inline double SumSquaresSeq(double init, const double* v, int64_t n) {
  double sum = init;
  for (int64_t i = 0; i < n; ++i) sum += v[i] * v[i];
  return sum;
}

/// Sequential squared Euclidean distance.
inline double SquaredDistanceSeq(const double* a, const double* b,
                                 int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// NaN-skipping squared distance: coordinates where either side is NaN
/// are excluded; `*used` receives the count of usable coordinates.
/// Sequential — this is the KNN-imputer inner scan, and its sum feeds
/// a sqrt whose bits the golden dumps pin.
inline double NanSquaredDistanceSeq(const double* a, const double* b,
                                    int64_t n, int64_t* used) {
  double sum = 0.0;
  int64_t cnt = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    double d = a[i] - b[i];
    sum += d * d;
    ++cnt;
  }
  *used = cnt;
  return sum;
}

/// True when any element is NaN. Order-independent (boolean OR), so the
/// reduction may vectorize.
inline bool HasNan(const double* v, int64_t n) {
  int bad = 0;
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) bad |= (v[i] != v[i]) ? 1 : 0;
  return bad != 0;
}

/// v[i] = fill where v[i] is NaN. Pure select — non-NaN lanes are
/// copied through untouched (no add-zero tricks that would flush
/// -0.0).
inline void FillNanWith(double* v, int64_t n, double fill) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) v[i] = (v[i] != v[i]) ? fill : v[i];
}

/// v[i] = fill[i] where v[i] is NaN.
inline void FillNanWithRow(double* v, const double* fill, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) v[i] = (v[i] != v[i]) ? fill[i] : v[i];
}

/// dst[i] += g[i] * g[i] (EWC Fisher accumulation).
inline void AccumSquares(double* dst, const double* g, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) dst[i] += g[i] * g[i];
}

/// dst[i] += |g[i]| (MAS importance accumulation).
inline void AccumAbs(double* dst, const double* g, int64_t n) {
  OE_SIMD_LOOP
  for (int64_t i = 0; i < n; ++i) dst[i] += std::abs(g[i]);
}

/// Per-column NaN-skipping accumulation of one row:
///   sum[c] += row[c], ++count[c]  where row[c] is not NaN.
/// Each column owns its accumulator, so vectorizing across columns
/// preserves every column's sequential row order. Skipped lanes add
/// -0.0, which is a bitwise no-op for every IEEE value (x + -0.0 == x
/// exactly, -0.0 + -0.0 == -0.0, NaN payloads pass through) — unlike
/// +0.0, which would flush a -0.0 accumulator to +0.0. Selecting the
/// *operand* instead of the result keeps the add unconditional, so the
/// loop if-converts and vectorizes (with -fno-trapping-math; see the
/// root CMakeLists). Counts are doubles so the count lane blends the
/// same way — they hold exact integers (< 2^53), so the final
/// sum/count division is bit-identical to an integer-counted one.
inline void AccumRowSkipNan(double* sum, double* count, const double* row,
                            int64_t n) {
  OE_SIMD_LOOP
  for (int64_t c = 0; c < n; ++c) {
    // The self-compare stays inline: hoisting it into a bool temporary
    // leaves control flow GCC's if-converter refuses to collapse.
    sum[c] += (row[c] == row[c]) ? row[c] : -0.0;
    count[c] += (row[c] == row[c]) ? 1.0 : 0.0;
  }
}

/// Per-column NaN-skipping squared-deviation accumulation of one row:
///   var[c] += (row[c]-mean[c])^2, ++count[c]  where row[c] is not NaN.
/// Same -0.0 operand-select trick as AccumRowSkipNan; the speculative
/// d*d on a NaN lane is quiet (qNaN arithmetic raises nothing).
inline void AccumSqDevRowSkipNan(double* var, double* count,
                                 const double* row, const double* mean,
                                 int64_t n) {
  OE_SIMD_LOOP
  for (int64_t c = 0; c < n; ++c) {
    const double d = row[c] - mean[c];
    var[c] += (row[c] == row[c]) ? d * d : -0.0;
    count[c] += (row[c] == row[c]) ? 1.0 : 0.0;
  }
}

/// Covariance row update: cov[j] += di * (row[j] - mean[j]) for the
/// upper-triangle accumulation in Pca::Fit. Each cov[j] accumulates in
/// r-sequential order.
inline void AccumCovRow(double* cov, const double* row, const double* mean,
                        int64_t n, double di) {
  OE_SIMD_LOOP
  for (int64_t j = 0; j < n; ++j) cov[j] += di * (row[j] - mean[j]);
}

/// Givens rotation over two contiguous rows (Jacobi eigen, with the
/// eigenvector accumulator stored transposed so both rows are
/// contiguous):
///   x[k], y[k] = c*x[k] - s*y[k], s*x[k] + c*y[k].
inline void Rotate(double* x, double* y, int64_t n, double c, double s) {
  OE_SIMD_LOOP
  for (int64_t k = 0; k < n; ++k) {
    const double xk = x[k];
    const double yk = y[k];
    x[k] = c * xk - s * yk;
    y[k] = s * xk + c * yk;
  }
}

/// Strided Givens rotation (column pass of the Jacobi sweep). Scalar:
/// strided gathers do not vectorize profitably and the arithmetic per
/// element is identical to Rotate.
inline void RotateStrided(double* x, double* y, int64_t n, int64_t stride,
                          double c, double s) {
  for (int64_t k = 0; k < n; ++k) {
    const double xk = x[k * stride];
    const double yk = y[k * stride];
    x[k * stride] = c * xk - s * yk;
    y[k * stride] = s * xk + c * yk;
  }
}

#if !defined(OEBENCH_SIMD_DISABLE) && defined(OEBENCH_OPENMP_SIMD)
}  // inline namespace simd_path
#else
}  // inline namespace scalar_path
#endif

}  // namespace simd
}  // namespace oebench

#endif  // OEBENCH_LINALG_SIMD_H_
