#include "linalg/matrix.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "linalg/simd.h"

namespace oebench {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int64_t>(rows.size()),
           static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    OE_CHECK(rows[r].size() == rows[0].size()) << "ragged rows";
    std::memcpy(m.Row(static_cast<int64_t>(r)), rows[r].data(),
                rows[r].size() * sizeof(double));
  }
  return m;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(int64_t r) const {
  return std::vector<double>(Row(r), Row(r) + cols_);
}

std::vector<double> Matrix::ColVector(int64_t c) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = At(r, c);
  return out;
}

void Matrix::SetRow(int64_t r, const std::vector<double>& values) {
  OE_CHECK(static_cast<int64_t>(values.size()) == cols_);
  std::memcpy(Row(r), values.data(), values.size() * sizeof(double));
}

Matrix Matrix::MatMul(const Matrix& other) const {
  OE_CHECK(cols_ == other.rows_)
      << "matmul shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  // i-k-j order (contiguous in both operands), k-blocked by 4 through
  // GemvAccum. The per-output accumulation order and the skip-zero
  // guard match the naive loop exactly — see simd.h.
  for (int64_t i = 0; i < rows_; ++i) {
    simd::GemvAccum(Row(i), other.data_.data(), cols_, other.cols_,
                    other.cols_, out.Row(i));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  OE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other, 1.0);
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  OE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other, -1.0);
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  simd::Scale(out.data_.data(), static_cast<int64_t>(out.data_.size()), s);
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double s) {
  OE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  simd::Axpy(data_.data(), other.data_.data(),
             static_cast<int64_t>(data_.size()), s);
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(simd::SumSquaresSeq(0.0, data_.data(),
                                       static_cast<int64_t>(data_.size())));
}

std::vector<double> Matrix::ColumnMeans() const {
  std::vector<double> mean(static_cast<size_t>(cols_), 0.0);
  std::vector<double> count(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    simd::AccumRowSkipNan(mean.data(), count.data(), Row(r), cols_);
  }
  for (int64_t c = 0; c < cols_; ++c) {
    size_t i = static_cast<size_t>(c);
    mean[i] = count[i] > 0.0 ? mean[i] / count[i] : 0.0;
  }
  return mean;
}

std::vector<double> Matrix::ColumnStdDevs() const {
  std::vector<double> mean = ColumnMeans();
  std::vector<double> var(static_cast<size_t>(cols_), 0.0);
  std::vector<double> count(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    simd::AccumSqDevRowSkipNan(var.data(), count.data(), Row(r), mean.data(),
                               cols_);
  }
  for (int64_t c = 0; c < cols_; ++c) {
    size_t i = static_cast<size_t>(c);
    var[i] = count[i] > 0.0 ? std::sqrt(var[i] / count[i]) : 0.0;
  }
  return var;
}

Matrix Matrix::SelectRows(const std::vector<int64_t>& indices) const {
  Matrix out(static_cast<int64_t>(indices.size()), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    OE_CHECK(indices[i] >= 0 && indices[i] < rows_);
    std::memcpy(out.Row(static_cast<int64_t>(i)), Row(indices[i]),
                static_cast<size_t>(cols_) * sizeof(double));
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<int64_t>& indices) const {
  Matrix out(rows_, static_cast<int64_t>(indices.size()));
  for (int64_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < indices.size(); ++i) {
      OE_CHECK(indices[i] >= 0 && indices[i] < cols_);
      out.At(r, static_cast<int64_t>(i)) = At(r, indices[i]);
    }
  }
  return out;
}

Matrix Matrix::Slice(int64_t begin, int64_t end) const {
  OE_CHECK(begin >= 0 && begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  if (end > begin) {
    std::memcpy(out.Row(0), Row(begin),
                static_cast<size_t>((end - begin) * cols_) * sizeof(double));
  }
  return out;
}

Matrix Matrix::VStack(const Matrix& top, const Matrix& bottom) {
  if (top.rows() == 0) return bottom;
  if (bottom.rows() == 0) return top;
  OE_CHECK(top.cols() == bottom.cols());
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::memcpy(out.Row(0), top.data().data(),
              top.data().size() * sizeof(double));
  std::memcpy(out.Row(top.rows()), bottom.data().data(),
              bottom.data().size() * sizeof(double));
  return out;
}

std::string Matrix::ToString(int max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " matrix\n";
  int64_t shown = std::min<int64_t>(rows_, max_rows);
  for (int64_t r = 0; r < shown; ++r) {
    os << "  [";
    for (int64_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    os << "]\n";
  }
  if (shown < rows_) os << "  ...\n";
  return os.str();
}

}  // namespace oebench
