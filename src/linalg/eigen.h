#ifndef OEBENCH_LINALG_EIGEN_H_
#define OEBENCH_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace oebench {

/// Eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for real symmetric matrices. Sufficient for the
/// covariance matrices PCA sees here (dimension <= a few hundred).
/// `a` must be square and symmetric; asymmetry beyond round-off is a
/// programming error.
EigenDecomposition SymmetricEigen(const Matrix& a, int max_sweeps = 64,
                                  double tol = 1e-12);

/// Solves the linear system a x = b by Gaussian elimination with partial
/// pivoting (a is consumed by value). Returns the zero vector when the
/// system is singular beyond `pivot_tol` (callers here — ridge solvers —
/// always add l2 > 0 to the diagonal, so this is a degenerate-input escape
/// hatch, not an expected path).
std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b,
                                      double pivot_tol = 1e-12);

}  // namespace oebench

#endif  // OEBENCH_LINALG_EIGEN_H_
