#ifndef OEBENCH_LINALG_VECTOR_OPS_H_
#define OEBENCH_LINALG_VECTOR_OPS_H_

#include <vector>

namespace oebench {

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm(const std::vector<double>& v);

/// Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance that skips coordinates where either value is NaN and
/// rescales by the fraction of usable coordinates (scikit-learn's
/// "nan_euclidean" used by KNNImputer). Returns +inf when no coordinate is
/// usable.
double NanEuclideanDistance(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Arithmetic mean; returns 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population variance; returns 0 for inputs of size < 1.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// q-th quantile (0 <= q <= 1) with linear interpolation; input need not be
/// sorted. Returns NaN for empty input.
double Quantile(std::vector<double> v, double q);

/// In-place softmax (numerically stabilised by max subtraction).
void SoftmaxInPlace(std::vector<double>* logits);

/// Index of the maximum element; 0 for empty input.
int ArgMax(const std::vector<double>& v);

}  // namespace oebench

#endif  // OEBENCH_LINALG_VECTOR_OPS_H_
