#ifndef OEBENCH_LINALG_PCA_H_
#define OEBENCH_LINALG_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// (n-1)-normalised covariance matrix of the rows of `data` around
/// `mean` (one entry per column). Requires >= 2 rows. Exposed so the
/// kernel benchmarks and differential tests can target the blocked
/// accumulation directly; Pca::Fit uses it.
Matrix CovarianceMatrix(const Matrix& data, const std::vector<double>& mean);

/// Principal component analysis over rows of a matrix. Centres the data,
/// eigendecomposes the covariance matrix, and projects onto the top
/// components. Used by (a) the PCA-CD drift detector (2 components) and
/// (b) the representative-dataset selection pipeline (3 components per
/// statistic facet), matching the paper's §4.3-§4.4.
class Pca {
 public:
  /// Fits `n_components` principal components to the rows of `data`.
  /// NaNs must have been imputed beforehand. n_components is clamped to
  /// the data dimensionality.
  Status Fit(const Matrix& data, int n_components);

  /// Projects rows of `data` (same dimensionality as the training data)
  /// onto the fitted components. Must be called after Fit.
  Matrix Transform(const Matrix& data) const;

  /// Fraction of total variance captured by each fitted component.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }
  /// Component matrix, one component per column (d x k).
  const Matrix& components() const { return components_; }
  const std::vector<double>& mean() const { return mean_; }
  bool fitted() const { return fitted_; }

 private:
  bool fitted_ = false;
  std::vector<double> mean_;
  Matrix components_;  // d x k
  std::vector<double> explained_variance_ratio_;
};

}  // namespace oebench

#endif  // OEBENCH_LINALG_PCA_H_
