#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "linalg/simd.h"

namespace oebench {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  OE_CHECK(a.size() == b.size());
  return simd::DotSeq(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  OE_CHECK(a.size() == b.size());
  return simd::SquaredDistanceSeq(a.data(), b.data(),
                                  static_cast<int64_t>(a.size()));
}

double NanEuclideanDistance(const std::vector<double>& a,
                            const std::vector<double>& b) {
  OE_CHECK(a.size() == b.size());
  int64_t used = 0;
  double sum = simd::NanSquaredDistanceSeq(
      a.data(), b.data(), static_cast<int64_t>(a.size()), &used);
  if (used == 0) return std::numeric_limits<double>::infinity();
  double scale = static_cast<double>(a.size()) / static_cast<double>(used);
  return std::sqrt(scale * sum);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 1) return 0.0;
  double m = Mean(v);
  double sum = 0.0;
  for (double x : v) {
    double d = x - m;
    sum += d * d;
  }
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  OE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void SoftmaxInPlace(std::vector<double>* logits) {
  if (logits->empty()) return;
  double mx = *std::max_element(logits->begin(), logits->end());
  double sum = 0.0;
  for (double& v : *logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : *logits) v /= sum;
}

int ArgMax(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return static_cast<int>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace oebench
