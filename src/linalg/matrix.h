#ifndef OEBENCH_LINALG_MATRIX_H_
#define OEBENCH_LINALG_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace oebench {

/// Dense row-major matrix of doubles. This is the numeric workhorse for
/// the MLP, PCA, drift detectors and clustering. It is intentionally a
/// plain value type: copyable, movable, no views — the sizes in this
/// benchmark (thousands of rows, tens of columns) do not warrant more.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix initialised to `fill`.
  Matrix(int64_t rows, int64_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    OE_CHECK(rows >= 0 && cols >= 0);
  }
  /// Creates a matrix from nested initialiser data (row major). All rows
  /// must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& At(int64_t r, int64_t c) {
    OE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") in " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double At(int64_t r, int64_t c) const {
    OE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") in " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Raw row pointer (row-major layout).
  double* Row(int64_t r) { return data_.data() + r * cols_; }
  const double* Row(int64_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a vector.
  std::vector<double> RowVector(int64_t r) const;
  /// Copies column c into a vector.
  std::vector<double> ColVector(int64_t c) const;
  /// Overwrites row r with `values` (must have cols() entries).
  void SetRow(int64_t r, const std::vector<double>& values);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Matrix product this * other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  /// Transpose.
  Matrix Transposed() const;
  /// Element-wise addition; shapes must match.
  Matrix Add(const Matrix& other) const;
  /// Element-wise subtraction; shapes must match.
  Matrix Sub(const Matrix& other) const;
  /// Scalar multiplication.
  Matrix Scale(double s) const;

  /// In-place += s * other (AXPY). Shapes must match.
  void AddInPlace(const Matrix& other, double s = 1.0);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Per-column means. NaNs are skipped (columns that are all-NaN yield 0).
  std::vector<double> ColumnMeans() const;
  /// Per-column standard deviations (population, NaN-skipping).
  std::vector<double> ColumnStdDevs() const;

  /// Returns a matrix consisting of the given rows (indices may repeat).
  Matrix SelectRows(const std::vector<int64_t>& indices) const;
  /// Returns a matrix consisting of the given columns.
  Matrix SelectCols(const std::vector<int64_t>& indices) const;

  /// Returns rows [begin, end) as a new matrix.
  Matrix Slice(int64_t begin, int64_t end) const;

  /// Stacks `top` above `bottom` (column counts must match).
  static Matrix VStack(const Matrix& top, const Matrix& bottom);

  std::string ToString(int max_rows = 8) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace oebench

#endif  // OEBENCH_LINALG_MATRIX_H_
