#include "drift/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oebench {

double WilcoxonZScore(const std::vector<double>& a,
                      const std::vector<double>& b) {
  OE_CHECK(!a.empty() && !b.empty());
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());

  // Pool, sort, assign mid-ranks to ties.
  struct Item {
    double value;
    bool from_a;
  };
  std::vector<Item> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) pooled.push_back({v, true});
  for (double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Item& x, const Item& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum of t^3 - t over tie groups
  size_t i = 0;
  while (i < pooled.size()) {
    size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    double mid_rank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    double t = static_cast<double>(j - i);
    if (t > 1.0) tie_term += t * t * t - t;
    for (size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += mid_rank;
    }
    i = j;
  }

  double n = n1 + n2;
  double mean = n1 * (n + 1.0) / 2.0;
  double variance =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (variance <= 0.0) return 0.0;  // all values tied
  return (rank_sum_a - mean) / std::sqrt(variance);
}

double WilcoxonPValue(double z_score) {
  // Two-sided normal tail via erfc.
  return std::erfc(std::abs(z_score) / std::sqrt(2.0));
}

DriftSignal WilcoxonWindowDetector::Update(
    const std::vector<double>& batch) {
  OE_CHECK(!batch.empty());
  if (!has_reference_) {
    reference_ = batch;
    has_reference_ = true;
    last_p_value_ = 1.0;
    return DriftSignal::kStable;
  }
  last_p_value_ = WilcoxonPValue(WilcoxonZScore(reference_, batch));
  reference_ = batch;
  if (last_p_value_ < alpha_) return DriftSignal::kDrift;
  if (last_p_value_ < 2.0 * alpha_) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void WilcoxonWindowDetector::Reset() {
  reference_.clear();
  has_reference_ = false;
  last_p_value_ = 1.0;
}

}  // namespace oebench
