#ifndef OEBENCH_DRIFT_ECDD_H_
#define OEBENCH_DRIFT_ECDD_H_

#include "drift/detector.h"

namespace oebench {

/// EWMA for Concept Drift Detection (Ross, Adams, Tasoulis & Hand, 2012).
/// Tracks an exponentially weighted moving average Z_t of the Bernoulli
/// error stream and alarms when Z_t leaves the control band
/// p_hat + L * sigma_Z, where p_hat is the pre-change error estimate.
/// Appendix Table 8 lists ECDD among the stream-capable concept-drift
/// detectors.
class Ecdd : public StreamErrorDetector {
 public:
  /// The EWMA weight defaults to 0.05: with rare Bernoulli errors a large
  /// weight makes single errors spike Z_t past any Gaussian control band.
  /// Drift additionally requires the band to be exceeded on
  /// `consecutive_required` successive updates, which filters the spikes
  /// of isolated errors while sustained shifts still alarm quickly.
  Ecdd(double lambda = 0.05, double drift_l = 3.0, double warn_l = 2.0,
       int min_samples = 30, int consecutive_required = 3)
      : lambda_(lambda),
        drift_l_(drift_l),
        warn_l_(warn_l),
        min_samples_(min_samples),
        consecutive_required_(consecutive_required) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "ecdd"; }

 private:
  double lambda_;
  double drift_l_;
  double warn_l_;
  int min_samples_;
  int consecutive_required_;
  int64_t n_ = 0;
  double p_hat_ = 0.0;
  double z_ = 0.0;
  int consecutive_over_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_ECDD_H_
