#include "drift/md3.h"

#include <cmath>

namespace oebench {

DriftSignal Md3::Update(double decision_score) {
  ++n_;
  double in_margin =
      std::abs(decision_score) < options_.margin_width ? 1.0 : 0.0;
  density_ = n_ == 1 ? in_margin
                     : (1.0 - options_.eta) * density_ +
                           options_.eta * in_margin;
  double delta = in_margin - baseline_;
  baseline_ += delta / static_cast<double>(n_);
  baseline_m2_ += delta * (in_margin - baseline_);
  if (n_ < options_.min_samples) return DriftSignal::kStable;

  // Sigma of the EWMA density around the Bernoulli(baseline) level.
  double bernoulli_var = baseline_ * (1.0 - baseline_);
  double sigma = std::sqrt(
      std::max(bernoulli_var * options_.eta / (2.0 - options_.eta),
               1e-12));
  double deviation = density_ - baseline_;  // one-sided: density rises
  if (deviation > options_.sigma_multiplier * sigma) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (deviation > 0.66 * options_.sigma_multiplier * sigma) {
    return DriftSignal::kWarning;
  }
  return DriftSignal::kStable;
}

void Md3::Reset() {
  n_ = 0;
  density_ = 0.0;
  baseline_ = 0.0;
  baseline_m2_ = 0.0;
}

}  // namespace oebench
