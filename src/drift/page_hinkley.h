#ifndef OEBENCH_DRIFT_PAGE_HINKLEY_H_
#define OEBENCH_DRIFT_PAGE_HINKLEY_H_

#include "drift/detector.h"

namespace oebench {

/// Page-Hinkley test on a loss/error stream (extension detector from the
/// paper's Appendix A.2 family of sequential tests). Accumulates the
/// deviation of each observation above the running mean minus an
/// admissible slack `delta`; alarms when the cumulative deviation exceeds
/// `lambda` above its historical minimum.
class PageHinkley : public StreamErrorDetector {
 public:
  PageHinkley(double delta = 0.005, double lambda = 50.0,
              int min_samples = 30)
      : delta_(delta), lambda_(lambda), min_samples_(min_samples) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "page_hinkley"; }

 private:
  double delta_;
  double lambda_;
  int min_samples_;
  int64_t n_ = 0;
  double mean_ = 0.0;
  double cum_ = 0.0;
  double min_cum_ = 0.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_PAGE_HINKLEY_H_
