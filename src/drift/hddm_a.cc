#include "drift/hddm_a.h"

#include <cmath>

namespace oebench {

double HddmA::Bound(double n, double confidence) {
  if (n <= 0.0) return 1e100;
  return std::sqrt(1.0 / (2.0 * n) * std::log(1.0 / confidence));
}

DriftSignal HddmA::Update(double error) {
  total_sum_ += error;
  total_n_ += 1.0;

  // Track the prefix with the smallest upper confidence bound on its mean
  // (the "best" low-error regime observed so far).
  double mean = total_sum_ / total_n_;
  double score = mean + Bound(total_n_, drift_confidence_);
  if (score < min_score_) {
    min_score_ = score;
    min_sum_ = total_sum_;
    min_n_ = total_n_;
  }
  if (min_n_ >= total_n_ || total_n_ < 10.0) return DriftSignal::kStable;

  // Compare the post-cut mean against the pre-cut mean with Hoeffding
  // bounds on both sides.
  double n_rest = total_n_ - min_n_;
  double mean_min = min_sum_ / min_n_;
  double mean_rest = (total_sum_ - min_sum_) / n_rest;
  double m = (min_n_ * n_rest) / (min_n_ + n_rest);
  double eps_drift =
      std::sqrt(1.0 / (2.0 * m) * std::log(1.0 / drift_confidence_));
  double eps_warn =
      std::sqrt(1.0 / (2.0 * m) * std::log(1.0 / warn_confidence_));
  double diff = mean_rest - mean_min;
  if (diff > eps_drift) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (diff > eps_warn) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void HddmA::Reset() {
  total_sum_ = 0.0;
  total_n_ = 0.0;
  min_sum_ = 0.0;
  min_n_ = 0.0;
  min_score_ = 1e100;
}

}  // namespace oebench
