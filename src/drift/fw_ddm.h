#ifndef OEBENCH_DRIFT_FW_DDM_H_
#define OEBENCH_DRIFT_FW_DDM_H_

#include <deque>

#include "drift/detector.h"

namespace oebench {

/// FW-DDM — fuzzy time windowing for gradual concept drift adaptation
/// (Liu, Zhang & Lu, 2017), listed in the paper's Appendix Table 8.
/// A DDM-style error-rate monitor where the rate is computed over a
/// sliding window with linearly decaying (fuzzy-membership) weights, so
/// old errors gradually lose influence instead of being counted forever.
class FwDdm : public StreamErrorDetector {
 public:
  explicit FwDdm(int window_size = 500, int min_samples = 30)
      : window_size_(window_size), min_samples_(min_samples) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "fw_ddm"; }

 private:
  /// Fuzzy-weighted error rate over the window (newest weight 1, oldest
  /// weight ~0).
  double WeightedErrorRate() const;

  int window_size_;
  int min_samples_;
  std::deque<double> window_;
  double mean_p_ = 0.0;       // long-run mean of the weighted rate
  int64_t evaluations_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_FW_DDM_H_
