#ifndef OEBENCH_DRIFT_MD3_H_
#define OEBENCH_DRIFT_MD3_H_

#include <string>

#include "drift/detector.h"

namespace oebench {

/// MD3 — Margin Density Drift Detection (Sethi & Kantardzic, 2015), from
/// the paper's Appendix Table 8. Unsupervised once the classifier is
/// trained: it monitors the fraction of samples falling inside the
/// classifier's margin (|score| below a threshold). A rise in margin
/// density beyond `sigma_multiplier` standard deviations of its
/// reference level signals drift without needing any labels.
class Md3 {
 public:
  struct Options {
    /// |decision score| below this counts as "inside the margin".
    double margin_width = 0.5;
    /// EWMA time constant for the density estimate.
    double eta = 0.02;
    double sigma_multiplier = 3.0;
    int min_samples = 100;
  };

  Md3() : Md3(Options()) {}
  explicit Md3(Options options) : options_(options) {}

  /// Consumes one decision score (distance from the boundary; for
  /// probabilistic classifiers use p(max class) - p(runner-up)).
  DriftSignal Update(double decision_score);

  void Reset();
  std::string name() const { return "md3"; }

  double density() const { return density_; }

 private:
  Options options_;
  int64_t n_ = 0;
  double density_ = 0.0;       // EWMA margin density
  double baseline_ = 0.0;      // long-run mean density
  double baseline_m2_ = 0.0;   // Welford accumulator of density samples
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_MD3_H_
