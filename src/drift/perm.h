#ifndef OEBENCH_DRIFT_PERM_H_
#define OEBENCH_DRIFT_PERM_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "drift/detector.h"

namespace oebench {

/// PERM — concept drift detection through resampling (Harel, Mannor,
/// El-Yaniv & Crammer, 2014). Given two consecutive windows, a model is
/// trained on the first and evaluated on the second; the same procedure is
/// repeated on random permutations of the pooled data. If the ordered loss
/// is larger than all but a fraction `alpha` of the permuted losses, the
/// relationship X -> Y changed between the windows. PERM is the only
/// detector in the paper's set that handles regression tasks directly
/// (Appendix Table 8).
class PermDetector {
 public:
  /// Trains a model on (train_x, train_y) and returns the mean loss on
  /// (test_x, test_y). The caller chooses the model family: linear
  /// regression for regression streams, Gaussian NB error rate for
  /// classification (matching the paper's §4.3 pipeline).
  using TrainEvalFn = std::function<double(
      const Matrix& train_x, const std::vector<double>& train_y,
      const Matrix& test_x, const std::vector<double>& test_y)>;

  struct Options {
    int num_permutations = 20;
    double alpha = 0.05;
    uint64_t seed = 11;
  };

  explicit PermDetector(TrainEvalFn train_eval)
      : PermDetector(std::move(train_eval), Options()) {}
  PermDetector(TrainEvalFn train_eval, Options options)
      : train_eval_(std::move(train_eval)),
        options_(options),
        rng_(options.seed) {}

  /// Feeds the next window; compares it with the previous one.
  DriftSignal Update(const Matrix& x, const std::vector<double>& y);

  void Reset();
  std::string name() const { return "perm"; }

  /// Permutation p-value of the last comparison.
  double last_p_value() const { return last_p_value_; }

  /// Convenience factory using ridge regression MSE (regression streams).
  static TrainEvalFn LinearRegressionEval();
  /// Convenience factory using Gaussian naive Bayes error rate
  /// (classification streams with `num_classes` classes).
  static TrainEvalFn GaussianNbEval(int num_classes);

 private:
  TrainEvalFn train_eval_;
  Options options_;
  Rng rng_;
  Matrix prev_x_;
  std::vector<double> prev_y_;
  bool has_prev_ = false;
  double last_p_value_ = 1.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_PERM_H_
