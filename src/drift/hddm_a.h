#ifndef OEBENCH_DRIFT_HDDM_A_H_
#define OEBENCH_DRIFT_HDDM_A_H_

#include "drift/detector.h"

namespace oebench {

/// HDDM_A — drift detection based on Hoeffding's inequality with moving
/// averages (Frias-Blanco et al., 2014). Compares the minimum historical
/// mean of the stream against the overall mean; an increase larger than
/// the Hoeffding bound at confidence `drift_confidence` signals drift.
/// Appendix Table 8 lists HDDM among the stream-capable data-drift
/// detectors (1-D input); this adapter also serves error streams.
class HddmA : public StreamErrorDetector {
 public:
  HddmA(double drift_confidence = 0.001, double warn_confidence = 0.005)
      : drift_confidence_(drift_confidence),
        warn_confidence_(warn_confidence) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "hddm_a"; }

 private:
  static double Bound(double n, double confidence);

  double drift_confidence_;
  double warn_confidence_;
  double total_sum_ = 0.0;
  double total_n_ = 0.0;
  // Sub-stream up to the historical "best cut" point.
  double min_sum_ = 0.0;
  double min_n_ = 0.0;
  double min_score_ = 1e100;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_HDDM_A_H_
