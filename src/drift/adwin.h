#ifndef OEBENCH_DRIFT_ADWIN_H_
#define OEBENCH_DRIFT_ADWIN_H_

#include <deque>
#include <vector>

#include "drift/detector.h"

namespace oebench {

/// ADaptive WINdowing (Bifet & Gavalda, 2007). Maintains a variable-length
/// window of a real-valued stream in exponential-histogram buckets and
/// shrinks it whenever two sub-windows have means that differ more than
/// the delta-confidence bound allows. Used three ways in OEBench:
/// on model error streams ("ADWIN accuracy" concept drift, §4.3), on raw
/// 1-D values (data drift, Appendix Table 8), and inside Adaptive Random
/// Forest as the per-tree drift/warning detector.
class Adwin {
 public:
  /// `delta` is the confidence parameter; smaller means fewer false alarms.
  explicit Adwin(double delta = 0.002);

  /// Adds a value; returns true when the window was cut (change detected).
  bool Update(double value);

  double Mean() const {
    return total_count_ > 0 ? total_sum_ / static_cast<double>(total_count_)
                            : 0.0;
  }
  int64_t WindowSize() const { return total_count_; }
  int64_t MemoryBytes() const;

  void Reset();

 private:
  struct Bucket {
    double sum = 0.0;
    double variance = 0.0;  // within-bucket sum of squared deviations
  };
  /// Buckets at level l summarise 2^l values.
  struct Row {
    std::vector<Bucket> buckets;
  };

  void InsertElement(double value);
  void Compress();
  bool DetectCut();
  void DropOldest();

  static constexpr int kMaxBucketsPerRow = 5;
  static constexpr int kClock = 32;

  double delta_;
  std::deque<Row> rows_;  // rows_[l] holds level-l buckets, oldest first
  double total_sum_ = 0.0;
  double total_var_ = 0.0;
  int64_t total_count_ = 0;
  int64_t ticks_ = 0;
};

/// StreamErrorDetector adapter: feeds the 0/1 error (or loss) stream into
/// ADWIN; a cut is a drift. A mean increase beyond half the bound maps to
/// the warning level used by ARF.
class AdwinAccuracyDetector : public StreamErrorDetector {
 public:
  explicit AdwinAccuracyDetector(double delta = 0.002)
      : drift_adwin_(delta), warning_adwin_(delta * 10.0) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "adwin_accuracy"; }

 private:
  Adwin drift_adwin_;
  Adwin warning_adwin_;  // more sensitive; fires earlier as a warning
};

/// BatchDetector1D adapter: streams the batch's elements into ADWIN and
/// reports drift if any element triggered a cut within the batch.
class AdwinBatchDetector : public BatchDetector1D {
 public:
  explicit AdwinBatchDetector(double delta = 0.002) : adwin_(delta) {}

  DriftSignal Update(const std::vector<double>& batch) override;
  void Reset() override { adwin_.Reset(); }
  std::string name() const override { return "adwin"; }

 private:
  Adwin adwin_;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_ADWIN_H_
