#include "drift/kdq_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vector_ops.h"

namespace oebench {

int32_t KdqTreeDetector::Build(
    const Matrix& data, std::vector<int64_t>& indices,
    std::vector<std::pair<double, double>>& bounds, int depth,
    std::vector<KdqNode>* nodes) const {
  int32_t self = static_cast<int32_t>(nodes->size());
  nodes->emplace_back();
  if (static_cast<int>(indices.size()) <= options_.min_points_per_cell ||
      depth >= options_.max_depth) {
    return self;  // leaf
  }
  int32_t dim = static_cast<int32_t>(depth % data.cols());
  auto [lo, hi] = bounds[static_cast<size_t>(dim)];
  if (hi - lo < 1e-12) return self;  // degenerate cell
  double split = 0.5 * (lo + hi);

  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  for (int64_t i : indices) {
    if (data.At(i, dim) <= split) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  indices.clear();
  indices.shrink_to_fit();

  bounds[static_cast<size_t>(dim)] = {lo, split};
  int32_t left = Build(data, left_idx, bounds, depth + 1, nodes);
  bounds[static_cast<size_t>(dim)] = {split, hi};
  int32_t right = Build(data, right_idx, bounds, depth + 1, nodes);
  bounds[static_cast<size_t>(dim)] = {lo, hi};

  KdqNode& node = (*nodes)[static_cast<size_t>(self)];
  node.dim = dim;
  node.split = split;
  node.left = left;
  node.right = right;
  return self;
}

void KdqTreeDetector::CountLeaf(const std::vector<KdqNode>& nodes,
                                const double* row, bool is_reference,
                                std::vector<KdqNode>* mutable_nodes) const {
  int32_t cur = 0;
  while (nodes[static_cast<size_t>(cur)].dim >= 0) {
    const KdqNode& node = nodes[static_cast<size_t>(cur)];
    cur = row[node.dim] <= node.split ? node.left : node.right;
  }
  if (is_reference) {
    ++(*mutable_nodes)[static_cast<size_t>(cur)].count_a;
  } else {
    ++(*mutable_nodes)[static_cast<size_t>(cur)].count_b;
  }
}

double KdqTreeDetector::Divergence(const Matrix& reference,
                                   const Matrix& test) {
  const int64_t d = reference.cols();
  std::vector<std::pair<double, double>> bounds(static_cast<size_t>(d));
  for (int64_t f = 0; f < d; ++f) {
    double lo = reference.At(0, f);
    double hi = lo;
    for (int64_t r = 0; r < reference.rows(); ++r) {
      lo = std::min(lo, reference.At(r, f));
      hi = std::max(hi, reference.At(r, f));
    }
    for (int64_t r = 0; r < test.rows(); ++r) {
      lo = std::min(lo, test.At(r, f));
      hi = std::max(hi, test.At(r, f));
    }
    bounds[static_cast<size_t>(f)] = {lo, hi};
  }
  std::vector<int64_t> indices(static_cast<size_t>(reference.rows()));
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<KdqNode> nodes;
  Build(reference, indices, bounds, 0, &nodes);

  for (int64_t r = 0; r < reference.rows(); ++r) {
    CountLeaf(nodes, reference.Row(r), true, &nodes);
  }
  for (int64_t r = 0; r < test.rows(); ++r) {
    CountLeaf(nodes, test.Row(r), false, &nodes);
  }

  // KL divergence with additive smoothing over leaf cells.
  double na = static_cast<double>(reference.rows());
  double nb = static_cast<double>(test.rows());
  int64_t leaves = 0;
  for (const KdqNode& n : nodes) {
    if (n.dim < 0) ++leaves;
  }
  double kl = 0.0;
  const double eps = 0.5;
  for (const KdqNode& n : nodes) {
    if (n.dim >= 0) continue;
    double pa = (static_cast<double>(n.count_a) + eps) /
                (na + eps * static_cast<double>(leaves));
    double pb = (static_cast<double>(n.count_b) + eps) /
                (nb + eps * static_cast<double>(leaves));
    kl += pa * std::log(pa / pb);
  }
  return kl;
}

DriftSignal KdqTreeDetector::Update(const Matrix& batch) {
  OE_CHECK(batch.rows() > 0);
  if (!has_reference_) {
    reference_ = batch;
    has_reference_ = true;
    return DriftSignal::kStable;
  }
  last_divergence_ = Divergence(reference_, batch);

  // Bootstrap threshold: random splits of the pooled sample give the null
  // distribution of the divergence.
  Matrix pooled = Matrix::VStack(reference_, batch);
  const int64_t n_ref = reference_.rows();
  std::vector<int64_t> order(static_cast<size_t>(pooled.rows()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> null_divs;
  null_divs.reserve(static_cast<size_t>(options_.num_bootstrap));
  for (int b = 0; b < options_.num_bootstrap; ++b) {
    rng_.Shuffle(&order);
    std::vector<int64_t> first(order.begin(), order.begin() + n_ref);
    std::vector<int64_t> second(order.begin() + n_ref, order.end());
    null_divs.push_back(
        Divergence(pooled.SelectRows(first), pooled.SelectRows(second)));
  }
  double critical = Quantile(null_divs, 1.0 - options_.alpha);
  double warn = Quantile(null_divs, 1.0 - 2.0 * options_.alpha);

  DriftSignal signal = DriftSignal::kStable;
  if (last_divergence_ > critical) {
    signal = DriftSignal::kDrift;
  } else if (last_divergence_ > warn) {
    signal = DriftSignal::kWarning;
  }
  reference_ = batch;
  return signal;
}

void KdqTreeDetector::Reset() {
  has_reference_ = false;
  reference_ = Matrix();
  last_divergence_ = 0.0;
}

}  // namespace oebench
