#ifndef OEBENCH_DRIFT_WILCOXON_H_
#define OEBENCH_DRIFT_WILCOXON_H_

#include <vector>

#include "drift/detector.h"

namespace oebench {

/// Two-sample Wilcoxon–Mann–Whitney rank-sum statistic. Appendix A.2
/// names it (with the KS test and KL divergence) among the hypothesis
/// tests drift detection builds on. Returns the z-score of the rank sum
/// of `a` under the null that both samples share a distribution, with
/// tie correction; |z| large means the location shifted.
double WilcoxonZScore(const std::vector<double>& a,
                      const std::vector<double>& b);

/// Two-sided asymptotic p-value for the rank-sum z-score.
double WilcoxonPValue(double z_score);

/// Batch drift detector: flags drift when the rank-sum test rejects
/// equality of the previous and current window at significance `alpha`
/// (warning at 2*alpha), mirroring KsWindowDetector's protocol. More
/// sensitive than KS to pure location shifts, insensitive to
/// scale-only changes — a complementary instrument.
class WilcoxonWindowDetector : public BatchDetector1D {
 public:
  explicit WilcoxonWindowDetector(double alpha = 0.05) : alpha_(alpha) {}

  DriftSignal Update(const std::vector<double>& batch) override;
  void Reset() override;
  std::string name() const override { return "wilcoxon"; }

  double last_p_value() const { return last_p_value_; }

 private:
  double alpha_;
  std::vector<double> reference_;
  bool has_reference_ = false;
  double last_p_value_ = 1.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_WILCOXON_H_
