#ifndef OEBENCH_DRIFT_LFR_H_
#define OEBENCH_DRIFT_LFR_H_

#include <array>
#include <cstdint>
#include <string>

#include "drift/detector.h"

namespace oebench {

/// LFR — Linear Four Rates (Wang & Abraham, 2015), from the paper's
/// Appendix Table 8 (binary classification only). Tracks exponentially
/// weighted estimates of the four confusion-matrix rates (TPR, TNR,
/// PPV, NPV); a drift is signalled when any rate leaves its
/// Hoeffding-style confidence band around the running baseline.
class Lfr {
 public:
  struct Options {
    /// EWMA time constant for the rate estimates.
    double eta = 0.05;
    /// Band width multipliers.
    double warn_sigma = 2.0;
    double drift_sigma = 3.0;
    int min_samples = 50;
  };

  Lfr() : Lfr(Options()) {}
  explicit Lfr(Options options) : options_(options) { Reset(); }

  /// Consumes one (predicted, actual) binary pair.
  DriftSignal Update(bool predicted, bool actual);

  void Reset();
  std::string name() const { return "lfr"; }

  /// Current rate estimates, ordered TPR, TNR, PPV, NPV.
  const std::array<double, 4>& rates() const { return rates_; }

 private:
  Options options_;
  int64_t n_ = 0;
  std::array<double, 4> rates_;      // EWMA estimates
  std::array<double, 4> baseline_;   // long-run means
  std::array<double, 4> counts_;     // denominators seen per rate
  int consecutive_over_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_LFR_H_
