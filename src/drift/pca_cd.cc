#include "drift/pca_cd.h"

#include <algorithm>
#include <cmath>

namespace oebench {

double PcaCd::ComponentDivergence(const std::vector<double>& a,
                                  const std::vector<double>& b) const {
  double lo = a[0];
  double hi = a[0];
  for (double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  const int64_t bins = options_.num_bins;
  double width = (hi - lo) / static_cast<double>(bins);
  std::vector<double> ha(static_cast<size_t>(bins), 0.0);
  std::vector<double> hb(static_cast<size_t>(bins), 0.0);
  auto bin_of = [&](double v) {
    int64_t idx = static_cast<int64_t>((v - lo) / width);
    return std::min(idx, bins - 1);
  };
  for (double v : a) ha[static_cast<size_t>(bin_of(v))] += 1.0;
  for (double v : b) hb[static_cast<size_t>(bin_of(v))] += 1.0;
  const double eps = 0.5;
  double na = static_cast<double>(a.size()) + eps * bins;
  double nb = static_cast<double>(b.size()) + eps * bins;
  double kl = 0.0;
  for (int64_t k = 0; k < bins; ++k) {
    double pa = (ha[static_cast<size_t>(k)] + eps) / na;
    double pb = (hb[static_cast<size_t>(k)] + eps) / nb;
    kl += pa * std::log(pa / pb);
  }
  return kl;
}

DriftSignal PcaCd::Update(const Matrix& batch) {
  OE_CHECK(batch.rows() > 0);
  if (!has_reference_) {
    reference_ = batch;
    has_reference_ = true;
    Status st = pca_.Fit(reference_, options_.num_components);
    OE_CHECK(st.ok()) << st.ToString();
    return DriftSignal::kStable;
  }
  Matrix ref_proj = pca_.Transform(reference_);
  Matrix test_proj = pca_.Transform(batch);
  double max_div = 0.0;
  for (int64_t c = 0; c < ref_proj.cols(); ++c) {
    max_div = std::max(
        max_div, ComponentDivergence(ref_proj.ColVector(c),
                                     test_proj.ColVector(c)));
  }
  last_divergence_ = max_div;

  // Page-Hinkley on the divergence stream: alarms when the cumulative
  // positive deviation from the running mean exceeds lambda.
  ++ph_count_;
  ph_mean_ += (max_div - ph_mean_) / static_cast<double>(ph_count_);
  ph_sum_ += max_div - ph_mean_ - options_.ph_delta;
  ph_min_ = std::min(ph_min_, ph_sum_);
  double ph_stat = ph_sum_ - ph_min_;

  DriftSignal signal = DriftSignal::kStable;
  if (ph_stat > options_.ph_lambda) {
    signal = DriftSignal::kDrift;
    // Re-anchor on the new distribution.
    reference_ = batch;
    Status st = pca_.Fit(reference_, options_.num_components);
    OE_CHECK(st.ok()) << st.ToString();
    ph_sum_ = 0.0;
    ph_min_ = 0.0;
    ph_mean_ = 0.0;
    ph_count_ = 0;
  } else if (ph_stat > 0.5 * options_.ph_lambda) {
    signal = DriftSignal::kWarning;
  }
  return signal;
}

void PcaCd::Reset() {
  has_reference_ = false;
  reference_ = Matrix();
  pca_ = Pca();
  last_divergence_ = 0.0;
  ph_sum_ = 0.0;
  ph_min_ = 0.0;
  ph_mean_ = 0.0;
  ph_count_ = 0;
}

}  // namespace oebench
