#include "drift/cdbd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oebench {

double Cdbd::KlDivergence(const std::vector<double>& a,
                          const std::vector<double>& b) const {
  int64_t bins = num_bins_ > 0
                     ? num_bins_
                     : std::max<int64_t>(
                           2, static_cast<int64_t>(std::floor(std::sqrt(
                                  static_cast<double>(std::min(
                                      a.size(), b.size()))))));
  double lo = a[0];
  double hi = a[0];
  for (double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  double width = (hi - lo) / static_cast<double>(bins);
  std::vector<double> ha(static_cast<size_t>(bins), 0.0);
  std::vector<double> hb(static_cast<size_t>(bins), 0.0);
  auto bin_of = [&](double v) {
    int64_t idx = static_cast<int64_t>((v - lo) / width);
    return std::min(idx, bins - 1);
  };
  for (double v : a) ha[static_cast<size_t>(bin_of(v))] += 1.0;
  for (double v : b) hb[static_cast<size_t>(bin_of(v))] += 1.0;
  const double eps = 0.5;
  double na = static_cast<double>(a.size()) +
              eps * static_cast<double>(bins);
  double nb = static_cast<double>(b.size()) +
              eps * static_cast<double>(bins);
  double kl = 0.0;
  for (int64_t k = 0; k < bins; ++k) {
    double pa = (ha[static_cast<size_t>(k)] + eps) / na;
    double pb = (hb[static_cast<size_t>(k)] + eps) / nb;
    kl += pa * std::log(pa / pb);
  }
  return kl;
}

DriftSignal Cdbd::Update(const std::vector<double>& batch) {
  OE_CHECK(!batch.empty());
  if (!has_reference_) {
    reference_ = batch;
    has_reference_ = true;
    return DriftSignal::kStable;
  }
  last_divergence_ = KlDivergence(reference_, batch);
  DriftSignal signal = DriftSignal::kStable;
  if (div_count_ >= 2) {
    double mean = div_sum_ / static_cast<double>(div_count_);
    double var = div_sum_sq_ / static_cast<double>(div_count_) - mean * mean;
    double sd = std::sqrt(std::max(var, 0.0));
    double threshold = mean + gamma_ * sd;
    double warn = mean + 0.75 * gamma_ * sd;
    if (last_divergence_ > threshold) {
      signal = DriftSignal::kDrift;
    } else if (last_divergence_ > warn) {
      signal = DriftSignal::kWarning;
    }
  }
  if (signal == DriftSignal::kDrift) {
    div_sum_ = 0.0;
    div_sum_sq_ = 0.0;
    div_count_ = 0;
  } else {
    div_sum_ += last_divergence_;
    div_sum_sq_ += last_divergence_ * last_divergence_;
    ++div_count_;
  }
  reference_ = batch;
  return signal;
}

void Cdbd::Reset() {
  reference_.clear();
  has_reference_ = false;
  last_divergence_ = 0.0;
  div_sum_ = 0.0;
  div_sum_sq_ = 0.0;
  div_count_ = 0;
}

}  // namespace oebench
