#ifndef OEBENCH_DRIFT_EDDM_H_
#define OEBENCH_DRIFT_EDDM_H_

#include "drift/detector.h"

namespace oebench {

/// Early Drift Detection Method (Baena-Garcia et al., 2006). Instead of
/// the error rate, EDDM monitors the mean distance (in samples) between
/// consecutive errors and its standard deviation; gradual drifts shrink
/// that distance before the error rate moves. Warning when
/// (p' + 2 s') / (p'_max + 2 s'_max) < alpha; drift when < beta.
class Eddm : public StreamErrorDetector {
 public:
  Eddm(double alpha = 0.95, double beta = 0.90, int min_errors = 30)
      : alpha_(alpha), beta_(beta), min_errors_(min_errors) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "eddm"; }

 private:
  double alpha_;
  double beta_;
  int min_errors_;
  int64_t sample_index_ = 0;
  int64_t last_error_index_ = -1;
  int64_t num_errors_ = 0;
  double mean_distance_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double max_score_ = 0.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_EDDM_H_
