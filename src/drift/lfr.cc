#include "drift/lfr.h"

#include <cmath>

namespace oebench {

void Lfr::Reset() {
  n_ = 0;
  rates_ = {0.5, 0.5, 0.5, 0.5};
  baseline_ = {0.5, 0.5, 0.5, 0.5};
  counts_ = {0.0, 0.0, 0.0, 0.0};
  consecutive_over_ = 0;
}

DriftSignal Lfr::Update(bool predicted, bool actual) {
  ++n_;
  // Which of the four rates does this observation inform, and was it a
  // "success" for that rate?
  // TPR: actual positive -> predicted positive.
  // TNR: actual negative -> predicted negative.
  // PPV: predicted positive -> actual positive.
  // NPV: predicted negative -> actual negative.
  struct Obs {
    int rate;
    bool success;
    bool active;
  };
  Obs observations[4] = {
      {0, predicted, actual},
      {1, !predicted, !actual},
      {2, actual, predicted},
      {3, !actual, !predicted},
  };
  DriftSignal out = DriftSignal::kStable;
  for (const Obs& obs : observations) {
    if (!obs.active) continue;
    size_t r = static_cast<size_t>(obs.rate);
    counts_[r] += 1.0;
    double x = obs.success ? 1.0 : 0.0;
    rates_[r] = (1.0 - options_.eta) * rates_[r] + options_.eta * x;
    baseline_[r] += (x - baseline_[r]) / counts_[r];
    if (n_ < options_.min_samples || counts_[r] < 100.0) continue;
    // EWMA steady-state sigma for a Bernoulli(baseline) stream, floored
    // so a near-perfect classifier (variance -> 0) cannot alarm on
    // rounding-level deviations during the estimate's transient.
    double var = baseline_[r] * (1.0 - baseline_[r]) * options_.eta /
                 (2.0 - options_.eta);
    double sigma = std::sqrt(std::max(var, 2.5e-5));
    double deviation = std::abs(rates_[r] - baseline_[r]);
    if (deviation > options_.drift_sigma * sigma) {
      ++consecutive_over_;
      if (consecutive_over_ >= 3) {
        Reset();
        return DriftSignal::kDrift;
      }
      out = DriftSignal::kWarning;
    } else if (deviation > options_.warn_sigma * sigma) {
      out = DriftSignal::kWarning;
    }
  }
  if (out == DriftSignal::kStable) consecutive_over_ = 0;
  return out;
}

}  // namespace oebench
