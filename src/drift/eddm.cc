#include "drift/eddm.h"

#include <cmath>

namespace oebench {

DriftSignal Eddm::Update(double error) {
  ++sample_index_;
  if (error <= 0.5) return DriftSignal::kStable;

  // An error occurred; update the distance statistics.
  if (last_error_index_ >= 0) {
    double distance = static_cast<double>(sample_index_ - last_error_index_);
    ++num_errors_;
    double delta = distance - mean_distance_;
    mean_distance_ += delta / static_cast<double>(num_errors_);
    m2_ += delta * (distance - mean_distance_);
  }
  last_error_index_ = sample_index_;
  if (num_errors_ < min_errors_) return DriftSignal::kStable;

  double variance = m2_ / static_cast<double>(num_errors_);
  double score = mean_distance_ + 2.0 * std::sqrt(std::max(variance, 0.0));
  if (score > max_score_) {
    max_score_ = score;
    return DriftSignal::kStable;
  }
  double ratio = score / max_score_;
  if (ratio < beta_) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (ratio < alpha_) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void Eddm::Reset() {
  sample_index_ = 0;
  last_error_index_ = -1;
  num_errors_ = 0;
  mean_distance_ = 0.0;
  m2_ = 0.0;
  max_score_ = 0.0;
}

}  // namespace oebench
