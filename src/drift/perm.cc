#include "drift/perm.h"

#include <numeric>

#include "models/linear_model.h"
#include "models/naive_bayes.h"

namespace oebench {

DriftSignal PermDetector::Update(const Matrix& x,
                                 const std::vector<double>& y) {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  OE_CHECK(x.rows() > 0);
  if (!has_prev_) {
    prev_x_ = x;
    prev_y_ = y;
    has_prev_ = true;
    last_p_value_ = 1.0;
    return DriftSignal::kStable;
  }

  double ordered_loss = train_eval_(prev_x_, prev_y_, x, y);

  // Pool the two windows and evaluate random train/test splits of the
  // same sizes.
  Matrix pooled_x = Matrix::VStack(prev_x_, x);
  std::vector<double> pooled_y = prev_y_;
  pooled_y.insert(pooled_y.end(), y.begin(), y.end());
  const int64_t n_train = prev_x_.rows();
  std::vector<int64_t> order(static_cast<size_t>(pooled_x.rows()));
  std::iota(order.begin(), order.end(), 0);

  int greater_or_equal = 0;
  for (int p = 0; p < options_.num_permutations; ++p) {
    rng_.Shuffle(&order);
    std::vector<int64_t> train_idx(order.begin(), order.begin() + n_train);
    std::vector<int64_t> test_idx(order.begin() + n_train, order.end());
    std::vector<double> train_y;
    std::vector<double> test_y;
    train_y.reserve(train_idx.size());
    test_y.reserve(test_idx.size());
    for (int64_t i : train_idx) {
      train_y.push_back(pooled_y[static_cast<size_t>(i)]);
    }
    for (int64_t i : test_idx) {
      test_y.push_back(pooled_y[static_cast<size_t>(i)]);
    }
    double loss = train_eval_(pooled_x.SelectRows(train_idx), train_y,
                              pooled_x.SelectRows(test_idx), test_y);
    if (loss >= ordered_loss) ++greater_or_equal;
  }
  last_p_value_ = (static_cast<double>(greater_or_equal) + 1.0) /
                  (static_cast<double>(options_.num_permutations) + 1.0);

  prev_x_ = x;
  prev_y_ = y;
  if (last_p_value_ < options_.alpha) return DriftSignal::kDrift;
  if (last_p_value_ < 2.0 * options_.alpha) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void PermDetector::Reset() {
  has_prev_ = false;
  prev_x_ = Matrix();
  prev_y_.clear();
  last_p_value_ = 1.0;
}

PermDetector::TrainEvalFn PermDetector::LinearRegressionEval() {
  return [](const Matrix& train_x, const std::vector<double>& train_y,
            const Matrix& test_x, const std::vector<double>& test_y) {
    LinearRegression model(1e-3);
    Status st = model.Fit(train_x, train_y);
    OE_CHECK(st.ok()) << st.ToString();
    return model.EvaluateMse(test_x, test_y);
  };
}

PermDetector::TrainEvalFn PermDetector::GaussianNbEval(int num_classes) {
  return [num_classes](const Matrix& train_x,
                       const std::vector<double>& train_y,
                       const Matrix& test_x,
                       const std::vector<double>& test_y) {
    GaussianNb model(num_classes);
    Status st = model.Fit(train_x, train_y);
    OE_CHECK(st.ok()) << st.ToString();
    return model.EvaluateErrorRate(test_x, test_y);
  };
}

}  // namespace oebench
