#ifndef OEBENCH_DRIFT_DDM_H_
#define OEBENCH_DRIFT_DDM_H_

#include "drift/detector.h"

namespace oebench {

/// Drift Detection Method (Gama, Medas, Castillo & Rodrigues, 2004).
/// Tracks the running error rate p_t and its binomial standard deviation
/// s_t; records the minimum of p + s and signals warning when
/// p + s > p_min + 2 s_min, drift when p + s > p_min + 3 s_min.
/// Regression losses can be fed by thresholding into 0/1 upstream, as the
/// paper suggests in Appendix A.2.
class Ddm : public StreamErrorDetector {
 public:
  explicit Ddm(int min_samples = 30) : min_samples_(min_samples) {}

  DriftSignal Update(double error) override;
  void Reset() override;
  std::string name() const override { return "ddm"; }

 private:
  int min_samples_;
  int64_t n_ = 0;
  double p_ = 1.0;
  double s_ = 0.0;
  double min_p_plus_s_ = 1e100;
  double min_p_ = 1e100;
  double min_s_ = 1e100;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_DDM_H_
