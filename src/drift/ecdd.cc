#include "drift/ecdd.h"

#include <cmath>

namespace oebench {

DriftSignal Ecdd::Update(double error) {
  double e = error > 0.5 ? 1.0 : 0.0;
  ++n_;
  p_hat_ += (e - p_hat_) / static_cast<double>(n_);
  z_ = (1.0 - lambda_) * z_ + lambda_ * e;
  if (n_ < min_samples_) return DriftSignal::kStable;

  double t = static_cast<double>(n_);
  // Exact EWMA variance for a Bernoulli(p_hat) stream.
  double var_z = p_hat_ * (1.0 - p_hat_) * lambda_ / (2.0 - lambda_) *
                 (1.0 - std::pow(1.0 - lambda_, 2.0 * t));
  double sigma_z = std::sqrt(std::max(var_z, 1e-12));
  if (z_ > p_hat_ + drift_l_ * sigma_z) {
    ++consecutive_over_;
    if (consecutive_over_ >= consecutive_required_) {
      Reset();
      return DriftSignal::kDrift;
    }
    return DriftSignal::kWarning;
  }
  consecutive_over_ = 0;
  if (z_ > p_hat_ + warn_l_ * sigma_z) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void Ecdd::Reset() {
  n_ = 0;
  p_hat_ = 0.0;
  z_ = 0.0;
  consecutive_over_ = 0;
}

}  // namespace oebench
