#ifndef OEBENCH_DRIFT_DETECTOR_H_
#define OEBENCH_DRIFT_DETECTOR_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace oebench {

/// Tri-state output shared by every drift detector, mirroring the
/// drift/warning semantics the paper records as statistics ("we document
/// the drift and warning percentages", §4.3).
enum class DriftSignal { kStable, kWarning, kDrift };

const char* DriftSignalToString(DriftSignal signal);

/// Concept-drift detector driven by a stream of per-sample errors (0/1
/// classification errors, or regression losses where supported). DDM,
/// EDDM, ADWIN-accuracy, Page-Hinkley, ECDD and HDDM-A implement this.
class StreamErrorDetector {
 public:
  virtual ~StreamErrorDetector() = default;

  /// Consumes the next error observation and reports the detector state.
  virtual DriftSignal Update(double error) = 0;

  /// Returns the detector to its freshly-constructed state.
  virtual void Reset() = 0;

  virtual std::string name() const = 0;
};

/// Data-drift detector comparing consecutive batches of a single
/// dimension (KS test, CDBD, ADWIN-on-values). The paper applies these
/// per column and aggregates (§4.3, Appendix A.2).
class BatchDetector1D {
 public:
  virtual ~BatchDetector1D() = default;

  /// Consumes the next window of one column.
  virtual DriftSignal Update(const std::vector<double>& batch) = 0;

  virtual void Reset() = 0;
  virtual std::string name() const = 0;
};

/// Data-drift detector comparing consecutive multi-dimensional batches
/// (HDDDM, kdq-tree, PCA-CD).
class BatchDetectorND {
 public:
  virtual ~BatchDetectorND() = default;

  /// Consumes the next window (rows are samples).
  virtual DriftSignal Update(const Matrix& batch) = 0;

  virtual void Reset() = 0;
  virtual std::string name() const = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_DETECTOR_H_
