#include "drift/eia.h"

#include "common/logging.h"
#include "linalg/vector_ops.h"

namespace oebench {

DriftSignal Eia::Update(const std::vector<double>& model_losses,
                        const std::vector<double>& baseline_losses) {
  OE_CHECK(model_losses.size() == baseline_losses.size());
  if (static_cast<int>(model_losses.size()) < options_.min_window) {
    return DriftSignal::kStable;
  }
  double model_err = Mean(model_losses);
  double baseline_err = Mean(baseline_losses);
  bool model_wins =
      model_err < baseline_err * (1.0 + options_.tolerance);
  if (!primed_) {
    primed_ = true;
    model_was_winning_ = model_wins;
    return DriftSignal::kStable;
  }
  DriftSignal out = DriftSignal::kStable;
  if (model_was_winning_ && !model_wins) {
    // The error curves intersected: the environment changed faster than
    // the model adapts.
    out = DriftSignal::kDrift;
  } else if (!model_was_winning_ && !model_wins) {
    out = DriftSignal::kWarning;  // still underwater
  }
  model_was_winning_ = model_wins;
  return out;
}

void Eia::Reset() {
  model_was_winning_ = false;
  primed_ = false;
}

std::vector<double> Eia::PersistenceLosses(
    const std::vector<double>& targets, double previous_target,
    bool has_previous) {
  std::vector<double> losses;
  losses.reserve(targets.size());
  double prev = previous_target;
  bool valid = has_previous;
  for (double t : targets) {
    double err = valid ? (t - prev) : 0.0;
    losses.push_back(err * err);
    prev = t;
    valid = true;
  }
  return losses;
}

}  // namespace oebench
