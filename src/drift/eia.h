#ifndef OEBENCH_DRIFT_EIA_H_
#define OEBENCH_DRIFT_EIA_H_

#include <string>
#include <vector>

#include "drift/detector.h"

namespace oebench {

/// EIA — Error Intersection Approach (Baier et al., 2020), from the
/// paper's Appendix Table 8; one of only two listed detectors that
/// handle regression. The complex model's windowed error is compared
/// against a naive persistence model (predict the previous target): in a
/// stable regime the complex model wins; when the error curves intersect
/// — the simple model catching up or overtaking — a drift is signalled.
/// The paper notes the persistence baseline "is not quite reasonable" in
/// general, which this implementation faithfully inherits.
class Eia {
 public:
  struct Options {
    /// Fractional tolerance before an intersection counts.
    double tolerance = 0.0;
    int min_window = 10;
  };

  Eia() : Eia(Options()) {}
  explicit Eia(Options options) : options_(options) {}

  /// Consumes one window: per-sample losses of the monitored model and
  /// of the persistence baseline on the same samples.
  DriftSignal Update(const std::vector<double>& model_losses,
                     const std::vector<double>& baseline_losses);

  void Reset();
  std::string name() const { return "eia"; }

  /// Builds per-sample persistence-baseline losses for a target window
  /// (squared error of predicting the previous value; the first sample
  /// uses the previous window's last target, or itself at stream start).
  static std::vector<double> PersistenceLosses(
      const std::vector<double>& targets, double previous_target,
      bool has_previous);

 private:
  Options options_;
  bool model_was_winning_ = false;
  bool primed_ = false;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_EIA_H_
