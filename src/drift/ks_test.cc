#include "drift/ks_test.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oebench {

const char* DriftSignalToString(DriftSignal signal) {
  switch (signal) {
    case DriftSignal::kStable:
      return "stable";
    case DriftSignal::kWarning:
      return "warning";
    case DriftSignal::kDrift:
      return "drift";
  }
  return "?";
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  OE_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0;
  size_t j = 0;
  double d = 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    double v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= v) ++i;
    while (j < b.size() && b[j] <= v) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double KsPValue(double statistic, int64_t n1, int64_t n2) {
  double en = std::sqrt(static_cast<double>(n1) * static_cast<double>(n2) /
                        static_cast<double>(n1 + n2));
  // Kolmogorov asymptotic distribution with small-sample correction
  // (same form scipy uses for mode="asymp").
  double lambda = (en + 0.12 + 0.11 / en) * statistic;
  if (lambda < 1e-3) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    double term = 2.0 * std::pow(-1.0, k - 1) *
                  std::exp(-2.0 * k * k * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-10) break;
  }
  return std::min(std::max(sum, 0.0), 1.0);
}

DriftSignal KsWindowDetector::Update(const std::vector<double>& batch) {
  OE_CHECK(!batch.empty());
  if (!has_reference_) {
    reference_ = batch;
    has_reference_ = true;
    last_p_value_ = 1.0;
    return DriftSignal::kStable;
  }
  double stat = KsStatistic(reference_, batch);
  last_p_value_ = KsPValue(stat, static_cast<int64_t>(reference_.size()),
                           static_cast<int64_t>(batch.size()));
  reference_ = batch;
  if (last_p_value_ < alpha_) return DriftSignal::kDrift;
  if (last_p_value_ < 2.0 * alpha_) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void KsWindowDetector::Reset() {
  reference_.clear();
  has_reference_ = false;
  last_p_value_ = 1.0;
}

}  // namespace oebench
