#include "drift/page_hinkley.h"

#include <algorithm>

namespace oebench {

DriftSignal PageHinkley::Update(double error) {
  ++n_;
  mean_ += (error - mean_) / static_cast<double>(n_);
  cum_ += error - mean_ - delta_;
  min_cum_ = std::min(min_cum_, cum_);
  if (n_ < min_samples_) return DriftSignal::kStable;
  double stat = cum_ - min_cum_;
  if (stat > lambda_) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (stat > 0.5 * lambda_) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void PageHinkley::Reset() {
  n_ = 0;
  mean_ = 0.0;
  cum_ = 0.0;
  min_cum_ = 0.0;
}

}  // namespace oebench
