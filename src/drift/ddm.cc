#include "drift/ddm.h"

#include <cmath>

namespace oebench {

DriftSignal Ddm::Update(double error) {
  double e = error > 0.5 ? 1.0 : 0.0;
  ++n_;
  // Incremental estimate of the Bernoulli error rate.
  p_ += (e - p_) / static_cast<double>(n_);
  s_ = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (n_ < min_samples_) return DriftSignal::kStable;

  if (p_ + s_ < min_p_plus_s_) {
    min_p_plus_s_ = p_ + s_;
    min_p_ = p_;
    min_s_ = s_;
  }
  if (p_ + s_ > min_p_ + 3.0 * min_s_) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (p_ + s_ > min_p_ + 2.0 * min_s_) {
    return DriftSignal::kWarning;
  }
  return DriftSignal::kStable;
}

void Ddm::Reset() {
  n_ = 0;
  p_ = 1.0;
  s_ = 0.0;
  min_p_plus_s_ = 1e100;
  min_p_ = 1e100;
  min_s_ = 1e100;
}

}  // namespace oebench
