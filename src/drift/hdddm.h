#ifndef OEBENCH_DRIFT_HDDDM_H_
#define OEBENCH_DRIFT_HDDDM_H_

#include <vector>

#include "drift/detector.h"

namespace oebench {

/// Hellinger Distance Drift Detection Method (Ditzler & Polikar, 2011).
/// Maintains a baseline batch; on each new batch the average per-feature
/// Hellinger distance between the baseline's and the batch's histograms is
/// computed, and the *change* in that distance is compared against an
/// adaptive threshold derived from the mean and standard deviation of past
/// changes. On drift the baseline is reset to the new batch; otherwise the
/// new batch is merged into the baseline.
class Hdddm : public BatchDetectorND {
 public:
  /// `gamma` scales the adaptive threshold (the original paper's
  /// gamma-method); larger is less sensitive.
  explicit Hdddm(double gamma = 1.5) : gamma_(gamma) {}

  DriftSignal Update(const Matrix& batch) override;
  void Reset() override;
  std::string name() const override { return "hdddm"; }

  double last_distance() const { return last_distance_; }

 private:
  /// Average per-feature Hellinger distance between the two batches, each
  /// histogrammed with floor(sqrt(n)) equal-width bins over the joint
  /// range.
  static double HellingerDistance(const Matrix& a, const Matrix& b);

  double gamma_;
  Matrix baseline_;
  bool has_baseline_ = false;
  double prev_distance_ = -1.0;
  double last_distance_ = 0.0;
  // Running moments of |epsilon| since the last drift.
  double eps_sum_ = 0.0;
  double eps_sum_sq_ = 0.0;
  int64_t eps_count_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_HDDDM_H_
