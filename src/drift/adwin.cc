#include "drift/adwin.h"

#include <cmath>

#include "common/logging.h"

namespace oebench {

Adwin::Adwin(double delta) : delta_(delta) {
  OE_CHECK(delta > 0.0 && delta < 1.0);
  rows_.emplace_back();
}

void Adwin::InsertElement(double value) {
  // New level-0 bucket at the head (most recent side).
  rows_[0].buckets.push_back({value, 0.0});
  if (total_count_ > 0) {
    double mean = total_sum_ / static_cast<double>(total_count_);
    double diff = value - mean;
    total_var_ += diff * diff * static_cast<double>(total_count_) /
                  static_cast<double>(total_count_ + 1);
  }
  total_sum_ += value;
  ++total_count_;
}

void Adwin::Compress() {
  for (size_t level = 0; level < rows_.size(); ++level) {
    if (static_cast<int>(rows_[level].buckets.size()) <=
        kMaxBucketsPerRow) {
      break;
    }
    if (level + 1 == rows_.size()) rows_.emplace_back();
    // Merge the two oldest buckets of this level into one at level+1.
    Bucket& b0 = rows_[level].buckets[0];
    Bucket& b1 = rows_[level].buckets[1];
    double n = std::pow(2.0, static_cast<double>(level));
    double mean0 = b0.sum / n;
    double mean1 = b1.sum / n;
    double diff = mean0 - mean1;
    Bucket merged;
    merged.sum = b0.sum + b1.sum;
    merged.variance = b0.variance + b1.variance + diff * diff * n / 2.0;
    // Within every level the front bucket is the oldest; the merged pair
    // is newer than everything already at level+1, so it goes to the back.
    rows_[level + 1].buckets.push_back(merged);
    rows_[level].buckets.erase(rows_[level].buckets.begin(),
                               rows_[level].buckets.begin() + 2);
  }
}

bool Adwin::DetectCut() {
  if (total_count_ < 10) return false;
  bool cut_any = false;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    // Walk buckets from oldest (highest level, front) to newest,
    // accumulating the "old" sub-window W0.
    double sum0 = 0.0;
    double count0 = 0.0;
    double total = static_cast<double>(total_count_);
    double variance =
        total_count_ > 1 ? total_var_ / static_cast<double>(total_count_)
                         : 0.0;
    for (size_t level = rows_.size(); level-- > 0 && !reduced;) {
      double n = std::pow(2.0, static_cast<double>(level));
      for (size_t b = 0; b < rows_[level].buckets.size(); ++b) {
        sum0 += rows_[level].buckets[b].sum;
        count0 += n;
        double count1 = total - count0;
        if (count0 < 1.0 || count1 < 1.0) continue;
        double mean0 = sum0 / count0;
        double mean1 = (total_sum_ - sum0) / count1;
        double m = 1.0 / (1.0 / count0 + 1.0 / count1);
        double delta_prime = delta_ / std::log(total);
        double eps = std::sqrt(2.0 / m * variance *
                               std::log(2.0 / delta_prime)) +
                     2.0 / (3.0 * m) * std::log(2.0 / delta_prime);
        if (std::abs(mean0 - mean1) > eps) {
          cut_any = true;
          reduced = true;
          DropOldest();
          break;
        }
      }
    }
  }
  return cut_any;
}

void Adwin::DropOldest() {
  // The oldest bucket is the front bucket of the highest non-empty level.
  for (size_t level = rows_.size(); level-- > 0;) {
    if (rows_[level].buckets.empty()) continue;
    Bucket& b = rows_[level].buckets.front();
    double n = std::pow(2.0, static_cast<double>(level));
    double mean = b.sum / n;
    total_sum_ -= b.sum;
    total_count_ -= static_cast<int64_t>(n);
    double remaining_mean =
        total_count_ > 0 ? total_sum_ / static_cast<double>(total_count_)
                         : 0.0;
    double diff = mean - remaining_mean;
    total_var_ -= b.variance + diff * diff * n *
                                  static_cast<double>(total_count_) /
                                  static_cast<double>(total_count_ + n);
    if (total_var_ < 0.0) total_var_ = 0.0;
    rows_[level].buckets.erase(rows_[level].buckets.begin());
    while (rows_.size() > 1 && rows_.back().buckets.empty()) {
      rows_.pop_back();
    }
    return;
  }
}

bool Adwin::Update(double value) {
  InsertElement(value);
  Compress();
  ++ticks_;
  if (ticks_ % kClock != 0) return false;
  return DetectCut();
}

int64_t Adwin::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Row& row : rows_) {
    bytes += static_cast<int64_t>(row.buckets.size() * sizeof(Bucket)) +
             static_cast<int64_t>(sizeof(Row));
  }
  return bytes;
}

void Adwin::Reset() {
  rows_.clear();
  rows_.emplace_back();
  total_sum_ = 0.0;
  total_var_ = 0.0;
  total_count_ = 0;
  ticks_ = 0;
}

DriftSignal AdwinAccuracyDetector::Update(double error) {
  // A window cut only signals drift when the error mean *rose*: ADWIN
  // also cuts when the error improves (a recovering model), and treating
  // that as drift makes ARF churn through freshly planted trees forever.
  double prev_warn_mean = warning_adwin_.Mean();
  double prev_drift_mean = drift_adwin_.Mean();
  bool warn_cut = warning_adwin_.Update(error);
  bool drift_cut = drift_adwin_.Update(error);
  bool warn = warn_cut && warning_adwin_.Mean() > prev_warn_mean;
  bool drift = drift_cut && drift_adwin_.Mean() > prev_drift_mean;
  if (drift) {
    warning_adwin_.Reset();
    return DriftSignal::kDrift;
  }
  if (warn) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void AdwinAccuracyDetector::Reset() {
  drift_adwin_.Reset();
  warning_adwin_.Reset();
}

DriftSignal AdwinBatchDetector::Update(const std::vector<double>& batch) {
  bool drift = false;
  for (double v : batch) {
    drift = adwin_.Update(v) || drift;
  }
  return drift ? DriftSignal::kDrift : DriftSignal::kStable;
}

}  // namespace oebench
