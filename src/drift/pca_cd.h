#ifndef OEBENCH_DRIFT_PCA_CD_H_
#define OEBENCH_DRIFT_PCA_CD_H_

#include <vector>

#include "drift/detector.h"
#include "linalg/pca.h"

namespace oebench {

/// PCA-based Change Detection (Qahtan, Alharbi, Wang & Zhang, 2015).
/// Fits PCA on the reference window (the paper's pipeline keeps the first
/// two principal components, §4.3), projects reference and test windows
/// onto each component, estimates the per-component densities with
/// histograms and compares them with KL divergence. The maximum
/// per-component divergence feeds a Page-Hinkley style cumulative test.
class PcaCd : public BatchDetectorND {
 public:
  struct Options {
    int num_components = 2;
    int num_bins = 32;
    /// Page-Hinkley admissible deviation.
    double ph_delta = 0.005;
    /// Page-Hinkley alarm threshold.
    double ph_lambda = 0.2;
  };

  PcaCd() : PcaCd(Options()) {}
  explicit PcaCd(Options options) : options_(options) {}

  DriftSignal Update(const Matrix& batch) override;
  void Reset() override;
  std::string name() const override { return "pca_cd"; }

  double last_divergence() const { return last_divergence_; }

 private:
  double ComponentDivergence(const std::vector<double>& a,
                             const std::vector<double>& b) const;

  Options options_;
  Pca pca_;
  Matrix reference_;
  bool has_reference_ = false;
  double last_divergence_ = 0.0;
  // Page-Hinkley state over the divergence stream.
  double ph_sum_ = 0.0;
  double ph_min_ = 0.0;
  double ph_mean_ = 0.0;
  int64_t ph_count_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_PCA_CD_H_
