#ifndef OEBENCH_DRIFT_KDQ_TREE_H_
#define OEBENCH_DRIFT_KDQ_TREE_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "drift/detector.h"

namespace oebench {

/// kdq-tree change detector (Dasu, Krishnan, Venkatasubramanian & Yi,
/// 2006). A kdq-tree recursively halves the space one dimension at a time
/// (round-robin) until a cell holds few points or becomes tiny; the
/// reference and test windows are then compared with the Kullback-Leibler
/// divergence of their leaf-cell histograms. The drift threshold is
/// calibrated by a bootstrap: the pooled data is repeatedly split at
/// random and the (1 - alpha) quantile of the resulting divergences
/// becomes the critical value.
class KdqTreeDetector : public BatchDetectorND {
 public:
  struct Options {
    int min_points_per_cell = 16;
    int max_depth = 12;
    int num_bootstrap = 24;
    double alpha = 0.05;
    uint64_t seed = 7;
  };

  KdqTreeDetector() : KdqTreeDetector(Options()) {}
  explicit KdqTreeDetector(Options options)
      : options_(options), rng_(options.seed) {}

  DriftSignal Update(const Matrix& batch) override;
  void Reset() override;
  std::string name() const override { return "kdq_tree"; }

  double last_divergence() const { return last_divergence_; }

 private:
  struct KdqNode {
    int32_t left = -1;
    int32_t right = -1;
    int32_t dim = -1;       // -1 marks a leaf
    double split = 0.0;
    int64_t count_a = 0;    // reference points in the cell
    int64_t count_b = 0;    // test points in the cell
  };

  /// Builds a tree over `reference` and counts both samples in its leaves;
  /// returns the KL divergence between the leaf histograms.
  double Divergence(const Matrix& reference, const Matrix& test);

  int32_t Build(const Matrix& data, std::vector<int64_t>& indices,
                std::vector<std::pair<double, double>>& bounds, int depth,
                std::vector<KdqNode>* nodes) const;
  void CountLeaf(const std::vector<KdqNode>& nodes, const double* row,
                 bool is_reference, std::vector<KdqNode>* mutable_nodes)
      const;

  Options options_;
  Rng rng_;
  Matrix reference_;
  bool has_reference_ = false;
  double last_divergence_ = 0.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_KDQ_TREE_H_
