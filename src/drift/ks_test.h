#ifndef OEBENCH_DRIFT_KS_TEST_H_
#define OEBENCH_DRIFT_KS_TEST_H_

#include <vector>

#include "drift/detector.h"

namespace oebench {

/// Two-sample Kolmogorov-Smirnov statistic: the maximum distance between
/// the empirical CDFs of `a` and `b`.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Asymptotic two-sided p-value for the two-sample KS statistic
/// (Kolmogorov distribution with the standard effective-n correction).
double KsPValue(double statistic, int64_t n1, int64_t n2);

/// Batch drift detector: flags drift when the KS test rejects equality of
/// the previous and current window at significance `alpha` (the paper's
/// default p = 0.05, §4.3). Warning at 2*alpha.
class KsWindowDetector : public BatchDetector1D {
 public:
  explicit KsWindowDetector(double alpha = 0.05) : alpha_(alpha) {}

  DriftSignal Update(const std::vector<double>& batch) override;
  void Reset() override;
  std::string name() const override { return "ks"; }

  /// p-value of the last comparison (1.0 before two windows are seen).
  double last_p_value() const { return last_p_value_; }

 private:
  double alpha_;
  std::vector<double> reference_;
  bool has_reference_ = false;
  double last_p_value_ = 1.0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_KS_TEST_H_
