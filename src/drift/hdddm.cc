#include "drift/hdddm.h"

#include <algorithm>
#include <cmath>

namespace oebench {

double Hdddm::HellingerDistance(const Matrix& a, const Matrix& b) {
  OE_CHECK(a.cols() == b.cols());
  const int64_t d = a.cols();
  if (d == 0) return 0.0;
  int64_t bins = std::max<int64_t>(
      2, static_cast<int64_t>(std::floor(
             std::sqrt(static_cast<double>(std::min(a.rows(), b.rows()))))));
  double total = 0.0;
  std::vector<double> ha(static_cast<size_t>(bins));
  std::vector<double> hb(static_cast<size_t>(bins));
  for (int64_t f = 0; f < d; ++f) {
    double lo = a.At(0, f);
    double hi = lo;
    for (int64_t r = 0; r < a.rows(); ++r) {
      lo = std::min(lo, a.At(r, f));
      hi = std::max(hi, a.At(r, f));
    }
    for (int64_t r = 0; r < b.rows(); ++r) {
      lo = std::min(lo, b.At(r, f));
      hi = std::max(hi, b.At(r, f));
    }
    if (hi <= lo) continue;  // constant feature contributes zero distance
    std::fill(ha.begin(), ha.end(), 0.0);
    std::fill(hb.begin(), hb.end(), 0.0);
    double width = (hi - lo) / static_cast<double>(bins);
    auto bin_of = [&](double v) {
      int64_t idx = static_cast<int64_t>((v - lo) / width);
      return std::min(idx, bins - 1);
    };
    for (int64_t r = 0; r < a.rows(); ++r) {
      ha[static_cast<size_t>(bin_of(a.At(r, f)))] += 1.0;
    }
    for (int64_t r = 0; r < b.rows(); ++r) {
      hb[static_cast<size_t>(bin_of(b.At(r, f)))] += 1.0;
    }
    double na = static_cast<double>(a.rows());
    double nb = static_cast<double>(b.rows());
    double sum = 0.0;
    for (int64_t k = 0; k < bins; ++k) {
      double pa = ha[static_cast<size_t>(k)] / na;
      double pb = hb[static_cast<size_t>(k)] / nb;
      double diff = std::sqrt(pa) - std::sqrt(pb);
      sum += diff * diff;
    }
    total += std::sqrt(sum);  // in [0, sqrt(2)]
  }
  return total / static_cast<double>(d);
}

DriftSignal Hdddm::Update(const Matrix& batch) {
  OE_CHECK(batch.rows() > 0);
  if (!has_baseline_) {
    baseline_ = batch;
    has_baseline_ = true;
    return DriftSignal::kStable;
  }
  last_distance_ = HellingerDistance(baseline_, batch);
  DriftSignal signal = DriftSignal::kStable;
  if (prev_distance_ >= 0.0) {
    double eps = last_distance_ - prev_distance_;
    double abs_eps = std::abs(eps);
    if (eps_count_ >= 2) {
      double mean = eps_sum_ / static_cast<double>(eps_count_);
      double var = eps_sum_sq_ / static_cast<double>(eps_count_) -
                   mean * mean;
      double sd = std::sqrt(std::max(var, 0.0));
      double threshold = mean + gamma_ * sd;
      double warn_threshold = mean + 0.75 * gamma_ * sd;
      if (abs_eps > threshold) {
        signal = DriftSignal::kDrift;
      } else if (abs_eps > warn_threshold) {
        signal = DriftSignal::kWarning;
      }
    }
    if (signal == DriftSignal::kDrift) {
      // Reset the adaptive statistics and rebase on the drifted batch.
      baseline_ = batch;
      prev_distance_ = -1.0;
      eps_sum_ = 0.0;
      eps_sum_sq_ = 0.0;
      eps_count_ = 0;
      return signal;
    }
    eps_sum_ += abs_eps;
    eps_sum_sq_ += abs_eps * abs_eps;
    ++eps_count_;
  }
  prev_distance_ = last_distance_;
  // Merge the batch into the baseline (growing reference window, capped so
  // memory stays bounded on long streams).
  baseline_ = Matrix::VStack(baseline_, batch);
  constexpr int64_t kMaxBaselineRows = 8192;
  if (baseline_.rows() > kMaxBaselineRows) {
    baseline_ = baseline_.Slice(baseline_.rows() - kMaxBaselineRows,
                                baseline_.rows());
  }
  return signal;
}

void Hdddm::Reset() {
  has_baseline_ = false;
  baseline_ = Matrix();
  prev_distance_ = -1.0;
  last_distance_ = 0.0;
  eps_sum_ = 0.0;
  eps_sum_sq_ = 0.0;
  eps_count_ = 0;
}

}  // namespace oebench
