#ifndef OEBENCH_DRIFT_CDBD_H_
#define OEBENCH_DRIFT_CDBD_H_

#include <vector>

#include "drift/detector.h"

namespace oebench {

/// Confidence Distribution Batch Detection (Lindstrom, Mac Namee & Delany,
/// 2013). A one-dimensional batch detector: each incoming batch of scores
/// (model confidences in the original paper; any single column in the
/// OEBench statistics pipeline) is histogrammed and compared to the
/// previous batch with the Kullback-Leibler divergence. The change in
/// divergence is tested against an adaptive threshold built from the mean
/// and standard deviation of past divergences (the same epsilon scheme as
/// HDDDM, which is how Menelaus implements both).
class Cdbd : public BatchDetector1D {
 public:
  explicit Cdbd(double gamma = 1.5, int num_bins = 0)
      : gamma_(gamma), num_bins_(num_bins) {}

  DriftSignal Update(const std::vector<double>& batch) override;
  void Reset() override;
  std::string name() const override { return "cdbd"; }

  double last_divergence() const { return last_divergence_; }

 private:
  double KlDivergence(const std::vector<double>& a,
                      const std::vector<double>& b) const;

  double gamma_;
  int num_bins_;  // 0: floor(sqrt(n))
  std::vector<double> reference_;
  bool has_reference_ = false;
  double last_divergence_ = 0.0;
  double div_sum_ = 0.0;
  double div_sum_sq_ = 0.0;
  int64_t div_count_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_DRIFT_CDBD_H_
