#include "drift/fw_ddm.h"

#include <cmath>

namespace oebench {

double FwDdm::WeightedErrorRate() const {
  const size_t n = window_.size();
  double weighted_errors = 0.0;
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // window_[0] is the oldest sample; fuzzy membership grows linearly
    // toward the most recent one.
    double weight = static_cast<double>(i + 1) / static_cast<double>(n);
    weighted_errors += weight * window_[i];
    total_weight += weight;
  }
  return total_weight > 0.0 ? weighted_errors / total_weight : 0.0;
}

DriftSignal FwDdm::Update(double error) {
  window_.push_back(error > 0.5 ? 1.0 : 0.0);
  if (static_cast<int>(window_.size()) > window_size_) {
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) < min_samples_) {
    return DriftSignal::kStable;
  }
  double p = WeightedErrorRate();
  // Control chart on the fuzzy-weighted rate: the rate is compared
  // against its long-run mean with a binomial band. (Tracking the
  // historical *minimum* as classic DDM does is alarm-prone for a
  // windowed rate, whose excursions below and above the mean are both
  // routine.)
  ++evaluations_;
  mean_p_ += (p - mean_p_) / static_cast<double>(evaluations_);
  double n_eff = 2.0 * static_cast<double>(window_.size()) / 3.0;
  double s = std::sqrt(
      std::max(mean_p_ * (1.0 - mean_p_), 1e-12) / n_eff);
  if (evaluations_ < min_samples_) return DriftSignal::kStable;
  if (p > mean_p_ + 3.5 * s) {
    Reset();
    return DriftSignal::kDrift;
  }
  if (p > mean_p_ + 2.5 * s) return DriftSignal::kWarning;
  return DriftSignal::kStable;
}

void FwDdm::Reset() {
  window_.clear();
  mean_p_ = 0.0;
  evaluations_ = 0;
}

}  // namespace oebench
