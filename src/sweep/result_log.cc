#include "sweep/result_log.h"

#include <bit>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace oebench {
namespace sweep {

namespace {

constexpr const char* kFormatLineV1 = "oebench-sweep-log\tv1";
constexpr const char* kFormatLineV2 = "oebench-sweep-log\tv2";

/// Field counts of the row kinds (including the leading tag).
constexpr size_t kRunFields = 13;
constexpr size_t kNaFields = 4;
constexpr size_t kFailFields = 7;

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool ParseIntField(std::string_view text, int* out) {
  int64_t value = 0;
  if (!ParseInt64(text, &value)) return false;
  if (value < INT32_MIN || value > INT32_MAX) return false;
  *out = static_cast<int>(value);
  return true;
}

std::string ShardToString(const Shard& shard) {
  return StrFormat("%d/%d", shard.index, shard.count);
}

}  // namespace

bool CompatibleHeaders(const LogHeader& a, const LogHeader& b) {
  // The version is deliberately not compared: v2 only *adds* the
  // failure record, so v1 and v2 logs of the same sweep cross-merge.
  return a.base_seed == b.base_seed &&
         std::bit_cast<uint64_t>(a.scale) == std::bit_cast<uint64_t>(b.scale) &&
         a.repeats == b.repeats && a.epochs == b.epochs &&
         a.manifest_fingerprint == b.manifest_fingerprint;
}

std::string HeaderToString(const LogHeader& header) {
  return StrFormat(
      "v%d seed=%llu scale=%g repeats=%d epochs=%d manifest=%016llx "
      "shard=%d/%d",
      header.version, static_cast<unsigned long long>(header.base_seed),
      header.scale, header.repeats, header.epochs,
      static_cast<unsigned long long>(header.manifest_fingerprint),
      header.shard.index, header.shard.count);
}

std::string EncodeDouble(double value) {
  return StrFormat("%016llx", static_cast<unsigned long long>(
                                  std::bit_cast<uint64_t>(value)));
}

bool DecodeDouble(std::string_view text, double* out) {
  uint64_t bits = 0;
  if (!ParseHex64(text, &bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

std::string FormatRow(const LoggedRow& row) {
  if (row.not_applicable) {
    return StrFormat("na\t%s\t%s\t%d", row.task.dataset.c_str(),
                     row.task.learner.c_str(), row.task.repeat);
  }
  const EvalResult& r = row.result;
  std::string windows;
  if (r.per_window_loss.empty()) {
    windows = "-";
  } else {
    for (size_t i = 0; i < r.per_window_loss.size(); ++i) {
      if (i > 0) windows += ',';
      windows += EncodeDouble(r.per_window_loss[i]);
    }
  }
  return StrFormat(
      "run\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%lld\t%s\t%s\t%zu\t%s",
      row.task.dataset.c_str(), row.task.learner.c_str(), row.task.repeat,
      r.learner.c_str(), EncodeDouble(r.mean_loss).c_str(),
      EncodeDouble(r.faded_loss).c_str(), EncodeDouble(r.throughput).c_str(),
      static_cast<long long>(r.peak_memory_bytes),
      EncodeDouble(r.train_seconds).c_str(),
      EncodeDouble(r.test_seconds).c_str(), r.per_window_loss.size(),
      windows.c_str());
}

bool ParseRow(std::string_view line, LoggedRow* out) {
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.empty()) return false;
  LoggedRow row;
  if (fields[0] == "na") {
    if (fields.size() != kNaFields) return false;
    row.not_applicable = true;
    row.task.dataset = fields[1];
    row.task.learner = fields[2];
    if (row.task.dataset.empty() || row.task.learner.empty()) return false;
    if (!ParseIntField(fields[3], &row.task.repeat) || row.task.repeat < 0) {
      return false;
    }
    *out = std::move(row);
    return true;
  }
  if (fields[0] != "run" || fields.size() != kRunFields) return false;
  row.task.dataset = fields[1];
  row.task.learner = fields[2];
  if (row.task.dataset.empty() || row.task.learner.empty()) return false;
  if (!ParseIntField(fields[3], &row.task.repeat) || row.task.repeat < 0) {
    return false;
  }
  EvalResult& r = row.result;
  r.learner = fields[4];
  r.dataset = row.task.dataset;
  int64_t peak = 0;
  int num_windows = 0;
  if (!DecodeDouble(fields[5], &r.mean_loss)) return false;
  if (!DecodeDouble(fields[6], &r.faded_loss)) return false;
  if (!DecodeDouble(fields[7], &r.throughput)) return false;
  if (!ParseInt64(fields[8], &peak)) return false;
  if (!DecodeDouble(fields[9], &r.train_seconds)) return false;
  if (!DecodeDouble(fields[10], &r.test_seconds)) return false;
  if (!ParseIntField(fields[11], &num_windows) || num_windows < 0) {
    return false;
  }
  r.peak_memory_bytes = peak;
  if (fields[12] == "-") {
    if (num_windows != 0) return false;
  } else {
    std::vector<std::string> parts = Split(fields[12], ',');
    if (parts.size() != static_cast<size_t>(num_windows)) return false;
    r.per_window_loss.reserve(parts.size());
    for (const std::string& part : parts) {
      double value = 0.0;
      if (!DecodeDouble(part, &value)) return false;
      r.per_window_loss.push_back(value);
    }
  }
  *out = std::move(row);
  return true;
}

std::string FormatFailureRow(const TaskFailure& failure) {
  std::string message = failure.message;
  for (char& c : message) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return StrFormat("fail\t%s\t%s\t%d\t%s\t%s\t%s",
                   failure.task.dataset.c_str(),
                   failure.task.learner.c_str(), failure.task.repeat,
                   TaskFailureKindName(failure.kind),
                   EncodeDouble(failure.elapsed_seconds).c_str(),
                   message.c_str());
}

bool ParseFailureRow(std::string_view line, TaskFailure* out) {
  std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() != kFailFields || fields[0] != "fail") return false;
  TaskFailure failure;
  failure.task.dataset = fields[1];
  failure.task.learner = fields[2];
  if (failure.task.dataset.empty() || failure.task.learner.empty()) {
    return false;
  }
  if (!ParseIntField(fields[3], &failure.task.repeat) ||
      failure.task.repeat < 0) {
    return false;
  }
  if (!ParseTaskFailureKind(fields[4], &failure.kind)) return false;
  if (!DecodeDouble(fields[5], &failure.elapsed_seconds)) return false;
  failure.message = fields[6];
  *out = std::move(failure);
  return true;
}

namespace {

std::string FormatHeader(const LogHeader& header) {
  std::string out = header.version >= 2 ? kFormatLineV2 : kFormatLineV1;
  out += StrFormat("\nmeta\tbase_seed\t%llu",
                   static_cast<unsigned long long>(header.base_seed));
  out += StrFormat("\nmeta\tscale\t%s", EncodeDouble(header.scale).c_str());
  out += StrFormat("\nmeta\trepeats\t%d", header.repeats);
  out += StrFormat("\nmeta\tepochs\t%d", header.epochs);
  out += StrFormat("\nmeta\tmanifest\t%016llx",
                   static_cast<unsigned long long>(
                       header.manifest_fingerprint));
  out += StrFormat("\nmeta\tshard\t%s\n", ShardToString(header.shard).c_str());
  return out;
}

Status ParseHeader(const std::vector<std::string>& lines, size_t* cursor,
                   LogHeader* out) {
  LogHeader header;
  if (!lines.empty() && lines[0] == kFormatLineV1) {
    header.version = 1;
  } else if (!lines.empty() && lines[0] == kFormatLineV2) {
    header.version = 2;
  } else {
    return Status::InvalidArgument(
        "not an oebench-sweep-log v1/v2 file (bad format line)");
  }
  bool seen_seed = false, seen_scale = false, seen_repeats = false,
       seen_epochs = false, seen_manifest = false, seen_shard = false;
  size_t i = 1;
  for (; i < lines.size(); ++i) {
    std::vector<std::string> fields = Split(lines[i], '\t');
    if (fields.empty() || fields[0] != "meta") break;
    if (fields.size() != 3) {
      return Status::InvalidArgument("malformed meta line: " + lines[i]);
    }
    const std::string& key = fields[1];
    const std::string& value = fields[2];
    if (key == "base_seed" && !seen_seed) {
      if (!ParseUint64(value, &header.base_seed)) {
        return Status::InvalidArgument("bad base_seed: " + value);
      }
      seen_seed = true;
    } else if (key == "scale" && !seen_scale) {
      if (!DecodeDouble(value, &header.scale)) {
        return Status::InvalidArgument("bad scale: " + value);
      }
      seen_scale = true;
    } else if (key == "repeats" && !seen_repeats) {
      if (!ParseIntField(value, &header.repeats) || header.repeats < 1) {
        return Status::InvalidArgument("bad repeats: " + value);
      }
      seen_repeats = true;
    } else if (key == "epochs" && !seen_epochs) {
      if (!ParseIntField(value, &header.epochs)) {
        return Status::InvalidArgument("bad epochs: " + value);
      }
      seen_epochs = true;
    } else if (key == "manifest" && !seen_manifest) {
      if (!ParseHex64(value, &header.manifest_fingerprint)) {
        return Status::InvalidArgument("bad manifest fingerprint: " + value);
      }
      seen_manifest = true;
    } else if (key == "shard" && !seen_shard) {
      if (!ParseShard(value, &header.shard)) {
        return Status::InvalidArgument("bad shard: " + value);
      }
      seen_shard = true;
    } else {
      return Status::InvalidArgument("unexpected meta line: " + lines[i]);
    }
  }
  if (!seen_seed || !seen_scale || !seen_repeats || !seen_epochs ||
      !seen_manifest || !seen_shard) {
    return Status::InvalidArgument("incomplete result-log header");
  }
  *cursor = i;
  *out = header;
  return Status::OK();
}

}  // namespace

Result<ResultLogContents> ReadResultLog(const std::string& path,
                                        IoEnv* env) {
  if (env == nullptr) env = IoEnv::Default();
  // Reads go through the env's readable-file abstraction so the merge
  // and resume paths see injected read faults (fail-read / torn-read)
  // exactly like the write path sees append faults.
  Result<std::unique_ptr<ReadableFile>> file = env->NewReadableFile(path);
  if (!file.ok()) {
    return Status::IoError("cannot open result log: " + path + " (" +
                           file.status().message() + ")");
  }
  std::string text;
  std::string chunk;
  for (;;) {
    Status read = (*file)->Read(1 << 16, &chunk);
    if (!read.ok()) {
      return Status::IoError("cannot read result log: " + path + " (" +
                             read.message() + ")");
    }
    if (chunk.empty()) break;
    text += chunk;
  }

  // A line is only trusted when terminated by '\n': a crash mid-write
  // leaves a torn tail, which resume must re-run, not half-parse.
  ResultLogContents contents;
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      ++contents.dropped_lines;  // torn trailing line
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  size_t cursor = 0;
  OE_RETURN_NOT_OK(ParseHeader(lines, &cursor, &contents.header));
  for (size_t i = cursor; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (contents.header.version >= 2 && lines[i].rfind("fail\t", 0) == 0) {
      TaskFailure failure;
      if (!ParseFailureRow(lines[i], &failure)) {
        ++contents.dropped_lines;
        continue;
      }
      contents.failures.push_back(std::move(failure));
      continue;
    }
    LoggedRow row;
    if (!ParseRow(lines[i], &row)) {
      ++contents.dropped_lines;
      continue;
    }
    contents.rows.push_back(std::move(row));
  }
  return contents;
}

Result<std::unique_ptr<ResultLogWriter>> ResultLogWriter::Open(
    const std::string& path, const LogHeader& header, bool resume,
    IoEnv* env, bool retry_failed) {
  if (env == nullptr) env = IoEnv::Default();
  std::unique_ptr<ResultLogWriter> writer(new ResultLogWriter());
  std::vector<LoggedRow> kept;
  std::vector<TaskFailure> kept_failures;
  if (resume && env->FileExists(path)) {
    Result<ResultLogContents> existing = ReadResultLog(path, env);
    if (!existing.ok()) return existing.status();
    if (!CompatibleHeaders(existing->header, header)) {
      return Status::FailedPrecondition(
          "cannot resume " + path + ": log header [" +
          HeaderToString(existing->header) +
          "] does not match this sweep [" + HeaderToString(header) + "]");
    }
    kept = std::move(existing->rows);
    if (!retry_failed) kept_failures = std::move(existing->failures);
  }
  // (Re)write header + kept rows to a temp file, then rename into
  // place: a crash during compaction leaves the original intact.
  const std::string tmp = path + ".tmp";
  {
    Result<std::unique_ptr<WritableFile>> out =
        env->NewWritableFile(tmp, /*truncate=*/true);
    if (!out.ok()) {
      return Status(out.status().code(),
                    "cannot create result log: " + tmp + " (" +
                        out.status().message() + ")");
    }
    OE_RETURN_NOT_OK((*out)->Append(FormatHeader(header)));
    for (const LoggedRow& row : kept) {
      std::string line = FormatRow(row);
      line += '\n';
      OE_RETURN_NOT_OK((*out)->Append(line));
      writer->done_.insert(TaskKey(row.task));
    }
    for (const TaskFailure& failure : kept_failures) {
      // A valid row for the same key supersedes the failure record (a
      // --retry-failed rescue that landed before a crash).
      if (writer->done_.count(TaskKey(failure.task)) > 0) continue;
      if (writer->failed_.count(TaskKey(failure.task)) > 0) continue;
      std::string line = FormatFailureRow(failure);
      line += '\n';
      OE_RETURN_NOT_OK((*out)->Append(line));
      writer->failed_.insert(TaskKey(failure.task));
    }
    OE_RETURN_NOT_OK((*out)->Sync());
    OE_RETURN_NOT_OK((*out)->Close());
  }
  OE_RETURN_NOT_OK(env->RenameFile(tmp, path));
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/false);
  if (!file.ok()) {
    return Status(file.status().code(),
                  "cannot append to result log: " + path + " (" +
                      file.status().message() + ")");
  }
  writer->file_ = std::move(*file);
  return writer;
}

ResultLogWriter::~ResultLogWriter() {
  if (file_ != nullptr) file_->Close().ok();
}

Status ResultLogWriter::AppendLine(const std::string& line) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = line;
  out += '\n';
  {
    ScopedTimer timer(metrics->GetHistogram("result_log.append_seconds"));
    OE_RETURN_NOT_OK(file_->Append(out));
  }
  metrics->GetCounter("result_log.appends")->Increment();
  metrics->GetCounter("result_log.bytes_appended")
      ->Add(static_cast<int64_t>(out.size()));
  ScopedTimer sync_timer(metrics->GetHistogram("result_log.sync_seconds"));
  return file_->Sync();
}

Status ResultLogWriter::Append(const TaskIdentity& task,
                               const EvalResult& result) {
  LoggedRow row;
  row.task = task;
  row.result = result;
  return AppendLine(FormatRow(row));
}

Status ResultLogWriter::AppendNotApplicable(const TaskIdentity& task) {
  LoggedRow row;
  row.task = task;
  row.not_applicable = true;
  return AppendLine(FormatRow(row));
}

Status ResultLogWriter::AppendFailure(const TaskFailure& failure) {
  return AppendLine(FormatFailureRow(failure));
}

}  // namespace sweep
}  // namespace oebench
