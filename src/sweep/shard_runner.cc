#include "sweep/shard_runner.h"

#include <map>
#include <set>
#include <utility>

#include "common/logging.h"

namespace oebench {
namespace sweep {

namespace {

/// Applicability probe for one (dataset task-type, num_classes): which
/// learners can be built at all. Mirrors the probe core/parallel_eval
/// runs before submitting tasks, so the N/A rows a shard logs match
/// the N/A cells an unsharded sweep reports.
std::vector<char> ProbeApplicable(const std::vector<std::string>& learners,
                                  const LearnerConfig& base_config,
                                  TaskType task, int num_classes) {
  std::vector<char> applicable(learners.size(), 0);
  for (size_t l = 0; l < learners.size(); ++l) {
    Result<std::unique_ptr<StreamLearner>> probe =
        MakeLearner(learners[l], base_config, task, num_classes);
    applicable[l] = probe.ok() ? 1 : 0;
  }
  return applicable;
}

struct TaskShape {
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
};

/// Shared shard execution: resolve pending tasks, log N/A ones, run
/// the rest with the durable-log callback installed, via `run_sweep`.
template <typename RunSweep>
Result<ShardRunStats> RunShardImpl(
    const TaskManifest& manifest, const ShardRunOptions& options,
    const std::map<std::string, TaskShape>& shapes, RunSweep run_sweep) {
  OE_CHECK(!options.config.task_filter && !options.config.on_task_done)
      << "task_filter/on_task_done are owned by the shard runner";
  if (options.log_path.empty()) {
    return Status::InvalidArgument("shard run needs a --log path");
  }

  LogHeader header = MakeLogHeader(manifest, options.config, options.shard);
  Result<std::unique_ptr<ResultLogWriter>> writer =
      ResultLogWriter::Open(options.log_path, header, options.resume);
  if (!writer.ok()) return writer.status();

  ShardRunStats stats;
  std::vector<TaskIdentity> shard_tasks = manifest.ShardTasks(options.shard);
  stats.shard_tasks = static_cast<int64_t>(shard_tasks.size());

  // Pending = the shard's span minus what the (resumed) log already
  // has. N/A pairs are logged immediately — no run will ever execute
  // for them — and everything else becomes the task filter.
  std::set<std::string> selected;
  const std::vector<std::string>& learners = manifest.grid().learners;
  std::map<std::string, std::vector<char>> probe_cache;
  for (const TaskIdentity& task : shard_tasks) {
    std::string key = TaskKey(task);
    if ((*writer)->done().count(key) > 0) {
      ++stats.tasks_resumed;
      continue;
    }
    auto cached = probe_cache.find(task.dataset);
    if (cached == probe_cache.end()) {
      auto shape = shapes.find(task.dataset);
      if (shape == shapes.end()) {
        return Status::InvalidArgument("no stream for shard dataset '" +
                                       task.dataset + "'");
      }
      cached = probe_cache
                   .emplace(task.dataset,
                            ProbeApplicable(learners,
                                            options.config.base_config,
                                            shape->second.task,
                                            shape->second.num_classes))
                   .first;
    }
    const std::vector<char>& applicable = cached->second;
    size_t l = 0;
    while (l < learners.size() && learners[l] != task.learner) ++l;
    OE_CHECK(l < learners.size());
    if (!applicable[l]) {
      (*writer)->AppendNotApplicable(task);
      ++stats.na_logged;
      continue;
    }
    selected.insert(std::move(key));
  }
  if (selected.empty()) return stats;

  SweepConfig config = options.config;
  config.task_filter = [&selected](const TaskIdentity& task) {
    return selected.count(TaskKey(task)) > 0;
  };
  ResultLogWriter* log = writer->get();
  config.on_task_done = [log](const TaskIdentity& task,
                              const EvalResult& result) {
    log->Append(task, result);
  };
  SweepOutcome outcome = run_sweep(config);
  stats.tasks_executed = outcome.tasks_run;
  stats.streams_prepared = outcome.streams_prepared;
  OE_CHECK(stats.tasks_executed == static_cast<int64_t>(selected.size()));
  return stats;
}

}  // namespace

LogHeader MakeLogHeader(const TaskManifest& manifest,
                        const SweepConfig& config, const Shard& shard) {
  LogHeader header;
  header.base_seed = config.base_config.seed;
  header.scale = config.scale;
  header.repeats = config.repeats;
  header.epochs = config.base_config.epochs;
  header.manifest_fingerprint = manifest.Fingerprint();
  header.shard = shard;
  return header;
}

TaskManifest EntriesManifest(const std::vector<CorpusEntry>& entries,
                             const std::vector<std::string>& learners,
                             int repeats) {
  SweepGrid grid;
  for (const CorpusEntry& entry : entries) grid.datasets.push_back(entry.name);
  grid.learners = learners;
  grid.repeats = repeats;
  return TaskManifest::Build(std::move(grid));
}

Result<ShardRunStats> RunCorpusShard(const std::vector<CorpusEntry>& entries,
                                     const std::vector<std::string>& learners,
                                     const ShardRunOptions& options) {
  TaskManifest manifest =
      EntriesManifest(entries, learners, options.config.repeats);
  std::map<std::string, TaskShape> shapes;
  for (const CorpusEntry& entry : entries) {
    // The pipeline copies the spec's task/num_classes into the
    // prepared stream verbatim, so probing from the spec is exact.
    StreamSpec spec = SpecFromEntry(entry, options.config.scale);
    shapes[entry.name] = TaskShape{spec.task, spec.num_classes};
  }
  return RunShardImpl(manifest, options, shapes,
                      [&entries, &learners](const SweepConfig& config) {
                        return ParallelSweepEntries(entries, learners,
                                                    config);
                      });
}

Result<ShardRunStats> RunPreparedShard(
    const std::vector<PreparedStream>& streams,
    const std::vector<std::string>& dataset_order,
    const std::vector<std::string>& learners,
    const ShardRunOptions& options) {
  SweepGrid grid;
  grid.datasets = dataset_order;
  grid.learners = learners;
  grid.repeats = options.config.repeats;
  TaskManifest manifest = TaskManifest::Build(std::move(grid));
  std::map<std::string, TaskShape> shapes;
  for (const PreparedStream& stream : streams) {
    shapes[stream.name] = TaskShape{stream.task, stream.num_classes};
  }
  return RunShardImpl(manifest, options, shapes,
                      [&streams, &learners](const SweepConfig& config) {
                        return ParallelSweep(streams, learners, config);
                      });
}

}  // namespace sweep
}  // namespace oebench
