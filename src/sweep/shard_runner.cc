#include "sweep/shard_runner.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace oebench {
namespace sweep {

namespace {

/// Applicability probe for one (dataset task-type, num_classes): which
/// learners can be built at all. Mirrors the probe core/parallel_eval
/// runs before submitting tasks, so the N/A rows a shard logs match
/// the N/A cells an unsharded sweep reports.
std::vector<char> ProbeApplicable(const std::vector<std::string>& learners,
                                  const LearnerConfig& base_config,
                                  TaskType task, int num_classes) {
  std::vector<char> applicable(learners.size(), 0);
  for (size_t l = 0; l < learners.size(); ++l) {
    Result<std::unique_ptr<StreamLearner>> probe =
        MakeLearner(learners[l], base_config, task, num_classes);
    applicable[l] = probe.ok() ? 1 : 0;
  }
  return applicable;
}

struct TaskShape {
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
};

/// Durable-log sink with the runner's failure semantics: transient
/// (kUnavailable) append failures are retried with bounded exponential
/// backoff; the first permanent failure latches `failed` — the sweep's
/// stop_requested hook — and is reported once the sweep drains. Runs
/// on pool workers, hence the locking.
class DurableSink {
 public:
  explicit DurableSink(const RetryPolicy& retry) : retry_(retry) {}

  template <typename AppendFn>
  void Write(AppendFn&& append) {
    if (failed_.load(std::memory_order_relaxed)) return;
    int backoff_ms = retry_.initial_backoff_ms;
    Status status;
    for (int attempt = 1;; ++attempt) {
      status = append();
      if (status.ok()) return;
      if (status.code() != StatusCode::kUnavailable ||
          attempt >= retry_.max_attempts) {
        break;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      // Volatile: how often the environment made us retry is not part
      // of the deterministic workload contract.
      MetricsRegistry::Global()
          ->GetVolatileCounter("result_log.append_retries")
          ->Increment();
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
      }
    }
    MetricsRegistry::Global()
        ->GetVolatileCounter("result_log.append_failures")
        ->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed_.exchange(true)) first_error_ = std::move(status);
  }

  bool failed() const { return failed_.load(std::memory_order_acquire); }
  int64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  Status first_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  RetryPolicy retry_;
  mutable std::mutex mu_;
  std::atomic<bool> failed_{false};
  std::atomic<int64_t> retries_{0};
  Status first_error_;
};

/// Task-failure circuit breaker: counts failures as pool workers
/// report them; once the count exceeds the limit it latches `tripped`,
/// which the runner wires into the sweep's stop_requested — the same
/// latch-and-drain shape DurableSink uses for permanent log failures.
class FailureBreaker {
 public:
  explicit FailureBreaker(int64_t limit) : limit_(limit) {}

  void Record() {
    const int64_t count = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limit_ >= 0 && count > limit_) {
      tripped_.store(true, std::memory_order_release);
    }
  }

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  int64_t limit_;
  std::atomic<int64_t> count_{0};
  std::atomic<bool> tripped_{false};
};

/// Shared shard execution: resolve pending tasks, log N/A ones, run
/// the rest with the durable-log callback installed, via `run_sweep`.
template <typename RunSweep>
Result<ShardRunStats> RunShardImpl(
    const TaskManifest& manifest, const ShardRunOptions& options,
    const std::map<std::string, TaskShape>& shapes, RunSweep run_sweep) {
  OE_CHECK(!options.config.task_filter && !options.config.on_task_done &&
           !options.config.on_task_failed && !options.config.stop_requested)
      << "task_filter/on_task_done/on_task_failed/stop_requested are "
         "owned by the shard runner";
  if (options.log_path.empty()) {
    return Status::InvalidArgument("shard run needs a --log path");
  }
  if (options.retry_failed && !options.resume) {
    return Status::InvalidArgument(
        "--retry-failed only makes sense with --resume (it re-runs "
        "tasks recorded as failed in an existing log)");
  }

  LogHeader header = MakeLogHeader(manifest, options.config, options.shard);
  Result<std::unique_ptr<ResultLogWriter>> writer = ResultLogWriter::Open(
      options.log_path, header, options.resume, options.env,
      options.retry_failed);
  if (!writer.ok()) return writer.status();
  DurableSink sink(options.retry);
  FailureBreaker breaker(options.max_task_failures);

  ShardRunStats stats;
  std::vector<TaskIdentity> shard_tasks = manifest.ShardTasks(options.shard);
  stats.shard_tasks = static_cast<int64_t>(shard_tasks.size());

  // Pending = the shard's span minus what the (resumed) log already
  // has. N/A pairs are logged immediately — no run will ever execute
  // for them — and everything else becomes the task filter.
  std::set<std::string> selected;
  const std::vector<std::string>& learners = manifest.grid().learners;
  std::map<std::string, std::vector<char>> probe_cache;
  ResultLogWriter* log = writer->get();
  for (const TaskIdentity& task : shard_tasks) {
    std::string key = TaskKey(task);
    if ((*writer)->done().count(key) > 0) {
      ++stats.tasks_resumed;
      continue;
    }
    if ((*writer)->failed().count(key) > 0) {
      // Known-failed from a previous run; kept quarantined unless the
      // caller asked for --retry-failed (then failed() is empty and
      // the task falls through into the pending set).
      ++stats.failures_resumed;
      continue;
    }
    auto cached = probe_cache.find(task.dataset);
    if (cached == probe_cache.end()) {
      auto shape = shapes.find(task.dataset);
      if (shape == shapes.end()) {
        return Status::InvalidArgument("no stream for shard dataset '" +
                                       task.dataset + "'");
      }
      cached = probe_cache
                   .emplace(task.dataset,
                            ProbeApplicable(learners,
                                            options.config.base_config,
                                            shape->second.task,
                                            shape->second.num_classes))
                   .first;
    }
    const std::vector<char>& applicable = cached->second;
    size_t l = 0;
    while (l < learners.size() && learners[l] != task.learner) ++l;
    OE_CHECK(l < learners.size());
    if (!applicable[l]) {
      sink.Write([log, &task] { return log->AppendNotApplicable(task); });
      if (sink.failed()) break;  // permanent log failure: stop cleanly
      ++stats.na_logged;
      continue;
    }
    selected.insert(std::move(key));
  }
  int64_t prepare_failures = 0;
  if (!sink.failed() && !selected.empty()) {
    SweepConfig config = options.config;
    config.task_filter = [&selected](const TaskIdentity& task) {
      return selected.count(TaskKey(task)) > 0;
    };
    config.on_task_done = [log, &sink](const TaskIdentity& task,
                                       const EvalResult& result) {
      sink.Write([log, &task, &result] { return log->Append(task, result); });
    };
    // A failed task still produces a durable record — the failure
    // record is what lets merge quarantine the exact cell and lets
    // --retry-failed find the task again — and feeds the breaker.
    config.on_task_failed = [log, &sink,
                             &breaker](const TaskFailure& failure) {
      sink.Write([log, &failure] { return log->AppendFailure(failure); });
      breaker.Record();
    };
    // The moment the log fails permanently (or the failure breaker
    // trips), stop submitting tasks: results that can no longer be
    // persisted — or a sweep drowning in failures — are wasted work.
    // Tasks already in flight finish (and their appends fail fast).
    config.stop_requested = [&sink, &breaker] {
      return sink.failed() || breaker.tripped();
    };
    Counter* prepare_hits =
        MetricsRegistry::Global()->GetCounter("reuse.prepare_hits");
    const int64_t hits_before = prepare_hits->value();
    SweepOutcome outcome = run_sweep(config);
    stats.tasks_executed = outcome.tasks_run;
    stats.streams_prepared = outcome.streams_prepared;
    stats.prepare_cache_hits = prepare_hits->value() - hits_before;
    stats.tasks_failed = outcome.tasks_failed;
    for (const TaskFailure& failure : outcome.failures) {
      if (failure.kind == TaskFailureKind::kPrepare) ++prepare_failures;
    }
  }
  stats.append_retries = sink.retries();
  if (sink.failed()) {
    Status error = sink.first_error();
    return Status(error.code(),
                  StrFormat("shard %d/%d stopped: durable log '%s' failed "
                            "permanently after %lld task(s): ",
                            options.shard.index, options.shard.count,
                            options.log_path.c_str(),
                            static_cast<long long>(stats.tasks_executed)) +
                      error.message());
  }
  if (breaker.tripped()) {
    return Status::FailedPrecondition(StrFormat(
        "shard %d/%d stopped: %lld task failure(s) exceeded "
        "--max-task-failures=%lld; failure records are in '%s', re-run "
        "with --resume --retry-failed once the cause is fixed",
        options.shard.index, options.shard.count,
        static_cast<long long>(breaker.count()),
        static_cast<long long>(options.max_task_failures),
        options.log_path.c_str()));
  }
  // Every pending task is accounted for: executed (some possibly as
  // recorded failures) or quarantined with its dataset by a prepare
  // failure.
  OE_CHECK(stats.tasks_executed + prepare_failures ==
           static_cast<int64_t>(selected.size()));
  return stats;
}

}  // namespace

LogHeader MakeLogHeader(const TaskManifest& manifest,
                        const SweepConfig& config, const Shard& shard) {
  LogHeader header;
  header.base_seed = config.base_config.seed;
  header.scale = config.scale;
  header.repeats = config.repeats;
  header.epochs = config.base_config.epochs;
  header.manifest_fingerprint = manifest.Fingerprint();
  header.shard = shard;
  return header;
}

TaskManifest EntriesManifest(const std::vector<CorpusEntry>& entries,
                             const std::vector<std::string>& learners,
                             int repeats) {
  SweepGrid grid;
  for (const CorpusEntry& entry : entries) grid.datasets.push_back(entry.name);
  grid.learners = learners;
  grid.repeats = repeats;
  return TaskManifest::Build(std::move(grid));
}

Result<ShardRunStats> RunCorpusShard(const std::vector<CorpusEntry>& entries,
                                     const std::vector<std::string>& learners,
                                     const ShardRunOptions& options) {
  TaskManifest manifest =
      EntriesManifest(entries, learners, options.config.repeats);
  std::map<std::string, TaskShape> shapes;
  for (const CorpusEntry& entry : entries) {
    // The pipeline copies the spec's task/num_classes into the
    // prepared stream verbatim, so probing from the spec is exact.
    StreamSpec spec = SpecFromEntry(entry, options.config.scale);
    shapes[entry.name] = TaskShape{spec.task, spec.num_classes};
  }
  return RunShardImpl(manifest, options, shapes,
                      [&entries, &learners](const SweepConfig& config) {
                        return ParallelSweepEntries(entries, learners,
                                                    config);
                      });
}

Result<ShardRunStats> RunPreparedShard(
    const std::vector<PreparedStream>& streams,
    const std::vector<std::string>& dataset_order,
    const std::vector<std::string>& learners,
    const ShardRunOptions& options) {
  SweepGrid grid;
  grid.datasets = dataset_order;
  grid.learners = learners;
  grid.repeats = options.config.repeats;
  TaskManifest manifest = TaskManifest::Build(std::move(grid));
  std::map<std::string, TaskShape> shapes;
  for (const PreparedStream& stream : streams) {
    shapes[stream.name] = TaskShape{stream.task, stream.num_classes};
  }
  return RunShardImpl(manifest, options, shapes,
                      [&streams, &learners](const SweepConfig& config) {
                        return ParallelSweep(streams, learners, config);
                      });
}

}  // namespace sweep
}  // namespace oebench
