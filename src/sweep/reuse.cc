#include "sweep/reuse.h"

#include <algorithm>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "linalg/vector_ops.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace sweep {

namespace {

void AppendField(std::string* out, const char* tag, const std::string& v) {
  out->append(tag);
  out->push_back('=');
  // Length-prefix free-form strings so adjacent fields cannot blend.
  out->append(std::to_string(v.size()));
  out->push_back(':');
  out->append(v);
  out->push_back('|');
}

void AppendField(std::string* out, const char* tag, int64_t v) {
  out->append(tag);
  out->push_back('=');
  out->append(std::to_string(v));
  out->push_back('|');
}

void AppendField(std::string* out, const char* tag, uint64_t v) {
  out->append(tag);
  out->push_back('=');
  out->append(std::to_string(v));
  out->push_back('|');
}

void AppendField(std::string* out, const char* tag, double v) {
  out->append(tag);
  out->push_back('=');
  out->append(EncodeDouble(v));
  out->push_back('|');
}

int64_t EstimateBytes(const PreparedStream& stream) {
  return EstimatePreparedStreamBytes(stream);
}
int64_t EstimateBytes(const GeneratedStream& stream) {
  return EstimateGeneratedStreamBytes(stream);
}

}  // namespace

Status ParseReuseSpec(const std::string& text, ReuseOptions* out) {
  out->prepare = false;
  out->warmstart = false;
  if (text == "off" || text.empty()) return Status::OK();
  for (const std::string& part : Split(text, ',')) {
    if (part == "prepare") {
      out->prepare = true;
    } else if (part == "warmstart") {
      out->warmstart = true;
    } else {
      return Status::InvalidArgument(
          "bad --reuse component '" + part +
          "' (want off | prepare | warmstart | prepare,warmstart)");
    }
  }
  return Status::OK();
}

std::string FormatReuseSpec(const ReuseOptions& options) {
  if (options.prepare && options.warmstart) return "prepare,warmstart";
  if (options.prepare) return "prepare";
  if (options.warmstart) return "warmstart";
  return "off";
}

std::string SpecCacheKey(const StreamSpec& spec) {
  std::string key = "spec-v1|";
  AppendField(&key, "name", spec.name);
  AppendField(&key, "category", spec.category);
  AppendField(&key, "task", std::string(TaskTypeToString(spec.task)));
  AppendField(&key, "instances", spec.num_instances);
  AppendField(&key, "numeric",
              static_cast<int64_t>(spec.num_numeric_features));
  AppendField(&key, "categorical",
              static_cast<int64_t>(spec.num_categorical_features));
  AppendField(&key, "cats_per_feature",
              static_cast<int64_t>(spec.categories_per_feature));
  AppendField(&key, "classes", static_cast<int64_t>(spec.num_classes));
  AppendField(&key, "class_emergence", spec.class_emergence_fraction);
  AppendField(&key, "window", spec.window_size);
  AppendField(&key, "drift",
              std::string(DriftPatternToString(spec.drift_pattern)));
  AppendField(&key, "drift_mag", spec.drift_magnitude);
  AppendField(&key, "drift_period", spec.drift_period_fraction);
  AppendField(&key, "seasonal", spec.seasonal_amplitude);
  AppendField(&key, "noise", spec.noise_level);
  AppendField(&key, "missing", spec.base_missing_rate);
  AppendField(&key, "dropouts",
              static_cast<int64_t>(spec.dropouts.size()));
  for (const FeatureDropout& d : spec.dropouts) {
    AppendField(&key, "d.feature", static_cast<int64_t>(d.feature));
    AppendField(&key, "d.start", d.start_frac);
    AppendField(&key, "d.end", d.end_frac);
    AppendField(&key, "d.rate", d.missing_rate);
  }
  AppendField(&key, "anomalies",
              static_cast<int64_t>(spec.anomaly_events.size()));
  for (const AnomalyEvent& a : spec.anomaly_events) {
    AppendField(&key, "a.start", a.start_frac);
    AppendField(&key, "a.end", a.end_frac);
    AppendField(&key, "a.rate", a.rate);
    AppendField(&key, "a.feature", static_cast<int64_t>(a.feature));
    AppendField(&key, "a.magnitude", a.magnitude);
    AppendField(&key, "a.affected", static_cast<int64_t>(a.num_affected));
  }
  AppendField(&key, "point_rate", spec.point_anomaly_rate);
  AppendField(&key, "point_mag", spec.point_anomaly_magnitude);
  AppendField(&key, "seed", spec.seed);
  return key;
}

std::string PipelineCacheKey(const PipelineOptions& options) {
  std::string key = "pipeline-v1|";
  AppendField(&key, "imputer", options.imputer);
  AppendField(&key, "knn_k", static_cast<int64_t>(options.knn_k));
  AppendField(&key, "scope",
              static_cast<int64_t>(options.impute_scope));
  AppendField(&key, "window_factor", options.window_factor);
  AppendField(&key, "normalize",
              static_cast<int64_t>(options.normalize ? 1 : 0));
  AppendField(&key, "discard_above", options.discard_missing_above);
  AppendField(&key, "outliers", options.outlier_removal);
  AppendField(&key, "shuffle",
              static_cast<int64_t>(options.shuffle ? 1 : 0));
  AppendField(&key, "shuffle_seed", options.shuffle_seed);
  return key;
}

std::string PreparedCacheKey(const StreamSpec& spec,
                             const PipelineOptions& options,
                             const std::string& name_override) {
  std::string key = SpecCacheKey(spec);
  key += PipelineCacheKey(options);
  AppendField(&key, "name", name_override);
  return key;
}

int64_t EstimatePreparedStreamBytes(const PreparedStream& stream) {
  int64_t cells = 0;
  for (const WindowData& w : stream.windows) {
    cells += w.features.rows() * w.features.cols() +
             static_cast<int64_t>(w.targets.size());
  }
  int64_t names = 0;
  for (const std::string& n : stream.feature_names) {
    names += static_cast<int64_t>(n.size());
  }
  return cells * 8 + names + 4096;
}

int64_t EstimateGeneratedStreamBytes(const GeneratedStream& stream) {
  return stream.table.num_rows() * stream.table.num_columns() * 8 +
         static_cast<int64_t>(stream.true_outlier_rows.size() +
                              stream.true_drift_rows.size()) *
             8 +
         4096;
}

PreparedStreamCache* PreparedStreamCache::Global() {
  static PreparedStreamCache* cache = new PreparedStreamCache();
  return cache;
}

void PreparedStreamCache::set_byte_budget(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  EvictLocked("", "");
}

int64_t PreparedStreamCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

int64_t PreparedStreamCache::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_held_;
}

void PreparedStreamCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Only ready entries are in bytes_held_; in-flight slots stay (their
  // preparer will insert and the normal eviction applies).
  for (auto it = prepared_.begin(); it != prepared_.end();) {
    if (it->second->ready) {
      bytes_held_ -= it->second->bytes;
      it = prepared_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = generated_.begin(); it != generated_.end();) {
    if (it->second->ready) {
      bytes_held_ -= it->second->bytes;
      it = generated_.erase(it);
    } else {
      ++it;
    }
  }
  UpdateGaugeLocked();
}

void PreparedStreamCache::UpdateGaugeLocked() {
  MetricsRegistry::Global()->GetGauge("reuse.bytes_held")->Set(
      static_cast<double>(bytes_held_));
}

void PreparedStreamCache::EvictLocked(const std::string& keep_prepared,
                                      const std::string& keep_generated) {
  while (bytes_held_ > byte_budget_) {
    // Oldest ready entry across both maps, never the protected keys.
    uint64_t oldest = 0;
    int which = 0;  // 0 none, 1 prepared, 2 generated
    SlotMap<PreparedStream>::iterator pit;
    SlotMap<GeneratedStream>::iterator git;
    for (auto it = prepared_.begin(); it != prepared_.end(); ++it) {
      if (!it->second->ready || it->first == keep_prepared) continue;
      if (which == 0 || it->second->last_used < oldest) {
        oldest = it->second->last_used;
        which = 1;
        pit = it;
      }
    }
    for (auto it = generated_.begin(); it != generated_.end(); ++it) {
      if (!it->second->ready || it->first == keep_generated) continue;
      if (which == 0 || it->second->last_used < oldest) {
        oldest = it->second->last_used;
        which = 2;
        git = it;
      }
    }
    if (which == 0) break;
    bytes_held_ -= which == 1 ? pit->second->bytes : git->second->bytes;
    if (which == 1) {
      prepared_.erase(pit);
    } else {
      generated_.erase(git);
    }
    // Timing-dependent under concurrency (which entry is oldest when
    // pressure hits depends on scheduling), hence volatile.
    MetricsRegistry::Global()->GetVolatileCounter("reuse.evictions")
        ->Increment();
  }
  UpdateGaugeLocked();
}

template <typename T, typename PrepareFn>
Result<std::shared_ptr<const T>> PreparedStreamCache::GetOrRun(
    SlotMap<T>* slots, const std::string& key, const char* hit_counter,
    const char* miss_counter, PrepareFn prepare) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = slots->find(key);
    if (it != slots->end()) {
      std::shared_ptr<Slot<T>> slot = it->second;
      cv_.wait(lock, [&] { return slot->ready; });
      if (slot->failed) continue;  // retry as the preparer
      slot->last_used = ++tick_;
      metrics->GetCounter(hit_counter)->Increment();
      return slot->value;
    }
    // Single flight: claim the key, prepare outside the lock.
    std::shared_ptr<Slot<T>> slot = std::make_shared<Slot<T>>();
    (*slots)[key] = slot;
    metrics->GetCounter(miss_counter)->Increment();
    lock.unlock();
    Result<std::shared_ptr<const T>> result = prepare();
    lock.lock();
    if (!result.ok()) {
      // No negative caching: drop the slot so a later caller retries.
      slots->erase(key);
      slot->failed = true;
      slot->ready = true;
      cv_.notify_all();
      return result.status();
    }
    slot->value = *result;
    slot->bytes = slot->value != nullptr ? EstimateBytes(*slot->value) : 0;
    slot->last_used = ++tick_;
    slot->ready = true;
    bytes_held_ += slot->bytes;
    cv_.notify_all();
    // Evict around the fresh entry; if it alone exceeds the budget it
    // is returned uncached.
    EvictLocked(std::is_same<T, PreparedStream>::value ? key : "",
                std::is_same<T, PreparedStream>::value ? "" : key);
    if (bytes_held_ > byte_budget_) {
      auto self = slots->find(key);
      if (self != slots->end() && self->second == slot) {
        bytes_held_ -= slot->bytes;
        slots->erase(self);
        UpdateGaugeLocked();
      }
    }
    return *result;
  }
}

Result<std::shared_ptr<const GeneratedStream>>
PreparedStreamCache::GetOrGenerate(const StreamSpec& spec) {
  const std::string key = "gen|" + SpecCacheKey(spec);
  return GetOrRun<GeneratedStream>(
      &generated_, key, "reuse.generate_hits", "reuse.generate_misses",
      [&spec]() -> Result<std::shared_ptr<const GeneratedStream>> {
        Result<GeneratedStream> stream = GenerateStream(spec);
        if (!stream.ok()) return stream.status();
        return std::shared_ptr<const GeneratedStream>(
            std::make_shared<GeneratedStream>(std::move(*stream)));
      });
}

Result<std::shared_ptr<const PreparedStream>>
PreparedStreamCache::GetOrPrepare(const StreamSpec& spec,
                                  const PipelineOptions& options,
                                  const std::string& name_override) {
  const std::string key = PreparedCacheKey(spec, options, name_override);
  return GetOrRun<PreparedStream>(
      &prepared_, key, "reuse.prepare_hits", "reuse.prepare_misses",
      [this, &spec, &options,
       &name_override]() -> Result<std::shared_ptr<const PreparedStream>> {
        OE_ASSIGN_OR_RETURN(std::shared_ptr<const GeneratedStream> generated,
                            GetOrGenerate(spec));
        Result<PreparedStream> prepared =
            PrepareStream(*generated, options);
        if (!prepared.ok()) return prepared.status();
        if (!name_override.empty()) prepared->name = name_override;
        return std::shared_ptr<const PreparedStream>(
            std::make_shared<PreparedStream>(std::move(*prepared)));
      });
}

SnapshotStore* SnapshotStore::Global() {
  static SnapshotStore* store = new SnapshotStore();
  return store;
}

std::string SnapshotStore::Key(const std::string& dataset,
                               const std::string& learner, uint64_t seed,
                               const std::string& stage) {
  std::string key;
  AppendField(&key, "dataset", dataset);
  AppendField(&key, "learner", learner);
  AppendField(&key, "seed", seed);
  AppendField(&key, "stage", stage);
  return key;
}

void SnapshotStore::Put(const std::string& key, LearnerSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(key);
  if (it != snapshots_.end()) {
    bytes_held_ -= static_cast<int64_t>(it->second.payload.size());
  }
  bytes_held_ += static_cast<int64_t>(snapshot.payload.size());
  snapshots_[key] = std::move(snapshot);
}

bool SnapshotStore::Get(const std::string& key, LearnerSnapshot* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return false;
  *out = it->second;
  return true;
}

int64_t SnapshotStore::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_held_;
}

void SnapshotStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  bytes_held_ = 0;
}

namespace {

/// One cold run of the RunRepeated protocol: fresh learner at
/// (epochs = E, seed = base + rep), full RunPrequential. Kept exactly
/// in step with core/evaluator's RunRepeated body so the warm path's
/// fallback is bit-identical to it.
Result<EvalResult> ColdEpochRun(const std::string& learner_name,
                                const LearnerConfig& base_config,
                                int epochs, int rep,
                                const PreparedStream& stream) {
  LearnerConfig config = base_config;
  config.epochs = epochs;
  config.seed = base_config.seed + static_cast<uint64_t>(rep);
  OE_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamLearner> learner,
      MakeLearner(learner_name, config, stream.task, stream.num_classes));
  return RunPrequential(learner.get(), stream);
}

}  // namespace

std::vector<RepeatedResult> RunEpochGridRepeated(
    const std::string& learner_name, const LearnerConfig& base_config,
    const std::vector<int>& epoch_grid, const PreparedStream& stream,
    int repeats, bool warmstart) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  std::vector<RepeatedResult> out(epoch_grid.size());
  for (size_t g = 0; g < epoch_grid.size(); ++g) {
    out[g].learner = learner_name;
    out[g].dataset = stream.name;
  }
  if (epoch_grid.empty()) return out;

  // Grid indices in ascending-epoch order, so one donor pass visits
  // every snapshot point.
  std::vector<size_t> order(epoch_grid.size());
  for (size_t g = 0; g < order.size(); ++g) order[g] = g;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return epoch_grid[a] < epoch_grid[b];
  });

  bool can_fork = false;
  if (warmstart && !stream.windows.empty()) {
    can_fork = epoch_grid[order[0]] >= 1;
    if (can_fork) {
      Result<std::unique_ptr<StreamLearner>> probe = MakeLearner(
          learner_name, base_config, stream.task, stream.num_classes);
      can_fork = probe.ok() && (*probe)->SupportsEpochFork();
    }
  }
  if (warmstart && !can_fork) {
    metrics->GetCounter("reuse.warmstart_fallbacks")->Increment();
  }

  // Per-grid-entry accumulators, repeats in order — the same loss and
  // run order RunRepeated produces, so Mean/StdDev sum identically.
  std::vector<std::vector<double>> losses(epoch_grid.size());
  std::vector<std::vector<EvalResult>> runs(epoch_grid.size());
  std::vector<char> not_applicable(epoch_grid.size(), 0);

  for (int rep = 0; rep < repeats; ++rep) {
    if (!can_fork) {
      for (size_t g = 0; g < epoch_grid.size(); ++g) {
        Result<EvalResult> result = ColdEpochRun(
            learner_name, base_config, epoch_grid[g], rep, stream);
        if (!result.ok()) {
          not_applicable[g] = 1;
          continue;
        }
        losses[g].push_back(result->mean_loss);
        runs[g].push_back(std::move(*result));
      }
      continue;
    }

    // Donor: epochs = 1, the repeat's seed. k TrainWindow(window 0)
    // calls leave it in exactly the state an epochs = k learner holds
    // after window 0 — the persistent per-learner RNG carries across
    // TrainWindow calls (SupportsEpochFork's contract).
    LearnerConfig donor_config = base_config;
    donor_config.epochs = 1;
    donor_config.seed = base_config.seed + static_cast<uint64_t>(rep);
    Result<std::unique_ptr<StreamLearner>> donor_or = MakeLearner(
        learner_name, donor_config, stream.task, stream.num_classes);
    if (!donor_or.ok()) {
      for (size_t g = 0; g < epoch_grid.size(); ++g) not_applicable[g] = 1;
      continue;
    }
    StreamLearner* donor = donor_or->get();
    donor->Begin(stream);
    const WindowData& window0 = stream.windows[0];
    int trained = 0;
    for (size_t g : order) {
      const int epochs = epoch_grid[g];
      while (trained < epochs) {
        donor->TrainWindow(window0);
        ++trained;
        metrics->GetCounter("reuse.warmstart_window0_epochs")->Increment();
      }
      std::ostringstream payload;
      Status saved = donor->SaveState(&payload);
      LearnerSnapshot snapshot;
      snapshot.payload = payload.str();
      snapshot.windows_trained = 1;
      snapshot.peak_memory_bytes = donor->MemoryBytes();
      if (saved.ok()) {
        SnapshotStore::Global()->Put(
            SnapshotStore::Key(stream.name, learner_name,
                               donor_config.seed,
                               "window0-epochs=" + std::to_string(epochs)),
            snapshot);
      }
      LearnerConfig fork_config = base_config;
      fork_config.epochs = epochs;
      fork_config.seed = donor_config.seed;
      Result<std::unique_ptr<StreamLearner>> fork = MakeLearner(
          learner_name, fork_config, stream.task, stream.num_classes);
      Status loaded = Status::OK();
      if (saved.ok() && fork.ok()) {
        (*fork)->Begin(stream);
        std::istringstream in(snapshot.payload);
        loaded = (*fork)->LoadState(&in);
      }
      EvalResult result;
      if (saved.ok() && fork.ok() && loaded.ok()) {
        result = ResumePrequential(fork->get(), stream,
                                   snapshot.windows_trained,
                                   snapshot.peak_memory_bytes);
        metrics->GetCounter("reuse.warmstart_forks")->Increment();
      } else {
        // Snapshot machinery refused — replay this run cold; the
        // donor's progress is unaffected.
        metrics->GetCounter("reuse.warmstart_fallbacks")->Increment();
        Result<EvalResult> cold =
            ColdEpochRun(learner_name, base_config, epochs, rep, stream);
        if (!cold.ok()) {
          not_applicable[g] = 1;
          continue;
        }
        result = std::move(*cold);
      }
      losses[g].push_back(result.mean_loss);
      runs[g].push_back(std::move(result));
    }
  }

  for (size_t g = 0; g < epoch_grid.size(); ++g) {
    if (not_applicable[g]) {
      out[g].not_applicable = true;
      continue;
    }
    out[g].loss_mean = Mean(losses[g]);
    out[g].loss_stddev = StdDev(losses[g]);
    for (const EvalResult& run : runs[g]) {
      out[g].peak_memory_bytes =
          std::max(out[g].peak_memory_bytes, run.peak_memory_bytes);
    }
    out[g].throughput = AggregateThroughput(runs[g]);
  }
  return out;
}

}  // namespace sweep
}  // namespace oebench
