#ifndef OEBENCH_SWEEP_MANIFEST_H_
#define OEBENCH_SWEEP_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/parallel_eval.h"

namespace oebench {
namespace sweep {

/// The sweep subsystem partitions a (dataset x learner x repeat) grid
/// across processes, logs per-task results durably, and merges shard
/// logs back into the exact SweepOutcome an unsharded run produces.
/// The manifest is the foundation: the canonical, deterministic,
/// ordered task list every shard and every merge agrees on.

/// Definition of one sweep grid. Datasets and learners are in
/// canonical display order (corpus order / paper column order); the
/// task list is dataset-major, then learner, then repeat — exactly the
/// reassembly order of core/parallel_eval.
struct SweepGrid {
  std::vector<std::string> datasets;
  std::vector<std::string> learners;
  int repeats = 1;
};

/// One shard of a partitioned sweep: 0-based `index` of `count`.
struct Shard {
  int index = 0;
  int count = 1;
};

/// Stable string key of one task: "dataset|learner|repeat". This is
/// the identity the result log stores and resume/merge deduplicate on.
/// Dataset and learner names must not contain '|', tab or newline
/// (checked when the manifest is built).
std::string TaskKey(const TaskIdentity& task);

/// Parses "i/n" (0-based shard index). Rejects anything else,
/// including i >= n, negative values and trailing garbage.
bool ParseShard(std::string_view text, Shard* out);

class TaskManifest {
 public:
  /// Builds the canonical task list. Aborts (programming error) on
  /// empty datasets/learners, repeats < 1, duplicate names, or names
  /// containing the key/log delimiters.
  static TaskManifest Build(SweepGrid grid);

  const SweepGrid& grid() const { return grid_; }
  const std::vector<TaskIdentity>& tasks() const { return tasks_; }

  /// FNV-1a fingerprint of the grid (datasets, learners, repeats) —
  /// the "corpus hash" recorded in every result-log header so logs
  /// from different grids can never be merged together.
  uint64_t Fingerprint() const;

  /// Shard i of n owns the contiguous task span
  /// [floor(i*T/n), floor((i+1)*T/n)). Contiguous spans keep one
  /// dataset's tasks in as few shards as possible (each shard only
  /// generates + prepares the datasets it owns); the spans are
  /// exhaustive and pairwise disjoint for every n by construction,
  /// and sweep_test locks that in as a property test.
  std::pair<size_t, size_t> ShardSpan(const Shard& shard) const;

  /// The shard's tasks, in canonical order.
  std::vector<TaskIdentity> ShardTasks(const Shard& shard) const;

  /// Unique dataset names the shard's tasks touch, in canonical order
  /// — what a shard runner must prepare, and nothing more.
  std::vector<std::string> ShardDatasets(const Shard& shard) const;

 private:
  SweepGrid grid_;
  std::vector<TaskIdentity> tasks_;
};

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_MANIFEST_H_
