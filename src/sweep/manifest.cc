#include "sweep/manifest.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace oebench {
namespace sweep {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, std::string_view s) {
  hash = (hash ^ s.size()) * kFnvPrime;
  for (unsigned char c : s) {
    hash = (hash ^ c) * kFnvPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ ((v >> (8 * byte)) & 0xff)) * kFnvPrime;
  }
  return hash;
}

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == '|' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string TaskKey(const TaskIdentity& task) {
  return StrFormat("%s|%s|%d", task.dataset.c_str(), task.learner.c_str(),
                   task.repeat);
}

bool ParseShard(std::string_view text, Shard* out) {
  for (char c : text) {
    // Reject whitespace the lenient integer parser would strip: a
    // shard spec is a single exact token.
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return false;
  int64_t index = 0;
  int64_t count = 0;
  if (!ParseInt64(text.substr(0, slash), &index)) return false;
  if (!ParseInt64(text.substr(slash + 1), &count)) return false;
  if (count < 1 || index < 0 || index >= count) return false;
  out->index = static_cast<int>(index);
  out->count = static_cast<int>(count);
  return true;
}

TaskManifest TaskManifest::Build(SweepGrid grid) {
  OE_CHECK(!grid.datasets.empty());
  OE_CHECK(!grid.learners.empty());
  OE_CHECK(grid.repeats >= 1);
  std::set<std::string> seen;
  for (const std::string& name : grid.datasets) {
    OE_CHECK(ValidName(name)) << "bad dataset name: '" << name << "'";
    OE_CHECK(seen.insert(name).second) << "duplicate dataset: " << name;
  }
  seen.clear();
  for (const std::string& name : grid.learners) {
    OE_CHECK(ValidName(name)) << "bad learner name: '" << name << "'";
    OE_CHECK(seen.insert(name).second) << "duplicate learner: " << name;
  }

  TaskManifest manifest;
  manifest.grid_ = std::move(grid);
  manifest.tasks_.reserve(manifest.grid_.datasets.size() *
                          manifest.grid_.learners.size() *
                          static_cast<size_t>(manifest.grid_.repeats));
  for (const std::string& dataset : manifest.grid_.datasets) {
    for (const std::string& learner : manifest.grid_.learners) {
      for (int rep = 0; rep < manifest.grid_.repeats; ++rep) {
        manifest.tasks_.push_back(TaskIdentity{dataset, learner, rep});
      }
    }
  }
  return manifest;
}

uint64_t TaskManifest::Fingerprint() const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(grid_.datasets.size()));
  for (const std::string& name : grid_.datasets) hash = FnvMix(hash, name);
  hash = FnvMix(hash, static_cast<uint64_t>(grid_.learners.size()));
  for (const std::string& name : grid_.learners) hash = FnvMix(hash, name);
  hash = FnvMix(hash, static_cast<uint64_t>(grid_.repeats));
  return hash;
}

std::pair<size_t, size_t> TaskManifest::ShardSpan(const Shard& shard) const {
  OE_CHECK(shard.count >= 1);
  OE_CHECK(shard.index >= 0 && shard.index < shard.count);
  const size_t total = tasks_.size();
  const size_t n = static_cast<size_t>(shard.count);
  const size_t i = static_cast<size_t>(shard.index);
  return {total * i / n, total * (i + 1) / n};
}

std::vector<TaskIdentity> TaskManifest::ShardTasks(const Shard& shard) const {
  auto [begin, end] = ShardSpan(shard);
  return std::vector<TaskIdentity>(tasks_.begin() + begin,
                                   tasks_.begin() + end);
}

std::vector<std::string> TaskManifest::ShardDatasets(
    const Shard& shard) const {
  auto [begin, end] = ShardSpan(shard);
  std::vector<std::string> datasets;
  for (size_t i = begin; i < end; ++i) {
    if (datasets.empty() || datasets.back() != tasks_[i].dataset) {
      datasets.push_back(tasks_[i].dataset);
    }
  }
  return datasets;
}

}  // namespace sweep
}  // namespace oebench
