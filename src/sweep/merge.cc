#include "sweep/merge.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "linalg/vector_ops.h"

namespace oebench {
namespace sweep {

namespace {

/// The deterministic content of a row, rendered bit-exactly — what
/// duplicate rows (overlapping shard runs) must agree on. Timing
/// fields are deliberately absent: two executions of the same task
/// agree on everything else.
std::string DeterministicRowString(const LoggedRow& row) {
  if (row.not_applicable) return "na";
  const EvalResult& r = row.result;
  std::string out = StrFormat("%s\t%s\t%s\t%lld", r.learner.c_str(),
                              EncodeDouble(r.mean_loss).c_str(),
                              EncodeDouble(r.faded_loss).c_str(),
                              static_cast<long long>(r.peak_memory_bytes));
  for (double loss : r.per_window_loss) {
    out += '\t';
    out += EncodeDouble(loss);
  }
  return out;
}

}  // namespace

Result<MergeReport> MergeShardLogsReport(
    const TaskManifest& manifest, const LogHeader& expected,
    const std::vector<std::string>& paths, IoEnv* env) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard logs to merge");
  }

  std::set<std::string> manifest_keys;
  for (const TaskIdentity& task : manifest.tasks()) {
    manifest_keys.insert(TaskKey(task));
  }

  std::map<std::string, LoggedRow> by_key;
  std::map<std::string, TaskFailure> failed_by_key;
  for (const std::string& path : paths) {
    Result<ResultLogContents> log = ReadResultLog(path, env);
    if (!log.ok()) return log.status();
    if (!CompatibleHeaders(log->header, expected)) {
      return Status::FailedPrecondition(
          path + ": header [" + HeaderToString(log->header) +
          "] is not from this sweep [" + HeaderToString(expected) + "]");
    }
    if (log->dropped_lines > 0) {
      return Status::FailedPrecondition(
          path + ": " + StrFormat("%lld", static_cast<long long>(
                                              log->dropped_lines)) +
          " torn/malformed line(s); resume the shard before merging");
    }
    for (LoggedRow& row : log->rows) {
      std::string key = TaskKey(row.task);
      if (manifest_keys.find(key) == manifest_keys.end()) {
        return Status::FailedPrecondition(
            path + ": task '" + key + "' is not in the sweep manifest");
      }
      auto it = by_key.find(key);
      if (it != by_key.end()) {
        if (DeterministicRowString(it->second) !=
            DeterministicRowString(row)) {
          return Status::FailedPrecondition(
              path + ": task '" + key +
              "' conflicts with a row from another log");
        }
        continue;  // identical duplicate (e.g. a shard run twice)
      }
      by_key.emplace(std::move(key), std::move(row));
    }
    for (TaskFailure& failure : log->failures) {
      std::string key = TaskKey(failure.task);
      if (manifest_keys.find(key) == manifest_keys.end()) {
        return Status::FailedPrecondition(
            path + ": failed task '" + key +
            "' is not in the sweep manifest");
      }
      // First failure record per key wins; a run row (below) always
      // supersedes — it means some shard re-ran the task successfully.
      failed_by_key.emplace(std::move(key), std::move(failure));
    }
  }
  for (const auto& [key, row] : by_key) failed_by_key.erase(key);

  std::vector<std::string> missing;
  for (const std::string& key : manifest_keys) {
    if (by_key.find(key) == by_key.end() &&
        failed_by_key.find(key) == failed_by_key.end()) {
      missing.push_back(key);
    }
  }
  if (!missing.empty()) {
    std::string sample;
    for (size_t i = 0; i < missing.size() && i < 5; ++i) {
      sample += (i > 0 ? ", " : "") + missing[i];
    }
    return Status::FailedPrecondition(StrFormat(
        "incomplete coverage: %zu of %zu tasks missing (e.g. %s)",
        missing.size(), manifest_keys.size(), sample.c_str()));
  }

  // Reassemble, mirroring core/parallel_eval's canonical-order
  // aggregation exactly. Quarantined tasks (failure record, no run
  // row) become failed_runs on their cell, exactly like a task that
  // exploded inside a live sweep.
  const SweepGrid& grid = manifest.grid();
  MergeReport report;
  SweepOutcome& outcome = report.outcome;
  outcome.rows.resize(grid.datasets.size());
  for (size_t d = 0; d < grid.datasets.size(); ++d) {
    SweepRow& row = outcome.rows[d];
    row.dataset = grid.datasets[d];
    row.cells.resize(grid.learners.size());
    bool dataset_ran = false;
    for (size_t l = 0; l < grid.learners.size(); ++l) {
      SweepCell& cell = row.cells[l];
      cell.repeated.learner = grid.learners[l];
      cell.repeated.dataset = grid.datasets[d];
      int na_rows = 0;
      for (int rep = 0; rep < grid.repeats; ++rep) {
        TaskIdentity task{grid.datasets[d], grid.learners[l], rep};
        std::string key = TaskKey(task);
        auto failed = failed_by_key.find(key);
        if (failed != failed_by_key.end()) {
          ++cell.failed_runs;
          ++outcome.tasks_failed;
          // A prepare failure quarantines a task that never started;
          // everything else ran (and exploded), which the live engine
          // counts as a task run.
          if (failed->second.kind != TaskFailureKind::kPrepare) {
            ++outcome.tasks_run;
            dataset_ran = true;
          }
          outcome.failures.push_back(failed->second);
          continue;
        }
        const LoggedRow& logged = by_key.at(key);
        if (logged.not_applicable) {
          ++na_rows;
          continue;
        }
        cell.runs.push_back(logged.result);
      }
      if (na_rows != 0) {
        if (na_rows == grid.repeats) {
          cell.repeated.not_applicable = true;
          cell.runs.clear();
          ++outcome.pairs_skipped;
          continue;
        }
        return Status::FailedPrecondition(
            "pair (" + grid.datasets[d] + ", " + grid.learners[l] +
            ") is N/A for some repeats but not others");
      }
      if (cell.failed_runs > 0) ++report.quarantined_cells;
      if (cell.runs.empty()) continue;
      dataset_ran = true;
      outcome.tasks_run += static_cast<int64_t>(cell.runs.size());
      std::vector<double> losses;
      for (const EvalResult& run : cell.runs) {
        losses.push_back(run.mean_loss);
        cell.repeated.peak_memory_bytes = std::max(
            cell.repeated.peak_memory_bytes, run.peak_memory_bytes);
      }
      cell.repeated.loss_mean = Mean(losses);
      cell.repeated.loss_stddev = StdDev(losses);
      // Same pooled items/seconds formula as AggregateCell in
      // core/parallel_eval (logged rows recover items from the ratio).
      cell.repeated.throughput = AggregateThroughput(cell.runs);
    }
    if (dataset_ran) ++outcome.streams_prepared;
  }
  return report;
}

Result<SweepOutcome> MergeShardLogs(const TaskManifest& manifest,
                                    const LogHeader& expected,
                                    const std::vector<std::string>& paths,
                                    IoEnv* env) {
  Result<MergeReport> report =
      MergeShardLogsReport(manifest, expected, paths, env);
  if (!report.ok()) return report.status();
  if (report->outcome.tasks_failed > 0) {
    const TaskFailure& first = report->outcome.failures.front();
    return Status::FailedPrecondition(StrFormat(
        "%lld task(s) quarantined across %lld cell(s); first: %s "
        "[%s] %s — re-run the shard(s) with --resume --retry-failed, "
        "or merge with --allow-quarantined to accept a partial table",
        static_cast<long long>(report->outcome.tasks_failed),
        static_cast<long long>(report->quarantined_cells),
        TaskKey(first.task).c_str(), TaskFailureKindName(first.kind),
        first.message.c_str()));
  }
  return std::move(report->outcome);
}

std::string FormatQuarantineReport(const MergeReport& report) {
  if (report.outcome.tasks_failed == 0) return std::string();
  std::string out = StrFormat(
      "quarantine: %lld task(s) across %lld cell(s) have a failure "
      "record and no run:\n",
      static_cast<long long>(report.outcome.tasks_failed),
      static_cast<long long>(report.quarantined_cells));
  for (const TaskFailure& failure : report.outcome.failures) {
    out += StrFormat("  %s\t%s\t%.1fs\t%s\n",
                     TaskKey(failure.task).c_str(),
                     TaskFailureKindName(failure.kind),
                     failure.elapsed_seconds, failure.message.c_str());
  }
  return out;
}

std::string DumpOutcome(const SweepOutcome& outcome) {
  std::string out =
      StrFormat("sweep\ttasks_run=%lld\tpairs_skipped=%lld\n",
                static_cast<long long>(outcome.tasks_run),
                static_cast<long long>(outcome.pairs_skipped));
  // Failure accounting is emitted only when present, so a fault-free
  // outcome dumps byte-identically to what it always dumped.
  if (outcome.tasks_failed > 0) {
    out += StrFormat("tasks_failed\t%lld\n",
                     static_cast<long long>(outcome.tasks_failed));
    for (const TaskFailure& failure : outcome.failures) {
      // elapsed_seconds deliberately excluded: the dump compares only
      // deterministic fields, and wall-clock is not one.
      out += StrFormat("fail\t%s\t%s\t%d\t%s\t%s\n",
                       failure.task.dataset.c_str(),
                       failure.task.learner.c_str(), failure.task.repeat,
                       TaskFailureKindName(failure.kind),
                       failure.message.c_str());
    }
  }
  for (const SweepRow& row : outcome.rows) {
    out += StrFormat("dataset\t%s\n", row.dataset.c_str());
    for (const SweepCell& cell : row.cells) {
      if (cell.repeated.not_applicable) {
        out += StrFormat("na\t%s\n", cell.repeated.learner.c_str());
        continue;
      }
      if (cell.failed_runs > 0) {
        out += StrFormat("quarantined\t%s\t%lld\n",
                         cell.repeated.learner.c_str(),
                         static_cast<long long>(cell.failed_runs));
      }
      out += StrFormat("cell\t%s\t%s\t%s\t%lld\n",
                       cell.repeated.learner.c_str(),
                       EncodeDouble(cell.repeated.loss_mean).c_str(),
                       EncodeDouble(cell.repeated.loss_stddev).c_str(),
                       static_cast<long long>(
                           cell.repeated.peak_memory_bytes));
      for (const EvalResult& run : cell.runs) {
        out += StrFormat("run\t%s\t%s\t%s\t%lld\t%zu",
                         run.learner.c_str(),
                         EncodeDouble(run.mean_loss).c_str(),
                         EncodeDouble(run.faded_loss).c_str(),
                         static_cast<long long>(run.peak_memory_bytes),
                         run.per_window_loss.size());
        for (double loss : run.per_window_loss) {
          out += '\t';
          out += EncodeDouble(loss);
        }
        out += '\n';
      }
    }
  }
  return out;
}

std::string FormatOutcomeTable(const SweepOutcome& outcome) {
  std::string out = StrFormat("%-28s", "Dataset");
  if (!outcome.rows.empty()) {
    for (const SweepCell& cell : outcome.rows[0].cells) {
      out += StrFormat(" %13s", cell.repeated.learner.c_str());
    }
  }
  out += '\n';
  for (const SweepRow& row : outcome.rows) {
    out += StrFormat("%-28.28s", row.dataset.c_str());
    for (const SweepCell& cell : row.cells) {
      if (cell.repeated.not_applicable) {
        out += StrFormat(" %13s", "N/A");
      } else if (cell.failed_runs > 0) {
        // Quarantined cell: aggregates over a partial cell would look
        // like real numbers, so print an unmistakable marker instead.
        out += StrFormat(" %13s",
                         StrFormat("FAILED(%lld)",
                                   static_cast<long long>(cell.failed_runs))
                             .c_str());
      } else {
        out += StrFormat(" %13s",
                         StrFormat("%.3f±%.3f", cell.repeated.loss_mean,
                                   cell.repeated.loss_stddev)
                             .c_str());
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace sweep
}  // namespace oebench
