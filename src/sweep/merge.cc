#include "sweep/merge.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "linalg/vector_ops.h"

namespace oebench {
namespace sweep {

namespace {

/// The deterministic content of a row, rendered bit-exactly — what
/// duplicate rows (overlapping shard runs) must agree on. Timing
/// fields are deliberately absent: two executions of the same task
/// agree on everything else.
std::string DeterministicRowString(const LoggedRow& row) {
  if (row.not_applicable) return "na";
  const EvalResult& r = row.result;
  std::string out = StrFormat("%s\t%s\t%s\t%lld", r.learner.c_str(),
                              EncodeDouble(r.mean_loss).c_str(),
                              EncodeDouble(r.faded_loss).c_str(),
                              static_cast<long long>(r.peak_memory_bytes));
  for (double loss : r.per_window_loss) {
    out += '\t';
    out += EncodeDouble(loss);
  }
  return out;
}

}  // namespace

Result<SweepOutcome> MergeShardLogs(const TaskManifest& manifest,
                                    const LogHeader& expected,
                                    const std::vector<std::string>& paths,
                                    IoEnv* env) {
  if (paths.empty()) {
    return Status::InvalidArgument("no shard logs to merge");
  }

  std::set<std::string> manifest_keys;
  for (const TaskIdentity& task : manifest.tasks()) {
    manifest_keys.insert(TaskKey(task));
  }

  std::map<std::string, LoggedRow> by_key;
  for (const std::string& path : paths) {
    Result<ResultLogContents> log = ReadResultLog(path, env);
    if (!log.ok()) return log.status();
    if (!CompatibleHeaders(log->header, expected)) {
      return Status::FailedPrecondition(
          path + ": header [" + HeaderToString(log->header) +
          "] is not from this sweep [" + HeaderToString(expected) + "]");
    }
    if (log->dropped_lines > 0) {
      return Status::FailedPrecondition(
          path + ": " + StrFormat("%lld", static_cast<long long>(
                                              log->dropped_lines)) +
          " torn/malformed line(s); resume the shard before merging");
    }
    for (LoggedRow& row : log->rows) {
      std::string key = TaskKey(row.task);
      if (manifest_keys.find(key) == manifest_keys.end()) {
        return Status::FailedPrecondition(
            path + ": task '" + key + "' is not in the sweep manifest");
      }
      auto it = by_key.find(key);
      if (it != by_key.end()) {
        if (DeterministicRowString(it->second) !=
            DeterministicRowString(row)) {
          return Status::FailedPrecondition(
              path + ": task '" + key +
              "' conflicts with a row from another log");
        }
        continue;  // identical duplicate (e.g. a shard run twice)
      }
      by_key.emplace(std::move(key), std::move(row));
    }
  }

  std::vector<std::string> missing;
  for (const std::string& key : manifest_keys) {
    if (by_key.find(key) == by_key.end()) missing.push_back(key);
  }
  if (!missing.empty()) {
    std::string sample;
    for (size_t i = 0; i < missing.size() && i < 5; ++i) {
      sample += (i > 0 ? ", " : "") + missing[i];
    }
    return Status::FailedPrecondition(StrFormat(
        "incomplete coverage: %zu of %zu tasks missing (e.g. %s)",
        missing.size(), manifest_keys.size(), sample.c_str()));
  }

  // Reassemble, mirroring core/parallel_eval's canonical-order
  // aggregation exactly.
  const SweepGrid& grid = manifest.grid();
  SweepOutcome outcome;
  outcome.rows.resize(grid.datasets.size());
  for (size_t d = 0; d < grid.datasets.size(); ++d) {
    SweepRow& row = outcome.rows[d];
    row.dataset = grid.datasets[d];
    row.cells.resize(grid.learners.size());
    bool dataset_ran = false;
    for (size_t l = 0; l < grid.learners.size(); ++l) {
      SweepCell& cell = row.cells[l];
      cell.repeated.learner = grid.learners[l];
      cell.repeated.dataset = grid.datasets[d];
      int na_rows = 0;
      for (int rep = 0; rep < grid.repeats; ++rep) {
        TaskIdentity task{grid.datasets[d], grid.learners[l], rep};
        const LoggedRow& logged = by_key.at(TaskKey(task));
        if (logged.not_applicable) {
          ++na_rows;
          continue;
        }
        cell.runs.push_back(logged.result);
      }
      if (na_rows == grid.repeats) {
        cell.repeated.not_applicable = true;
        cell.runs.clear();
        ++outcome.pairs_skipped;
        continue;
      }
      if (na_rows != 0) {
        return Status::FailedPrecondition(
            "pair (" + grid.datasets[d] + ", " + grid.learners[l] +
            ") is N/A for some repeats but not others");
      }
      dataset_ran = true;
      outcome.tasks_run += static_cast<int64_t>(cell.runs.size());
      std::vector<double> losses;
      for (const EvalResult& run : cell.runs) {
        losses.push_back(run.mean_loss);
        cell.repeated.throughput += run.throughput;
        cell.repeated.peak_memory_bytes = std::max(
            cell.repeated.peak_memory_bytes, run.peak_memory_bytes);
      }
      cell.repeated.loss_mean = Mean(losses);
      cell.repeated.loss_stddev = StdDev(losses);
      cell.repeated.throughput /= static_cast<double>(cell.runs.size());
    }
    if (dataset_ran) ++outcome.streams_prepared;
  }
  return outcome;
}

std::string DumpOutcome(const SweepOutcome& outcome) {
  std::string out =
      StrFormat("sweep\ttasks_run=%lld\tpairs_skipped=%lld\n",
                static_cast<long long>(outcome.tasks_run),
                static_cast<long long>(outcome.pairs_skipped));
  for (const SweepRow& row : outcome.rows) {
    out += StrFormat("dataset\t%s\n", row.dataset.c_str());
    for (const SweepCell& cell : row.cells) {
      if (cell.repeated.not_applicable) {
        out += StrFormat("na\t%s\n", cell.repeated.learner.c_str());
        continue;
      }
      out += StrFormat("cell\t%s\t%s\t%s\t%lld\n",
                       cell.repeated.learner.c_str(),
                       EncodeDouble(cell.repeated.loss_mean).c_str(),
                       EncodeDouble(cell.repeated.loss_stddev).c_str(),
                       static_cast<long long>(
                           cell.repeated.peak_memory_bytes));
      for (const EvalResult& run : cell.runs) {
        out += StrFormat("run\t%s\t%s\t%s\t%lld\t%zu",
                         run.learner.c_str(),
                         EncodeDouble(run.mean_loss).c_str(),
                         EncodeDouble(run.faded_loss).c_str(),
                         static_cast<long long>(run.peak_memory_bytes),
                         run.per_window_loss.size());
        for (double loss : run.per_window_loss) {
          out += '\t';
          out += EncodeDouble(loss);
        }
        out += '\n';
      }
    }
  }
  return out;
}

std::string FormatOutcomeTable(const SweepOutcome& outcome) {
  std::string out = StrFormat("%-28s", "Dataset");
  if (!outcome.rows.empty()) {
    for (const SweepCell& cell : outcome.rows[0].cells) {
      out += StrFormat(" %13s", cell.repeated.learner.c_str());
    }
  }
  out += '\n';
  for (const SweepRow& row : outcome.rows) {
    out += StrFormat("%-28.28s", row.dataset.c_str());
    for (const SweepCell& cell : row.cells) {
      if (cell.repeated.not_applicable) {
        out += StrFormat(" %13s", "N/A");
      } else {
        out += StrFormat(" %13s",
                         StrFormat("%.3f±%.3f", cell.repeated.loss_mean,
                                   cell.repeated.loss_stddev)
                             .c_str());
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace sweep
}  // namespace oebench
