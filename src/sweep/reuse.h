#ifndef OEBENCH_SWEEP_REUSE_H_
#define OEBENCH_SWEEP_REUSE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_spec.h"

namespace oebench {
namespace sweep {

/// Cross-cell computation reuse (DESIGN.md "Computation reuse"): a
/// memory-bounded cache of immutable prepared streams shared across
/// sweeps and ablation grids, plus warm-start model snapshots that let
/// epoch-grid ablations fork every grid value from one trained prefix.
/// Everything here is *work elision*, never result change: with reuse
/// on, result logs and deterministic counters stay bit-identical to the
/// reuse-off run (tests/reuse_equivalence_test.cc is the proof).
///
/// Metrics (common/metrics.h contract):
///   reuse.prepare_hits / reuse.prepare_misses     deterministic counters
///   reuse.generate_hits / reuse.generate_misses   deterministic counters
///   reuse.warmstart_forks / reuse.warmstart_fallbacks
///   reuse.warmstart_window0_epochs                deterministic counters
///   reuse.evictions                               volatile counter
///   reuse.bytes_held                              gauge
/// The prepare/generate hit-miss counts are deterministic for a fixed
/// workload as long as the byte budget holds the working set (the
/// default); under eviction pressure, which entry is resident when a
/// request lands depends on scheduling, so tiny-budget runs should not
/// assert on them.

/// Parses a --reuse flag value: "off" (both features disabled) or a
/// comma-separated subset of {"prepare", "warmstart"}. Only the two
/// feature bits of `out` are written; the byte budget is left alone.
Status ParseReuseSpec(const std::string& text, ReuseOptions* out);

/// Inverse of ParseReuseSpec ("off", "prepare", "warmstart", or
/// "prepare,warmstart") — used to propagate the flag to child shards.
std::string FormatReuseSpec(const ReuseOptions& options);

/// Exact (collision-free) cache key of a stream spec: every StreamSpec
/// field, length-prefixed lists included, with doubles rendered as their
/// 16-hex IEEE-754 bit pattern. Two specs map to the same key iff they
/// generate the same stream, so "same dataset name, different config"
/// can never alias.
std::string SpecCacheKey(const StreamSpec& spec);

/// Exact cache key of the preprocessing configuration (every
/// PipelineOptions field, doubles as bit patterns).
std::string PipelineCacheKey(const PipelineOptions& options);

/// Key of one prepared stream: spec key + pipeline key + the display
/// name override (the name lands inside EvalResult rows, so streams
/// prepared under different names must not alias).
std::string PreparedCacheKey(const StreamSpec& spec,
                             const PipelineOptions& options,
                             const std::string& name_override);

/// Working-set estimates used for the cache's byte accounting. These
/// count the dominant dense buffers (windows / table cells at 8 bytes a
/// cell) plus a small fixed overhead; exactness is not required, only
/// monotonicity in the data size.
int64_t EstimatePreparedStreamBytes(const PreparedStream& stream);
int64_t EstimateGeneratedStreamBytes(const GeneratedStream& stream);

/// Memory-bounded, process-global cache of prepared (and generated)
/// streams, keyed by the exact-encoding keys above. Entries are handed
/// out as shared_ptr<const T>: immutable, copy-on-write-free sharing —
/// concurrent sweep tasks on the same dataset all read one buffer, and
/// an entry evicted while still in use simply lives on until its last
/// consumer drops the reference.
///
/// Concurrency: single mutex + condition_variable with single-flight
/// semantics. The first requester of a key prepares it (outside the
/// lock); concurrent requesters of the same key wait and count as hits.
/// A failed prepare erases the slot (no negative caching) and each
/// waiter retries as the preparer, so a transient failure does not
/// poison the key while a deterministic one fails each caller with the
/// same Status.
///
/// Eviction: LRU by a monotone use tick, run after each insert, never
/// touching the entry just inserted — unless that entry alone exceeds
/// the whole budget, in which case it is returned to the caller but not
/// retained ("drop uncached").
class PreparedStreamCache {
 public:
  explicit PreparedStreamCache(int64_t byte_budget = 256ll << 20)
      : byte_budget_(byte_budget) {}

  /// The process-wide cache the sweep engine and benches share.
  static PreparedStreamCache* Global();

  /// Generation + preprocessing with caching. `name_override`, when
  /// non-empty, is the prepared stream's display name (Table 3 short
  /// names); it participates in the key. Generation is routed through
  /// GetOrGenerate, so two pipeline configs over one spec (the
  /// window-size ablation) share a single generated stream.
  Result<std::shared_ptr<const PreparedStream>> GetOrPrepare(
      const StreamSpec& spec, const PipelineOptions& options,
      const std::string& name_override = "");

  /// Generation only, with caching.
  Result<std::shared_ptr<const GeneratedStream>> GetOrGenerate(
      const StreamSpec& spec);

  void set_byte_budget(int64_t bytes);
  int64_t byte_budget() const;
  /// Bytes of all resident entries (estimates; see EstimateBytes).
  int64_t bytes_held() const;
  /// Drops every resident entry (tests; outstanding shared_ptrs stay
  /// valid). In-flight prepares are unaffected.
  void Clear();

 private:
  template <typename T>
  struct Slot {
    bool ready = false;
    /// Set with `ready` when the prepare failed; the slot is already
    /// out of the map and waiters retry as preparers.
    bool failed = false;
    std::shared_ptr<const T> value;
    int64_t bytes = 0;
    uint64_t last_used = 0;
  };

  template <typename T>
  using SlotMap = std::map<std::string, std::shared_ptr<Slot<T>>>;

  /// Shared single-flight lookup/insert/complete machinery for the two
  /// slot maps; see reuse.cc.
  template <typename T, typename PrepareFn>
  Result<std::shared_ptr<const T>> GetOrRun(SlotMap<T>* slots,
                                            const std::string& key,
                                            const char* hit_counter,
                                            const char* miss_counter,
                                            PrepareFn prepare);

  void EvictLocked(const std::string& keep_prepared,
                   const std::string& keep_generated);
  void UpdateGaugeLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t byte_budget_;
  int64_t bytes_held_ = 0;
  uint64_t tick_ = 0;
  SlotMap<PreparedStream> prepared_;
  SlotMap<GeneratedStream> generated_;
};

/// One warm-start snapshot: a StreamLearner::SaveState payload plus the
/// bookkeeping ResumePrequential needs to continue bit-identically.
struct LearnerSnapshot {
  std::string payload;
  /// Windows already trained into the payload (the resume point).
  size_t windows_trained = 0;
  /// Peak StreamLearner::MemoryBytes over the trained prefix.
  int64_t peak_memory_bytes = 0;
};

/// Process-global store of warm-start snapshots, keyed by the run
/// identity that seeded them — so a snapshot can never leak across
/// seeds: the key embeds the exact LearnerConfig::seed of the run
/// (identity-derived via TaskSeed or the RunRepeated base+rep
/// protocol), the dataset, the learner, and a free-form stage tag.
class SnapshotStore {
 public:
  static SnapshotStore* Global();

  /// Length-prefixed fields + the exact decimal seed:
  /// "dataset=4:ROOM|learner=8:Naive-NN|seed=7|stage=7:window0|".
  static std::string Key(const std::string& dataset,
                         const std::string& learner, uint64_t seed,
                         const std::string& stage);

  void Put(const std::string& key, LearnerSnapshot snapshot);
  bool Get(const std::string& key, LearnerSnapshot* out) const;
  int64_t bytes_held() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, LearnerSnapshot> snapshots_;
  int64_t bytes_held_ = 0;
};

/// Runs the epoch-grid ablation (bench_fig10's shape) for one learner
/// on one stream: for each E in `epoch_grid`, the RunRepeated protocol
/// with base_config.epochs = E — seeds base_config.seed + rep, fresh
/// learner per run. With `warmstart` false this is exactly a loop of
/// RunRepeated calls. With `warmstart` true and a learner reporting
/// SupportsEpochFork, each repeat trains one donor (epochs = 1) on the
/// warm-up window up to max(grid) epochs, snapshotting at every grid
/// value; each grid run then forks from its snapshot and resumes at
/// window 1 — bit-identical losses (the donor's persistent RNG makes k
/// epochs-1 windows equal one epochs-k window) for the cost of
/// max(grid) instead of sum(grid) warm-up epochs per repeat. Learners
/// without the fork property (or grids with values < 1, or empty
/// streams) fall back to the cold path, counted in
/// reuse.warmstart_fallbacks.
///
/// Returns one RepeatedResult per grid entry, in grid order.
std::vector<RepeatedResult> RunEpochGridRepeated(
    const std::string& learner_name, const LearnerConfig& base_config,
    const std::vector<int>& epoch_grid, const PreparedStream& stream,
    int repeats, bool warmstart);

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_REUSE_H_
