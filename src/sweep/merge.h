#ifndef OEBENCH_SWEEP_MERGE_H_
#define OEBENCH_SWEEP_MERGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/parallel_eval.h"
#include "sweep/manifest.h"
#include "sweep/result_log.h"

namespace oebench {
namespace sweep {

/// A merge that tolerates quarantined tasks: the reassembled outcome
/// plus an accounting of every manifest task whose only record is a
/// v2 failure record. `outcome.failures` holds those records in
/// canonical task order, `outcome.tasks_failed` counts them, and each
/// affected cell carries `failed_runs > 0` (its aggregates cover only
/// the repeats that did run — the same partial-cell shape the live
/// engine reports when a task explodes mid-sweep).
struct MergeReport {
  SweepOutcome outcome;
  /// Cells with at least one quarantined repeat.
  int64_t quarantined_cells = 0;
};

/// Reads any set of shard logs and reassembles the exact SweepOutcome
/// an unsharded sweep of the manifest produces: rows in canonical
/// dataset order, cells in learner order, per-cell runs in repeat
/// order, and RepeatedResult aggregates recomputed with the same
/// Mean/StdDev/max formulas core/parallel_eval uses. All deterministic
/// fields are bit-identical to the unsharded run; the wall-clock
/// fields (train/test seconds, throughput) are whatever the shard that
/// ran each task measured — per-execution by nature, and excluded from
/// DumpOutcome below for exactly that reason.
///
/// Validation, all fatal:
///  - every log's header must be compatible with `expected`
///    (same base seed, scale, repeats, epochs, manifest fingerprint —
///    the writer's shard and format version may differ);
///  - coverage must be exact: every manifest task appears in some log
///    — as a run/N/A row, or as a v2 failure record (the task is then
///    quarantined, not missing) — and no log contains a task outside
///    the manifest;
///  - duplicates (overlapping shard runs) must agree bit-for-bit on
///    the deterministic fields; a run row always supersedes a failure
///    record for the same task (a --retry-failed rescue merged
///    alongside the stale log it rescued);
///  - a (dataset, learner) pair must be uniformly N/A or uniformly run
///    across its repeats.
/// `env` is the I/O environment the logs are read through (null =
/// IoEnv::Default()); fault-injection tests read through the same env
/// they wrote through.
Result<MergeReport> MergeShardLogsReport(
    const TaskManifest& manifest, const LogHeader& expected,
    const std::vector<std::string>& paths, IoEnv* env = nullptr);

/// Strict merge: MergeShardLogsReport, then a non-OK Status if any
/// task is quarantined. This is what callers that need the complete
/// grid (selfcheck, bit-identity comparisons) use; the sweep CLI uses
/// the report form so `--allow-quarantined` can render partial tables.
Result<SweepOutcome> MergeShardLogs(const TaskManifest& manifest,
                                    const LogHeader& expected,
                                    const std::vector<std::string>& paths,
                                    IoEnv* env = nullptr);

/// Human-readable quarantine report: one line per quarantined task
/// (cell identity, failure kind, elapsed, message) plus a summary
/// line. Empty string when nothing is quarantined.
std::string FormatQuarantineReport(const MergeReport& report);

/// Canonical full-precision dump of a SweepOutcome's deterministic
/// fields (per-run mean/faded/per-window losses as bit patterns, peak
/// memory, aggregates, N/A cells, task counts). Two sweeps of the same
/// grid are equivalent iff their dumps are byte-identical — this is
/// the string the shard-vs-unsharded tests and `--selfcheck` compare.
std::string DumpOutcome(const SweepOutcome& outcome);

/// Human loss table (dataset rows x learner columns, "mean±std" cells,
/// N/A support) — what `oebench_sweep` prints after a merge. A
/// quarantined cell (failed_runs > 0) prints a distinct "FAILED"
/// marker instead of an aggregate computed from a partial cell.
std::string FormatOutcomeTable(const SweepOutcome& outcome);

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_MERGE_H_
