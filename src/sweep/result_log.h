#ifndef OEBENCH_SWEEP_RESULT_LOG_H_
#define OEBENCH_SWEEP_RESULT_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/io_env.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "sweep/manifest.h"

namespace oebench {
namespace sweep {

/// Durable, append-only result log: one line per finished task,
/// written (and flushed) the moment the task completes, so a killed
/// shard loses at most the task it was computing. Text format,
/// versioned; doubles are serialised as their 16-hex-digit IEEE-754
/// bit pattern so a round trip is bit-exact — including NaN payloads,
/// infinities and -0.0 — which is what makes merged sweeps
/// byte-identical to unsharded ones.
///
/// v1 layout (tab-separated):
///   oebench-sweep-log<TAB>v1
///   meta<TAB>base_seed<TAB><decimal u64>
///   meta<TAB>scale<TAB><16-hex double bits>
///   meta<TAB>repeats<TAB><decimal>
///   meta<TAB>epochs<TAB><decimal>
///   meta<TAB>manifest<TAB><16-hex fingerprint>
///   meta<TAB>shard<TAB><i>/<n>
///   run<TAB>dataset<TAB>learner<TAB>repeat<TAB>display_name<TAB>mean
///      <TAB>faded<TAB>throughput<TAB>peak_mem<TAB>train_s<TAB>test_s
///      <TAB>n_windows<TAB>w0,w1,...      (one line; "-" when no windows)
///   na<TAB>dataset<TAB>learner<TAB>repeat
///
/// v2 adds exactly one record type — the failure record the sweep
/// engine's failure domain emits for a task that completed *without* a
/// result (see core/parallel_eval's TaskFailure):
///   fail<TAB>dataset<TAB>learner<TAB>repeat<TAB>kind
///      <TAB>elapsed_s (16-hex)<TAB>message (tabs/newlines sanitised)
/// Everything else is byte-identical to v1, and v1 files still read
/// back exactly (a "fail" line inside a v1 file is malformed and
/// dropped, like any other unknown record). New logs are written as
/// v2; v1 and v2 logs of the same sweep are mutually compatible, so
/// old shard logs keep merging.
///
/// A torn trailing line (crash mid-write) fails field validation and
/// is ignored by the reader; resume then compacts the file and re-runs
/// exactly the tasks without a valid row.
struct LogHeader {
  int version = 2;
  uint64_t base_seed = 0;
  double scale = 0.0;
  int repeats = 1;
  /// base_config.epochs actually used — the one hyper-parameter the
  /// bench drivers vary between sweeps, recorded so their logs cannot
  /// be cross-merged by mistake.
  int epochs = 0;
  /// TaskManifest::Fingerprint() of the grid.
  uint64_t manifest_fingerprint = 0;
  /// The writer's shard (informational; ignored by compatibility).
  Shard shard;
};

/// True when two logs belong to the same sweep: every field equal
/// except the writer's shard and the format version (v1 and v2 differ
/// only by the additive failure record, so they cross-merge safely).
bool CompatibleHeaders(const LogHeader& a, const LogHeader& b);

/// Human-readable one-line rendering (error messages, CLI summaries).
std::string HeaderToString(const LogHeader& header);

struct LoggedRow {
  TaskIdentity task;
  bool not_applicable = false;
  /// Unset when not_applicable.
  EvalResult result;
};

struct ResultLogContents {
  LogHeader header;
  std::vector<LoggedRow> rows;  // file order; only fully valid rows
  /// v2 failure records, file order. Empty for v1 files.
  std::vector<TaskFailure> failures;
  int64_t dropped_lines = 0;    // torn or malformed lines ignored
};

/// Bit-exact double codec used by the log (exposed for tests).
std::string EncodeDouble(double value);
bool DecodeDouble(std::string_view text, double* out);

/// Row codec (exposed for tests). FormatRow's output has no trailing
/// newline; ParseRow rejects any line that does not decode completely.
std::string FormatRow(const LoggedRow& row);
bool ParseRow(std::string_view line, LoggedRow* out);

/// Failure-record codec (v2). FormatFailureRow sanitises the message
/// (tabs/newlines become spaces) so the record stays one line;
/// elapsed_seconds round-trips bit-exactly via the 16-hex codec.
std::string FormatFailureRow(const TaskFailure& failure);
bool ParseFailureRow(std::string_view line, TaskFailure* out);

/// Reads and validates a whole log. Fails on unreadable files or
/// bad/missing headers; malformed rows are dropped (counted), never
/// fatal — a crash-truncated log is still a valid resume point.
/// All I/O goes through `env` (null = IoEnv::Default()).
Result<ResultLogContents> ReadResultLog(const std::string& path,
                                        IoEnv* env = nullptr);

class ResultLogWriter {
 public:
  /// Creates the log with the given header. With `resume`, an existing
  /// file is first read back: its header must be compatible, its valid
  /// rows are kept (the file is compacted in place via a temp file +
  /// rename) and their keys are reported by done(); a missing file
  /// falls back to a fresh log. Without `resume` an existing file is
  /// overwritten. All I/O goes through `env` (null = IoEnv::Default()),
  /// so fault-injecting environments can hit the compaction path too.
  ///
  /// Failure records found during resume: with `retry_failed` they are
  /// compacted *away*, so exactly the failed tasks re-execute; without
  /// it they are kept and their keys reported by failed(), so a plain
  /// resume does not grind through known-bad tasks again. A key that
  /// has both a failure record and a valid row (a --retry-failed
  /// rescue that crashed after re-running it) counts as done — the
  /// stale failure record is dropped.
  static Result<std::unique_ptr<ResultLogWriter>> Open(
      const std::string& path, const LogHeader& header, bool resume,
      IoEnv* env = nullptr, bool retry_failed = false);

  ~ResultLogWriter();

  /// Task keys already present when the log was opened for resume.
  const std::set<std::string>& done() const { return done_; }

  /// Task keys with a (kept) failure record when the log was opened
  /// for resume. Disjoint from done().
  const std::set<std::string>& failed() const { return failed_; }

  /// Appends one row and flushes. Thread-safe: this is the
  /// SweepConfig::on_task_done sink and runs on pool workers.
  ///
  /// Failure contract: kUnavailable means the row did not land (or may
  /// be durable but is safe to write again — the reader and merge
  /// tolerate bit-identical duplicate rows), so the *whole append* can
  /// simply be retried; the shard runner does so with bounded backoff.
  /// Any other failure is permanent (torn write, ENOSPC, dead env) and
  /// must propagate: recovery is resume-with-compaction, not retry.
  Status Append(const TaskIdentity& task, const EvalResult& result);
  Status AppendNotApplicable(const TaskIdentity& task);

  /// Appends one v2 failure record and flushes. Same thread-safety and
  /// failure contract as Append; this is the SweepConfig::on_task_failed
  /// sink.
  Status AppendFailure(const TaskFailure& failure);

 private:
  ResultLogWriter() = default;
  Status AppendLine(const std::string& line);

  std::unique_ptr<WritableFile> file_;
  std::mutex mu_;
  std::set<std::string> done_;
  std::set<std::string> failed_;
};

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_RESULT_LOG_H_
