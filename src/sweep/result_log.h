#ifndef OEBENCH_SWEEP_RESULT_LOG_H_
#define OEBENCH_SWEEP_RESULT_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/io_env.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "sweep/manifest.h"

namespace oebench {
namespace sweep {

/// Durable, append-only result log: one line per finished task,
/// written (and flushed) the moment the task completes, so a killed
/// shard loses at most the task it was computing. Text format,
/// versioned; doubles are serialised as their 16-hex-digit IEEE-754
/// bit pattern so a round trip is bit-exact — including NaN payloads,
/// infinities and -0.0 — which is what makes merged sweeps
/// byte-identical to unsharded ones.
///
/// v1 layout (tab-separated):
///   oebench-sweep-log<TAB>v1
///   meta<TAB>base_seed<TAB><decimal u64>
///   meta<TAB>scale<TAB><16-hex double bits>
///   meta<TAB>repeats<TAB><decimal>
///   meta<TAB>epochs<TAB><decimal>
///   meta<TAB>manifest<TAB><16-hex fingerprint>
///   meta<TAB>shard<TAB><i>/<n>
///   run<TAB>dataset<TAB>learner<TAB>repeat<TAB>display_name<TAB>mean
///      <TAB>faded<TAB>throughput<TAB>peak_mem<TAB>train_s<TAB>test_s
///      <TAB>n_windows<TAB>w0,w1,...      (one line; "-" when no windows)
///   na<TAB>dataset<TAB>learner<TAB>repeat
///
/// A torn trailing line (crash mid-write) fails field validation and
/// is ignored by the reader; resume then compacts the file and re-runs
/// exactly the tasks without a valid row.
struct LogHeader {
  int version = 1;
  uint64_t base_seed = 0;
  double scale = 0.0;
  int repeats = 1;
  /// base_config.epochs actually used — the one hyper-parameter the
  /// bench drivers vary between sweeps, recorded so their logs cannot
  /// be cross-merged by mistake.
  int epochs = 0;
  /// TaskManifest::Fingerprint() of the grid.
  uint64_t manifest_fingerprint = 0;
  /// The writer's shard (informational; ignored by compatibility).
  Shard shard;
};

/// True when two logs belong to the same sweep: every field equal
/// except the writer's shard.
bool CompatibleHeaders(const LogHeader& a, const LogHeader& b);

/// Human-readable one-line rendering (error messages, CLI summaries).
std::string HeaderToString(const LogHeader& header);

struct LoggedRow {
  TaskIdentity task;
  bool not_applicable = false;
  /// Unset when not_applicable.
  EvalResult result;
};

struct ResultLogContents {
  LogHeader header;
  std::vector<LoggedRow> rows;  // file order; only fully valid rows
  int64_t dropped_lines = 0;    // torn or malformed lines ignored
};

/// Bit-exact double codec used by the log (exposed for tests).
std::string EncodeDouble(double value);
bool DecodeDouble(std::string_view text, double* out);

/// Row codec (exposed for tests). FormatRow's output has no trailing
/// newline; ParseRow rejects any line that does not decode completely.
std::string FormatRow(const LoggedRow& row);
bool ParseRow(std::string_view line, LoggedRow* out);

/// Reads and validates a whole log. Fails on unreadable files or
/// bad/missing headers; malformed rows are dropped (counted), never
/// fatal — a crash-truncated log is still a valid resume point.
/// All I/O goes through `env` (null = IoEnv::Default()).
Result<ResultLogContents> ReadResultLog(const std::string& path,
                                        IoEnv* env = nullptr);

class ResultLogWriter {
 public:
  /// Creates the log with the given header. With `resume`, an existing
  /// file is first read back: its header must be compatible, its valid
  /// rows are kept (the file is compacted in place via a temp file +
  /// rename) and their keys are reported by done(); a missing file
  /// falls back to a fresh log. Without `resume` an existing file is
  /// overwritten. All I/O goes through `env` (null = IoEnv::Default()),
  /// so fault-injecting environments can hit the compaction path too.
  static Result<std::unique_ptr<ResultLogWriter>> Open(
      const std::string& path, const LogHeader& header, bool resume,
      IoEnv* env = nullptr);

  ~ResultLogWriter();

  /// Task keys already present when the log was opened for resume.
  const std::set<std::string>& done() const { return done_; }

  /// Appends one row and flushes. Thread-safe: this is the
  /// SweepConfig::on_task_done sink and runs on pool workers.
  ///
  /// Failure contract: kUnavailable means the row did not land (or may
  /// be durable but is safe to write again — the reader and merge
  /// tolerate bit-identical duplicate rows), so the *whole append* can
  /// simply be retried; the shard runner does so with bounded backoff.
  /// Any other failure is permanent (torn write, ENOSPC, dead env) and
  /// must propagate: recovery is resume-with-compaction, not retry.
  Status Append(const TaskIdentity& task, const EvalResult& result);
  Status AppendNotApplicable(const TaskIdentity& task);

 private:
  ResultLogWriter() = default;
  Status AppendLine(const std::string& line);

  std::unique_ptr<WritableFile> file_;
  std::mutex mu_;
  std::set<std::string> done_;
};

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_RESULT_LOG_H_
