#ifndef OEBENCH_SWEEP_SHARD_RUNNER_H_
#define OEBENCH_SWEEP_SHARD_RUNNER_H_

#include <string>
#include <vector>

#include "common/io_env.h"
#include "common/status.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/manifest.h"
#include "sweep/result_log.h"

namespace oebench {
namespace sweep {

/// Executes one shard of a sweep: filters the canonical manifest down
/// to the shard's span minus the tasks already in the log (resume),
/// runs the remainder on core/parallel_eval, and appends each result
/// to the durable log as it finishes. One invocation per shard; any
/// number of invocations may run concurrently in separate processes,
/// each with its own log file, and MergeShardLogs reassembles them.
/// Bounded retry-with-backoff applied to *transient* (kUnavailable)
/// result-log append failures. Permanent failures (torn writes,
/// ENOSPC, a dead environment) are never retried: the first one stops
/// the sweep cleanly (no abort) and the shard run returns its Status —
/// recovery is re-running with `resume`, which compacts the log and
/// re-executes exactly the unlogged tasks.
struct RetryPolicy {
  /// Total attempts per append (1 = no retry).
  int max_attempts = 4;
  /// Sleep before the first retry; doubles each further retry. Zero
  /// disables sleeping (tests).
  int initial_backoff_ms = 1;
};

struct ShardRunOptions {
  /// Threads, base config, pipeline, scale — exactly the knobs an
  /// unsharded sweep takes, plus the chaos/watchdog knobs.
  /// task_filter/on_task_done/on_task_failed/stop_requested are owned
  /// by the runner and must be unset.
  SweepConfig config;
  Shard shard;
  std::string log_path;
  /// Keep an existing log's rows and re-run only the missing tasks.
  bool resume = false;
  /// With `resume`: also re-execute the tasks that have a *failure*
  /// record (their records are compacted away first). Without it a
  /// resumed shard leaves known-failed tasks alone — re-running a
  /// deterministic explosion would just burn the CPU again.
  bool retry_failed = false;
  /// Task-failure circuit breaker: once more than this many tasks have
  /// failed, the shard stops submitting work (latching into the
  /// sweep's stop_requested, exactly like a permanent log failure
  /// does) and returns a non-OK Status. -1 = unlimited: failures are
  /// logged and the shard finishes the rest of its span with Status
  /// OK — quarantine is the merge's concern, not the shard's.
  int64_t max_task_failures = -1;
  /// I/O environment for the result log (null = IoEnv::Default()).
  /// Fault-injecting environments plug in here.
  IoEnv* env = nullptr;
  /// Retry policy for transient log-append failures.
  RetryPolicy retry;
};

struct ShardRunStats {
  /// Tasks in the shard's manifest span.
  int64_t shard_tasks = 0;
  /// Prequential runs executed by this invocation.
  int64_t tasks_executed = 0;
  /// Tasks skipped because the (resumed) log already had their rows.
  int64_t tasks_resumed = 0;
  /// Tasks skipped because the (resumed) log already had a failure
  /// record for them (plain resume without retry_failed).
  int64_t failures_resumed = 0;
  /// Tasks that failed this invocation (failure records appended).
  int64_t tasks_failed = 0;
  /// N/A rows written (inapplicable pairs; no run ever executes).
  int64_t na_logged = 0;
  /// Streams generated + preprocessed — only the shard's datasets.
  /// With --reuse=prepare some of these may be cache hits inside the
  /// process-global PreparedStreamCache rather than fresh work.
  int64_t streams_prepared = 0;
  /// Prepared-stream cache hits during this invocation's sweep (the
  /// reuse.prepare_hits counter delta): in-manifest duplicate datasets
  /// plus, with --reuse=prepare, hits in the process-global cache.
  int64_t prepare_cache_hits = 0;
  /// Transient log-append failures that were retried (and eventually
  /// succeeded — a permanent failure fails the whole run instead).
  int64_t append_retries = 0;
};

/// The log header a sweep with this manifest/config/shard writes, and
/// the one MergeShardLogs must be given as `expected`.
LogHeader MakeLogHeader(const TaskManifest& manifest,
                        const SweepConfig& config, const Shard& shard);

/// Convenience: the manifest of an entry-based (Table 9 style) sweep —
/// entry names in corpus order x learners x config.repeats.
TaskManifest EntriesManifest(const std::vector<CorpusEntry>& entries,
                             const std::vector<std::string>& learners,
                             int repeats);

/// Runs one shard of the corpus sweep. Only datasets owned by the
/// shard (and not fully resumed) are generated and prepared, and their
/// buffers are released as their tasks drain (ParallelSweepEntries'
/// memory-bounded pipeline).
Result<ShardRunStats> RunCorpusShard(const std::vector<CorpusEntry>& entries,
                                     const std::vector<std::string>& learners,
                                     const ShardRunOptions& options);

/// Runs one shard of a prepared-streams sweep (the Table 4 shape).
/// `streams` must cover the shard's datasets — build it from
/// manifest.ShardDatasets(shard); extra streams are ignored by the
/// task filter.
Result<ShardRunStats> RunPreparedShard(
    const std::vector<PreparedStream>& streams,
    const std::vector<std::string>& dataset_order,
    const std::vector<std::string>& learners,
    const ShardRunOptions& options);

}  // namespace sweep
}  // namespace oebench

#endif  // OEBENCH_SWEEP_SHARD_RUNNER_H_
