#include "stats/missing_stats.h"

namespace oebench {

MissingValueStats ComputeMissingValueStats(
    const Table& table, const std::vector<WindowRange>& ranges,
    const std::string& target_column) {
  MissingValueStats stats;
  // Feature-only view.
  Table features;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).name() == target_column) continue;
    Status st = features.AddColumn(table.column(c));
    OE_CHECK(st.ok()) << st.ToString();
  }
  if (features.num_columns() == 0 || features.num_rows() == 0) return stats;

  Table::MissingStats global = features.ComputeMissingStats();
  stats.row_ratio = global.row_ratio;
  stats.column_ratio = global.column_ratio;
  stats.cell_ratio = global.cell_ratio;

  stats.valid_ratio_per_window.reserve(ranges.size());
  for (const WindowRange& range : ranges) {
    std::vector<double> ratios(
        static_cast<size_t>(features.num_columns()), 0.0);
    for (int64_t c = 0; c < features.num_columns(); ++c) {
      const Column& col = features.column(c);
      int64_t valid = 0;
      for (int64_t r = range.begin; r < range.end; ++r) {
        if (!col.IsMissing(r)) ++valid;
      }
      ratios[static_cast<size_t>(c)] =
          range.size() > 0
              ? static_cast<double>(valid) / static_cast<double>(range.size())
              : 0.0;
    }
    stats.valid_ratio_per_window.push_back(std::move(ratios));
  }
  return stats;
}

}  // namespace oebench
