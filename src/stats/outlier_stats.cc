#include "stats/outlier_stats.h"

#include <algorithm>

#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"

namespace oebench {

namespace {

double OutlierRatio(const std::vector<double>& scores) {
  std::vector<bool> mask = ThresholdOutliers(scores);
  int64_t count = 0;
  for (bool b : mask) {
    if (b) ++count;
  }
  return mask.empty() ? 0.0
                      : static_cast<double>(count) /
                            static_cast<double>(mask.size());
}

}  // namespace

std::vector<OutlierStats> ComputeOutlierStats(const PreparedStream& stream,
                                              uint64_t seed) {
  OutlierStats ecod_stats;
  ecod_stats.detector = "ecod";
  OutlierStats iforest_stats;
  iforest_stats.detector = "iforest";

  int64_t usable_windows = 0;
  for (size_t w = 0; w < stream.windows.size(); ++w) {
    const Matrix& features = stream.windows[w].features;
    if (features.rows() < 8) {
      ecod_stats.ratio_per_window.push_back(0.0);
      iforest_stats.ratio_per_window.push_back(0.0);
      continue;
    }
    ++usable_windows;
    {
      Ecod detector;
      Result<std::vector<double>> scores = detector.FitScore(features);
      OE_CHECK(scores.ok()) << scores.status().ToString();
      double ratio = OutlierRatio(*scores);
      ecod_stats.ratio_per_window.push_back(ratio);
      ecod_stats.anomaly_ratio_avg += ratio;
      ecod_stats.anomaly_ratio_max =
          std::max(ecod_stats.anomaly_ratio_max, ratio);
    }
    {
      IsolationForest::Options options;
      options.num_trees = 50;
      options.seed = seed + w;
      IsolationForest detector(options);
      Result<std::vector<double>> scores = detector.FitScore(features);
      OE_CHECK(scores.ok()) << scores.status().ToString();
      double ratio = OutlierRatio(*scores);
      iforest_stats.ratio_per_window.push_back(ratio);
      iforest_stats.anomaly_ratio_avg += ratio;
      iforest_stats.anomaly_ratio_max =
          std::max(iforest_stats.anomaly_ratio_max, ratio);
    }
  }
  if (usable_windows > 0) {
    ecod_stats.anomaly_ratio_avg /= static_cast<double>(usable_windows);
    iforest_stats.anomaly_ratio_avg /= static_cast<double>(usable_windows);
  }
  return {ecod_stats, iforest_stats};
}

}  // namespace oebench
