#include "stats/drift_stats.h"

#include <algorithm>
#include <memory>

#include "drift/adwin.h"
#include "drift/cdbd.h"
#include "drift/ddm.h"
#include "drift/eddm.h"
#include "drift/hdddm.h"
#include "drift/kdq_tree.h"
#include "drift/ks_test.h"
#include "drift/pca_cd.h"
#include "drift/perm.h"
#include "linalg/vector_ops.h"
#include "models/linear_model.h"
#include "models/naive_bayes.h"

namespace oebench {

namespace {

/// Runs one ND batch detector over all windows; returns (drift%, warn%).
std::pair<double, double> RunNdDetector(BatchDetectorND* detector,
                                        const PreparedStream& stream) {
  int64_t drifts = 0;
  int64_t warnings = 0;
  int64_t comparisons = 0;
  for (size_t w = 0; w < stream.windows.size(); ++w) {
    DriftSignal signal = detector->Update(stream.windows[w].features);
    if (w == 0) continue;  // first window only primes the reference
    ++comparisons;
    if (signal == DriftSignal::kDrift) ++drifts;
    if (signal == DriftSignal::kWarning) ++warnings;
  }
  if (comparisons == 0) return {0.0, 0.0};
  return {static_cast<double>(drifts) / static_cast<double>(comparisons),
          static_cast<double>(warnings) /
              static_cast<double>(comparisons)};
}

/// Runs a fresh 1-D batch detector per column; returns stats with avg and
/// max over columns.
template <typename DetectorT>
DetectorStats Run1dDetectorPerColumn(const std::string& name,
                                     const PreparedStream& stream) {
  DetectorStats stats;
  stats.detector = name;
  if (stream.windows.empty()) return stats;
  const int64_t d = stream.windows[0].features.cols();
  double drift_sum = 0.0;
  double warn_sum = 0.0;
  for (int64_t c = 0; c < d; ++c) {
    DetectorT detector;
    int64_t drifts = 0;
    int64_t warnings = 0;
    int64_t comparisons = 0;
    for (size_t w = 0; w < stream.windows.size(); ++w) {
      DriftSignal signal =
          detector.Update(stream.windows[w].features.ColVector(c));
      if (w == 0) continue;
      ++comparisons;
      if (signal == DriftSignal::kDrift) ++drifts;
      if (signal == DriftSignal::kWarning) ++warnings;
    }
    double dr = comparisons > 0 ? static_cast<double>(drifts) /
                                      static_cast<double>(comparisons)
                                : 0.0;
    double wr = comparisons > 0 ? static_cast<double>(warnings) /
                                      static_cast<double>(comparisons)
                                : 0.0;
    drift_sum += dr;
    warn_sum += wr;
    stats.drift_ratio_max = std::max(stats.drift_ratio_max, dr);
    stats.warning_ratio_max = std::max(stats.warning_ratio_max, wr);
  }
  stats.drift_ratio_avg = drift_sum / static_cast<double>(d);
  stats.warning_ratio_avg = warn_sum / static_cast<double>(d);
  return stats;
}

}  // namespace

std::vector<DetectorStats> ComputeDataDriftStats(
    const PreparedStream& stream) {
  std::vector<DetectorStats> all;

  {
    Hdddm detector;
    auto [drift, warn] = RunNdDetector(&detector, stream);
    all.push_back({"hdddm", drift, drift, warn, warn});
  }
  {
    KdqTreeDetector detector;
    auto [drift, warn] = RunNdDetector(&detector, stream);
    all.push_back({"kdq_tree", drift, drift, warn, warn});
  }
  {
    PcaCd detector;
    auto [drift, warn] = RunNdDetector(&detector, stream);
    all.push_back({"pca_cd", drift, drift, warn, warn});
  }
  all.push_back(Run1dDetectorPerColumn<KsWindowDetector>("ks", stream));
  all.push_back(Run1dDetectorPerColumn<Cdbd>("cdbd", stream));
  return all;
}

std::vector<DetectorStats> ComputeConceptDriftStats(
    const PreparedStream& stream) {
  std::vector<DetectorStats> all;
  if (stream.windows.size() < 2) {
    all.push_back({"ddm", 0, 0, 0, 0});
    all.push_back({"eddm", 0, 0, 0, 0});
    all.push_back({"adwin_accuracy", 0, 0, 0, 0});
    all.push_back({"perm", 0, 0, 0, 0});
    return all;
  }
  const bool classification = stream.task == TaskType::kClassification;

  // Per-sample error streams feed the sequential detectors. A model is
  // trained on window 0; when a detector fires, its copy of the model is
  // retrained on the window where the drift surfaced.
  struct SequentialRun {
    std::unique_ptr<StreamErrorDetector> detector;
    int64_t drift_windows = 0;
    int64_t warning_windows = 0;
  };
  std::vector<SequentialRun> runs;
  runs.push_back({std::make_unique<Ddm>(), 0, 0});
  runs.push_back({std::make_unique<Eddm>(), 0, 0});
  runs.push_back({std::make_unique<AdwinAccuracyDetector>(), 0, 0});

  // One shared model per detector so retrain points differ.
  const int num_runs = static_cast<int>(runs.size());
  std::vector<GaussianNb> nb_models(
      static_cast<size_t>(num_runs), GaussianNb(stream.num_classes));
  std::vector<LinearRegression> lr_models(
      static_cast<size_t>(num_runs), LinearRegression(1e-3));
  // Regression losses must be binarised for the error-rate detectors
  // (Appendix A.2 suggests adapting the error rate to regression losses):
  // an "error" is a loss above twice the first window's mean loss.
  std::vector<double> loss_threshold(static_cast<size_t>(num_runs), 0.0);

  for (int m = 0; m < num_runs; ++m) {
    if (classification) {
      Status st = nb_models[static_cast<size_t>(m)].Fit(
          stream.windows[0].features, stream.windows[0].targets);
      OE_CHECK(st.ok()) << st.ToString();
    } else {
      Status st = lr_models[static_cast<size_t>(m)].Fit(
          stream.windows[0].features, stream.windows[0].targets);
      OE_CHECK(st.ok()) << st.ToString();
      double base = lr_models[static_cast<size_t>(m)].EvaluateMse(
          stream.windows[0].features, stream.windows[0].targets);
      loss_threshold[static_cast<size_t>(m)] = 2.0 * std::max(base, 1e-9);
    }
  }

  int64_t comparisons = 0;
  for (size_t w = 1; w < stream.windows.size(); ++w) {
    const WindowData& window = stream.windows[w];
    ++comparisons;
    for (int m = 0; m < num_runs; ++m) {
      bool saw_drift = false;
      bool saw_warning = false;
      for (int64_t r = 0; r < window.features.rows(); ++r) {
        double error;
        if (classification) {
          int pred = nb_models[static_cast<size_t>(m)].PredictClass(
              window.features.Row(r));
          error = pred == static_cast<int>(
                              window.targets[static_cast<size_t>(r)])
                      ? 0.0
                      : 1.0;
        } else {
          double pred = lr_models[static_cast<size_t>(m)].PredictValue(
              window.features.Row(r));
          double diff = pred - window.targets[static_cast<size_t>(r)];
          error = diff * diff > loss_threshold[static_cast<size_t>(m)]
                      ? 1.0
                      : 0.0;
        }
        DriftSignal signal = runs[static_cast<size_t>(m)].detector->Update(
            error);
        if (signal == DriftSignal::kDrift) saw_drift = true;
        if (signal == DriftSignal::kWarning) saw_warning = true;
      }
      if (saw_drift) {
        ++runs[static_cast<size_t>(m)].drift_windows;
        // Retrain on the most recent slice (§4.3).
        if (classification) {
          Status st = nb_models[static_cast<size_t>(m)].Fit(
              window.features, window.targets);
          OE_CHECK(st.ok()) << st.ToString();
        } else {
          Status st = lr_models[static_cast<size_t>(m)].Fit(
              window.features, window.targets);
          OE_CHECK(st.ok()) << st.ToString();
        }
      } else if (saw_warning) {
        ++runs[static_cast<size_t>(m)].warning_windows;
      }
    }
  }
  for (SequentialRun& run : runs) {
    DetectorStats stats;
    stats.detector = run.detector->name();
    stats.drift_ratio_avg =
        static_cast<double>(run.drift_windows) /
        static_cast<double>(comparisons);
    stats.drift_ratio_max = stats.drift_ratio_avg;
    stats.warning_ratio_avg =
        static_cast<double>(run.warning_windows) /
        static_cast<double>(comparisons);
    stats.warning_ratio_max = stats.warning_ratio_avg;
    all.push_back(stats);
  }

  // PERM over window pairs.
  {
    PermDetector detector(classification
                              ? PermDetector::GaussianNbEval(
                                    stream.num_classes)
                              : PermDetector::LinearRegressionEval());
    int64_t drifts = 0;
    int64_t warnings = 0;
    for (size_t w = 0; w < stream.windows.size(); ++w) {
      DriftSignal signal = detector.Update(stream.windows[w].features,
                                           stream.windows[w].targets);
      if (w == 0) continue;
      if (signal == DriftSignal::kDrift) ++drifts;
      if (signal == DriftSignal::kWarning) ++warnings;
    }
    DetectorStats stats;
    stats.detector = "perm";
    stats.drift_ratio_avg =
        static_cast<double>(drifts) / static_cast<double>(comparisons);
    stats.drift_ratio_max = stats.drift_ratio_avg;
    stats.warning_ratio_avg =
        static_cast<double>(warnings) / static_cast<double>(comparisons);
    stats.warning_ratio_max = stats.warning_ratio_avg;
    all.push_back(stats);
  }
  return all;
}

}  // namespace oebench
