#include "stats/profile.h"

#include <cmath>

#include "preprocess/pipeline.h"

namespace oebench {

std::vector<double> DatasetProfile::BasicFacet() const {
  return {log_instances, num_features, num_windows, is_classification};
}

std::vector<double> DatasetProfile::MissingFacet() const {
  return {missing.row_ratio, missing.column_ratio, missing.cell_ratio};
}

std::vector<double> DatasetProfile::DataDriftFacet() const {
  std::vector<double> out;
  for (const DetectorStats& s : data_drift) {
    out.push_back(s.drift_ratio_avg);
    out.push_back(s.drift_ratio_max);
    out.push_back(s.warning_ratio_avg);
    out.push_back(s.warning_ratio_max);
  }
  return out;
}

std::vector<double> DatasetProfile::ConceptDriftFacet() const {
  std::vector<double> out;
  for (const DetectorStats& s : concept_drift) {
    out.push_back(s.drift_ratio_avg);
    out.push_back(s.warning_ratio_avg);
  }
  return out;
}

std::vector<double> DatasetProfile::OutlierFacet() const {
  std::vector<double> out;
  for (const OutlierStats& s : outliers) {
    out.push_back(s.anomaly_ratio_avg);
    out.push_back(s.anomaly_ratio_max);
  }
  return out;
}

double DatasetProfile::MissingScore() const { return missing.cell_ratio; }

double DatasetProfile::DriftScore() const {
  double sum = 0.0;
  int64_t count = 0;
  for (const DetectorStats& s : data_drift) {
    sum += s.drift_ratio_avg;
    ++count;
  }
  for (const DetectorStats& s : concept_drift) {
    sum += s.drift_ratio_avg;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double DatasetProfile::AnomalyScore() const {
  double sum = 0.0;
  for (const OutlierStats& s : outliers) sum += s.anomaly_ratio_avg;
  return outliers.empty() ? 0.0
                          : sum / static_cast<double>(outliers.size());
}

Result<DatasetProfile> ProfileDataset(const GeneratedStream& stream,
                                      const ProfileOptions& options) {
  PipelineOptions pipeline_options;
  pipeline_options.imputer = options.imputer;
  pipeline_options.window_factor = options.window_factor;
  OE_ASSIGN_OR_RETURN(PreparedStream prepared,
                      PrepareStream(stream, pipeline_options));

  DatasetProfile profile;
  profile.name = stream.spec.name;
  profile.category = stream.spec.category;
  profile.task = stream.spec.task;
  profile.log_instances =
      std::log10(static_cast<double>(stream.table.num_rows()));
  profile.num_features = static_cast<double>(prepared.feature_names.size());
  profile.num_windows = static_cast<double>(prepared.windows.size());
  profile.is_classification =
      stream.spec.task == TaskType::kClassification ? 1.0 : 0.0;

  profile.missing =
      ComputeMissingValueStats(stream.table, prepared.ranges, "target");
  profile.data_drift = ComputeDataDriftStats(prepared);
  profile.concept_drift = ComputeConceptDriftStats(prepared);
  profile.outliers = ComputeOutlierStats(prepared);
  return profile;
}

}  // namespace oebench
