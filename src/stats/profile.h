#ifndef OEBENCH_STATS_PROFILE_H_
#define OEBENCH_STATS_PROFILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stats/drift_stats.h"
#include "stats/missing_stats.h"
#include "stats/outlier_stats.h"
#include "streamgen/stream_spec.h"

namespace oebench {

/// The complete open-environment profile of one dataset: everything the
/// selection pipeline (paper §4.4) clusters on. Features are grouped into
/// the paper's five facets — basic info, missing values, data drift,
/// concept drift, outliers — each of which is PCA-reduced to 3 dimensions
/// before clustering.
struct DatasetProfile {
  std::string name;
  std::string category;
  TaskType task = TaskType::kRegression;

  // Facet 1: basic information.
  double log_instances = 0.0;
  double num_features = 0.0;
  double num_windows = 0.0;
  double is_classification = 0.0;

  // Facet 2: missing values.
  MissingValueStats missing;

  // Facet 3 & 4: drift.
  std::vector<DetectorStats> data_drift;
  std::vector<DetectorStats> concept_drift;

  // Facet 5: outliers.
  std::vector<OutlierStats> outliers;

  /// Flattened numeric vectors per facet (fixed order), used by the
  /// selection pipeline.
  std::vector<double> BasicFacet() const;
  std::vector<double> MissingFacet() const;
  std::vector<double> DataDriftFacet() const;
  std::vector<double> ConceptDriftFacet() const;
  std::vector<double> OutlierFacet() const;

  /// Headline scalar summaries (used for reports and for mapping back to
  /// the paper's qualitative Low/Medium/High labels).
  double MissingScore() const;   // cell ratio
  double DriftScore() const;     // mean drift ratio over all detectors
  double AnomalyScore() const;   // mean anomaly ratio over detectors
};

struct ProfileOptions {
  /// Pipeline used before statistic extraction. Profiles use mean
  /// imputation for speed (the statistics, not the models, are the point
  /// here); evaluation uses KNN per the paper's default.
  std::string imputer = "mean";
  double window_factor = 1.0;
};

/// Runs the full §4.3 pipeline on one generated stream and extracts its
/// profile.
Result<DatasetProfile> ProfileDataset(const GeneratedStream& stream,
                                      const ProfileOptions& options = {});

}  // namespace oebench

#endif  // OEBENCH_STATS_PROFILE_H_
