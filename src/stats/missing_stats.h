#ifndef OEBENCH_STATS_MISSING_STATS_H_
#define OEBENCH_STATS_MISSING_STATS_H_

#include <vector>

#include "dataframe/table.h"
#include "preprocess/windowing.h"

namespace oebench {

/// Missing-value statistics of a stream (paper §4.3 "Missing Values"):
/// the three global ratios plus the per-window valid-value ratio of each
/// column (the signal behind Figure 4's incremental/decremental feature
/// case study).
struct MissingValueStats {
  double row_ratio = 0.0;     // data items with >= 1 missing cell
  double column_ratio = 0.0;  // columns with >= 1 missing cell
  double cell_ratio = 0.0;    // empty cells
  /// valid_ratio_per_window[w][c]: fraction of non-missing cells of
  /// column c in window w.
  std::vector<std::vector<double>> valid_ratio_per_window;
};

/// Computes missing-value statistics over the feature columns of `table`
/// (every column except `target_column`, pass empty to use all), windowed
/// by `ranges`.
MissingValueStats ComputeMissingValueStats(
    const Table& table, const std::vector<WindowRange>& ranges,
    const std::string& target_column = "target");

}  // namespace oebench

#endif  // OEBENCH_STATS_MISSING_STATS_H_
