#ifndef OEBENCH_STATS_DRIFT_STATS_H_
#define OEBENCH_STATS_DRIFT_STATS_H_

#include <string>
#include <vector>

#include "preprocess/pipeline.h"

namespace oebench {

/// Drift and warning percentages of one detector over a stream, the
/// per-dataset features the paper stores (§4.3: "For each algorithm, we
/// document the drift and warning percentages"). For one-dimensional
/// detectors the average and maximum over columns are both recorded.
struct DetectorStats {
  std::string detector;
  double drift_ratio_avg = 0.0;
  double drift_ratio_max = 0.0;
  double warning_ratio_avg = 0.0;
  double warning_ratio_max = 0.0;
};

/// Data-drift statistics: HDDDM, kdq-tree, PCA-CD over the full feature
/// matrix windows; KS test and CDBD per column (averaged / maxed).
std::vector<DetectorStats> ComputeDataDriftStats(
    const PreparedStream& stream);

/// Concept-drift statistics following the paper's pipeline: a simple model
/// (Gaussian NB for classification, linear regression for regression) is
/// trained on the first window; each later window's per-sample errors feed
/// DDM, EDDM and ADWIN-accuracy, and the window pairs feed PERM. When a
/// detector fires, its model is retrained on the current window. Ratios
/// are the fraction of windows in which each detector signalled.
std::vector<DetectorStats> ComputeConceptDriftStats(
    const PreparedStream& stream);

}  // namespace oebench

#endif  // OEBENCH_STATS_DRIFT_STATS_H_
