#ifndef OEBENCH_STATS_OUTLIER_STATS_H_
#define OEBENCH_STATS_OUTLIER_STATS_H_

#include <string>
#include <vector>

#include "preprocess/pipeline.h"

namespace oebench {

/// Per-detector anomaly ratios over the windows of a stream (paper §4.3
/// "Outliers": within each window, points scoring above mean + 3 sd are
/// outliers; the average and maximum window ratios are dataset features).
struct OutlierStats {
  std::string detector;  // "ecod" | "iforest"
  double anomaly_ratio_avg = 0.0;
  double anomaly_ratio_max = 0.0;
  /// Ratio per window (drives Figure 8-style event localisation).
  std::vector<double> ratio_per_window;
};

/// Runs ECOD and Isolation Forest per window and aggregates their ratios.
std::vector<OutlierStats> ComputeOutlierStats(const PreparedStream& stream,
                                              uint64_t seed = 13);

}  // namespace oebench

#endif  // OEBENCH_STATS_OUTLIER_STATS_H_
