#ifndef OEBENCH_SERVE_SESSION_H_
#define OEBENCH_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/learner.h"
#include "preprocess/pipeline.h"
#include "serve/failure.h"
#include "serve/ring_buffer.h"
#include "serve/state_pool.h"
#include "streamgen/stream_spec.h"

namespace oebench {

class ServeChaosInjector;

namespace serve {

/// One record in flight: an absolute row index into the session's
/// StreamContext plus its enqueue timestamp (registry-epoch seconds) for
/// per-record latency. `row == kEndOfStream` is the producer's
/// end-of-stream sentinel.
struct Record {
  int64_t row = 0;
  double enqueue_seconds = 0.0;
};

inline constexpr int64_t kEndOfStream = -1;

/// Outcome of offering a record to a session (admission control).
enum class AdmitResult {
  /// Enqueued; the caller should Activate() the session.
  kAccepted,
  /// Ring full — structured backpressure, the record was NOT enqueued.
  /// Under a drop policy the caller counts it and moves on; under a
  /// block policy the caller retries.
  kOverloaded,
  /// Refused by the adaptive admission controller: the ring may have
  /// room, but accepting would push tail latency further past its
  /// budget. Never retried — count it and move on. Sentinels are
  /// exempt (they carry shutdown, not load).
  kShed,
  /// The session already consumed its end-of-stream sentinel or failed;
  /// stop feeding it.
  kFinished,
};

struct SessionOptions {
  /// Ring capacity (rounded up to a power of two).
  size_t ring_capacity = 1024;
  /// Process only the first `max_windows` windows of the stream
  /// (0 = all). Records beyond the truncation point are ignored.
  size_t max_windows = 0;
  /// Total activation attempts when chaos raises TransientTaskError at
  /// an activation boundary (1 = no retry) — the serve analogue of
  /// SweepConfig::task_attempts.
  int attempts = 2;
  std::string learner = "Naive-DT";
  LearnerConfig learner_config;
  PipelineOptions pipeline;
  /// Optional shared state pool: sessions replaying the same
  /// (spec, pipeline) pair share one immutable StreamContext instead of
  /// each building a private copy. Not owned; must outlive the session.
  /// nullptr = private context (the pre-pool behaviour).
  StatePool* state_pool = nullptr;
};

/// A live stream being served: owns the per-stream pipeline state
/// (StreamContext + WindowPipeline) and learner, and advances the
/// prequential protocol one record at a time as records drain from its
/// ring.
///
/// Threading contract: exactly one producer thread calls Offer()/
/// OfferEnd(); ProcessBatch() calls are serialised by the serve engine's
/// run-queue (never concurrent with each other, but on changing worker
/// threads). finished()/quarantined() are safe from anywhere.
///
/// Failure domain (DESIGN.md "Serving failure domains & overload"):
/// ProcessBatch never lets an exception escape onto a pool worker.
/// A throwing pipeline/learner, an exploded (non-finite) metric
/// epilogue, or exhausted transient retries *quarantine* the session:
/// it records one structured SessionFailure, then keeps draining its
/// ring — discarding records — until the end sentinel arrives, so the
/// producer, the in-flight accounting, and WaitAllFinished all wind
/// down exactly as for a healthy stream. One poison stream costs one
/// session, never the daemon.
///
/// Determinism: all per-stream state is touched only from the strictly
/// FIFO record order of the ring, so for a fixed offer sequence the
/// session's outputs are independent of worker count and cross-stream
/// interleaving — and, when no record is dropped, bit-identical to batch
/// RunPrequential on the same prepared stream (the window pipeline and
/// the test-then-train arithmetic are the same code).
class StreamSession {
 public:
  StreamSession(int64_t id, std::shared_ptr<const GeneratedStream> stream,
                SessionOptions options);

  /// Builds the stream context, window pipeline and learner. Must be
  /// called (successfully) before any Offer/ProcessBatch. On failure the
  /// session is marked failed.
  Status Init();

  int64_t id() const { return id_; }
  const std::string& name() const;
  /// Windows this session will actually process (after max_windows
  /// truncation); valid after Init().
  size_t num_windows() const { return num_windows_; }
  /// Absolute end row of the last processed window; records at or past
  /// this index are ignored. Valid after Init().
  int64_t end_row() const { return end_row_; }

  /// Optional chaos injection (ISSUE 9): fired at every activation and
  /// at session finish, keyed by the session's registration ordinal
  /// (id + 1). Set before serving; not owned.
  void set_chaos(ServeChaosInjector* chaos) { chaos_ = chaos; }

  /// Producer side: enqueue row `row` (kEndOfStream to finish). A
  /// second OfferEnd after the sentinel was accepted returns kFinished
  /// without enqueueing — double-end is an idempotent no-op, not a
  /// duplicate shutdown message.
  AdmitResult Offer(int64_t row, double enqueue_seconds);
  AdmitResult OfferEnd(double enqueue_seconds) {
    return Offer(kEndOfStream, enqueue_seconds);
  }

  /// Producer side, batched: enqueue up to `count` consecutive data
  /// rows [first_row, first_row + count) as ONE ring operation (one
  /// release store, see SpscRingBuffer::TryPushN). Returns the number
  /// accepted — 0 means the ring is full (kOverloaded for the whole
  /// run); -1 means the session is finished. Never used for the end
  /// sentinel (Offer/OfferEnd keep that path).
  int64_t OfferRun(int64_t first_row, int64_t count,
                   double enqueue_seconds);

  /// Consumer side (engine workers only): drain up to `quantum` records,
  /// advancing the pipeline (or discarding, once quarantined). Sets
  /// *finished when the end sentinel was consumed. Returns records
  /// consumed (including discards — in-flight accounting stays exact).
  /// Never throws: faults quarantine the session instead.
  int64_t ProcessBatch(int64_t quantum, bool* finished);

  /// Racy queue depth for gauges.
  size_t QueueDepth() const { return ring_.SizeApprox(); }

  bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }
  /// True once the session failed and entered drain-and-discard mode.
  bool quarantined() const {
    return quarantined_.load(std::memory_order_acquire);
  }
  /// True if the engine's failure breaker abandoned this session before
  /// its sentinel arrived; its result() is not meaningful.
  bool abandoned() const {
    return abandoned_.load(std::memory_order_acquire);
  }
  /// Non-OK once the pipeline or learner failed (mirrors the
  /// quarantine record's message).
  Status status() const { return status_; }

  /// Moves the session's failure record out, once: true on the first
  /// call after quarantine, false otherwise. Caller must hold the
  /// session's activation (run-queue serialisation or a won kDone CAS).
  bool TakeFailureReport(SessionFailure* out);

  /// The prequential result — same arithmetic as RunPrequentialFrom.
  /// Valid once finished() && !quarantined() && !abandoned().
  const EvalResult& result() const { return result_; }

  /// Windows that were skipped because every record in them was dropped.
  int64_t windows_lost() const { return windows_lost_; }
  /// Records popped and thrown away after quarantine/abandonment.
  int64_t records_discarded() const {
    return discarded_.load(std::memory_order_relaxed);
  }
  /// ProcessBatch calls so far (WaitAllFinished timeout diagnostics).
  int64_t activation_count() const {
    return activations_.load(std::memory_order_relaxed);
  }
  /// Registry-epoch seconds of the last ProcessBatch entry (< 0 before
  /// the first); the engine's deadline eviction reads this.
  double last_progress_seconds() const {
    return last_progress_seconds_.load(std::memory_order_relaxed);
  }

  /// Engine only, after winning the kIdle→kDone CAS (so no worker can
  /// be draining concurrently):
  /// Quarantines a wedged stream (kind kDeadline), marks it finished
  /// and empties its ring. Returns records drained (the engine settles
  /// them against in-flight). Idempotent: later calls only re-drain
  /// straggler pushes.
  int64_t EvictForDeadline(double idle_seconds);
  /// Marks the session finished without a failure record (engine
  /// failure-breaker abandonment) and empties its ring.
  int64_t Abandon();
  /// Re-drains straggler pushes that landed after an eviction's drain
  /// (counted as discards). Engine only, same kDone precondition.
  int64_t DrainRing();

  /// Run-queue scheduling state, owned by the serve engine.
  std::atomic<int>& sched_state() { return sched_state_; }

 private:
  /// Advances the protocol by one popped record (or discards it, once
  /// quarantined); sets *finished on the end sentinel. Never throws.
  void ConsumeRecord(const Record& rec, bool* finished);
  /// Finalises window `next_window_`: prepares it from the rows that
  /// arrived, tests (w > 0), trains, accumulates the result.
  Status FinalizeWindow();
  /// Runs the end-of-stream epilogue: mean/faded loss + throughput.
  void FinishResult();
  /// Records the failure (first one wins) and enters discard mode.
  void Quarantine(SessionFailureKind kind, const std::string& message);

  const int64_t id_;
  std::shared_ptr<const GeneratedStream> stream_;  // released by Init()
  const SessionOptions options_;
  ServeChaosInjector* chaos_ = nullptr;

  /// Immutable after Init(); shared across sessions when a StatePool is
  /// configured, private otherwise.
  std::shared_ptr<const StreamContext> ctx_;
  std::unique_ptr<WindowPipeline> pipeline_;
  std::unique_ptr<StreamLearner> learner_;
  size_t num_windows_ = 0;
  int64_t end_row_ = 0;

  SpscRingBuffer<Record> ring_;

  // Consumer-side state (guarded by the run-queue's serialisation).
  size_t next_window_ = 0;
  std::vector<int64_t> arrived_rows_;
  int64_t total_items_ = 0;
  int64_t windows_lost_ = 0;
  int64_t records_consumed_ = 0;
  double window_open_seconds_ = -1.0;
  EvalResult result_;
  SessionFailure failure_;
  bool failure_taken_ = false;

  // Producer-side state (single producer by contract).
  std::atomic<bool> end_enqueued_{false};

  std::atomic<bool> finished_{false};
  std::atomic<bool> quarantined_{false};
  std::atomic<bool> abandoned_{false};
  std::atomic<int64_t> discarded_{0};
  std::atomic<int64_t> activations_{0};
  std::atomic<double> last_progress_seconds_{-1.0};
  Status status_ = Status::OK();
  std::atomic<int> sched_state_{0};
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_SESSION_H_
