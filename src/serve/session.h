#ifndef OEBENCH_SERVE_SESSION_H_
#define OEBENCH_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/learner.h"
#include "preprocess/pipeline.h"
#include "serve/ring_buffer.h"
#include "streamgen/stream_spec.h"

namespace oebench {
namespace serve {

/// One record in flight: an absolute row index into the session's
/// StreamContext plus its enqueue timestamp (registry-epoch seconds) for
/// per-record latency. `row == kEndOfStream` is the producer's
/// end-of-stream sentinel.
struct Record {
  int64_t row = 0;
  double enqueue_seconds = 0.0;
};

inline constexpr int64_t kEndOfStream = -1;

/// Outcome of offering a record to a session (admission control).
enum class AdmitResult {
  /// Enqueued; the caller should Activate() the session.
  kAccepted,
  /// Ring full — structured backpressure, the record was NOT enqueued.
  /// Under a drop policy the caller counts it and moves on; under a
  /// block policy the caller retries.
  kOverloaded,
  /// The session already consumed its end-of-stream sentinel or failed;
  /// stop feeding it.
  kFinished,
};

struct SessionOptions {
  /// Ring capacity (rounded up to a power of two).
  size_t ring_capacity = 1024;
  /// Process only the first `max_windows` windows of the stream
  /// (0 = all). Records beyond the truncation point are ignored.
  size_t max_windows = 0;
  std::string learner = "Naive-DT";
  LearnerConfig learner_config;
  PipelineOptions pipeline;
};

/// A live stream being served: owns the per-stream pipeline state
/// (StreamContext + WindowPipeline) and learner, and advances the
/// prequential protocol one record at a time as records drain from its
/// ring.
///
/// Threading contract: exactly one producer thread calls Offer()/
/// OfferEnd(); ProcessBatch() calls are serialised by the serve engine's
/// run-queue (never concurrent with each other, but on changing worker
/// threads). finished()/failed() are safe from anywhere.
///
/// Determinism: all per-stream state is touched only from the strictly
/// FIFO record order of the ring, so for a fixed offer sequence the
/// session's outputs are independent of worker count and cross-stream
/// interleaving — and, when no record is dropped, bit-identical to batch
/// RunPrequential on the same prepared stream (the window pipeline and
/// the test-then-train arithmetic are the same code).
class StreamSession {
 public:
  StreamSession(int64_t id, std::shared_ptr<const GeneratedStream> stream,
                SessionOptions options);

  /// Builds the stream context, window pipeline and learner. Must be
  /// called (successfully) before any Offer/ProcessBatch. On failure the
  /// session is marked failed.
  Status Init();

  int64_t id() const { return id_; }
  const std::string& name() const { return ctx_.name; }
  /// Windows this session will actually process (after max_windows
  /// truncation); valid after Init().
  size_t num_windows() const { return num_windows_; }
  /// Absolute end row of the last processed window; records at or past
  /// this index are ignored. Valid after Init().
  int64_t end_row() const { return end_row_; }

  /// Producer side: enqueue row `row` (kEndOfStream to finish).
  AdmitResult Offer(int64_t row, double enqueue_seconds);
  AdmitResult OfferEnd(double enqueue_seconds) {
    return Offer(kEndOfStream, enqueue_seconds);
  }

  /// Consumer side (engine workers only): drain up to `quantum` records,
  /// advancing the pipeline. Sets *finished when the end sentinel was
  /// consumed (or the session failed). Returns records consumed.
  Result<int64_t> ProcessBatch(int64_t quantum, bool* finished);

  /// Racy queue depth for gauges.
  size_t QueueDepth() const { return ring_.SizeApprox(); }

  bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }
  /// Non-OK once the pipeline or learner failed; the session stops
  /// consuming and reports kFinished to its producer.
  Status status() const { return status_; }

  /// The prequential result — same arithmetic as RunPrequentialFrom.
  /// Valid once finished() and status().ok().
  const EvalResult& result() const { return result_; }

  /// Windows that were skipped because every record in them was dropped.
  int64_t windows_lost() const { return windows_lost_; }

  /// Run-queue scheduling state, owned by the serve engine.
  std::atomic<int>& sched_state() { return sched_state_; }

 private:
  /// Finalises window `next_window_`: prepares it from the rows that
  /// arrived, tests (w > 0), trains, accumulates the result.
  Status FinalizeWindow();
  /// Runs the end-of-stream epilogue: mean/faded loss + throughput.
  void FinishResult();

  const int64_t id_;
  std::shared_ptr<const GeneratedStream> stream_;  // released by Init()
  const SessionOptions options_;

  StreamContext ctx_;
  std::unique_ptr<WindowPipeline> pipeline_;
  std::unique_ptr<StreamLearner> learner_;
  size_t num_windows_ = 0;
  int64_t end_row_ = 0;

  SpscRingBuffer<Record> ring_;

  // Consumer-side state (guarded by the run-queue's serialisation).
  size_t next_window_ = 0;
  std::vector<int64_t> arrived_rows_;
  int64_t total_items_ = 0;
  int64_t windows_lost_ = 0;
  double window_open_seconds_ = -1.0;
  EvalResult result_;

  std::atomic<bool> finished_{false};
  Status status_ = Status::OK();
  std::atomic<int> sched_state_{0};
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_SESSION_H_
