#ifndef OEBENCH_SERVE_LOAD_GEN_H_
#define OEBENCH_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "serve/server.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace serve {

/// What the load generator does when a session's ring (or the global
/// in-flight cap) rejects a record.
enum class AdmissionPolicy {
  /// Retry until accepted. Guarantees every record is delivered, which
  /// is what the differential (serve == batch) harness needs.
  kBlock,
  /// Count a structured drop and move on — the overload regime. End
  /// sentinels are still always delivered.
  kDrop,
};

struct LoadGenOptions {
  /// Mean records/second per stream on the virtual-time schedule.
  double rate = 10000.0;
  /// Records delivered back-to-back per arrival event (burstiness
  /// knob); the event rate is rate/burst so the mean record rate stays
  /// fixed.
  int64_t burst = 1;
  uint64_t seed = 42;
  /// Producer threads; streams are partitioned across them (stream i
  /// belongs to thread i % producers) so each ring keeps exactly one
  /// producer.
  int producers = 1;
  /// Sleep to align offers with the virtual-time schedule (true) or
  /// replay as fast as possible in schedule order (false).
  bool paced = false;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Sinusoidal drift of the offered rate (the soak's overload shape):
  /// the instantaneous event rate at virtual time t is
  ///   rate * (1 + amplitude * sin(2*pi * t / period)),
  /// clamped to stay positive. Pure virtual-time arithmetic, so the
  /// schedule stays seed-deterministic. amplitude or period <= 0 = off.
  double rate_drift_amplitude = 0.0;
  double rate_drift_period_seconds = 0.0;
  /// Block-policy backpressure backoff (replaces an unbounded yield
  /// spin): after a burst of yields, sleeps starting at
  /// initial_backoff_ms and doubling per further rejection, capped at
  /// max_attempts doublings — bounded sleep, unbounded delivery (block
  /// policy never abandons a record). The per-sleep ceiling is
  /// kMaxBackoffMillis regardless of max_attempts (see BackoffMillis).
  sweep::RetryPolicy backoff;
  /// Record-batch admission: producers coalesce up to this many
  /// consecutive rows of one stream into a single batched engine offer
  /// (one ring operation, one activation). 1 = the unbatched per-record
  /// path. Per-stream record order is unchanged — a batch is always a
  /// contiguous run — so the bit-identity contract is batch-size
  /// independent under the block policy.
  int64_t batch_records = 1;
  /// Paced replay granularity: the producer sleeps once per timer-wheel
  /// tick and releases every event due within it (paced=true only).
  double pace_tick_seconds = 0.001;
};

/// Per-stream delivery accounting: the soak's conservation invariant is
/// offered == accepted + dropped + shed for every stream.
struct StreamLoadStats {
  size_t idx = 0;
  int64_t offered = 0;
  int64_t accepted = 0;
  int64_t dropped = 0;
  int64_t shed = 0;
};

struct LoadStats {
  /// Records the schedule attempted to deliver (end sentinels excluded).
  int64_t offered = 0;
  int64_t accepted = 0;
  /// Records rejected and abandoned (kDrop policy only).
  int64_t dropped = 0;
  /// Records refused by the adaptive admission controller (kShed) —
  /// never retried under either policy.
  int64_t shed = 0;
  /// Per-stream breakdown, ordered by session index.
  std::vector<StreamLoadStats> per_stream;
};

/// Replays every registered session's rows [0, end_row) through the
/// engine on a seeded virtual-time schedule, then delivers each end
/// sentinel, and returns delivery stats. Blocks until all offers are
/// made (not until sessions finish — pair with WaitAllFinished).
///
/// Determinism: each stream's arrival times are a pure function of
/// (options.seed, stream index), and each producer thread merges its
/// streams' events through a (time, stream) min-heap, so the per-stream
/// offer order — and under kBlock the exact delivered record set — is
/// reproducible run to run regardless of pacing, worker count or
/// machine speed.
LoadStats RunLoadGenerator(ServeEngine* engine,
                           const LoadGenOptions& options);

/// Hard ceiling on one backpressure backoff sleep, whatever the policy
/// says: backoff bounds producer CPU burn, it must never turn into a
/// multi-second stall of a stream that is about to get ring space.
inline constexpr int64_t kMaxBackoffMillis = 1000;

/// Rejections absorbed by a bare yield before the exponential sleep
/// backoff starts: short overloads clear in microseconds and should not
/// pay a millisecond sleep.
inline constexpr int kBackoffSpinRetries = 16;

/// Milliseconds to sleep before retrying after `rejections` consecutive
/// kOverloaded results (the first kSpinRetries are absorbed by bare
/// yields and return 0). Doubles from policy.initial_backoff_ms up to
/// max_attempts - 1 doublings, with the shift clamped so it cannot
/// overflow int64_t for arbitrarily large max_attempts, and the result
/// capped at kMaxBackoffMillis. Exposed for the regression test.
int64_t BackoffMillis(const sweep::RetryPolicy& policy, int rejections);

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_LOAD_GEN_H_
