#ifndef OEBENCH_SERVE_LOAD_GEN_H_
#define OEBENCH_SERVE_LOAD_GEN_H_

#include <cstdint>

#include "serve/server.h"

namespace oebench {
namespace serve {

/// What the load generator does when a session's ring (or the global
/// in-flight cap) rejects a record.
enum class AdmissionPolicy {
  /// Retry until accepted. Guarantees every record is delivered, which
  /// is what the differential (serve == batch) harness needs.
  kBlock,
  /// Count a structured drop and move on — the overload regime. End
  /// sentinels are still always delivered.
  kDrop,
};

struct LoadGenOptions {
  /// Mean records/second per stream on the virtual-time schedule.
  double rate = 10000.0;
  /// Records delivered back-to-back per arrival event (burstiness
  /// knob); the event rate is rate/burst so the mean record rate stays
  /// fixed.
  int64_t burst = 1;
  uint64_t seed = 42;
  /// Producer threads; streams are partitioned across them (stream i
  /// belongs to thread i % producers) so each ring keeps exactly one
  /// producer.
  int producers = 1;
  /// Sleep to align offers with the virtual-time schedule (true) or
  /// replay as fast as possible in schedule order (false).
  bool paced = false;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

struct LoadStats {
  /// Records the schedule attempted to deliver (end sentinels excluded).
  int64_t offered = 0;
  int64_t accepted = 0;
  /// Records rejected and abandoned (kDrop policy only).
  int64_t dropped = 0;
};

/// Replays every registered session's rows [0, end_row) through the
/// engine on a seeded virtual-time schedule, then delivers each end
/// sentinel, and returns delivery stats. Blocks until all offers are
/// made (not until sessions finish — pair with WaitAllFinished).
///
/// Determinism: each stream's arrival times are a pure function of
/// (options.seed, stream index), and each producer thread merges its
/// streams' events through a (time, stream) min-heap, so the per-stream
/// offer order — and under kBlock the exact delivered record set — is
/// reproducible run to run regardless of pacing, worker count or
/// machine speed.
LoadStats RunLoadGenerator(ServeEngine* engine,
                           const LoadGenOptions& options);

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_LOAD_GEN_H_
