#include "serve/failure.h"

#include "common/string_util.h"

namespace oebench {
namespace serve {

const char* SessionFailureKindName(SessionFailureKind kind) {
  switch (kind) {
    case SessionFailureKind::kException:
      return "exception";
    case SessionFailureKind::kNonFinite:
      return "non-finite";
    case SessionFailureKind::kTransient:
      return "transient";
    case SessionFailureKind::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::string SanitizeFailureMessage(std::string_view message) {
  std::string out(message);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string FormatSessionFailureReport(
    const std::vector<SessionFailure>& failures) {
  if (failures.empty()) return "";
  std::string out = StrFormat("QUARANTINED SESSIONS (%zu):\n", failures.size());
  for (const SessionFailure& f : failures) {
    out += StrFormat("  #%lld\t%s\t%s\trecords=%lld\t%s\n",
                     static_cast<long long>(f.session_id), f.stream.c_str(),
                     SessionFailureKindName(f.kind),
                     static_cast<long long>(f.records_processed),
                     f.message.c_str());
  }
  return out;
}

}  // namespace serve
}  // namespace oebench
