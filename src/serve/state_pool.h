#ifndef OEBENCH_SERVE_STATE_POOL_H_
#define OEBENCH_SERVE_STATE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_spec.h"

namespace oebench {
namespace serve {

/// Shared immutable session state (DESIGN.md "Shared state pools").
///
/// A StreamSession's memory is dominated by its StreamContext — the
/// encoded feature matrix plus targets. When many sessions replay the
/// same corpus spec (the thousands-of-streams load shape), every one of
/// them builds and owns an identical copy; the pool deduplicates them:
/// sessions replaying the same (StreamSpec, PipelineOptions) pair share
/// ONE context behind a `shared_ptr<const StreamContext>` COW handle.
/// The context is strictly immutable after BuildStreamContext, so
/// sharing is work + memory elision, never result change — per-session
/// *mutable* state (WindowPipeline's imputer/normalizer fits, the
/// learner, drift detectors) is deliberately NOT pooled: normalisation
/// statistics are fitted from each session's first *prepared* window,
/// which differs across sessions under record loss.
///
/// Keys reuse the sweep/reuse exact-encoding discipline
/// (SpecCacheKey + PipelineCacheKey: every field, doubles as 16-hex
/// IEEE-754 bit patterns), so "same dataset name, different config" can
/// never alias. Single-flight: the first requester of a key builds the
/// context outside the lock; concurrent requesters wait and count as
/// hits. A failed build erases the slot and each waiter retries as the
/// builder. The pool is unbounded by design — sessions hold handles for
/// their whole life, so evicting a live entry could never return memory.
///
/// Metrics (common/metrics.h contract):
///   serve.state_pool.hits / serve.state_pool.misses   deterministic
///       counters for a fixed session set (single-flight makes the
///       miss count equal the number of distinct keys regardless of
///       which thread builds first)
///   serve.state_pool.entries                          gauge
///   serve.state_pool.bytes_held                       gauge: resident
///       context bytes (what the deduplicated sessions actually pay)
///   serve.state_pool.bytes_saved                      gauge: bytes the
///       hit sessions would have duplicated without the pool — the
///       measured resident-memory drop of pool-on vs pool-off
class StatePool {
 public:
  StatePool() = default;
  StatePool(const StatePool&) = delete;
  StatePool& operator=(const StatePool&) = delete;

  /// Returns the shared context for `stream`'s spec under `options`,
  /// building it on first use. Thread-safe; sessions Init() in parallel.
  Result<std::shared_ptr<const StreamContext>> GetOrBuild(
      const GeneratedStream& stream, const PipelineOptions& options);

  int64_t entries() const;
  int64_t bytes_held() const;
  int64_t bytes_saved() const;
  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }

  /// Drops every resident entry (tests); outstanding handles stay valid.
  void Clear();

  /// Dominant-buffer estimate of one context's resident bytes (feature
  /// matrix + targets at 8 bytes a cell, plus a small fixed overhead) —
  /// same convention as sweep's EstimatePreparedStreamBytes.
  static int64_t EstimateStreamContextBytes(const StreamContext& ctx);

 private:
  struct Slot {
    bool ready = false;
    bool failed = false;
    std::shared_ptr<const StreamContext> value;
    int64_t bytes = 0;
  };

  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  int64_t bytes_held_ = 0;
  int64_t bytes_saved_ = 0;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_STATE_POOL_H_
