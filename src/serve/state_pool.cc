#include "serve/state_pool.h"

#include <utility>

#include "common/metrics.h"
#include "sweep/reuse.h"

namespace oebench {
namespace serve {

int64_t StatePool::EstimateStreamContextBytes(const StreamContext& ctx) {
  constexpr int64_t kFixedOverhead = 4096;
  int64_t cells = ctx.x.rows() * ctx.x.cols();
  cells += static_cast<int64_t>(ctx.target.size());
  return cells * static_cast<int64_t>(sizeof(double)) + kFixedOverhead;
}

Result<std::shared_ptr<const StreamContext>> StatePool::GetOrBuild(
    const GeneratedStream& stream, const PipelineOptions& options) {
  const std::string key =
      sweep::SpecCacheKey(stream.spec) + sweep::PipelineCacheKey(options);
  MetricsRegistry* metrics = MetricsRegistry::Global();
  for (;;) {
    std::shared_ptr<Slot> slot;
    bool build_here = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = slots_.find(key);
      if (it == slots_.end()) {
        slot = std::make_shared<Slot>();
        slots_.emplace(key, slot);
        build_here = true;
      } else {
        slot = it->second;
        // Single-flight: wait for the in-flight builder, then count a
        // hit (the waiter shares the builder's context, it never pays
        // for a second copy).
        cv_.wait(lock, [&] { return slot->ready; });
        if (!slot->failed) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          bytes_saved_ += slot->bytes;
          metrics->GetCounter("serve.state_pool.hits")->Increment();
          metrics->GetGauge("serve.state_pool.bytes_saved")
              ->Set(static_cast<double>(bytes_saved_));
          return slot->value;
        }
        // Failed build already erased the slot; retry as the builder —
        // a transient failure must not poison the key.
        continue;
      }
    }
    if (build_here) {
      Result<StreamContext> ctx = BuildStreamContext(stream, options);
      std::lock_guard<std::mutex> lock(mu_);
      if (!ctx.ok()) {
        slot->ready = true;
        slot->failed = true;
        slots_.erase(key);
        cv_.notify_all();
        return ctx.status();
      }
      slot->value =
          std::make_shared<const StreamContext>(std::move(*ctx));
      slot->bytes = EstimateStreamContextBytes(*slot->value);
      slot->ready = true;
      bytes_held_ += slot->bytes;
      misses_.fetch_add(1, std::memory_order_relaxed);
      metrics->GetCounter("serve.state_pool.misses")->Increment();
      UpdateGaugesLocked();
      cv_.notify_all();
      return slot->value;
    }
  }
}

int64_t StatePool::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(slots_.size());
}

int64_t StatePool::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_held_;
}

int64_t StatePool::bytes_saved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_saved_;
}

void StatePool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  bytes_held_ = 0;
  bytes_saved_ = 0;
  UpdateGaugesLocked();
}

void StatePool::UpdateGaugesLocked() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metrics->GetGauge("serve.state_pool.entries")
      ->Set(static_cast<double>(slots_.size()));
  metrics->GetGauge("serve.state_pool.bytes_held")
      ->Set(static_cast<double>(bytes_held_));
  metrics->GetGauge("serve.state_pool.bytes_saved")
      ->Set(static_cast<double>(bytes_saved_));
}

}  // namespace serve
}  // namespace oebench
