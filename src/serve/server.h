#ifndef OEBENCH_SERVE_SERVER_H_
#define OEBENCH_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "serve/session.h"

namespace oebench {
namespace serve {

struct ServerOptions {
  /// Pipeline worker threads; clamped to >= 1 (inline execution would
  /// run sessions on the producer thread and recurse on resubmission).
  int workers = 4;
  /// Records a session drains per activation before yielding its worker
  /// back to the run-queue, so thousands of streams share few workers
  /// fairly.
  int64_t quantum = 64;
  /// Global cap on records queued across all sessions (0 = unlimited);
  /// offers past the cap are rejected kOverloaded.
  int64_t max_inflight = 0;
  /// Chaos knob: every `slow_every`-th activation sleeps `slow_ms`
  /// milliseconds before draining, to shake out scheduling races
  /// (0 = off). Determinism must survive this — slowness reorders work
  /// across streams, never within one.
  int64_t slow_every = 0;
  int64_t slow_ms = 0;
};

/// Multiplexes N StreamSessions (thousands) over a small ThreadPool via
/// a run-queue: a session is activated when records arrive, drains up to
/// `quantum` records on a worker, then either resubmits itself (ring
/// still non-empty) or parks idle. Each session's state is touched by at
/// most one worker at a time (an atomic idle/scheduled latch), so
/// per-stream processing is strictly serialised while streams freely
/// interleave across workers.
class ServeEngine {
 public:
  explicit ServeEngine(const ServerOptions& options);
  /// Waits for in-flight activations to drain (pool destructor), but
  /// does NOT wait for sessions to finish — call WaitAllFinished first
  /// in orderly shutdown.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Registers an Init()-ed session. Not thread-safe; add all sessions
  /// before offering records.
  void AddSession(std::unique_ptr<StreamSession> session);

  size_t num_sessions() const { return sessions_.size(); }
  StreamSession* session(size_t idx) { return sessions_[idx].get(); }

  /// Producer API: admit one record (or the end sentinel) to session
  /// `idx` and schedule it. kOverloaded means the record was rejected —
  /// by the session ring or the global in-flight cap — and may be
  /// retried (block policy) or counted as a drop (drop policy).
  AdmitResult Offer(size_t idx, int64_t row, double enqueue_seconds);
  AdmitResult OfferEnd(size_t idx, double enqueue_seconds);

  /// Blocks until every registered session finished (consumed its end
  /// sentinel or failed). `timeout_seconds <= 0` waits forever. Returns
  /// false on timeout.
  bool WaitAllFinished(double timeout_seconds = 0.0);

  /// First session failure observed (OK when none). Stable after
  /// WaitAllFinished.
  Status first_error() const;

  /// Records currently admitted but not yet consumed, across sessions.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t sessions_finished() const {
    return finished_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Schedules session `idx` if it is idle and has work.
  void Activate(size_t idx);
  /// One activation: drain a quantum, then resubmit or park.
  void RunSession(size_t idx);

  const ServerOptions options_;
  std::vector<std::unique_ptr<StreamSession>> sessions_;
  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> activations_{0};
  std::atomic<int64_t> finished_count_{0};

  mutable std::mutex mu_;
  std::condition_variable finished_cv_;
  Status first_error_;  // guarded by mu_

  /// Last member: destroyed first, draining queued activations while
  /// sessions_ is still alive.
  ThreadPool pool_;
};

/// Estimates quantile `q` in [0, 1] from a fixed-bound histogram
/// snapshot by linear interpolation inside the target bucket, clamped to
/// the recorded [min, max]. Returns 0 when the histogram is empty.
double QuantileFromHistogram(const HistogramSnapshot& snapshot, double q);

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_SERVER_H_
