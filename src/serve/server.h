#ifndef OEBENCH_SERVE_SERVER_H_
#define OEBENCH_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/watchdog.h"
#include "serve/admission.h"
#include "serve/failure.h"
#include "serve/session.h"

namespace oebench {

class ServeChaosInjector;

namespace serve {

struct ServerOptions {
  /// Pipeline worker threads; clamped to >= 1 (inline execution would
  /// run sessions on the producer thread and recurse on resubmission).
  int workers = 4;
  /// Records a session drains per activation before yielding its worker
  /// back to the run-queue, so thousands of streams share few workers
  /// fairly.
  int64_t quantum = 64;
  /// Global cap on records queued across all sessions (0 = unlimited);
  /// offers past the cap are rejected kOverloaded.
  int64_t max_inflight = 0;
  /// Chaos knob: every `slow_every`-th activation sleeps `slow_ms`
  /// milliseconds before draining, to shake out scheduling races
  /// (0 = off). Determinism must survive this — slowness reorders work
  /// across streams, never within one.
  int64_t slow_every = 0;
  int64_t slow_ms = 0;
  /// Serve-side chaos injection (throw-at-activation / nan-at-record /
  /// transient clauses); wired into every session at AddSession. Not
  /// owned; must outlive the engine. nullptr = off.
  ServeChaosInjector* chaos = nullptr;
  /// Adaptive admission controller: data-record offers are shed (kShed)
  /// while it says the latency budget is blown; sentinels are exempt.
  /// Not owned. nullptr = off.
  AdmissionController* admission = nullptr;
  /// Per-activation wall-clock watchdog: activations running longer
  /// than this are reported (never killed), exactly like the sweep
  /// engine's per-task watchdog. 0 = off.
  int watchdog_limit_ms = 0;
  /// Shutdown self-defence: during WaitAllFinished, an unfinished
  /// session with no activation progress for this long is *evicted* —
  /// quarantined kDeadline with its ring drained — so one wedged stream
  /// cannot hang shutdown. Wall-clock, hence inherently volatile;
  /// 0 = off. Call WaitAllFinished only after all offers are made, or
  /// slow-but-healthy producers may see their streams evicted.
  int session_deadline_ms = 0;
  /// Failure breaker: once more than this many sessions are
  /// quarantined, the run is systemically poisoned — further offers are
  /// refused (kFinished) and WaitAllFinished abandons the remaining
  /// unfinished sessions instead of waiting for their sentinels.
  /// -1 = unlimited (never trips).
  int64_t max_session_failures = -1;
};

/// Multiplexes N StreamSessions (thousands) over a small ThreadPool via
/// a run-queue: a session is activated when records arrive, drains up to
/// `quantum` records on a worker, then either resubmits itself (ring
/// still non-empty) or parks idle. Each session's state is touched by at
/// most one worker at a time (an atomic idle/scheduled latch), so
/// per-stream processing is strictly serialised while streams freely
/// interleave across workers.
///
/// Failure domain: sessions never throw onto pool workers — a faulting
/// stream quarantines itself (see StreamSession) and the engine collects
/// its structured SessionFailure when it finishes. failures() and
/// FormatSessionFailureReport expose the quarantine set after
/// WaitAllFinished.
class ServeEngine {
 public:
  explicit ServeEngine(const ServerOptions& options);
  /// Waits for in-flight activations to drain (pool destructor), but
  /// does NOT wait for sessions to finish — call WaitAllFinished first
  /// in orderly shutdown.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Registers an Init()-ed session (wiring in the chaos injector, if
  /// any). Not thread-safe; add all sessions before offering records.
  void AddSession(std::unique_ptr<StreamSession> session);

  size_t num_sessions() const { return sessions_.size(); }
  StreamSession* session(size_t idx) { return sessions_[idx].get(); }

  /// Producer API: admit one record (or the end sentinel) to session
  /// `idx` and schedule it. kOverloaded means the record was rejected —
  /// by the session ring or the global in-flight cap — and may be
  /// retried (block policy) or counted as a drop (drop policy). kShed
  /// means the adaptive admission controller refused it; never retry.
  AdmitResult Offer(size_t idx, int64_t row, double enqueue_seconds);
  AdmitResult OfferEnd(size_t idx, double enqueue_seconds);

  /// Outcome of a batched offer: `accepted` records entered the ring
  /// (always a prefix of the run — per-stream FIFO order is preserved),
  /// `rest` classifies the remainder (kAccepted when the whole run got
  /// in). kShed sheds the entire remaining run in one decision.
  struct BatchAdmit {
    int64_t accepted = 0;
    AdmitResult rest = AdmitResult::kAccepted;
  };

  /// Producer API, batched (record-batch admission): admit up to
  /// `count` consecutive data rows [first_row, first_row + count) to
  /// session `idx` as ONE ring operation and at most one Activate().
  /// Admission control runs once per batch — the shed decision and the
  /// global in-flight cap apply to the run as a whole (the cap clamps
  /// the run so it cannot overshoot by more than one batch). Sentinels
  /// are not batched; deliver them with OfferEnd.
  BatchAdmit OfferBatch(size_t idx, int64_t first_row, int64_t count,
                        double enqueue_seconds);

  /// Blocks until every registered session finished (consumed its end
  /// sentinel, was quarantined-and-drained, or was evicted/abandoned).
  /// `timeout_seconds <= 0` waits forever. Runs the deadline-eviction
  /// and failure-breaker shutdown paths. On timeout returns false and
  /// logs one diagnostic line per unfinished session (index, queue
  /// depth, activation count) to stderr.
  bool WaitAllFinished(double timeout_seconds = 0.0);

  /// Structured failure records of every quarantined session, in
  /// collection order. Stable after WaitAllFinished.
  std::vector<SessionFailure> failures() const;
  /// Quarantined sessions so far (racy before WaitAllFinished).
  int64_t sessions_quarantined() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }
  /// True once the max_session_failures breaker tripped.
  bool breaker_tripped() const {
    return breaker_.load(std::memory_order_relaxed);
  }

  /// One diagnostic line per unfinished session (also what the
  /// WaitAllFinished timeout path logs); empty when all finished.
  std::string DescribeUnfinished() const;

  /// Records currently admitted but not yet consumed, across sessions.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t sessions_finished() const {
    return finished_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Schedules session `idx` if it is idle and has work.
  void Activate(size_t idx);
  /// One activation: drain a quantum, then resubmit or park.
  void RunSession(size_t idx);
  /// Collects a freshly-finished session's failure record (if any) and
  /// trips the breaker when the quarantine budget is exhausted.
  void CollectFailure(StreamSession* session);
  /// Shutdown sweeps (WaitAllFinished thread only): evict idle sessions
  /// past the progress deadline / abandon everything after the breaker
  /// tripped; both also re-drain straggler pushes into evicted rings.
  void EvictStalledSessions(double wait_start_seconds);
  void AbandonUnfinishedSessions();
  void ReclaimEvictedRings();

  const ServerOptions options_;
  std::vector<std::unique_ptr<StreamSession>> sessions_;
  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> activations_{0};
  std::atomic<int64_t> finished_count_{0};
  std::atomic<int64_t> quarantined_count_{0};
  std::atomic<bool> breaker_{false};

  mutable std::mutex mu_;
  std::condition_variable finished_cv_;
  std::vector<SessionFailure> failures_;  // guarded by mu_

  /// Sessions force-finished by eviction/abandonment; only the
  /// WaitAllFinished thread touches it.
  std::vector<size_t> reclaimable_;

  std::unique_ptr<TaskWatchdog> watchdog_;

  /// Last member: destroyed first, draining queued activations while
  /// sessions_ is still alive.
  ThreadPool pool_;
};

/// Estimates quantile `q` in [0, 1] from a fixed-bound histogram
/// snapshot by linear interpolation inside the target bucket, clamped to
/// the recorded [min, max]. A quantile landing in the overflow bucket
/// (past the last finite bound) is clamped to that bound — the overflow
/// bucket has no finite upper edge, so interpolation there would
/// extrapolate. Returns 0 when the histogram is empty.
double QuantileFromHistogram(const HistogramSnapshot& snapshot, double q);

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_SERVER_H_
