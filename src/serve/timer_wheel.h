#ifndef OEBENCH_SERVE_TIMER_WHEEL_H_
#define OEBENCH_SERVE_TIMER_WHEEL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oebench {
namespace serve {

/// Hashed timer wheel for paced replay (DESIGN.md "Timer-wheel paced
/// replay"): items are scheduled at virtual-time deadlines and released
/// tick by tick, so a paced producer sleeps ONCE per tick and then
/// delivers every event due within it — instead of one sleep_until per
/// event, which at 10k events/second costs 10k syscalls and scheduler
/// round-trips a second.
///
/// Classic single-level hashed wheel: slot = due_tick mod num_slots;
/// each slot holds every item hashing to it, tagged with its absolute
/// due tick, so far-future items (due_tick beyond one wheel revolution)
/// simply stay in their slot until the wheel comes round to their tick —
/// no hierarchical cascade needed at this scale. Advancing never sleeps;
/// the caller owns the wall clock (and skips sleeping when it is behind
/// schedule — catch-up ticks release their events immediately).
///
/// Determinism contract: release order is (tick, then whatever order the
/// caller imposes on the released set). AdvanceTick returns the due set
/// sorted by (due_seconds, then insertion sequence), and tick(t) is
/// monotone in t, so releasing tick by tick preserves the global
/// virtual-time order of the unpaced schedule. Pure arithmetic on the
/// scheduled deadlines — no wall-clock reads — so the release sequence
/// is a deterministic function of the scheduled times alone.
template <typename T>
class TimerWheel {
 public:
  struct Entry {
    double due_seconds = 0.0;
    T item{};
  };

  /// `tick_seconds` is the pacing granularity (events due within one
  /// tick are released together); `num_slots` is rounded up to a power
  /// of two.
  explicit TimerWheel(double tick_seconds, size_t num_slots = 256)
      : tick_seconds_(tick_seconds > 0.0 ? tick_seconds : 1e-3),
        mask_(RoundUpPow2(num_slots < 2 ? 2 : num_slots) - 1),
        slots_(mask_ + 1) {}

  /// Schedules `item` at virtual time `due_seconds`. Deadlines at or
  /// before the already-released time are clamped into the next tick
  /// (never dropped, never released out of tick order).
  void Schedule(double due_seconds, T item) {
    uint64_t due_tick = TickFor(due_seconds);
    if (due_tick <= released_tick_) due_tick = released_tick_ + 1;
    Slot& slot = slots_[static_cast<size_t>(due_tick) & mask_];
    slot.push_back(Pending{due_tick, seq_++, due_seconds, std::move(item)});
    ++pending_;
  }

  /// Advances the wheel one tick and moves every item due in it into
  /// `*due`, sorted by (due_seconds, schedule order). Returns the
  /// virtual end time of the released tick — what the caller sleeps
  /// until before delivering the batch.
  double AdvanceTick(std::vector<Entry>* due) {
    due->clear();
    const uint64_t tick = ++released_tick_;
    Slot& slot = slots_[static_cast<size_t>(tick) & mask_];
    scratch_.clear();
    size_t keep = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].due_tick <= tick) {
        scratch_.push_back(std::move(slot[i]));
      } else {
        // A later revolution's item: stays in the slot.
        slot[keep++] = std::move(slot[i]);
      }
    }
    slot.resize(keep);
    pending_ -= scratch_.size();
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Pending& a, const Pending& b) {
                if (a.due_seconds != b.due_seconds) {
                  return a.due_seconds < b.due_seconds;
                }
                return a.seq < b.seq;
              });
    due->reserve(scratch_.size());
    for (Pending& p : scratch_) {
      due->push_back(Entry{p.due_seconds, std::move(p.item)});
    }
    return static_cast<double>(tick) * tick_seconds_;
  }

  size_t pending() const { return pending_; }
  double tick_seconds() const { return tick_seconds_; }

 private:
  struct Pending {
    uint64_t due_tick = 0;
    uint64_t seq = 0;
    double due_seconds = 0.0;
    T item{};
  };
  using Slot = std::vector<Pending>;

  /// The advance step at which a deadline fires: the first tick whose
  /// end time is at or past it.
  uint64_t TickFor(double due_seconds) const {
    if (due_seconds <= 0.0) return 0;
    return static_cast<uint64_t>(std::ceil(due_seconds / tick_seconds_));
  }

  static size_t RoundUpPow2(size_t v) {
    --v;
    for (size_t shift = 1; shift < sizeof(size_t) * 8; shift <<= 1) {
      v |= v >> shift;
    }
    return v + 1;
  }

  const double tick_seconds_;
  const uint64_t mask_;
  std::vector<Slot> slots_;
  std::vector<Pending> scratch_;
  uint64_t released_tick_ = 0;
  uint64_t seq_ = 0;
  size_t pending_ = 0;
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_TIMER_WHEEL_H_
