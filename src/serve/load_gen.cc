#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "serve/timer_wheel.h"

namespace oebench {
namespace serve {

int64_t BackoffMillis(const sweep::RetryPolicy& policy, int rejections) {
  if (rejections <= kBackoffSpinRetries || policy.initial_backoff_ms <= 0) {
    return 0;
  }
  int doublings = std::min(rejections - kBackoffSpinRetries - 1,
                           std::max(0, policy.max_attempts - 1));
  // Clamp the shift itself: with a large max_attempts the unclamped
  // doubling count would shift initial_backoff_ms past 63 bits and
  // overflow int64_t (UB) long before the ceiling could apply. 20
  // doublings of even 1 ms is ~17 minutes, far past kMaxBackoffMillis,
  // so the clamp never changes an in-range result.
  constexpr int kMaxDoublings = 20;
  doublings = std::min(doublings, kMaxDoublings);
  const int64_t ms = static_cast<int64_t>(policy.initial_backoff_ms)
                     << doublings;
  return std::min(ms, kMaxBackoffMillis);
}

namespace {

/// Stream-id-salted seed so every stream draws an independent,
/// reproducible arrival process from one user-facing seed.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One stream's replay cursor on the virtual-time schedule.
struct StreamCursor {
  size_t idx = 0;          // session index in the engine
  int64_t next_row = 0;    // next row to deliver
  int64_t end_row = 0;     // rows are [0, end_row)
  double next_time = 0.0;  // virtual seconds of the next arrival event
  Rng rng{0};
  bool end_sent = false;
  // Record-batch admission: the contiguous run [run_start,
  // run_start + run_len) of this stream's rows not yet offered to the
  // engine (batch_records > 1 only).
  int64_t run_start = 0;
  int64_t run_len = 0;
  StreamLoadStats stats;
};

struct EventOrder {
  bool operator()(const StreamCursor* a, const StreamCursor* b) const {
    if (a->next_time != b->next_time) return a->next_time > b->next_time;
    return a->idx > b->idx;  // min-heap: earliest time, lowest stream
  }
};

/// Instantaneous event rate at virtual time `t` under the sinusoidal
/// drift (the base rate when drift is off). Clamped to 1% of base so a
/// full-amplitude trough never stalls the schedule.
double EffectiveRate(const LoadGenOptions& options, double base_rate,
                     double t) {
  if (options.rate_drift_amplitude <= 0.0 ||
      options.rate_drift_period_seconds <= 0.0) {
    return base_rate;
  }
  constexpr double kTwoPi = 6.283185307179586;
  const double factor =
      1.0 + options.rate_drift_amplitude *
                std::sin(kTwoPi * t / options.rate_drift_period_seconds);
  return std::max(base_rate * 0.01, base_rate * factor);
}

/// Draws the next exponential inter-arrival gap (virtual seconds) at
/// the rate in force at the cursor's current virtual time.
double NextGap(StreamCursor* cursor, const LoadGenOptions& options,
               double base_event_rate) {
  double u = cursor->rng.Uniform();
  // Guard log(0); Uniform() is in [0, 1).
  u = std::min(u, 1.0 - 1e-12);
  const double rate =
      EffectiveRate(options, base_event_rate, cursor->next_time);
  return -std::log(1.0 - u) / rate;
}

/// Sleeps (or yields) for the `rejections`-th consecutive kOverloaded.
void BackoffSleep(const LoadGenOptions& options, int rejections) {
  const int64_t ms = BackoffMillis(options.backoff, rejections);
  if (ms <= 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

/// Offers one record with the policy's retry/drop behaviour.
/// `must_deliver` forces retries even under kDrop (end sentinels).
/// Backpressure retries use bounded exponential backoff: kBackoffSpinRetries
/// yields, then sleeps doubling from the policy's initial backoff,
/// clamped so the shift cannot overflow and capped at kMaxBackoffMillis
/// — bounded sleep, unbounded delivery (block policy never abandons a
/// record).
void OfferRecord(ServeEngine* engine, StreamCursor* cursor, int64_t row,
                 const LoadGenOptions& options, bool must_deliver) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  static Counter* offer_retries =
      metrics->GetVolatileCounter("serve.offer_retries");
  int rejections = 0;
  for (;;) {
    const AdmitResult admit =
        engine->Offer(cursor->idx, row, metrics->NowSeconds());
    if (admit == AdmitResult::kAccepted) {
      if (row != kEndOfStream) ++cursor->stats.accepted;
      return;
    }
    if (admit == AdmitResult::kFinished) return;  // failed or done: stop
    if (admit == AdmitResult::kShed) {
      // Adaptive admission refused it to protect tail latency; retrying
      // would defeat the shedding (the engine exempts sentinels, so
      // must_deliver records never see kShed).
      ++cursor->stats.shed;
      return;
    }
    // kOverloaded — structured backpressure.
    if (options.admission == AdmissionPolicy::kDrop && !must_deliver) {
      ++cursor->stats.dropped;
      metrics->GetVolatileCounter("serve.drops_overloaded")->Increment();
      return;
    }
    offer_retries->Increment();
    ++rejections;
    BackoffSleep(options, rejections);
  }
}

/// Offers the first `count` records of the cursor's pending run as
/// batched engine offers, with the same policy semantics as OfferRecord:
/// block retries the unadmitted remainder with bounded backoff; drop
/// counts it and moves on; shed refuses the remainder in one decision.
void OfferRunChunk(ServeEngine* engine, StreamCursor* cursor,
                   int64_t count, const LoadGenOptions& options) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  static Counter* offer_retries =
      metrics->GetVolatileCounter("serve.offer_retries");
  int rejections = 0;
  int64_t remaining = count;
  while (remaining > 0) {
    const ServeEngine::BatchAdmit admit = engine->OfferBatch(
        cursor->idx, cursor->run_start, remaining, metrics->NowSeconds());
    if (admit.accepted > 0) {
      cursor->stats.accepted += admit.accepted;
      cursor->run_start += admit.accepted;
      cursor->run_len -= admit.accepted;
      remaining -= admit.accepted;
      rejections = 0;  // progress: restart the backoff ladder
    }
    if (remaining == 0) break;
    if (admit.rest == AdmitResult::kFinished) {
      // Failed or done: stop feeding (mirrors OfferRecord — the records
      // are neither accepted nor dropped, the session is gone).
      cursor->run_start += remaining;
      cursor->run_len -= remaining;
      return;
    }
    if (admit.rest == AdmitResult::kShed) {
      cursor->stats.shed += remaining;
      cursor->run_start += remaining;
      cursor->run_len -= remaining;
      return;
    }
    // kOverloaded.
    if (options.admission == AdmissionPolicy::kDrop) {
      cursor->stats.dropped += remaining;
      metrics->GetVolatileCounter("serve.drops_overloaded")
          ->Add(remaining);
      cursor->run_start += remaining;
      cursor->run_len -= remaining;
      return;
    }
    offer_retries->Increment();
    ++rejections;
    BackoffSleep(options, rejections);
  }
}

/// Flushes the cursor's pending run in batch_records-sized chunks; with
/// `flush_all` also the final partial chunk (pre-sentinel drain).
void FlushRun(ServeEngine* engine, StreamCursor* cursor,
              const LoadGenOptions& options, bool flush_all) {
  while (cursor->run_len >= options.batch_records ||
         (flush_all && cursor->run_len > 0)) {
    OfferRunChunk(engine, cursor,
                  std::min(cursor->run_len, options.batch_records),
                  options);
  }
}

/// Delivers one arrival event for `cursor`: a burst of data rows — per
/// record, or coalesced into contiguous batched runs when
/// batch_records > 1 — or, once the rows are exhausted, the pending-run
/// drain plus the end sentinel. Returns true (and re-arms next_time)
/// while the cursor has further events.
bool DeliverEvent(ServeEngine* engine, const LoadGenOptions& options,
                  double event_rate, StreamCursor* cursor) {
  if (cursor->next_row >= cursor->end_row) {
    if (!cursor->end_sent) {
      cursor->end_sent = true;
      if (options.batch_records > 1) {
        FlushRun(engine, cursor, options, /*flush_all=*/true);
      }
      OfferRecord(engine, cursor, kEndOfStream, options,
                  /*must_deliver=*/true);
    }
    return false;  // stream done, not re-armed
  }
  const int64_t burst_end =
      std::min(cursor->end_row, cursor->next_row + options.burst);
  if (options.batch_records > 1) {
    // The burst's rows are consecutive and adjoin the pending run, so
    // the run stays one contiguous range.
    cursor->stats.offered += burst_end - cursor->next_row;
    cursor->run_len += burst_end - cursor->next_row;
    FlushRun(engine, cursor, options, /*flush_all=*/false);
  } else {
    for (int64_t row = cursor->next_row; row < burst_end; ++row) {
      ++cursor->stats.offered;
      OfferRecord(engine, cursor, row, options, /*must_deliver=*/false);
    }
  }
  cursor->next_row = burst_end;
  cursor->next_time += NextGap(cursor, options, event_rate);
  return true;
}

/// Unpaced replay: merge events through a (time, stream) min-heap and
/// deliver as fast as the engine admits them, in schedule order.
void RunProducerUnpaced(ServeEngine* engine, const LoadGenOptions& options,
                        double event_rate,
                        std::vector<StreamCursor>* streams) {
  std::priority_queue<StreamCursor*, std::vector<StreamCursor*>, EventOrder>
      heap;
  for (StreamCursor& cursor : *streams) heap.push(&cursor);
  while (!heap.empty()) {
    StreamCursor* cursor = heap.top();
    heap.pop();
    if (DeliverEvent(engine, options, event_rate, cursor)) {
      heap.push(cursor);
    }
  }
}

/// Paced replay on a hashed timer wheel: ONE sleep per non-empty tick,
/// then every event due within the tick is released (sorted by virtual
/// due time), instead of one sleep_until per event. Empty ticks cost
/// pure arithmetic — the sleep targets the absolute wall deadline of
/// the next tick that has work, and a producer running behind schedule
/// catches up without sleeping (sleep_until in the past returns
/// immediately). The event schedule itself is untouched: NextGap draws
/// and delivery order are byte-identical to the unpaced heap's.
void RunProducerPaced(ServeEngine* engine, const LoadGenOptions& options,
                      double event_rate,
                      std::vector<StreamCursor>* streams) {
  TimerWheel<StreamCursor*> wheel(options.pace_tick_seconds);
  for (StreamCursor& cursor : *streams) {
    wheel.Schedule(cursor.next_time, &cursor);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<TimerWheel<StreamCursor*>::Entry> due;
  while (wheel.pending() > 0) {
    const double tick_end = wheel.AdvanceTick(&due);
    if (due.empty()) continue;
    std::this_thread::sleep_until(
        wall_start +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(tick_end)));
    for (const auto& entry : due) {
      StreamCursor* cursor = entry.item;
      if (DeliverEvent(engine, options, event_rate, cursor)) {
        wheel.Schedule(cursor->next_time, cursor);
      }
    }
  }
}

/// Replays the streams owned by one producer thread in merged
/// virtual-time order.
std::vector<StreamLoadStats> RunProducer(ServeEngine* engine,
                                         const LoadGenOptions& options,
                                         std::vector<StreamCursor>* streams) {
  const double event_rate =
      options.rate / static_cast<double>(std::max<int64_t>(1, options.burst));
  for (StreamCursor& cursor : *streams) {
    cursor.next_time = NextGap(&cursor, options, event_rate);
  }
  if (options.paced) {
    RunProducerPaced(engine, options, event_rate, streams);
  } else {
    RunProducerUnpaced(engine, options, event_rate, streams);
  }
  std::vector<StreamLoadStats> stats;
  stats.reserve(streams->size());
  for (StreamCursor& cursor : *streams) {
    cursor.stats.idx = cursor.idx;
    stats.push_back(cursor.stats);
  }
  return stats;
}

}  // namespace

LoadStats RunLoadGenerator(ServeEngine* engine,
                           const LoadGenOptions& options) {
  const int producers =
      std::max(1, std::min<int>(options.producers,
                                static_cast<int>(engine->num_sessions())));
  // Partition streams across producer threads; each ring keeps exactly
  // one producer (SPSC contract).
  std::vector<std::vector<StreamCursor>> partitions(
      static_cast<size_t>(producers));
  for (size_t i = 0; i < engine->num_sessions(); ++i) {
    StreamCursor cursor;
    cursor.idx = i;
    cursor.end_row = engine->session(i)->end_row();
    cursor.rng = Rng(MixSeed(options.seed, static_cast<uint64_t>(i)));
    partitions[i % static_cast<size_t>(producers)].push_back(
        std::move(cursor));
  }

  std::vector<std::vector<StreamLoadStats>> partial(
      static_cast<size_t>(producers));
  if (producers == 1) {
    partial[0] = RunProducer(engine, options, &partitions[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        partial[static_cast<size_t>(p)] = RunProducer(
            engine, options, &partitions[static_cast<size_t>(p)]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  LoadStats stats;
  for (std::vector<StreamLoadStats>& part : partial) {
    for (StreamLoadStats& s : part) {
      stats.offered += s.offered;
      stats.accepted += s.accepted;
      stats.dropped += s.dropped;
      stats.shed += s.shed;
      stats.per_stream.push_back(s);
    }
  }
  std::sort(stats.per_stream.begin(), stats.per_stream.end(),
            [](const StreamLoadStats& a, const StreamLoadStats& b) {
              return a.idx < b.idx;
            });
  return stats;
}

}  // namespace serve
}  // namespace oebench
