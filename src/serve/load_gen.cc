#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"

namespace oebench {
namespace serve {

namespace {

/// Stream-id-salted seed so every stream draws an independent,
/// reproducible arrival process from one user-facing seed.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One stream's replay cursor on the virtual-time schedule.
struct StreamCursor {
  size_t idx = 0;          // session index in the engine
  int64_t next_row = 0;    // next row to deliver
  int64_t end_row = 0;     // rows are [0, end_row)
  double next_time = 0.0;  // virtual seconds of the next arrival event
  Rng rng{0};
  bool end_sent = false;
};

struct EventOrder {
  bool operator()(const StreamCursor* a, const StreamCursor* b) const {
    if (a->next_time != b->next_time) return a->next_time > b->next_time;
    return a->idx > b->idx;  // min-heap: earliest time, lowest stream
  }
};

/// Draws the next exponential inter-arrival gap (virtual seconds).
double NextGap(StreamCursor* cursor, double event_rate) {
  double u = cursor->rng.Uniform();
  // Guard log(0); Uniform() is in [0, 1).
  u = std::min(u, 1.0 - 1e-12);
  return -std::log(1.0 - u) / event_rate;
}

/// Offers one record with the policy's retry/drop behaviour.
/// `must_deliver` forces retries even under kDrop (end sentinels).
void OfferRecord(ServeEngine* engine, size_t idx, int64_t row,
                 AdmissionPolicy policy, bool must_deliver,
                 LoadStats* stats) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  for (;;) {
    const AdmitResult admit =
        engine->Offer(idx, row, metrics->NowSeconds());
    if (admit == AdmitResult::kAccepted) {
      if (row != kEndOfStream) ++stats->accepted;
      return;
    }
    if (admit == AdmitResult::kFinished) return;  // failed or done: stop
    // kOverloaded — structured backpressure.
    if (policy == AdmissionPolicy::kDrop && !must_deliver) {
      ++stats->dropped;
      metrics->GetVolatileCounter("serve.drops_overloaded")->Increment();
      return;
    }
    std::this_thread::yield();
  }
}

/// Replays the streams owned by one producer thread in merged
/// virtual-time order.
LoadStats RunProducer(ServeEngine* engine, const LoadGenOptions& options,
                      std::vector<StreamCursor> streams) {
  LoadStats stats;
  const double event_rate =
      options.rate / static_cast<double>(std::max<int64_t>(1, options.burst));
  std::priority_queue<StreamCursor*, std::vector<StreamCursor*>, EventOrder>
      heap;
  for (StreamCursor& cursor : streams) {
    cursor.next_time = NextGap(&cursor, event_rate);
    heap.push(&cursor);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  while (!heap.empty()) {
    StreamCursor* cursor = heap.top();
    heap.pop();
    if (options.paced) {
      std::this_thread::sleep_until(
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(cursor->next_time)));
    }
    if (cursor->next_row >= cursor->end_row) {
      if (!cursor->end_sent) {
        cursor->end_sent = true;
        OfferRecord(engine, cursor->idx, kEndOfStream, options.admission,
                    /*must_deliver=*/true, &stats);
      }
      continue;  // stream done, not re-queued
    }
    const int64_t burst_end =
        std::min(cursor->end_row, cursor->next_row + options.burst);
    for (int64_t row = cursor->next_row; row < burst_end; ++row) {
      ++stats.offered;
      OfferRecord(engine, cursor->idx, row, options.admission,
                  /*must_deliver=*/false, &stats);
    }
    cursor->next_row = burst_end;
    cursor->next_time += NextGap(cursor, event_rate);
    heap.push(cursor);
  }
  return stats;
}

}  // namespace

LoadStats RunLoadGenerator(ServeEngine* engine,
                           const LoadGenOptions& options) {
  const int producers =
      std::max(1, std::min<int>(options.producers,
                                static_cast<int>(engine->num_sessions())));
  // Partition streams across producer threads; each ring keeps exactly
  // one producer (SPSC contract).
  std::vector<std::vector<StreamCursor>> partitions(
      static_cast<size_t>(producers));
  for (size_t i = 0; i < engine->num_sessions(); ++i) {
    StreamCursor cursor;
    cursor.idx = i;
    cursor.end_row = engine->session(i)->end_row();
    cursor.rng = Rng(MixSeed(options.seed, static_cast<uint64_t>(i)));
    partitions[i % static_cast<size_t>(producers)].push_back(
        std::move(cursor));
  }

  if (producers == 1) {
    return RunProducer(engine, options, std::move(partitions[0]));
  }
  std::vector<LoadStats> partial(static_cast<size_t>(producers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      partial[static_cast<size_t>(p)] =
          RunProducer(engine, options, std::move(partitions[static_cast<size_t>(p)]));
    });
  }
  for (std::thread& t : threads) t.join();
  LoadStats stats;
  for (const LoadStats& s : partial) {
    stats.offered += s.offered;
    stats.accepted += s.accepted;
    stats.dropped += s.dropped;
  }
  return stats;
}

}  // namespace serve
}  // namespace oebench
