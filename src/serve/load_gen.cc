#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"

namespace oebench {
namespace serve {

namespace {

/// Rejections absorbed by a bare yield before the exponential sleep
/// backoff starts: short overloads clear in microseconds and should not
/// pay a millisecond sleep.
constexpr int kSpinRetries = 16;

/// Stream-id-salted seed so every stream draws an independent,
/// reproducible arrival process from one user-facing seed.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One stream's replay cursor on the virtual-time schedule.
struct StreamCursor {
  size_t idx = 0;          // session index in the engine
  int64_t next_row = 0;    // next row to deliver
  int64_t end_row = 0;     // rows are [0, end_row)
  double next_time = 0.0;  // virtual seconds of the next arrival event
  Rng rng{0};
  bool end_sent = false;
  StreamLoadStats stats;
};

struct EventOrder {
  bool operator()(const StreamCursor* a, const StreamCursor* b) const {
    if (a->next_time != b->next_time) return a->next_time > b->next_time;
    return a->idx > b->idx;  // min-heap: earliest time, lowest stream
  }
};

/// Instantaneous event rate at virtual time `t` under the sinusoidal
/// drift (the base rate when drift is off). Clamped to 1% of base so a
/// full-amplitude trough never stalls the schedule.
double EffectiveRate(const LoadGenOptions& options, double base_rate,
                     double t) {
  if (options.rate_drift_amplitude <= 0.0 ||
      options.rate_drift_period_seconds <= 0.0) {
    return base_rate;
  }
  constexpr double kTwoPi = 6.283185307179586;
  const double factor =
      1.0 + options.rate_drift_amplitude *
                std::sin(kTwoPi * t / options.rate_drift_period_seconds);
  return std::max(base_rate * 0.01, base_rate * factor);
}

/// Draws the next exponential inter-arrival gap (virtual seconds) at
/// the rate in force at the cursor's current virtual time.
double NextGap(StreamCursor* cursor, const LoadGenOptions& options,
               double base_event_rate) {
  double u = cursor->rng.Uniform();
  // Guard log(0); Uniform() is in [0, 1).
  u = std::min(u, 1.0 - 1e-12);
  const double rate =
      EffectiveRate(options, base_event_rate, cursor->next_time);
  return -std::log(1.0 - u) / rate;
}

/// Offers one record with the policy's retry/drop behaviour.
/// `must_deliver` forces retries even under kDrop (end sentinels).
/// Backpressure retries use bounded exponential backoff: kSpinRetries
/// yields, then sleeps doubling from the policy's initial backoff and
/// capped after max_attempts doublings — the spin is bounded even when
/// the block policy retries forever.
void OfferRecord(ServeEngine* engine, StreamCursor* cursor, int64_t row,
                 const LoadGenOptions& options, bool must_deliver) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  static Counter* offer_retries =
      metrics->GetVolatileCounter("serve.offer_retries");
  int rejections = 0;
  for (;;) {
    const AdmitResult admit =
        engine->Offer(cursor->idx, row, metrics->NowSeconds());
    if (admit == AdmitResult::kAccepted) {
      if (row != kEndOfStream) ++cursor->stats.accepted;
      return;
    }
    if (admit == AdmitResult::kFinished) return;  // failed or done: stop
    if (admit == AdmitResult::kShed) {
      // Adaptive admission refused it to protect tail latency; retrying
      // would defeat the shedding (the engine exempts sentinels, so
      // must_deliver records never see kShed).
      ++cursor->stats.shed;
      return;
    }
    // kOverloaded — structured backpressure.
    if (options.admission == AdmissionPolicy::kDrop && !must_deliver) {
      ++cursor->stats.dropped;
      metrics->GetVolatileCounter("serve.drops_overloaded")->Increment();
      return;
    }
    offer_retries->Increment();
    ++rejections;
    if (rejections <= kSpinRetries || options.backoff.initial_backoff_ms <= 0) {
      std::this_thread::yield();
      continue;
    }
    const int doublings =
        std::min(rejections - kSpinRetries - 1,
                 std::max(0, options.backoff.max_attempts - 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(options.backoff.initial_backoff_ms)
        << doublings));
  }
}

/// Replays the streams owned by one producer thread in merged
/// virtual-time order.
std::vector<StreamLoadStats> RunProducer(ServeEngine* engine,
                                         const LoadGenOptions& options,
                                         std::vector<StreamCursor>* streams) {
  const double event_rate =
      options.rate / static_cast<double>(std::max<int64_t>(1, options.burst));
  std::priority_queue<StreamCursor*, std::vector<StreamCursor*>, EventOrder>
      heap;
  for (StreamCursor& cursor : *streams) {
    cursor.next_time = NextGap(&cursor, options, event_rate);
    heap.push(&cursor);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  while (!heap.empty()) {
    StreamCursor* cursor = heap.top();
    heap.pop();
    if (options.paced) {
      std::this_thread::sleep_until(
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(cursor->next_time)));
    }
    if (cursor->next_row >= cursor->end_row) {
      if (!cursor->end_sent) {
        cursor->end_sent = true;
        OfferRecord(engine, cursor, kEndOfStream, options,
                    /*must_deliver=*/true);
      }
      continue;  // stream done, not re-queued
    }
    const int64_t burst_end =
        std::min(cursor->end_row, cursor->next_row + options.burst);
    for (int64_t row = cursor->next_row; row < burst_end; ++row) {
      ++cursor->stats.offered;
      OfferRecord(engine, cursor, row, options, /*must_deliver=*/false);
    }
    cursor->next_row = burst_end;
    cursor->next_time += NextGap(cursor, options, event_rate);
    heap.push(cursor);
  }
  std::vector<StreamLoadStats> stats;
  stats.reserve(streams->size());
  for (StreamCursor& cursor : *streams) {
    cursor.stats.idx = cursor.idx;
    stats.push_back(cursor.stats);
  }
  return stats;
}

}  // namespace

LoadStats RunLoadGenerator(ServeEngine* engine,
                           const LoadGenOptions& options) {
  const int producers =
      std::max(1, std::min<int>(options.producers,
                                static_cast<int>(engine->num_sessions())));
  // Partition streams across producer threads; each ring keeps exactly
  // one producer (SPSC contract).
  std::vector<std::vector<StreamCursor>> partitions(
      static_cast<size_t>(producers));
  for (size_t i = 0; i < engine->num_sessions(); ++i) {
    StreamCursor cursor;
    cursor.idx = i;
    cursor.end_row = engine->session(i)->end_row();
    cursor.rng = Rng(MixSeed(options.seed, static_cast<uint64_t>(i)));
    partitions[i % static_cast<size_t>(producers)].push_back(
        std::move(cursor));
  }

  std::vector<std::vector<StreamLoadStats>> partial(
      static_cast<size_t>(producers));
  if (producers == 1) {
    partial[0] = RunProducer(engine, options, &partitions[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        partial[static_cast<size_t>(p)] = RunProducer(
            engine, options, &partitions[static_cast<size_t>(p)]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  LoadStats stats;
  for (std::vector<StreamLoadStats>& part : partial) {
    for (StreamLoadStats& s : part) {
      stats.offered += s.offered;
      stats.accepted += s.accepted;
      stats.dropped += s.dropped;
      stats.shed += s.shed;
      stats.per_stream.push_back(s);
    }
  }
  std::sort(stats.per_stream.begin(), stats.per_stream.end(),
            [](const StreamLoadStats& a, const StreamLoadStats& b) {
              return a.idx < b.idx;
            });
  return stats;
}

}  // namespace serve
}  // namespace oebench
