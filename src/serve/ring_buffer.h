#ifndef OEBENCH_SERVE_RING_BUFFER_H_
#define OEBENCH_SERVE_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oebench {
namespace serve {

/// Bounded lock-free single-producer/single-consumer ring buffer.
///
/// Memory-ordering contract (the classic Lamport queue, shaped after the
/// virtio available/used rings): the producer writes the slot, then
/// publishes it with a release store of `tail_`; the consumer observes
/// the slot only after an acquire load of `tail_`, reads it, then
/// retires it with a release store of `head_`. Each side also keeps a
/// plain-cache copy of the other side's index so the common case touches
/// one shared cache line instead of two; the copy is refreshed (with an
/// acquire load) only when the ring looks full/empty. Head and tail live
/// on separate cache lines so the producer and consumer never false-share.
///
/// Exactly ONE thread may call the producer side (TryPush/TryPushN) and
/// exactly one the consumer side (TryPop/TryPopN) at a time; the serve
/// layer guarantees
/// this by partitioning streams across load-generator threads and
/// serialising each session's drain on the run-queue.
template <typename T>
class SpscRingBuffer {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2). The
  /// ring holds `capacity` elements (one slot is NOT sacrificed; fill
  /// state comes from the index difference).
  explicit SpscRingBuffer(size_t capacity)
      : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRingBuffer(const SpscRingBuffer&) = delete;
  SpscRingBuffer& operator=(const SpscRingBuffer&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[static_cast<size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, batched: publishes up to `count` values produced by
  /// `gen(i)` (i in [0, pushed)) with ONE release store of `tail_`, so a
  /// run of records costs one cache-line handoff instead of `count`.
  /// Returns the number pushed — `min(count, free slots)`; 0 when the
  /// ring is full. The consumer observes the whole run atomically-or-not
  /// (the release store publishes every slot written before it).
  template <typename Gen>
  size_t TryPushN(size_t count, Gen&& gen) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = mask_ + 1 - (tail - head_cache_);
    if (free < count) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - (tail - head_cache_);
      if (free == 0) return 0;
    }
    const size_t pushed =
        static_cast<size_t>(free < count ? free : count);
    for (size_t i = 0; i < pushed; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = gen(i);
    }
    tail_.store(tail + pushed, std::memory_order_release);
    return pushed;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[static_cast<size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: drains up to `max_count` values into `out`
  /// with ONE release store of `head_`. Returns the number popped; 0
  /// when the ring is empty.
  size_t TryPopN(T* out, size_t max_count) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t avail = tail_cache_ - head;
    if (avail < max_count) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const size_t popped =
        static_cast<size_t>(avail < max_count ? avail : max_count);
    for (size_t i = 0; i < popped; ++i) {
      out[i] = std::move(slots_[static_cast<size_t>(head + i) & mask_]);
    }
    head_.store(head + popped, std::memory_order_release);
    return popped;
  }

  /// Racy size estimate for queue-depth gauges; exact only when both
  /// sides are quiescent.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  static size_t RoundUpPow2(size_t v) {
    --v;
    for (size_t shift = 1; shift < sizeof(size_t) * 8; shift <<= 1) {
      v |= v >> shift;
    }
    return v + 1;
  }

  const uint64_t mask_;
  std::vector<T> slots_;
  // Consumer cursor + the producer's cached copy of it.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) uint64_t head_cache_ = 0;
  // Producer cursor + the consumer's cached copy of it.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) uint64_t tail_cache_ = 0;
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_RING_BUFFER_H_
