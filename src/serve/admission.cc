#include "serve/admission.h"

#include <algorithm>

#include "serve/server.h"

namespace oebench {
namespace serve {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  if (options_.shed_depth <= 0) {
    latency_ = MetricsRegistry::Global()->GetHistogram(
        "serve.record_latency_seconds");
  }
}

void AdmissionController::Publish(bool shed) {
  if (shedding_.exchange(shed, std::memory_order_relaxed) != shed) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.admission_transitions")
        ->Increment();
  }
}

void AdmissionController::UpdateFromHistogram() {
  HistogramSnapshot now = latency_->Snapshot();
  if (now.count - last_snapshot_.count < options_.min_delta_records) {
    return;
  }
  // Delta window = bucket-wise difference since the previous estimate.
  // Bounds are fixed at histogram creation, so subtraction is exact;
  // only min/max (interpolation clamps at the edge buckets) have to
  // fall back to the lifetime extremes.
  HistogramSnapshot delta;
  delta.bounds = now.bounds;
  delta.buckets.resize(now.buckets.size());
  for (size_t b = 0; b < now.buckets.size(); ++b) {
    const int64_t prev = b < last_snapshot_.buckets.size()
                             ? last_snapshot_.buckets[b]
                             : 0;
    delta.buckets[b] = std::max<int64_t>(0, now.buckets[b] - prev);
  }
  delta.count = now.count - last_snapshot_.count;
  delta.min = now.min;
  delta.max = now.max;
  last_p99_ = QuantileFromHistogram(delta, 0.99);
  last_snapshot_ = std::move(now);

  const bool currently = shedding_.load(std::memory_order_relaxed);
  if (!currently && last_p99_ > options_.p99_limit_seconds) {
    Publish(true);
  } else if (currently &&
             last_p99_ <
                 options_.p99_limit_seconds * options_.resume_fraction) {
    Publish(false);
  }
}

bool AdmissionController::ShouldShed(int64_t inflight) {
  if (options_.shed_depth > 0) {
    // Deterministic proxy: the decision is a pure function of the
    // depth the caller observed, with hysteresis between the two
    // thresholds (keep the current state inside the band).
    const bool currently = shedding_.load(std::memory_order_relaxed);
    if (!currently && inflight >= options_.shed_depth) {
      Publish(true);
      return true;
    }
    if (currently && inflight <= options_.resume_depth) {
      Publish(false);
      return false;
    }
    return currently;
  }
  // Latency mode: refresh the estimate opportunistically; a producer
  // that loses the race just uses the freshest published decision.
  if (estimate_mu_.try_lock()) {
    UpdateFromHistogram();
    estimate_mu_.unlock();
  }
  return shedding_.load(std::memory_order_relaxed);
}

double AdmissionController::last_p99() const {
  std::lock_guard<std::mutex> lock(estimate_mu_);
  return last_p99_;
}

}  // namespace serve
}  // namespace oebench
