#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/string_util.h"
#include "core/chaos.h"

namespace oebench {
namespace serve {

namespace {

// Session scheduling states for StreamSession::sched_state(). kDone is
// terminal: it blocks further activations so a finished session is
// counted exactly once.
constexpr int kIdle = 0;
constexpr int kScheduled = 1;
constexpr int kDone = 2;

// WaitAllFinished wakes at least this often to run the shutdown
// self-defence sweeps (deadline eviction, breaker abandonment).
constexpr double kWaitSliceSeconds = 0.05;

}  // namespace

ServeEngine::ServeEngine(const ServerOptions& options)
    : options_(options), pool_(std::max(1, options.workers)) {
  MetricsRegistry::Global()
      ->GetGauge("serve.workers")
      ->Set(static_cast<double>(pool_.num_threads()));
  if (options_.watchdog_limit_ms > 0) {
    watchdog_ = std::make_unique<TaskWatchdog>(options_.watchdog_limit_ms);
  }
}

ServeEngine::~ServeEngine() = default;

void ServeEngine::AddSession(std::unique_ptr<StreamSession> session) {
  if (options_.chaos != nullptr && options_.chaos->active()) {
    session->set_chaos(options_.chaos);
  }
  sessions_.push_back(std::move(session));
  MetricsRegistry::Global()->GetCounter("serve.sessions")->Increment();
}

AdmitResult ServeEngine::Offer(size_t idx, int64_t row,
                               double enqueue_seconds) {
  StreamSession* session = sessions_[idx].get();
  if (breaker_.load(std::memory_order_relaxed)) {
    // Run abandoned: refuse everything so producers wind down fast.
    return AdmitResult::kFinished;
  }
  if (session->finished()) return AdmitResult::kFinished;
  if (row != kEndOfStream && options_.admission != nullptr &&
      options_.admission->ShouldShed(
          inflight_.load(std::memory_order_relaxed))) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_shed")
        ->Increment();
    return AdmitResult::kShed;
  }
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_inflight")
        ->Increment();
    return AdmitResult::kOverloaded;
  }
  AdmitResult admit = session->Offer(row, enqueue_seconds);
  if (admit != AdmitResult::kAccepted) return admit;
  const int64_t depth =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetGauge("serve.queue_depth_peak")
      ->SetMax(static_cast<double>(depth));
  Activate(idx);
  return AdmitResult::kAccepted;
}

AdmitResult ServeEngine::OfferEnd(size_t idx, double enqueue_seconds) {
  return Offer(idx, kEndOfStream, enqueue_seconds);
}

ServeEngine::BatchAdmit ServeEngine::OfferBatch(size_t idx,
                                                int64_t first_row,
                                                int64_t count,
                                                double enqueue_seconds) {
  BatchAdmit out;
  if (count <= 0) return out;
  StreamSession* session = sessions_[idx].get();
  if (breaker_.load(std::memory_order_relaxed)) {
    out.rest = AdmitResult::kFinished;
    return out;
  }
  if (session->finished()) {
    out.rest = AdmitResult::kFinished;
    return out;
  }
  // One admission decision per batch: shedding refuses the whole run
  // (per-record shedding would re-admit mid-run and break the
  // run-is-a-prefix contract for no benefit — the controller's signal
  // does not change within one batch).
  if (options_.admission != nullptr &&
      options_.admission->ShouldShed(
          inflight_.load(std::memory_order_relaxed))) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_shed")
        ->Add(count);
    out.rest = AdmitResult::kShed;
    return out;
  }
  int64_t admit_count = count;
  if (options_.max_inflight > 0) {
    const int64_t room =
        options_.max_inflight - inflight_.load(std::memory_order_relaxed);
    admit_count = std::min(admit_count, std::max<int64_t>(0, room));
    if (admit_count == 0) {
      MetricsRegistry::Global()
          ->GetVolatileCounter("serve.drops_inflight")
          ->Increment();
      out.rest = AdmitResult::kOverloaded;
      return out;
    }
  }
  const int64_t pushed =
      session->OfferRun(first_row, admit_count, enqueue_seconds);
  if (pushed < 0) {
    out.rest = AdmitResult::kFinished;
    return out;
  }
  if (pushed == 0) {
    out.rest = AdmitResult::kOverloaded;
    return out;
  }
  out.accepted = pushed;
  out.rest =
      pushed == count ? AdmitResult::kAccepted : AdmitResult::kOverloaded;
  const int64_t depth =
      inflight_.fetch_add(pushed, std::memory_order_relaxed) + pushed;
  MetricsRegistry::Global()
      ->GetGauge("serve.queue_depth_peak")
      ->SetMax(static_cast<double>(depth));
  Activate(idx);
  return out;
}

void ServeEngine::Activate(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  int expected = kIdle;
  if (session->sched_state().compare_exchange_strong(
          expected, kScheduled, std::memory_order_acq_rel)) {
    pool_.Submit([this, idx] { RunSession(idx); });
  }
}

void ServeEngine::CollectFailure(StreamSession* session) {
  SessionFailure failure;
  if (!session->TakeFailureReport(&failure)) return;
  const int64_t quarantined =
      quarantined_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back(std::move(failure));
  }
  if (options_.max_session_failures >= 0 &&
      quarantined > options_.max_session_failures &&
      !breaker_.exchange(true, std::memory_order_relaxed)) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.breaker_trips")
        ->Increment();
    std::fprintf(stderr,
                 "serve: failure breaker tripped (%lld quarantined > "
                 "--max-session-failures=%lld); abandoning the run\n",
                 static_cast<long long>(quarantined),
                 static_cast<long long>(options_.max_session_failures));
    // Wake WaitAllFinished immediately: it may be in an untimed wait
    // and must start the abandonment sweeps now, not at a slice edge.
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
  }
}

void ServeEngine::RunSession(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  const int64_t activation =
      activations_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetVolatileCounter("serve.activations")
      ->Increment();
  if (options_.slow_every > 0 && options_.slow_ms > 0 &&
      activation % options_.slow_every == 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.slow_ms));
  }

  TaskWatchdog::Scope watch;
  if (watchdog_ != nullptr) {
    watch = watchdog_->Watch(
        StrFormat("serve-session#%lld(%s)",
                  static_cast<long long>(session->id()),
                  session->name().c_str()));
  }

  bool finished = false;
  const int64_t processed =
      session->ProcessBatch(options_.quantum, &finished);
  if (processed > 0) {
    inflight_.fetch_sub(processed, std::memory_order_relaxed);
  }
  if (finished) {
    CollectFailure(session);
    session->sched_state().store(kDone, std::memory_order_release);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
    return;
  }
  if (session->QueueDepth() > 0) {
    // Still work queued: yield the worker, stay scheduled, go to the
    // back of the run-queue so other sessions get their turn.
    pool_.Submit([this, idx] { RunSession(idx); });
    return;
  }
  // Park idle, then re-check: a producer that pushed between our drain
  // and the store would have seen kScheduled and skipped Activate — the
  // classic lost wakeup — so we re-activate ourselves.
  session->sched_state().store(kIdle, std::memory_order_release);
  if (session->QueueDepth() > 0 && !session->finished()) {
    Activate(idx);
  }
}

void ServeEngine::ReclaimEvictedRings() {
  // A producer that loaded finished_ == false just before an eviction
  // can land one last push after the eviction's drain; settle such
  // stragglers against in-flight until the wait ends.
  for (size_t idx : reclaimable_) {
    const int64_t drained = sessions_[idx]->DrainRing();
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
  }
}

void ServeEngine::EvictStalledSessions(double wait_start_seconds) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const double now = metrics->NowSeconds();
  const double deadline =
      static_cast<double>(options_.session_deadline_ms) / 1000.0;
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    const double last = session->last_progress_seconds();
    const double idle_since = std::max(last, wait_start_seconds);
    const double idle_seconds = now - idle_since;
    if (idle_seconds < deadline) continue;
    // Only an *idle* session can be evicted: winning the kIdle→kDone
    // CAS guarantees no worker is draining it. A session stuck inside
    // ProcessBatch stays kScheduled — the watchdog reports it, but
    // killing a pool worker mid-run is not on the table.
    int expected = kIdle;
    if (!session->sched_state().compare_exchange_strong(
            expected, kDone, std::memory_order_acq_rel)) {
      continue;
    }
    const int64_t drained = session->EvictForDeadline(idle_seconds);
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
    metrics->GetVolatileCounter("serve.deadline_evictions")->Increment();
    CollectFailure(session);
    reclaimable_.push_back(idx);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
  }
}

void ServeEngine::AbandonUnfinishedSessions() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    int expected = kIdle;
    if (!session->sched_state().compare_exchange_strong(
            expected, kDone, std::memory_order_acq_rel)) {
      // Scheduled sessions drain their (no longer fed) rings and park;
      // a later sweep catches them.
      continue;
    }
    const int64_t drained = session->Abandon();
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
    metrics->GetVolatileCounter("serve.sessions_abandoned")->Increment();
    reclaimable_.push_back(idx);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
  }
}

bool ServeEngine::WaitAllFinished(double timeout_seconds) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::max(0.0, timeout_seconds)));
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const double wait_start_seconds = metrics->NowSeconds();
  auto done = [this] {
    return finished_count_.load(std::memory_order_relaxed) >=
           static_cast<int64_t>(sessions_.size());
  };
  // Session completion, eviction/abandonment reclaim and breaker trips
  // all notify finished_cv_, so the common case is a pure wait: shutdown
  // latency tracks the last session's finish, not a polling slice. Only
  // the shutdown self-defence paths still need periodic sweeps — the
  // deadline eviction must observe idleness, and post-breaker
  // abandonment must re-visit sessions that were kScheduled on an
  // earlier sweep — so slicing is confined to those two modes.
  auto wake = [this, &done] {
    return done() || breaker_.load(std::memory_order_relaxed);
  };
  for (;;) {
    metrics->GetVolatileCounter("serve.wait_wakeups")->Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool sliced = options_.session_deadline_ms > 0 ||
                          breaker_.load(std::memory_order_relaxed);
      if (sliced) {
        Clock::time_point until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   kWaitSliceSeconds));
        if (timeout_seconds > 0.0) until = std::min(until, deadline);
        finished_cv_.wait_until(lock, until, wake);
      } else if (timeout_seconds > 0.0) {
        finished_cv_.wait_until(lock, deadline, wake);
      } else {
        finished_cv_.wait(lock, wake);
      }
    }
    if (done()) {
      ReclaimEvictedRings();
      return true;
    }
    if (breaker_.load(std::memory_order_relaxed)) {
      AbandonUnfinishedSessions();
    } else if (options_.session_deadline_ms > 0) {
      EvictStalledSessions(wait_start_seconds);
    }
    ReclaimEvictedRings();
    if (done()) return true;
    if (timeout_seconds > 0.0 && Clock::now() >= deadline) break;
  }
  // Timed out: say which sessions are stuck instead of failing silently.
  std::string diag = DescribeUnfinished();
  std::fprintf(stderr,
               "serve: WaitAllFinished timed out after %.1fs with %lld/%zu "
               "sessions finished; unfinished:\n%s",
               timeout_seconds,
               static_cast<long long>(
                   finished_count_.load(std::memory_order_relaxed)),
               sessions_.size(), diag.c_str());
  return false;
}

std::vector<SessionFailure> ServeEngine::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::string ServeEngine::DescribeUnfinished() const {
  std::string out;
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    const StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    out += StrFormat(
        "  session #%zu (%s): queue_depth=%zu activations=%lld "
        "last_progress=%.3fs\n",
        idx, session->name().c_str(), session->QueueDepth(),
        static_cast<long long>(session->activation_count()),
        session->last_progress_seconds());
  }
  return out;
}

double QuantileFromHistogram(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(snapshot.buckets[b]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (b >= snapshot.bounds.size() && !snapshot.bounds.empty()) {
        // The overflow bucket has no finite upper edge, so interpolating
        // inside it would extrapolate toward +inf — or, on merged
        // snapshots whose min/max were not recorded, collapse below the
        // bucket entirely. Clamp to the last finite bound; when every
        // record landed past it, the recorded min is a tighter (and
        // still attained) lower bound.
        return std::max(snapshot.bounds.back(), snapshot.min);
      }
      // Bucket b spans (lower, upper]; interpolate inside it.
      const double lower = b == 0 ? snapshot.min : snapshot.bounds[b - 1];
      const double upper = b < snapshot.bounds.size()
                               ? snapshot.bounds[b]
                               : snapshot.max;
      const double frac =
          in_bucket > 0.0
              ? std::min(1.0, std::max(0.0, (target - cumulative) /
                                                in_bucket))
              : 0.0;
      double value = lower + frac * (upper - lower);
      value = std::min(value, snapshot.max);
      value = std::max(value, snapshot.min);
      return value;
    }
    cumulative += in_bucket;
  }
  return snapshot.max;
}

}  // namespace serve
}  // namespace oebench
