#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace oebench {
namespace serve {

namespace {

// Session scheduling states for StreamSession::sched_state(). kDone is
// terminal: it blocks further activations so a finished session is
// counted exactly once.
constexpr int kIdle = 0;
constexpr int kScheduled = 1;
constexpr int kDone = 2;

}  // namespace

ServeEngine::ServeEngine(const ServerOptions& options)
    : options_(options), pool_(std::max(1, options.workers)) {
  MetricsRegistry::Global()
      ->GetGauge("serve.workers")
      ->Set(static_cast<double>(pool_.num_threads()));
}

ServeEngine::~ServeEngine() = default;

void ServeEngine::AddSession(std::unique_ptr<StreamSession> session) {
  sessions_.push_back(std::move(session));
  MetricsRegistry::Global()->GetCounter("serve.sessions")->Increment();
}

AdmitResult ServeEngine::Offer(size_t idx, int64_t row,
                               double enqueue_seconds) {
  StreamSession* session = sessions_[idx].get();
  if (session->finished()) return AdmitResult::kFinished;
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_inflight")
        ->Increment();
    return AdmitResult::kOverloaded;
  }
  AdmitResult admit = session->Offer(row, enqueue_seconds);
  if (admit != AdmitResult::kAccepted) return admit;
  const int64_t depth =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetGauge("serve.queue_depth_peak")
      ->SetMax(static_cast<double>(depth));
  Activate(idx);
  return AdmitResult::kAccepted;
}

AdmitResult ServeEngine::OfferEnd(size_t idx, double enqueue_seconds) {
  return Offer(idx, kEndOfStream, enqueue_seconds);
}

void ServeEngine::Activate(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  int expected = kIdle;
  if (session->sched_state().compare_exchange_strong(
          expected, kScheduled, std::memory_order_acq_rel)) {
    pool_.Submit([this, idx] { RunSession(idx); });
  }
}

void ServeEngine::RunSession(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  const int64_t activation =
      activations_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetVolatileCounter("serve.activations")
      ->Increment();
  if (options_.slow_every > 0 && options_.slow_ms > 0 &&
      activation % options_.slow_every == 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.slow_ms));
  }

  bool finished = false;
  Result<int64_t> processed =
      session->ProcessBatch(options_.quantum, &finished);
  if (processed.ok() && *processed > 0) {
    inflight_.fetch_sub(*processed, std::memory_order_relaxed);
  }
  if (!processed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = processed.status();
  }
  if (finished) {
    session->sched_state().store(kDone, std::memory_order_release);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
    return;
  }
  if (session->QueueDepth() > 0) {
    // Still work queued: yield the worker, stay scheduled, go to the
    // back of the run-queue so other sessions get their turn.
    pool_.Submit([this, idx] { RunSession(idx); });
    return;
  }
  // Park idle, then re-check: a producer that pushed between our drain
  // and the store would have seen kScheduled and skipped Activate — the
  // classic lost wakeup — so we re-activate ourselves.
  session->sched_state().store(kIdle, std::memory_order_release);
  if (session->QueueDepth() > 0 && !session->finished()) {
    Activate(idx);
  }
}

bool ServeEngine::WaitAllFinished(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  auto done = [this] {
    return finished_count_.load(std::memory_order_relaxed) >=
           static_cast<int64_t>(sessions_.size());
  };
  if (timeout_seconds <= 0.0) {
    finished_cv_.wait(lock, done);
    return true;
  }
  return finished_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), done);
}

Status ServeEngine::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

double QuantileFromHistogram(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(snapshot.buckets[b]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Bucket b spans (lower, upper]; interpolate inside it.
      const double lower = b == 0 ? snapshot.min : snapshot.bounds[b - 1];
      const double upper = b < snapshot.bounds.size()
                               ? snapshot.bounds[b]
                               : snapshot.max;
      const double frac =
          in_bucket > 0.0
              ? std::min(1.0, std::max(0.0, (target - cumulative) /
                                                in_bucket))
              : 0.0;
      double value = lower + frac * (upper - lower);
      value = std::min(value, snapshot.max);
      value = std::max(value, snapshot.min);
      return value;
    }
    cumulative += in_bucket;
  }
  return snapshot.max;
}

}  // namespace serve
}  // namespace oebench
