#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/string_util.h"
#include "core/chaos.h"

namespace oebench {
namespace serve {

namespace {

// Session scheduling states for StreamSession::sched_state(). kDone is
// terminal: it blocks further activations so a finished session is
// counted exactly once.
constexpr int kIdle = 0;
constexpr int kScheduled = 1;
constexpr int kDone = 2;

// WaitAllFinished wakes at least this often to run the shutdown
// self-defence sweeps (deadline eviction, breaker abandonment).
constexpr double kWaitSliceSeconds = 0.05;

}  // namespace

ServeEngine::ServeEngine(const ServerOptions& options)
    : options_(options), pool_(std::max(1, options.workers)) {
  MetricsRegistry::Global()
      ->GetGauge("serve.workers")
      ->Set(static_cast<double>(pool_.num_threads()));
  if (options_.watchdog_limit_ms > 0) {
    watchdog_ = std::make_unique<TaskWatchdog>(options_.watchdog_limit_ms);
  }
}

ServeEngine::~ServeEngine() = default;

void ServeEngine::AddSession(std::unique_ptr<StreamSession> session) {
  if (options_.chaos != nullptr && options_.chaos->active()) {
    session->set_chaos(options_.chaos);
  }
  sessions_.push_back(std::move(session));
  MetricsRegistry::Global()->GetCounter("serve.sessions")->Increment();
}

AdmitResult ServeEngine::Offer(size_t idx, int64_t row,
                               double enqueue_seconds) {
  StreamSession* session = sessions_[idx].get();
  if (breaker_.load(std::memory_order_relaxed)) {
    // Run abandoned: refuse everything so producers wind down fast.
    return AdmitResult::kFinished;
  }
  if (session->finished()) return AdmitResult::kFinished;
  if (row != kEndOfStream && options_.admission != nullptr &&
      options_.admission->ShouldShed(
          inflight_.load(std::memory_order_relaxed))) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_shed")
        ->Increment();
    return AdmitResult::kShed;
  }
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.drops_inflight")
        ->Increment();
    return AdmitResult::kOverloaded;
  }
  AdmitResult admit = session->Offer(row, enqueue_seconds);
  if (admit != AdmitResult::kAccepted) return admit;
  const int64_t depth =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetGauge("serve.queue_depth_peak")
      ->SetMax(static_cast<double>(depth));
  Activate(idx);
  return AdmitResult::kAccepted;
}

AdmitResult ServeEngine::OfferEnd(size_t idx, double enqueue_seconds) {
  return Offer(idx, kEndOfStream, enqueue_seconds);
}

void ServeEngine::Activate(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  int expected = kIdle;
  if (session->sched_state().compare_exchange_strong(
          expected, kScheduled, std::memory_order_acq_rel)) {
    pool_.Submit([this, idx] { RunSession(idx); });
  }
}

void ServeEngine::CollectFailure(StreamSession* session) {
  SessionFailure failure;
  if (!session->TakeFailureReport(&failure)) return;
  const int64_t quarantined =
      quarantined_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back(std::move(failure));
  }
  if (options_.max_session_failures >= 0 &&
      quarantined > options_.max_session_failures &&
      !breaker_.exchange(true, std::memory_order_relaxed)) {
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.breaker_trips")
        ->Increment();
    std::fprintf(stderr,
                 "serve: failure breaker tripped (%lld quarantined > "
                 "--max-session-failures=%lld); abandoning the run\n",
                 static_cast<long long>(quarantined),
                 static_cast<long long>(options_.max_session_failures));
  }
}

void ServeEngine::RunSession(size_t idx) {
  StreamSession* session = sessions_[idx].get();
  const int64_t activation =
      activations_.fetch_add(1, std::memory_order_relaxed) + 1;
  MetricsRegistry::Global()
      ->GetVolatileCounter("serve.activations")
      ->Increment();
  if (options_.slow_every > 0 && options_.slow_ms > 0 &&
      activation % options_.slow_every == 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.slow_ms));
  }

  TaskWatchdog::Scope watch;
  if (watchdog_ != nullptr) {
    watch = watchdog_->Watch(
        StrFormat("serve-session#%lld(%s)",
                  static_cast<long long>(session->id()),
                  session->name().c_str()));
  }

  bool finished = false;
  const int64_t processed =
      session->ProcessBatch(options_.quantum, &finished);
  if (processed > 0) {
    inflight_.fetch_sub(processed, std::memory_order_relaxed);
  }
  if (finished) {
    CollectFailure(session);
    session->sched_state().store(kDone, std::memory_order_release);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
    return;
  }
  if (session->QueueDepth() > 0) {
    // Still work queued: yield the worker, stay scheduled, go to the
    // back of the run-queue so other sessions get their turn.
    pool_.Submit([this, idx] { RunSession(idx); });
    return;
  }
  // Park idle, then re-check: a producer that pushed between our drain
  // and the store would have seen kScheduled and skipped Activate — the
  // classic lost wakeup — so we re-activate ourselves.
  session->sched_state().store(kIdle, std::memory_order_release);
  if (session->QueueDepth() > 0 && !session->finished()) {
    Activate(idx);
  }
}

void ServeEngine::ReclaimEvictedRings() {
  // A producer that loaded finished_ == false just before an eviction
  // can land one last push after the eviction's drain; settle such
  // stragglers against in-flight until the wait ends.
  for (size_t idx : reclaimable_) {
    const int64_t drained = sessions_[idx]->DrainRing();
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
  }
}

void ServeEngine::EvictStalledSessions(double wait_start_seconds) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const double now = metrics->NowSeconds();
  const double deadline =
      static_cast<double>(options_.session_deadline_ms) / 1000.0;
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    const double last = session->last_progress_seconds();
    const double idle_since = std::max(last, wait_start_seconds);
    const double idle_seconds = now - idle_since;
    if (idle_seconds < deadline) continue;
    // Only an *idle* session can be evicted: winning the kIdle→kDone
    // CAS guarantees no worker is draining it. A session stuck inside
    // ProcessBatch stays kScheduled — the watchdog reports it, but
    // killing a pool worker mid-run is not on the table.
    int expected = kIdle;
    if (!session->sched_state().compare_exchange_strong(
            expected, kDone, std::memory_order_acq_rel)) {
      continue;
    }
    const int64_t drained = session->EvictForDeadline(idle_seconds);
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
    metrics->GetVolatileCounter("serve.deadline_evictions")->Increment();
    CollectFailure(session);
    reclaimable_.push_back(idx);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
  }
}

void ServeEngine::AbandonUnfinishedSessions() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    int expected = kIdle;
    if (!session->sched_state().compare_exchange_strong(
            expected, kDone, std::memory_order_acq_rel)) {
      // Scheduled sessions drain their (no longer fed) rings and park;
      // a later sweep catches them.
      continue;
    }
    const int64_t drained = session->Abandon();
    if (drained > 0) {
      inflight_.fetch_sub(drained, std::memory_order_relaxed);
    }
    metrics->GetVolatileCounter("serve.sessions_abandoned")->Increment();
    reclaimable_.push_back(idx);
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    finished_cv_.notify_all();
  }
}

bool ServeEngine::WaitAllFinished(double timeout_seconds) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const double wait_start_seconds = MetricsRegistry::Global()->NowSeconds();
  auto done = [this] {
    return finished_count_.load(std::memory_order_relaxed) >=
           static_cast<int64_t>(sessions_.size());
  };
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      double slice = kWaitSliceSeconds;
      if (timeout_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double remaining = timeout_seconds - elapsed;
        if (remaining <= 0.0 && !done()) break;  // timed out
        slice = std::min(slice, std::max(0.0, remaining));
      }
      finished_cv_.wait_for(lock, std::chrono::duration<double>(slice),
                            done);
    }
    if (done()) {
      ReclaimEvictedRings();
      return true;
    }
    if (breaker_.load(std::memory_order_relaxed)) {
      AbandonUnfinishedSessions();
    } else if (options_.session_deadline_ms > 0) {
      EvictStalledSessions(wait_start_seconds);
    }
    ReclaimEvictedRings();
    if (done()) return true;
  }
  // Timed out: say which sessions are stuck instead of failing silently.
  std::string diag = DescribeUnfinished();
  std::fprintf(stderr,
               "serve: WaitAllFinished timed out after %.1fs with %lld/%zu "
               "sessions finished; unfinished:\n%s",
               timeout_seconds,
               static_cast<long long>(
                   finished_count_.load(std::memory_order_relaxed)),
               sessions_.size(), diag.c_str());
  return false;
}

std::vector<SessionFailure> ServeEngine::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::string ServeEngine::DescribeUnfinished() const {
  std::string out;
  for (size_t idx = 0; idx < sessions_.size(); ++idx) {
    const StreamSession* session = sessions_[idx].get();
    if (session->finished()) continue;
    out += StrFormat(
        "  session #%zu (%s): queue_depth=%zu activations=%lld "
        "last_progress=%.3fs\n",
        idx, session->name().c_str(), session->QueueDepth(),
        static_cast<long long>(session->activation_count()),
        session->last_progress_seconds());
  }
  return out;
}

double QuantileFromHistogram(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(snapshot.buckets[b]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Bucket b spans (lower, upper]; interpolate inside it.
      const double lower = b == 0 ? snapshot.min : snapshot.bounds[b - 1];
      const double upper = b < snapshot.bounds.size()
                               ? snapshot.bounds[b]
                               : snapshot.max;
      const double frac =
          in_bucket > 0.0
              ? std::min(1.0, std::max(0.0, (target - cumulative) /
                                                in_bucket))
              : 0.0;
      double value = lower + frac * (upper - lower);
      value = std::min(value, snapshot.max);
      value = std::max(value, snapshot.min);
      return value;
    }
    cumulative += in_bucket;
  }
  return snapshot.max;
}

}  // namespace serve
}  // namespace oebench
