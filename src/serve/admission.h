#ifndef OEBENCH_SERVE_ADMISSION_H_
#define OEBENCH_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/metrics.h"

namespace oebench {
namespace serve {

struct AdmissionOptions {
  /// p99 record-latency ceiling in seconds; admission degrades
  /// block→shed while the recent p99 is above it. Must be > 0 in
  /// latency mode.
  double p99_limit_seconds = 0.0;
  /// Hysteresis: once shedding, admission resumes only when the recent
  /// p99 falls below `p99_limit_seconds * resume_fraction` — a single
  /// threshold would flap on every histogram delta.
  double resume_fraction = 0.5;
  /// Re-estimate the p99 only after this many new latency records: the
  /// delta window needs enough samples for a stable tail estimate, and
  /// it keeps snapshotting off the per-offer hot path.
  int64_t min_delta_records = 256;
  /// Queue-depth proxy mode (used under --deterministic-metrics, where
  /// wall-clock latency histograms are frozen): shed while the engine's
  /// global in-flight depth is >= shed_depth, resume at <= resume_depth.
  /// shed_depth > 0 selects this mode and disables the latency watcher.
  int64_t shed_depth = 0;
  int64_t resume_depth = 0;
};

/// p99-aware adaptive admission: degrades the serve engine's admission
/// decision from accept to *shed* while the recent record-latency tail
/// (or, deterministically, the global queue depth) says the daemon is
/// past its latency budget. Shedding differs from kOverloaded
/// backpressure: a shed record is refused even though the ring has
/// room, on the grounds that accepting it would push p99 further past
/// the ceiling — the producer counts it (`serve.drops_shed`) and moves
/// on, it never retries.
///
/// Latency mode watches *deltas* of the serve.record_latency_seconds
/// histogram — bucket-count differences since the previous estimate —
/// so the controller reacts to the current overload, not the
/// run-lifetime average. Estimates piggyback on ShouldShed via a
/// try-lock: producers never serialize on the estimator, they just use
/// the freshest published decision.
///
/// End sentinels are exempt by the engine (they carry shutdown, not
/// load), so shedding can never wedge WaitAllFinished.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Producer path: true if this data record should be shed.
  /// `inflight` is the engine's current global in-flight depth.
  bool ShouldShed(int64_t inflight);

  /// Latest published decision (no side effects; tests/report).
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  /// accept→shed + shed→accept transitions so far.
  int64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  /// Latest delta-window p99 estimate (0 until the first estimate).
  double last_p99() const;

 private:
  /// Re-estimates the delta p99 and publishes a new decision when at
  /// least min_delta_records arrived since the last estimate. Caller
  /// holds estimate_mu_.
  void UpdateFromHistogram();
  void Publish(bool shed);

  const AdmissionOptions options_;
  Histogram* latency_ = nullptr;  // registry-owned, survives Reset()

  std::atomic<bool> shedding_{false};
  std::atomic<int64_t> transitions_{0};

  mutable std::mutex estimate_mu_;
  HistogramSnapshot last_snapshot_;  // guarded by estimate_mu_
  double last_p99_ = 0.0;            // guarded by estimate_mu_
};

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_ADMISSION_H_
