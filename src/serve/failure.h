#ifndef OEBENCH_SERVE_FAILURE_H_
#define OEBENCH_SERVE_FAILURE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oebench {
namespace serve {

/// Why one live stream stopped producing trustworthy results. The serve
/// analogue of core/parallel_eval's TaskFailureKind: each class has a
/// different cost and recovery story (DESIGN.md "Serving failure
/// domains & overload"):
///  - kException:  the pipeline or learner threw mid-drain — permanent
///                 for this stream; the session is quarantined, every
///                 sibling stream keeps serving.
///  - kNonFinite:  the stream's prequential metrics exploded to
///                 NaN/inf across every tested window — the numbers
///                 exist but cannot be trusted.
///  - kTransient:  a TransientTaskError survived every activation
///                 attempt (SessionOptions::attempts).
///  - kDeadline:   the session made no progress for longer than the
///                 engine's session deadline and was evicted so
///                 shutdown could complete (wall-clock, so inherently
///                 volatile; never fires when the deadline is off).
enum class SessionFailureKind {
  kException,
  kNonFinite,
  kTransient,
  kDeadline,
};

/// Stable wire name ("exception", "non-finite", "transient",
/// "deadline") — metrics counters and the failure report use it.
const char* SessionFailureKindName(SessionFailureKind kind);

/// One stream that was quarantined instead of producing an EvalResult.
/// The serve engine records these (and keeps serving every other
/// stream) rather than unwinding the process: one poison stream costs
/// one session, never the daemon.
struct SessionFailure {
  /// The session's id (== its registration index in the engine).
  int64_t session_id = 0;
  /// The stream's name (StreamContext::name).
  std::string stream;
  SessionFailureKind kind = SessionFailureKind::kException;
  /// Sanitized single-line what()/Status message of the failure.
  std::string message;
  /// Data records the session had consumed when it failed (records
  /// drained after quarantine are counted separately, as discards).
  int64_t records_processed = 0;
};

/// Collapses tabs/newlines so a failure message stays one report row,
/// mirroring the result log's v2 `fail`-row sanitisation.
std::string SanitizeFailureMessage(std::string_view message);

/// Human-readable quarantine table, one row per failed session; empty
/// string when there are no failures (so fault-free reports are
/// byte-unchanged). Mirrors sweep::FormatQuarantineReport.
std::string FormatSessionFailureReport(
    const std::vector<SessionFailure>& failures);

}  // namespace serve
}  // namespace oebench

#endif  // OEBENCH_SERVE_FAILURE_H_
