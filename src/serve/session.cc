#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/metrics.h"

namespace oebench {
namespace serve {

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

StreamSession::StreamSession(int64_t id,
                             std::shared_ptr<const GeneratedStream> stream,
                             SessionOptions options)
    : id_(id),
      stream_(std::move(stream)),
      options_(std::move(options)),
      ring_(options_.ring_capacity) {}

Status StreamSession::Init() {
  Result<StreamContext> ctx = BuildStreamContext(*stream_, options_.pipeline);
  // The raw generated table is only needed to build the context; release
  // it so thousands of sessions hold one encoded matrix each, not two
  // copies of the data.
  stream_.reset();
  if (!ctx.ok()) {
    status_ = ctx.status();
    finished_.store(true, std::memory_order_release);
    return status_;
  }
  ctx_ = std::move(*ctx);

  Result<std::unique_ptr<WindowPipeline>> pipeline =
      WindowPipeline::Create(options_.pipeline);
  if (!pipeline.ok()) {
    status_ = pipeline.status();
    finished_.store(true, std::memory_order_release);
    return status_;
  }
  pipeline_ = std::move(*pipeline);

  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(options_.learner, options_.learner_config, ctx_.task,
                  ctx_.num_classes);
  if (!learner.ok()) {
    status_ = learner.status();
    finished_.store(true, std::memory_order_release);
    return status_;
  }
  learner_ = std::move(*learner);
  learner_->Begin(ctx_.Header());

  num_windows_ = ctx_.ranges.size();
  if (options_.max_windows > 0) {
    num_windows_ = std::min(num_windows_, options_.max_windows);
  }
  end_row_ = num_windows_ > 0 ? ctx_.ranges[num_windows_ - 1].end : 0;
  result_.learner = learner_->name();
  result_.dataset = ctx_.name;
  return Status::OK();
}

AdmitResult StreamSession::Offer(int64_t row, double enqueue_seconds) {
  if (finished_.load(std::memory_order_acquire)) {
    return AdmitResult::kFinished;
  }
  Record rec;
  rec.row = row;
  rec.enqueue_seconds = enqueue_seconds;
  return ring_.TryPush(rec) ? AdmitResult::kAccepted
                            : AdmitResult::kOverloaded;
}

Result<int64_t> StreamSession::ProcessBatch(int64_t quantum,
                                            bool* finished) {
  *finished = false;
  if (finished_.load(std::memory_order_acquire)) {
    *finished = true;
    return static_cast<int64_t>(0);
  }
  MetricsRegistry* metrics = MetricsRegistry::Global();
  // Reset() keeps these pointers valid, so caching them takes the
  // registry lookup off the per-record path.
  static Histogram* record_latency =
      metrics->GetHistogram("serve.record_latency_seconds");
  static Counter* records = metrics->GetCounter("serve.records");

  int64_t processed = 0;
  Record rec;
  while (processed < quantum && ring_.TryPop(&rec)) {
    ++processed;
    if (rec.row != kEndOfStream) {
      // The sentinel is a control message, not traffic: keeping it out
      // of serve.records and the latency histogram keeps "consumed"
      // equal to accepted data records in the shutdown report.
      records->Increment();
      record_latency->Record(metrics->NowSeconds() - rec.enqueue_seconds);
    }
    if (rec.row == kEndOfStream) {
      while (next_window_ < num_windows_) {
        Status s = FinalizeWindow();
        if (!s.ok()) {
          status_ = s;
          finished_.store(true, std::memory_order_release);
          *finished = true;
          return s;
        }
      }
      FinishResult();
      finished_.store(true, std::memory_order_release);
      *finished = true;
      break;
    }
    if (rec.row < 0 || rec.row >= end_row_) continue;  // truncated tail
    while (rec.row >= ctx_.ranges[next_window_].end) {
      Status s = FinalizeWindow();
      if (!s.ok()) {
        status_ = s;
        finished_.store(true, std::memory_order_release);
        *finished = true;
        return s;
      }
    }
    if (arrived_rows_.empty()) {
      window_open_seconds_ = rec.enqueue_seconds;
    }
    arrived_rows_.push_back(rec.row);
  }
  return processed;
}

Status StreamSession::FinalizeWindow() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const size_t w = next_window_;
  if (arrived_rows_.empty()) {
    // Every record of this window was dropped at admission; skip it but
    // keep the window index advancing so later windows stay aligned.
    ++windows_lost_;
    metrics->GetVolatileCounter("serve.windows_lost")->Increment();
    ++next_window_;
    window_open_seconds_ = -1.0;
    return Status::OK();
  }
  using Clock = std::chrono::steady_clock;
  OE_ASSIGN_OR_RETURN(WindowData window,
                      pipeline_->PrepareWindowRows(ctx_, w, arrived_rows_));
  // Identical arithmetic to RunPrequentialFrom: every window's
  // post-prepare rows count as items; window 0 trains only.
  total_items_ += window.features.rows();
  if (w > 0) {
    Clock::time_point t0 = Clock::now();
    double loss = learner_->TestLoss(window);
    result_.test_seconds += Seconds(t0, Clock::now());
    result_.per_window_loss.push_back(loss);
  }
  Clock::time_point t1 = Clock::now();
  learner_->TrainWindow(window);
  result_.train_seconds += Seconds(t1, Clock::now());
  result_.peak_memory_bytes =
      std::max(result_.peak_memory_bytes, learner_->MemoryBytes());

  metrics->GetCounter("serve.windows")->Increment();
  metrics->GetCounter("serve.items")->Add(window.features.rows());
  if (window_open_seconds_ >= 0.0) {
    metrics->GetHistogram("serve.window_latency_seconds")
        ->Record(metrics->NowSeconds() - window_open_seconds_);
  }
  ++next_window_;
  arrived_rows_.clear();
  window_open_seconds_ = -1.0;
  return Status::OK();
}

void StreamSession::FinishResult() {
  // Mean over finite windows, fading-factor loss and pooled throughput —
  // bit-identical to the epilogue of RunPrequentialFrom.
  double sum = 0.0;
  int64_t finite = 0;
  for (double loss : result_.per_window_loss) {
    if (std::isfinite(loss)) {
      sum += loss;
      ++finite;
    }
  }
  result_.mean_loss = finite > 0
                          ? sum / static_cast<double>(finite)
                          : std::numeric_limits<double>::infinity();
  constexpr double kFade = 0.98;
  double faded_num = 0.0;
  double faded_den = 0.0;
  for (double loss : result_.per_window_loss) {
    if (!std::isfinite(loss)) continue;
    faded_num = kFade * faded_num + loss;
    faded_den = kFade * faded_den + 1.0;
  }
  result_.faded_loss = faded_den > 0.0
                           ? faded_num / faded_den
                           : std::numeric_limits<double>::infinity();
  double total_seconds = result_.test_seconds + result_.train_seconds;
  result_.items_processed = total_items_;
  result_.throughput =
      total_seconds > 0.0
          ? static_cast<double>(total_items_) / total_seconds
          : 0.0;
}

}  // namespace serve
}  // namespace oebench
