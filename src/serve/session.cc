#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/chaos.h"

namespace oebench {
namespace serve {

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

StreamSession::StreamSession(int64_t id,
                             std::shared_ptr<const GeneratedStream> stream,
                             SessionOptions options)
    : id_(id),
      stream_(std::move(stream)),
      options_(std::move(options)),
      ring_(options_.ring_capacity) {}

const std::string& StreamSession::name() const {
  static const std::string kUnnamed;
  return ctx_ != nullptr ? ctx_->name : kUnnamed;
}

Status StreamSession::Init() {
  if (options_.state_pool != nullptr) {
    // Shared-context path: sessions replaying the same (spec, pipeline)
    // pair alias one immutable StreamContext (DESIGN.md "Shared state
    // pools"); the context is read-only for the session's whole life.
    Result<std::shared_ptr<const StreamContext>> shared =
        options_.state_pool->GetOrBuild(*stream_, options_.pipeline);
    stream_.reset();
    if (!shared.ok()) {
      status_ = shared.status();
      finished_.store(true, std::memory_order_release);
      return status_;
    }
    ctx_ = std::move(*shared);
  } else {
    Result<StreamContext> ctx =
        BuildStreamContext(*stream_, options_.pipeline);
    // The raw generated table is only needed to build the context;
    // release it so thousands of sessions hold one encoded matrix each,
    // not two copies of the data.
    stream_.reset();
    if (!ctx.ok()) {
      status_ = ctx.status();
      finished_.store(true, std::memory_order_release);
      return status_;
    }
    ctx_ = std::make_shared<const StreamContext>(std::move(*ctx));
  }

  Result<std::unique_ptr<WindowPipeline>> pipeline =
      WindowPipeline::Create(options_.pipeline);
  if (!pipeline.ok()) {
    status_ = pipeline.status();
    finished_.store(true, std::memory_order_release);
    return status_;
  }
  pipeline_ = std::move(*pipeline);

  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(options_.learner, options_.learner_config, ctx_->task,
                  ctx_->num_classes);
  if (!learner.ok()) {
    status_ = learner.status();
    finished_.store(true, std::memory_order_release);
    return status_;
  }
  learner_ = std::move(*learner);
  learner_->Begin(ctx_->Header());

  num_windows_ = ctx_->ranges.size();
  if (options_.max_windows > 0) {
    num_windows_ = std::min(num_windows_, options_.max_windows);
  }
  end_row_ = num_windows_ > 0 ? ctx_->ranges[num_windows_ - 1].end : 0;
  result_.learner = learner_->name();
  result_.dataset = ctx_->name;
  return Status::OK();
}

AdmitResult StreamSession::Offer(int64_t row, double enqueue_seconds) {
  if (finished_.load(std::memory_order_acquire)) {
    return AdmitResult::kFinished;
  }
  if (row == kEndOfStream) {
    // Idempotent double-end guard: a second sentinel would double the
    // session's shutdown message and corrupt in-flight accounting.
    if (end_enqueued_.load(std::memory_order_relaxed)) {
      return AdmitResult::kFinished;
    }
  }
  Record rec;
  rec.row = row;
  rec.enqueue_seconds = enqueue_seconds;
  if (!ring_.TryPush(rec)) return AdmitResult::kOverloaded;
  if (row == kEndOfStream) {
    end_enqueued_.store(true, std::memory_order_relaxed);
  }
  return AdmitResult::kAccepted;
}

int64_t StreamSession::OfferRun(int64_t first_row, int64_t count,
                                double enqueue_seconds) {
  if (finished_.load(std::memory_order_acquire)) return -1;
  if (count <= 0) return 0;
  const size_t pushed = ring_.TryPushN(
      static_cast<size_t>(count), [&](size_t i) {
        Record rec;
        rec.row = first_row + static_cast<int64_t>(i);
        rec.enqueue_seconds = enqueue_seconds;
        return rec;
      });
  return static_cast<int64_t>(pushed);
}

void StreamSession::Quarantine(SessionFailureKind kind,
                               const std::string& message) {
  if (quarantined_.load(std::memory_order_relaxed)) return;  // first wins
  failure_.session_id = id_;
  failure_.stream = name();
  failure_.kind = kind;
  failure_.message = SanitizeFailureMessage(message);
  failure_.records_processed = records_consumed_;
  status_ = Status::Internal(failure_.message);
  quarantined_.store(true, std::memory_order_release);
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metrics->GetVolatileCounter("serve.sessions_quarantined")->Increment();
  metrics
      ->GetVolatileCounter(StrFormat("serve.failures.%s",
                                     SessionFailureKindName(kind)))
      ->Increment();
}

bool StreamSession::TakeFailureReport(SessionFailure* out) {
  if (!quarantined_.load(std::memory_order_acquire) || failure_taken_) {
    return false;
  }
  failure_taken_ = true;
  *out = failure_;
  return true;
}

int64_t StreamSession::DrainRing() {
  int64_t drained = 0;
  Record rec;
  while (ring_.TryPop(&rec)) ++drained;
  if (drained > 0) {
    discarded_.fetch_add(drained, std::memory_order_relaxed);
    MetricsRegistry::Global()
        ->GetVolatileCounter("serve.records_discarded")
        ->Add(drained);
  }
  return drained;
}

int64_t StreamSession::EvictForDeadline(double idle_seconds) {
  Quarantine(SessionFailureKind::kDeadline,
             StrFormat("no progress for %.1fs; evicted at shutdown",
                       idle_seconds));
  finished_.store(true, std::memory_order_release);
  return DrainRing();
}

int64_t StreamSession::Abandon() {
  abandoned_.store(true, std::memory_order_release);
  finished_.store(true, std::memory_order_release);
  return DrainRing();
}

int64_t StreamSession::ProcessBatch(int64_t quantum, bool* finished) {
  *finished = false;
  if (finished_.load(std::memory_order_acquire)) {
    *finished = true;
    return 0;
  }
  MetricsRegistry* metrics = MetricsRegistry::Global();
  activations_.fetch_add(1, std::memory_order_relaxed);
  last_progress_seconds_.store(metrics->NowSeconds(),
                               std::memory_order_relaxed);

  // Activation-boundary chaos: transients are retried in-process up to
  // options_.attempts (the retry re-enters OnActivation, whose sticky
  // set clears the fault); anything else quarantines immediately. A
  // quarantined session skips the hook — its faults already landed.
  if (chaos_ != nullptr && !quarantined_.load(std::memory_order_relaxed)) {
    const int attempts = std::max(1, options_.attempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      try {
        chaos_->OnActivation(id_ + 1, name());
        break;
      } catch (const TransientTaskError& e) {
        if (attempt >= attempts) {
          Quarantine(SessionFailureKind::kTransient, e.what());
          break;
        }
        metrics->GetVolatileCounter("serve.transient_retries")->Increment();
      } catch (const std::exception& e) {
        Quarantine(SessionFailureKind::kException, e.what());
        break;
      }
    }
  }

  // Drain in chunks: one release store of the ring's head per chunk
  // (SpscRingBuffer::TryPopN) instead of one per record. The chunk is
  // only pop-side batching — records are still consumed strictly in
  // FIFO order one at a time, so the prequential arithmetic (and the
  // bit-identity contract) is untouched.
  constexpr int64_t kDrainChunk = 64;
  Record chunk[kDrainChunk];
  int64_t processed = 0;
  while (processed < quantum && !*finished) {
    const int64_t want = std::min(quantum - processed, kDrainChunk);
    const size_t got = ring_.TryPopN(chunk, static_cast<size_t>(want));
    if (got == 0) break;
    for (size_t k = 0; k < got; ++k) {
      ++processed;
      if (*finished) {
        // Defensive: the double-end guard makes the sentinel the last
        // record a producer can push, so nothing should follow it — but
        // a popped record must still settle against in-flight accounting.
        discarded_.fetch_add(1, std::memory_order_relaxed);
        metrics->GetVolatileCounter("serve.records_discarded")
            ->Increment();
        continue;
      }
      ConsumeRecord(chunk[k], finished);
    }
  }
  return processed;
}

void StreamSession::ConsumeRecord(const Record& rec, bool* finished) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  // Reset() keeps these pointers valid, so caching them takes the
  // registry lookup off the per-record path.
  static Histogram* record_latency =
      metrics->GetHistogram("serve.record_latency_seconds");
  static Counter* records = metrics->GetCounter("serve.records");
  if (quarantined_.load(std::memory_order_relaxed)) {
    // Drain-and-discard mode: keep consuming so the producer, the
    // in-flight accounting and WaitAllFinished wind down exactly as
    // for a healthy stream; only the sentinel matters now.
    if (rec.row == kEndOfStream) {
      finished_.store(true, std::memory_order_release);
      *finished = true;
      return;
    }
    discarded_.fetch_add(1, std::memory_order_relaxed);
    metrics->GetVolatileCounter("serve.records_discarded")->Increment();
    return;
  }
  if (rec.row != kEndOfStream) {
    // The sentinel is a control message, not traffic: keeping it out
    // of serve.records and the latency histogram keeps "consumed"
    // equal to accepted data records in the shutdown report.
    records->Increment();
    record_latency->Record(metrics->NowSeconds() - rec.enqueue_seconds);
    ++records_consumed_;
  }
  if (rec.row == kEndOfStream) {
    try {
      while (next_window_ < num_windows_) {
        Status s = FinalizeWindow();
        if (!s.ok()) {
          Quarantine(SessionFailureKind::kException, s.message());
          break;
        }
      }
    } catch (const TransientTaskError& e) {
      Quarantine(SessionFailureKind::kTransient, e.what());
    } catch (const std::exception& e) {
      Quarantine(SessionFailureKind::kException, e.what());
    } catch (...) {
      Quarantine(SessionFailureKind::kException, "unknown exception");
    }
    if (!quarantined_.load(std::memory_order_relaxed)) {
      FinishResult();
      if (chaos_ != nullptr) {
        chaos_->OnSessionFinish(id_ + 1, &result_);
      }
      // Explosion detector: a session that tested at least one window
      // must end with finite metrics. (A run truncated to one window
      // legitimately has no tested window and an infinite mean — that
      // is absence of data, not an explosion.)
      if (!result_.per_window_loss.empty() &&
          (!std::isfinite(result_.mean_loss) ||
           !std::isfinite(result_.faded_loss))) {
        Quarantine(SessionFailureKind::kNonFinite,
                   StrFormat("non-finite prequential metrics: mean=%g "
                             "faded=%g over %zu windows",
                             result_.mean_loss, result_.faded_loss,
                             result_.per_window_loss.size()));
      }
    }
    finished_.store(true, std::memory_order_release);
    *finished = true;
    return;
  }
  if (rec.row < 0 || rec.row >= end_row_) return;  // truncated tail
  try {
    while (rec.row >= ctx_->ranges[next_window_].end) {
      Status s = FinalizeWindow();
      if (!s.ok()) {
        Quarantine(SessionFailureKind::kException, s.message());
        break;
      }
    }
  } catch (const TransientTaskError& e) {
    Quarantine(SessionFailureKind::kTransient, e.what());
  } catch (const std::exception& e) {
    Quarantine(SessionFailureKind::kException, e.what());
  } catch (...) {
    Quarantine(SessionFailureKind::kException, "unknown exception");
  }
  if (quarantined_.load(std::memory_order_relaxed)) return;
  if (arrived_rows_.empty()) {
    window_open_seconds_ = rec.enqueue_seconds;
  }
  arrived_rows_.push_back(rec.row);
}

Status StreamSession::FinalizeWindow() {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const size_t w = next_window_;
  if (arrived_rows_.empty()) {
    // Every record of this window was dropped at admission; skip it but
    // keep the window index advancing so later windows stay aligned.
    ++windows_lost_;
    metrics->GetVolatileCounter("serve.windows_lost")->Increment();
    ++next_window_;
    window_open_seconds_ = -1.0;
    return Status::OK();
  }
  using Clock = std::chrono::steady_clock;
  OE_ASSIGN_OR_RETURN(WindowData window,
                      pipeline_->PrepareWindowRows(*ctx_, w, arrived_rows_));
  // Identical arithmetic to RunPrequentialFrom: every window's
  // post-prepare rows count as items; window 0 trains only.
  total_items_ += window.features.rows();
  if (w > 0) {
    Clock::time_point t0 = Clock::now();
    double loss = learner_->TestLoss(window);
    result_.test_seconds += Seconds(t0, Clock::now());
    result_.per_window_loss.push_back(loss);
  }
  Clock::time_point t1 = Clock::now();
  learner_->TrainWindow(window);
  result_.train_seconds += Seconds(t1, Clock::now());
  result_.peak_memory_bytes =
      std::max(result_.peak_memory_bytes, learner_->MemoryBytes());

  metrics->GetCounter("serve.windows")->Increment();
  metrics->GetCounter("serve.items")->Add(window.features.rows());
  if (window_open_seconds_ >= 0.0) {
    metrics->GetHistogram("serve.window_latency_seconds")
        ->Record(metrics->NowSeconds() - window_open_seconds_);
  }
  ++next_window_;
  arrived_rows_.clear();
  window_open_seconds_ = -1.0;
  return Status::OK();
}

void StreamSession::FinishResult() {
  // Mean over finite windows, fading-factor loss and pooled throughput —
  // bit-identical to the epilogue of RunPrequentialFrom.
  double sum = 0.0;
  int64_t finite = 0;
  for (double loss : result_.per_window_loss) {
    if (std::isfinite(loss)) {
      sum += loss;
      ++finite;
    }
  }
  result_.mean_loss = finite > 0
                          ? sum / static_cast<double>(finite)
                          : std::numeric_limits<double>::infinity();
  constexpr double kFade = 0.98;
  double faded_num = 0.0;
  double faded_den = 0.0;
  for (double loss : result_.per_window_loss) {
    if (!std::isfinite(loss)) continue;
    faded_num = kFade * faded_num + loss;
    faded_den = kFade * faded_den + 1.0;
  }
  result_.faded_loss = faded_den > 0.0
                           ? faded_num / faded_den
                           : std::numeric_limits<double>::infinity();
  double total_seconds = result_.test_seconds + result_.train_seconds;
  result_.items_processed = total_items_;
  result_.throughput =
      total_seconds > 0.0
          ? static_cast<double>(total_items_) / total_seconds
          : 0.0;
}

}  // namespace serve
}  // namespace oebench
