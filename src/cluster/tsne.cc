#include "cluster/tsne.h"

#include <algorithm>
#include <cmath>

namespace oebench {

Matrix Tsne::ComputeAffinities(const Matrix& data) const {
  const int64_t n = data.rows();
  Matrix dist_sq(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double sum = 0.0;
      const double* a = data.Row(i);
      const double* b = data.Row(j);
      for (int64_t c = 0; c < data.cols(); ++c) {
        double d = a[c] - b[c];
        sum += d * d;
      }
      dist_sq.At(i, j) = sum;
      dist_sq.At(j, i) = sum;
    }
  }

  const double target_entropy = std::log(options_.perplexity);
  Matrix p(n, n);
  std::vector<double> row_p(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Binary search the precision beta so the row entropy matches the
    // target perplexity.
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::max();
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        row_p[static_cast<size_t>(j)] =
            (j == i) ? 0.0 : std::exp(-dist_sq.At(i, j) * beta);
        sum += row_p[static_cast<size_t>(j)];
      }
      if (sum < 1e-300) sum = 1e-300;
      double entropy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        double pj = row_p[static_cast<size_t>(j)] / sum;
        row_p[static_cast<size_t>(j)] = pj;
        if (pj > 1e-12) entropy -= pj * std::log(pj);
      }
      double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = beta_hi == std::numeric_limits<double>::max()
                   ? beta * 2.0
                   : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta + beta_lo);
      }
    }
    for (int64_t j = 0; j < n; ++j) {
      p.At(i, j) = row_p[static_cast<size_t>(j)];
    }
  }

  // Symmetrise and normalise.
  Matrix sym(n, n);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double v = 0.5 * (p.At(i, j) + p.At(j, i));
      sym.At(i, j) = v;
      total += v;
    }
  }
  for (double& v : sym.data()) {
    v = std::max(v / total, 1e-12);
  }
  return sym;
}

Result<Matrix> Tsne::Embed(const Matrix& data) const {
  const int64_t n = data.rows();
  if (n < 5) return Status::InvalidArgument("t-SNE needs at least 5 rows");
  if (options_.perplexity * 3.0 > static_cast<double>(n)) {
    return Status::InvalidArgument(
        "perplexity too large for the sample size");
  }
  const int64_t out_d = options_.output_dims;
  Matrix p = ComputeAffinities(data);

  Rng rng(options_.seed);
  Matrix y(n, out_d);
  for (double& v : y.data()) v = rng.Gaussian() * 1e-2;
  Matrix velocity(n, out_d);

  const int exaggeration_iters = options_.max_iterations / 4;
  Matrix q(n, n);
  Matrix grad(n, out_d);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    double exaggeration = iter < exaggeration_iters
                              ? options_.early_exaggeration
                              : 1.0;
    // Student-t affinities in the embedding.
    double q_total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double sum = 0.0;
        for (int64_t c = 0; c < out_d; ++c) {
          double d = y.At(i, c) - y.At(j, c);
          sum += d * d;
        }
        double v = 1.0 / (1.0 + sum);
        q.At(i, j) = v;
        q.At(j, i) = v;
        q_total += 2.0 * v;
      }
      q.At(i, i) = 0.0;
    }
    if (q_total < 1e-300) q_total = 1e-300;

    // Gradient: 4 * sum_j (p_ij*ex - q_ij) * w_ij * (y_i - y_j).
    std::fill(grad.data().begin(), grad.data().end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double w = q.At(i, j);
        double coeff =
            4.0 * (exaggeration * p.At(i, j) - w / q_total) * w;
        for (int64_t c = 0; c < out_d; ++c) {
          grad.At(i, c) += coeff * (y.At(i, c) - y.At(j, c));
        }
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < out_d; ++c) {
        velocity.At(i, c) = options_.momentum * velocity.At(i, c) -
                            options_.learning_rate * grad.At(i, c);
        y.At(i, c) += velocity.At(i, c);
      }
    }
    // Re-centre to keep the embedding from drifting.
    std::vector<double> mean = y.ColumnMeans();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < out_d; ++c) {
        y.At(i, c) -= mean[static_cast<size_t>(c)];
      }
    }
  }
  return y;
}

}  // namespace oebench
