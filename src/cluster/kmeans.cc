#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"

namespace oebench {

namespace {

double RowSquaredDistance(const Matrix& a, int64_t ra, const Matrix& b,
                          int64_t rb) {
  const double* x = a.Row(ra);
  const double* y = b.Row(rb);
  double sum = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    double d = x[c] - y[c];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMeansResult KMeans::RunOnce(const Matrix& data, Rng* rng) const {
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  const int k = options_.k;

  // k-means++ seeding.
  Matrix centroids(k, d);
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  int64_t first = rng->UniformInt(n);
  centroids.SetRow(0, data.RowVector(first));
  for (int c = 1; c < k; ++c) {
    for (int64_t r = 0; r < n; ++r) {
      double dist = RowSquaredDistance(data, r, centroids, c - 1);
      min_dist[static_cast<size_t>(r)] =
          std::min(min_dist[static_cast<size_t>(r)], dist);
    }
    int64_t chosen = rng->Categorical(min_dist);
    centroids.SetRow(c, data.RowVector(chosen));
  }

  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), -1);
  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Assign.
    double inertia = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        double dist = RowSquaredDistance(data, r, centroids, c);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      result.assignments[static_cast<size_t>(r)] = best_c;
      inertia += best;
    }
    // Update.
    Matrix sums(k, d);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t r = 0; r < n; ++r) {
      int c = result.assignments[static_cast<size_t>(r)];
      ++counts[static_cast<size_t>(c)];
      const double* row = data.Row(r);
      double* srow = sums.Row(c);
      for (int64_t j = 0; j < d; ++j) srow[j] += row[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster at a random point.
        centroids.SetRow(c, data.RowVector(rng->UniformInt(n)));
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      double* srow = sums.Row(c);
      for (int64_t j = 0; j < d; ++j) {
        centroids.At(c, j) = srow[j] * inv;
      }
    }
    result.inertia = inertia;
    result.iterations = iter + 1;
    if (prev_inertia - inertia < options_.tol * std::max(prev_inertia, 1.0)) {
      break;
    }
    prev_inertia = inertia;
  }
  result.centroids = std::move(centroids);
  return result;
}

Result<KMeansResult> KMeans::Fit(const Matrix& data) const {
  if (data.rows() < options_.k) {
    return Status::InvalidArgument("k-means needs rows >= k");
  }
  Rng rng(options_.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int restart = 0; restart < options_.num_restarts; ++restart) {
    KMeansResult run = RunOnce(data, &rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

std::vector<int64_t> KMeans::NearestRowPerCentroid(
    const Matrix& data, const KMeansResult& result) {
  const int k = static_cast<int>(result.centroids.rows());
  std::vector<int64_t> nearest(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k),
                           std::numeric_limits<double>::max());
  for (int64_t r = 0; r < data.rows(); ++r) {
    for (int c = 0; c < k; ++c) {
      double dist = RowSquaredDistance(data, r, result.centroids, c);
      if (dist < best[static_cast<size_t>(c)]) {
        best[static_cast<size_t>(c)] = dist;
        nearest[static_cast<size_t>(c)] = r;
      }
    }
  }
  return nearest;
}

}  // namespace oebench
