#ifndef OEBENCH_CLUSTER_TSNE_H_
#define OEBENCH_CLUSTER_TSNE_H_

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Exact t-SNE (van der Maaten & Hinton, 2008). The paper uses t-SNE to
/// project preprocessed windows into 2-D scatter plots for the seasonal
/// drift case studies (§4.3, Figure 6). Exact (O(n^2)) pairwise
/// affinities are fine at case-study scale; callers subsample large
/// windows first.
class Tsne {
 public:
  struct Options {
    int output_dims = 2;
    double perplexity = 30.0;
    int max_iterations = 300;
    double learning_rate = 100.0;
    /// Early exaggeration factor applied for the first quarter of the
    /// iterations.
    double early_exaggeration = 4.0;
    double momentum = 0.8;
    uint64_t seed = 23;
  };

  Tsne() : Tsne(Options()) {}
  explicit Tsne(Options options) : options_(options) {}

  /// Embeds the rows of `data` into `output_dims` dimensions.
  Result<Matrix> Embed(const Matrix& data) const;

 private:
  /// Row-wise conditional probabilities with per-point bandwidths found by
  /// binary search on the perplexity, then symmetrised.
  Matrix ComputeAffinities(const Matrix& data) const;

  Options options_;
};

}  // namespace oebench

#endif  // OEBENCH_CLUSTER_TSNE_H_
