#ifndef OEBENCH_CLUSTER_KMEANS_H_
#define OEBENCH_CLUSTER_KMEANS_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Result of a k-means run.
struct KMeansResult {
  Matrix centroids;                 // k x d
  std::vector<int> assignments;     // per row cluster id
  double inertia = 0.0;             // sum of squared distances to centroid
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. The dataset-selection
/// pipeline (paper §4.4) clusters the 55 dataset profiles into k = 5
/// groups and keeps the profile nearest each centroid.
class KMeans {
 public:
  struct Options {
    int k = 5;
    int max_iterations = 200;
    int num_restarts = 4;
    double tol = 1e-7;
    uint64_t seed = 17;
  };

  KMeans() : KMeans(Options()) {}
  explicit KMeans(Options options) : options_(options) {}

  /// Clusters the rows of `data`; requires data.rows() >= k.
  Result<KMeansResult> Fit(const Matrix& data) const;

  /// Index of the row of `data` closest to each centroid (the paper's
  /// "datasets nearest each cluster center").
  static std::vector<int64_t> NearestRowPerCentroid(
      const Matrix& data, const KMeansResult& result);

 private:
  KMeansResult RunOnce(const Matrix& data, Rng* rng) const;

  Options options_;
};

}  // namespace oebench

#endif  // OEBENCH_CLUSTER_KMEANS_H_
