#include "models/hoeffding_tree.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"
#include "linalg/vector_ops.h"

namespace oebench {

void HoeffdingTree::AccumulateStats(double* stats, int64_t dim,
                                    int num_classes, int label,
                                    const double* row, double weight) {
  const int64_t c = static_cast<int64_t>(num_classes);
  const int64_t l = static_cast<int64_t>(label);
  double* wp = stats + (kWeightP * c + l) * dim;
  double* meanp = stats + (kMeanP * c + l) * dim;
  double* m2p = stats + (kM2P * c + l) * dim;
  double* minp = stats + (kMinP * c + l) * dim;
  double* maxp = stats + (kMaxP * c + l) * dim;
  // Branchless Welford update: the "fresh estimator" branch of the old
  // scalar Add becomes per-lane selects, so every feature's update is
  // bit-identical to the branchy version while the loop vectorizes
  // across features.
  OE_SIMD_LOOP
  for (int64_t f = 0; f < dim; ++f) {
    const double v = row[f];
    const double w0 = wp[f];
    const bool fresh = w0 <= 0.0;
    const double new_weight = w0 + weight;
    const double delta = v - meanp[f];
    const double upd_mean = meanp[f] + delta * weight / new_weight;
    const double upd_m2 = m2p[f] + weight * delta * (v - upd_mean);
    minp[f] = fresh ? v : std::min(minp[f], v);
    maxp[f] = fresh ? v : std::max(maxp[f], v);
    meanp[f] = fresh ? v : upd_mean;
    m2p[f] = fresh ? 0.0 : upd_m2;
    wp[f] = fresh ? weight : new_weight;
  }
}

int64_t HoeffdingTree::StatDim(const Node& node) const {
  return static_cast<int64_t>(node.stats.size()) /
         (kStatPlanes * config_.num_classes);
}

HoeffdingTree::GaussianStat HoeffdingTree::StatView(const Node& node,
                                                    int64_t dim,
                                                    int64_t feature,
                                                    int cls) const {
  const int64_t c = static_cast<int64_t>(config_.num_classes);
  const int64_t l = static_cast<int64_t>(cls);
  const double* base = node.stats.data();
  GaussianStat s;
  s.weight = base[(kWeightP * c + l) * dim + feature];
  s.mean = base[(kMeanP * c + l) * dim + feature];
  s.m2 = base[(kM2P * c + l) * dim + feature];
  s.min = base[(kMinP * c + l) * dim + feature];
  s.max = base[(kMaxP * c + l) * dim + feature];
  return s;
}

double HoeffdingTree::GaussianStat::Variance() const {
  return weight > 1.0 ? m2 / (weight - 1.0) : 0.0;
}

double HoeffdingTree::GaussianStat::CdfBelow(double threshold) const {
  if (weight <= 0.0) return 0.0;
  double sd = std::sqrt(Variance());
  if (sd < 1e-12) return threshold >= mean ? 1.0 : 0.0;
  double z = (threshold - mean) / (sd * std::sqrt(2.0));
  return 0.5 * (1.0 + std::erf(z));
}

HoeffdingTree::HoeffdingTree(HoeffdingTreeConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  OE_CHECK(config_.num_classes >= 2);
}

int32_t HoeffdingTree::NewLeaf(int depth, int64_t dim) {
  Node node;
  node.depth = depth;
  node.class_weights.assign(static_cast<size_t>(config_.num_classes), 0.0);
  if (dim > 0) {
    node.stats.assign(
        static_cast<size_t>(kStatPlanes * config_.num_classes * dim), 0.0);
    if (config_.max_features > 0 && config_.max_features < dim) {
      node.candidate_features =
          rng_.SampleWithoutReplacement(dim, config_.max_features);
    } else {
      node.candidate_features.resize(static_cast<size_t>(dim));
      for (int64_t f = 0; f < dim; ++f) {
        node.candidate_features[static_cast<size_t>(f)] = f;
      }
    }
  }
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t HoeffdingTree::Route(const double* row) const {
  int32_t cur = 0;
  while (!nodes_[static_cast<size_t>(cur)].is_leaf) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    cur = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return cur;
}

void HoeffdingTree::Learn(const double* row, int64_t dim, int label,
                          double weight) {
  OE_CHECK(label >= 0 && label < config_.num_classes);
  if (nodes_.empty()) NewLeaf(0, dim);
  ++samples_seen_;
  int32_t leaf = Route(row);
  LearnAtLeaf(leaf, row, dim, label, weight);
}

void HoeffdingTree::LearnAtLeaf(int32_t leaf, const double* row, int64_t dim,
                                int label, double weight) {
  Node& node = nodes_[static_cast<size_t>(leaf)];
  if (node.stats.empty() && dim > 0) {
    node.stats.assign(
        static_cast<size_t>(kStatPlanes * config_.num_classes * dim), 0.0);
  }
  node.class_weights[static_cast<size_t>(label)] += weight;
  if (dim > 0) {
    AccumulateStats(node.stats.data(), dim, config_.num_classes, label, row,
                    weight);
  }
  double total = 0.0;
  for (double w : node.class_weights) total += w;
  if (total - node.weight_at_last_check >=
          static_cast<double>(config_.grace_period) &&
      node.depth < config_.max_depth) {
    node.weight_at_last_check = total;
    TrySplit(leaf, dim);
  }
}

double HoeffdingTree::Entropy(const std::vector<double>& cw) const {
  double total = 0.0;
  for (double w : cw) total += w;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : cw) {
    if (w <= 0.0) continue;
    double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double HoeffdingTree::SplitGain(const Node& node, int64_t feature,
                                double threshold) const {
  const int64_t dim = StatDim(node);
  std::vector<double> left_cw(node.class_weights.size(), 0.0);
  std::vector<double> right_cw(node.class_weights.size(), 0.0);
  double left_total = 0.0;
  double right_total = 0.0;
  for (size_t c = 0; c < node.class_weights.size(); ++c) {
    GaussianStat s = StatView(node, dim, feature, static_cast<int>(c));
    double frac = s.CdfBelow(threshold);
    double lw = s.weight * frac;
    double rw = s.weight - lw;
    left_cw[c] = lw;
    right_cw[c] = rw;
    left_total += lw;
    right_total += rw;
  }
  double total = left_total + right_total;
  if (total <= 0.0 || left_total <= 0.0 || right_total <= 0.0) return 0.0;
  double parent = Entropy(node.class_weights);
  double child = (left_total / total) * Entropy(left_cw) +
                 (right_total / total) * Entropy(right_cw);
  return parent - child;
}

void HoeffdingTree::TrySplit(int32_t leaf, int64_t dim) {
  Node& node = nodes_[static_cast<size_t>(leaf)];
  // Pure leaves never split.
  int nonzero = 0;
  double total_weight = 0.0;
  for (double w : node.class_weights) {
    if (w > 0.0) ++nonzero;
    total_weight += w;
  }
  if (nonzero < 2) return;

  double best_gain = 0.0;
  double second_gain = 0.0;
  int64_t best_feature = -1;
  double best_threshold = 0.0;
  const int64_t stat_dim = StatDim(node);
  for (int64_t f : node.candidate_features) {
    double lo = 0.0;
    double hi = 0.0;
    bool init = false;
    for (int c = 0; c < config_.num_classes; ++c) {
      GaussianStat s = StatView(node, stat_dim, f, c);
      if (s.weight <= 0.0) continue;
      if (!init) {
        lo = s.min;
        hi = s.max;
        init = true;
      } else {
        lo = std::min(lo, s.min);
        hi = std::max(hi, s.max);
      }
    }
    if (!init || hi <= lo) continue;
    double feature_best = 0.0;
    double feature_best_threshold = 0.0;
    for (int p = 1; p <= config_.num_split_points; ++p) {
      double threshold =
          lo + (hi - lo) * static_cast<double>(p) /
                   static_cast<double>(config_.num_split_points + 1);
      double gain = SplitGain(node, f, threshold);
      if (gain > feature_best) {
        feature_best = gain;
        feature_best_threshold = threshold;
      }
    }
    if (feature_best > best_gain) {
      second_gain = best_gain;
      best_gain = feature_best;
      best_feature = f;
      best_threshold = feature_best_threshold;
    } else if (feature_best > second_gain) {
      second_gain = feature_best;
    }
  }
  if (best_feature < 0) return;

  // Hoeffding bound with R = log2(num_classes) (entropy range).
  double range = std::log2(static_cast<double>(config_.num_classes));
  double epsilon =
      std::sqrt(range * range * std::log(1.0 / config_.split_confidence) /
                (2.0 * total_weight));
  if (best_gain - second_gain <= epsilon &&
      epsilon >= config_.tie_threshold) {
    return;
  }

  // Perform the split: this node becomes internal; children start fresh.
  int depth = node.depth;
  int32_t left = NewLeaf(depth + 1, dim);
  int32_t right = NewLeaf(depth + 1, dim);
  Node& n2 = nodes_[static_cast<size_t>(leaf)];  // re-fetch (realloc)
  n2.is_leaf = false;
  n2.feature = static_cast<int32_t>(best_feature);
  n2.threshold = best_threshold;
  n2.left = left;
  n2.right = right;
  // Children inherit an approximate class prior split so early predictions
  // are not uniform.
  const int64_t n2_dim = StatDim(n2);
  for (size_t c = 0; c < n2.class_weights.size(); ++c) {
    double frac = StatView(n2, n2_dim, best_feature, static_cast<int>(c))
                      .CdfBelow(best_threshold);
    nodes_[static_cast<size_t>(left)].class_weights[c] =
        n2.class_weights[c] * frac;
    nodes_[static_cast<size_t>(right)].class_weights[c] =
        n2.class_weights[c] * (1.0 - frac);
  }
  n2.stats.clear();
  n2.stats.shrink_to_fit();
}

int HoeffdingTree::PredictClass(const double* row, int64_t dim) const {
  std::vector<double> proba = PredictProba(row, dim);
  return ArgMax(proba);
}

std::vector<double> HoeffdingTree::PredictProba(const double* row,
                                                int64_t /*dim*/) const {
  if (nodes_.empty()) {
    return std::vector<double>(static_cast<size_t>(config_.num_classes),
                               1.0 / config_.num_classes);
  }
  const Node& leaf = nodes_[static_cast<size_t>(Route(row))];
  double total = 0.0;
  for (double w : leaf.class_weights) total += w;
  if (total <= 0.0) {
    return std::vector<double>(leaf.class_weights.size(),
                               1.0 / leaf.class_weights.size());
  }
  // Naive Bayes leaves: combine the class prior with the Gaussian
  // likelihoods the leaf has been collecting anyway. Falls back to the
  // prior when the leaf has no statistics (freshly split) or too little
  // evidence for stable variances.
  if (config_.leaf_prediction == LeafPrediction::kNaiveBayes &&
      !leaf.stats.empty() && total >= 10.0) {
    const int64_t dim = StatDim(leaf);
    std::vector<double> log_like(leaf.class_weights.size());
    for (size_t c = 0; c < leaf.class_weights.size(); ++c) {
      double prior = (leaf.class_weights[c] + 1e-9) / (total + 1e-9);
      log_like[c] = std::log(prior);
      // SoA layout: for a fixed class the weight/mean/m2 planes are
      // contiguous across features.
      const double* base = leaf.stats.data();
      const int64_t off = static_cast<int64_t>(c) * dim;
      const int64_t cd = static_cast<int64_t>(config_.num_classes) * dim;
      const double* wp = base + kWeightP * cd + off;
      const double* meanp = base + kMeanP * cd + off;
      const double* m2p = base + kM2P * cd + off;
      for (int64_t f = 0; f < dim; ++f) {
        if (wp[f] <= 1.0) continue;
        double var = m2p[f] / (wp[f] - 1.0) + 1e-6;
        double diff = row[f] - meanp[f];
        log_like[c] +=
            -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
      }
    }
    SoftmaxInPlace(&log_like);
    return log_like;
  }
  std::vector<double> proba = leaf.class_weights;
  for (double& w : proba) w /= total;
  return proba;
}

int64_t HoeffdingTree::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += static_cast<int64_t>(sizeof(Node));
    bytes += static_cast<int64_t>(n.class_weights.size() * sizeof(double));
    // The SoA buffer holds kStatPlanes doubles per (feature, class) —
    // byte-for-byte what the old per-cell GaussianStat AoS occupied, so
    // the reported footprint (pinned by the golden eval dumps) is
    // unchanged.
    bytes += static_cast<int64_t>(n.stats.size() * sizeof(double));
    bytes += static_cast<int64_t>(n.candidate_features.size() *
                                  sizeof(int64_t));
  }
  return bytes;
}

}  // namespace oebench
