#include "models/gbdt.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

#include "linalg/vector_ops.h"
#include "models/serialization.h"

namespace oebench {

void Gbdt::Fit(const Matrix& x, const std::vector<double>& y) {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  OE_CHECK(x.rows() > 0);
  trees_.clear();
  fitted_ = false;
  const int64_t n = x.rows();

  DecisionTreeConfig tree_config;
  tree_config.task = TaskType::kRegression;  // boosting fits residuals
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;

  if (config_.task == TaskType::kRegression) {
    base_score_ = Mean(y);
    std::vector<double> score(y.size(), base_score_);
    for (int round = 0; round < config_.num_rounds; ++round) {
      std::vector<double> residual(y.size());
      for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - score[i];
      DecisionTree tree(tree_config);
      tree.Fit(x, residual);
      for (int64_t i = 0; i < n; ++i) {
        score[static_cast<size_t>(i)] +=
            config_.learning_rate * tree.PredictValue(x.Row(i));
      }
      trees_.push_back({std::move(tree)});
    }
  } else {
    const int k = config_.num_classes;
    // Log-prior initial scores.
    std::vector<double> prior(static_cast<size_t>(k), 1.0);  // Laplace
    for (double label : y) prior[static_cast<size_t>(label)] += 1.0;
    base_class_scores_.resize(static_cast<size_t>(k));
    double total = static_cast<double>(n + k);
    for (int c = 0; c < k; ++c) {
      base_class_scores_[static_cast<size_t>(c)] =
          std::log(prior[static_cast<size_t>(c)] / total);
    }
    // score[i][c]
    std::vector<std::vector<double>> score(
        static_cast<size_t>(n), base_class_scores_);
    std::vector<double> grad(static_cast<size_t>(n));
    for (int round = 0; round < config_.num_rounds; ++round) {
      std::vector<DecisionTree> round_trees;
      round_trees.reserve(static_cast<size_t>(k));
      for (int c = 0; c < k; ++c) {
        for (int64_t i = 0; i < n; ++i) {
          std::vector<double> p = score[static_cast<size_t>(i)];
          SoftmaxInPlace(&p);
          double target =
              (static_cast<int>(y[static_cast<size_t>(i)]) == c) ? 1.0 : 0.0;
          grad[static_cast<size_t>(i)] = target - p[static_cast<size_t>(c)];
        }
        DecisionTree tree(tree_config);
        tree.Fit(x, grad);
        round_trees.push_back(std::move(tree));
      }
      for (int64_t i = 0; i < n; ++i) {
        for (int c = 0; c < k; ++c) {
          score[static_cast<size_t>(i)][static_cast<size_t>(c)] +=
              config_.learning_rate *
              round_trees[static_cast<size_t>(c)].PredictValue(x.Row(i));
        }
      }
      trees_.push_back(std::move(round_trees));
    }
  }
  fitted_ = true;
}

std::vector<double> Gbdt::RawScores(const double* row) const {
  OE_CHECK(fitted_);
  if (config_.task == TaskType::kRegression) {
    double score = base_score_;
    for (const auto& round : trees_) {
      score += config_.learning_rate * round[0].PredictValue(row);
    }
    return {score};
  }
  std::vector<double> scores = base_class_scores_;
  for (const auto& round : trees_) {
    for (size_t c = 0; c < round.size(); ++c) {
      scores[c] += config_.learning_rate * round[c].PredictValue(row);
    }
  }
  return scores;
}

double Gbdt::PredictValue(const double* row) const {
  return RawScores(row)[0];
}

int Gbdt::PredictClass(const double* row) const {
  return ArgMax(RawScores(row));
}

std::vector<double> Gbdt::PredictProba(const double* row) const {
  std::vector<double> scores = RawScores(row);
  SoftmaxInPlace(&scores);
  return scores;
}

void Gbdt::SerializeTo(std::ostream* out) const {
  OE_CHECK(fitted_) << "serialising an unfitted GBDT";
  *out << "gbdt v1\n";
  *out << std::setprecision(17);
  *out << (config_.task == TaskType::kClassification ? "cls" : "reg")
       << ' ' << config_.num_classes << ' ' << config_.num_rounds << ' '
       << config_.learning_rate << ' ' << config_.max_depth << ' '
       << config_.min_samples_leaf << '\n';
  *out << base_score_ << ' ' << base_class_scores_.size();
  for (double s : base_class_scores_) *out << ' ' << s;
  *out << '\n';
  *out << trees_.size() << '\n';
  for (const auto& round : trees_) {
    *out << round.size() << '\n';
    for (const DecisionTree& tree : round) {
      tree.SerializeTo(out);
    }
  }
}

Result<Gbdt> Gbdt::DeserializeFrom(std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != "gbdt" || version != "v1") {
    return Status::IoError("bad gbdt header");
  }
  std::string task;
  GbdtConfig config;
  if (!(*in >> task >> config.num_classes >> config.num_rounds >>
        config.learning_rate >> config.max_depth >>
        config.min_samples_leaf)) {
    return Status::IoError("bad gbdt config line");
  }
  config.task =
      task == "cls" ? TaskType::kClassification : TaskType::kRegression;
  Gbdt model(config);
  size_t num_base = 0;
  // Base scores can be non-finite if training exploded;
  // ReadSerializedDouble parses the nan/inf tokens operator<< wrote.
  if (!ReadSerializedDouble(in, &model.base_score_) ||
      !(*in >> num_base)) {
    return Status::IoError("bad gbdt base scores");
  }
  model.base_class_scores_.resize(num_base);
  for (double& s : model.base_class_scores_) {
    if (!ReadSerializedDouble(in, &s)) {
      return Status::IoError("truncated base scores");
    }
  }
  size_t rounds = 0;
  if (!(*in >> rounds)) return Status::IoError("bad round count");
  model.trees_.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    size_t per_round = 0;
    if (!(*in >> per_round)) return Status::IoError("bad tree count");
    std::vector<DecisionTree> round;
    round.reserve(per_round);
    for (size_t t = 0; t < per_round; ++t) {
      OE_ASSIGN_OR_RETURN(DecisionTree tree,
                          DecisionTree::DeserializeFrom(in));
      round.push_back(std::move(tree));
    }
    model.trees_.push_back(std::move(round));
  }
  model.fitted_ = true;
  return model;
}

int64_t Gbdt::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& round : trees_) {
    for (const DecisionTree& t : round) bytes += t.MemoryBytes();
  }
  return bytes + static_cast<int64_t>(base_class_scores_.size() *
                                      sizeof(double));
}

}  // namespace oebench
