#include "models/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/simd.h"
#include "linalg/vector_ops.h"

namespace oebench {

namespace {
constexpr double kLogFloor = 1e-12;
}  // namespace

std::vector<int> PaperMlpHidden(int layers) {
  OE_CHECK(layers >= 1);
  // Paper §6.5: 3 -> [32,16,8]; 5 -> [32,32,16,16,8]; 7 -> [32,32,32,16,16,16,8].
  if (layers == 1) return {32};
  std::vector<int> hidden;
  int wide = std::max(1, (layers - 1) / 2);  // number of 32s
  hidden.assign(static_cast<size_t>(wide), 32);
  while (static_cast<int>(hidden.size()) < layers - 1) hidden.push_back(16);
  hidden.push_back(8);
  return hidden;
}

Mlp::Mlp(MlpConfig config, uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  OE_CHECK(!config_.hidden_sizes.empty());
  OE_CHECK(config_.task != TaskType::kClassification ||
           config_.num_classes >= 2);
}

void Mlp::EnsureInitialized(int64_t input_dim) {
  if (initialized_) {
    OE_CHECK(input_dim == input_dim_)
        << "MLP input width changed from " << input_dim_ << " to "
        << input_dim;
    return;
  }
  OE_CHECK(input_dim >= 1);
  input_dim_ = input_dim;
  layer_dims_.clear();
  layer_dims_.push_back(input_dim);
  for (int h : config_.hidden_sizes) layer_dims_.push_back(h);
  layer_dims_.push_back(OutputDim());

  Rng rng(seed_);
  weights_.clear();
  biases_.clear();
  for (size_t l = 0; l + 1 < layer_dims_.size(); ++l) {
    int64_t in = layer_dims_[l];
    int64_t out = layer_dims_[l + 1];
    // He initialisation suits the ReLU hidden stack.
    double scale = std::sqrt(2.0 / static_cast<double>(in));
    Matrix w(in, out);
    for (double& v : w.data()) v = rng.Gaussian() * scale;
    weights_.push_back(std::move(w));
    biases_.emplace_back(static_cast<size_t>(out), 0.0);
  }
  initialized_ = true;
}

std::vector<double> Mlp::Forward(const double* row, int64_t dim) const {
  OE_CHECK(initialized_);
  OE_CHECK(dim == input_dim_);
  std::vector<double> act(row, row + dim);
  for (size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    const std::vector<double>& b = biases_[l];
    std::vector<double> next(static_cast<size_t>(w.cols()), 0.0);
    simd::GemvAccum(act.data(), w.data().data(), w.rows(), w.cols(),
                    w.cols(), next.data());
    const int64_t cols = w.cols();
    double* np = next.data();
    const double* bp = b.data();
    if (l + 1 == weights_.size()) {
      simd::Add(np, bp, cols);
    } else {
      OE_SIMD_LOOP
      for (int64_t j = 0; j < cols; ++j) {
        np[j] = std::max(np[j] + bp[j], 0.0);
      }
    }
    act = std::move(next);
  }
  return act;
}

double Mlp::PredictValue(const std::vector<double>& x) const {
  return Forward(x.data(), static_cast<int64_t>(x.size()))[0];
}

int Mlp::PredictClass(const std::vector<double>& x) const {
  return ArgMax(Forward(x.data(), static_cast<int64_t>(x.size())));
}

std::vector<double> Mlp::PredictProba(const std::vector<double>& x) const {
  OE_CHECK(config_.task == TaskType::kClassification);
  std::vector<double> logits =
      Forward(x.data(), static_cast<int64_t>(x.size()));
  SoftmaxInPlace(&logits);
  return logits;
}

double Mlp::BackpropSample(const double* row, double target,
                           int64_t row_index, const GradHooks* hooks,
                           std::vector<Matrix>* weight_grads,
                           std::vector<std::vector<double>>* bias_grads,
                           LossMode mode) const {
  const size_t num_layers = weights_.size();
  // Forward pass storing every activation (post-ReLU for hidden layers).
  std::vector<std::vector<double>> acts(num_layers + 1);
  acts[0].assign(row, row + input_dim_);
  for (size_t l = 0; l < num_layers; ++l) {
    const Matrix& w = weights_[l];
    const std::vector<double>& b = biases_[l];
    std::vector<double> next(static_cast<size_t>(w.cols()), 0.0);
    simd::GemvAccum(acts[l].data(), w.data().data(), w.rows(), w.cols(),
                    w.cols(), next.data());
    const int64_t cols = w.cols();
    double* np = next.data();
    const double* bp = b.data();
    if (l + 1 == num_layers) {
      simd::Add(np, bp, cols);
    } else {
      OE_SIMD_LOOP
      for (int64_t j = 0; j < cols; ++j) {
        np[j] = std::max(np[j] + bp[j], 0.0);
      }
    }
    acts[l + 1] = std::move(next);
  }

  const std::vector<double>& output = acts[num_layers];
  std::vector<double> delta(output.size(), 0.0);
  double loss = 0.0;
  if (mode == LossMode::kOutputNorm) {
    for (size_t j = 0; j < output.size(); ++j) {
      loss += output[j] * output[j];
      delta[j] = 2.0 * output[j];
    }
  } else if (config_.task == TaskType::kRegression) {
    double err = output[0] - target;
    loss = err * err;
    delta[0] = 2.0 * err;
  } else {
    std::vector<double> proba = output;
    SoftmaxInPlace(&proba);
    int label = static_cast<int>(target);
    OE_DCHECK(label >= 0 && label < static_cast<int>(proba.size()));
    loss = -std::log(std::max(proba[static_cast<size_t>(label)], kLogFloor));
    for (size_t j = 0; j < proba.size(); ++j) {
      delta[j] = proba[j] - (static_cast<int>(j) == label ? 1.0 : 0.0);
    }
  }
  if (hooks != nullptr && hooks->output_hook) {
    hooks->output_hook(row_index, output, &delta);
  }

  // Backward pass.
  for (size_t l = num_layers; l-- > 0;) {
    const Matrix& w = weights_[l];
    Matrix& wg = (*weight_grads)[l];
    std::vector<double>& bg = (*bias_grads)[l];
    const std::vector<double>& input = acts[l];
    simd::Add(bg.data(), delta.data(), w.cols());
    for (int64_t i = 0; i < w.rows(); ++i) {
      double a = input[static_cast<size_t>(i)];
      if (a != 0.0) {
        simd::Axpy(wg.Row(i), delta.data(), w.cols(), a);
      }
    }
    if (l == 0) break;
    std::vector<double> prev_delta(input.size(), 0.0);
    for (int64_t i = 0; i < w.rows(); ++i) {
      if (input[static_cast<size_t>(i)] <= 0.0) continue;  // ReLU gate
      prev_delta[static_cast<size_t>(i)] =
          simd::DotSeq(w.Row(i), delta.data(), w.cols());
    }
    delta = std::move(prev_delta);
  }
  return loss;
}

double Mlp::TrainEpoch(const Matrix& x, const std::vector<double>& y,
                       Rng* rng, const GradHooks* hooks) {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  if (x.rows() == 0) return 0.0;
  EnsureInitialized(x.cols());

  std::vector<int64_t> order(static_cast<size_t>(x.rows()));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  std::vector<Matrix> weight_grads;
  std::vector<std::vector<double>> bias_grads;
  for (size_t l = 0; l < weights_.size(); ++l) {
    weight_grads.emplace_back(weights_[l].rows(), weights_[l].cols());
    bias_grads.emplace_back(biases_[l].size(), 0.0);
  }

  const int batch = std::max(config_.batch_size, 1);
  double total_loss = 0.0;
  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(batch)) {
    size_t end = std::min(order.size(), start + static_cast<size_t>(batch));
    // Zero gradient accumulators.
    for (size_t l = 0; l < weights_.size(); ++l) {
      std::fill(weight_grads[l].data().begin(), weight_grads[l].data().end(),
                0.0);
      std::fill(bias_grads[l].begin(), bias_grads[l].end(), 0.0);
    }
    for (size_t i = start; i < end; ++i) {
      int64_t r = order[i];
      total_loss +=
          BackpropSample(x.Row(r), y[static_cast<size_t>(r)], r, hooks,
                         &weight_grads, &bias_grads);
    }
    double inv = 1.0 / static_cast<double>(end - start);
    for (size_t l = 0; l < weights_.size(); ++l) {
      simd::Scale(weight_grads[l].data().data(),
                  weight_grads[l].size(), inv);
      simd::Scale(bias_grads[l].data(),
                  static_cast<int64_t>(bias_grads[l].size()), inv);
    }
    if (hooks != nullptr && hooks->param_hook) {
      hooks->param_hook(weights_, biases_, &weight_grads, &bias_grads);
    }
    if (config_.grad_clip > 0.0) {
      // One running sum chained across all buffers keeps the reduction
      // order identical to the historical element-by-element loop.
      double norm_sq = 0.0;
      for (const Matrix& g : weight_grads) {
        norm_sq = simd::SumSquaresSeq(norm_sq, g.data().data(), g.size());
      }
      for (const auto& g : bias_grads) {
        norm_sq = simd::SumSquaresSeq(norm_sq, g.data(),
                                      static_cast<int64_t>(g.size()));
      }
      double norm = std::sqrt(norm_sq);
      if (norm > config_.grad_clip) {
        double s = config_.grad_clip / norm;
        for (Matrix& g : weight_grads) {
          simd::Scale(g.data().data(), g.size(), s);
        }
        for (auto& g : bias_grads) {
          simd::Scale(g.data(), static_cast<int64_t>(g.size()), s);
        }
      }
    }
    double lr = config_.learning_rate;
    for (size_t l = 0; l < weights_.size(); ++l) {
      weights_[l].AddInPlace(weight_grads[l], -lr);
      // b[j] += (-lr) * g[j] is bit-identical to b[j] -= lr * g[j].
      simd::Axpy(biases_[l].data(), bias_grads[l].data(),
                 static_cast<int64_t>(biases_[l].size()), -lr);
    }
  }
  return total_loss / static_cast<double>(x.rows());
}

double Mlp::EvaluateLoss(const Matrix& x, const std::vector<double>& y) const {
  OE_CHECK(initialized_);
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  if (x.rows() == 0) return 0.0;
  double total = 0.0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    std::vector<double> out = Forward(x.Row(r), x.cols());
    if (config_.task == TaskType::kRegression) {
      double err = out[0] - y[static_cast<size_t>(r)];
      total += err * err;
    } else {
      SoftmaxInPlace(&out);
      int label = static_cast<int>(y[static_cast<size_t>(r)]);
      total -=
          std::log(std::max(out[static_cast<size_t>(label)], kLogFloor));
    }
  }
  return total / static_cast<double>(x.rows());
}

void Mlp::ComputeSquaredGradients(
    const Matrix& x, const std::vector<double>& y,
    std::vector<Matrix>* weight_sq,
    std::vector<std::vector<double>>* bias_sq) const {
  OE_CHECK(initialized_);
  weight_sq->clear();
  bias_sq->clear();
  for (size_t l = 0; l < weights_.size(); ++l) {
    weight_sq->emplace_back(weights_[l].rows(), weights_[l].cols());
    bias_sq->emplace_back(biases_[l].size(), 0.0);
  }
  if (x.rows() == 0) return;

  std::vector<Matrix> wg;
  std::vector<std::vector<double>> bg;
  for (size_t l = 0; l < weights_.size(); ++l) {
    wg.emplace_back(weights_[l].rows(), weights_[l].cols());
    bg.emplace_back(biases_[l].size(), 0.0);
  }
  for (int64_t r = 0; r < x.rows(); ++r) {
    for (size_t l = 0; l < weights_.size(); ++l) {
      std::fill(wg[l].data().begin(), wg[l].data().end(), 0.0);
      std::fill(bg[l].begin(), bg[l].end(), 0.0);
    }
    BackpropSample(x.Row(r), y[static_cast<size_t>(r)], r, nullptr, &wg,
                   &bg);
    for (size_t l = 0; l < weights_.size(); ++l) {
      simd::AccumSquares((*weight_sq)[l].data().data(), wg[l].data().data(),
                         wg[l].size());
      simd::AccumSquares((*bias_sq)[l].data(), bg[l].data(),
                         static_cast<int64_t>(bg[l].size()));
    }
  }
  double inv = 1.0 / static_cast<double>(x.rows());
  for (size_t l = 0; l < weights_.size(); ++l) {
    simd::Scale((*weight_sq)[l].data().data(), (*weight_sq)[l].size(), inv);
    simd::Scale((*bias_sq)[l].data(),
                static_cast<int64_t>((*bias_sq)[l].size()), inv);
  }
}

void Mlp::ComputeOutputNormGradients(
    const Matrix& x, std::vector<Matrix>* weight_abs,
    std::vector<std::vector<double>>* bias_abs) const {
  OE_CHECK(initialized_);
  weight_abs->clear();
  bias_abs->clear();
  for (size_t l = 0; l < weights_.size(); ++l) {
    weight_abs->emplace_back(weights_[l].rows(), weights_[l].cols());
    bias_abs->emplace_back(biases_[l].size(), 0.0);
  }
  if (x.rows() == 0) return;

  std::vector<Matrix> wg;
  std::vector<std::vector<double>> bg;
  for (size_t l = 0; l < weights_.size(); ++l) {
    wg.emplace_back(weights_[l].rows(), weights_[l].cols());
    bg.emplace_back(biases_[l].size(), 0.0);
  }
  for (int64_t r = 0; r < x.rows(); ++r) {
    for (size_t l = 0; l < weights_.size(); ++l) {
      std::fill(wg[l].data().begin(), wg[l].data().end(), 0.0);
      std::fill(bg[l].begin(), bg[l].end(), 0.0);
    }
    BackpropSample(x.Row(r), 0.0, r, nullptr, &wg, &bg,
                   LossMode::kOutputNorm);
    for (size_t l = 0; l < weights_.size(); ++l) {
      simd::AccumAbs((*weight_abs)[l].data().data(), wg[l].data().data(),
                     wg[l].size());
      simd::AccumAbs((*bias_abs)[l].data(), bg[l].data(),
                     static_cast<int64_t>(bg[l].size()));
    }
  }
  double inv = 1.0 / static_cast<double>(x.rows());
  for (size_t l = 0; l < weights_.size(); ++l) {
    simd::Scale((*weight_abs)[l].data().data(), (*weight_abs)[l].size(),
                inv);
    simd::Scale((*bias_abs)[l].data(),
                static_cast<int64_t>((*bias_abs)[l].size()), inv);
  }
}

void Mlp::SetParameters(std::vector<Matrix> weights,
                        std::vector<std::vector<double>> biases) {
  OE_CHECK(initialized_);
  OE_CHECK(weights.size() == weights_.size());
  OE_CHECK(biases.size() == biases_.size());
  for (size_t l = 0; l < weights.size(); ++l) {
    OE_CHECK(weights[l].rows() == weights_[l].rows() &&
             weights[l].cols() == weights_[l].cols())
        << "layer " << l << " weight shape mismatch";
    OE_CHECK(biases[l].size() == biases_[l].size());
  }
  weights_ = std::move(weights);
  biases_ = std::move(biases);
}

int64_t Mlp::ParameterCount() const {
  int64_t count = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    count += weights_[l].size() + static_cast<int64_t>(biases_[l].size());
  }
  return count;
}

int64_t Mlp::MemoryBytes() const {
  return ParameterCount() * static_cast<int64_t>(sizeof(double));
}

}  // namespace oebench
