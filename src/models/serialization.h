#ifndef OEBENCH_MODELS_SERIALIZATION_H_
#define OEBENCH_MODELS_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "models/gbdt.h"
#include "models/mlp.h"

namespace oebench {

/// Text serialisation for trained models, so a stream learner's state can
/// be checkpointed, shipped, or inspected. The format is line-based and
/// versioned ("mlp v1", "decision_tree v1", "gbdt v1"); doubles round-trip
/// exactly via max_digits10 precision. DecisionTree and Gbdt expose
/// SerializeTo/DeserializeFrom directly; the MLP helpers live here
/// because reconstruction goes through MlpConfig.

/// Reads one whitespace-delimited double token. The serialisers print
/// doubles with operator<<, which renders non-finite values as
/// "nan"/"-nan"/"inf"/"-inf" — tokens istream's num_get refuses to
/// parse back. This helper accepts exactly what operator<< can emit
/// (strtod handles the non-finite spellings, sign included), so
/// serialised models with exploded weights still round-trip; the
/// re-serialised bytes are identical to the first serialisation.
/// Returns false (and sets the stream's failbit) on EOF or a token
/// that is not entirely a double.
bool ReadSerializedDouble(std::istream* in, double* out);

/// Writes an initialised MLP (architecture + parameters).
void SerializeMlp(const Mlp& mlp, std::ostream* out);

/// Reads an MLP previously written by SerializeMlp. The returned model
/// predicts identically to the saved one.
Result<Mlp> DeserializeMlp(std::istream* in);

/// Convenience string round-trips.
std::string MlpToString(const Mlp& mlp);
Result<Mlp> MlpFromString(const std::string& text);
std::string GbdtToString(const Gbdt& model);
Result<Gbdt> GbdtFromString(const std::string& text);

/// File round-trips (any of the three model kinds, by extension-free
/// sniffing of the header line).
Status SaveMlp(const Mlp& mlp, const std::string& path);
Result<Mlp> LoadMlp(const std::string& path);

}  // namespace oebench

#endif  // OEBENCH_MODELS_SERIALIZATION_H_
