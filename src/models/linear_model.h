#ifndef OEBENCH_MODELS_LINEAR_MODEL_H_
#define OEBENCH_MODELS_LINEAR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Ridge-regularised linear regression solved in closed form via the
/// normal equations. Used by the PERM concept-drift detector and the
/// concept-drift statistics pipeline for regression tasks (paper §4.3
/// follows Menelaus and uses linear regression there).
class LinearRegression {
 public:
  explicit LinearRegression(double l2 = 1e-6) : l2_(l2) {}

  /// Fits weights and intercept to (x, y).
  Status Fit(const Matrix& x, const std::vector<double>& y);

  bool fitted() const { return !weights_.empty(); }

  double PredictValue(const double* row) const;
  double PredictValue(const std::vector<double>& x) const {
    return PredictValue(x.data());
  }
  /// Mean squared error over a dataset.
  double EvaluateMse(const Matrix& x, const std::vector<double>& y) const;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double l2_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_LINEAR_MODEL_H_
