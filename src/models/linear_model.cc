#include "models/linear_model.h"

#include "linalg/eigen.h"

namespace oebench {

Status LinearRegression::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != static_cast<int64_t>(y.size())) {
    return Status::InvalidArgument("x/y row mismatch");
  }
  if (x.rows() < 1) return Status::InvalidArgument("empty training data");
  const int64_t n = x.rows();
  const int64_t d = x.cols();

  // Augmented normal equations with intercept in the last slot.
  Matrix xtx(d + 1, d + 1);
  std::vector<double> xty(static_cast<size_t>(d + 1), 0.0);
  for (int64_t r = 0; r < n; ++r) {
    const double* row = x.Row(r);
    for (int64_t a = 0; a < d; ++a) {
      for (int64_t b = a; b < d; ++b) {
        xtx.At(a, b) += row[a] * row[b];
      }
      xtx.At(a, d) += row[a];
      xty[static_cast<size_t>(a)] += row[a] * y[static_cast<size_t>(r)];
    }
    xtx.At(d, d) += 1.0;
    xty[static_cast<size_t>(d)] += y[static_cast<size_t>(r)];
  }
  for (int64_t a = 0; a <= d; ++a) {
    for (int64_t b = 0; b < a; ++b) xtx.At(a, b) = xtx.At(b, a);
    if (a < d) xtx.At(a, a) += l2_;
  }
  std::vector<double> solution =
      SolveLinearSystem(std::move(xtx), std::move(xty));
  intercept_ = solution[static_cast<size_t>(d)];
  solution.resize(static_cast<size_t>(d));
  weights_ = std::move(solution);
  return Status::OK();
}

double LinearRegression::PredictValue(const double* row) const {
  OE_CHECK(fitted());
  double out = intercept_;
  for (size_t i = 0; i < weights_.size(); ++i) out += weights_[i] * row[i];
  return out;
}

double LinearRegression::EvaluateMse(const Matrix& x,
                                     const std::vector<double>& y) const {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  if (x.rows() == 0) return 0.0;
  double total = 0.0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    double err = PredictValue(x.Row(r)) - y[static_cast<size_t>(r)];
    total += err * err;
  }
  return total / static_cast<double>(x.rows());
}

}  // namespace oebench
