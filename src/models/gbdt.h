#ifndef OEBENCH_MODELS_GBDT_H_
#define OEBENCH_MODELS_GBDT_H_

#include <vector>

#include "models/decision_tree.h"

namespace oebench {

/// Gradient-boosted decision trees. Regression boosts squared loss;
/// classification boosts the multiclass softmax deviance with one
/// regression tree per class per round (sklearn-style). The paper's
/// default GBDT uses 5 rounds (§6.1, "we set the number of trees to 5");
/// Figure 19 sweeps {5, 10, 20, 40}.
struct GbdtConfig {
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
  int num_rounds = 5;
  double learning_rate = 0.3;
  int max_depth = 4;
  int min_samples_leaf = 2;
};

class Gbdt {
 public:
  explicit Gbdt(GbdtConfig config) : config_(config) {}

  /// Fits the ensemble to (x, y). For classification `y` holds class ids.
  void Fit(const Matrix& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }

  double PredictValue(const double* row) const;
  double PredictValue(const std::vector<double>& x) const {
    return PredictValue(x.data());
  }
  int PredictClass(const double* row) const;
  int PredictClass(const std::vector<double>& x) const {
    return PredictClass(x.data());
  }
  /// Softmax class probabilities (classification only).
  std::vector<double> PredictProba(const double* row) const;

  int64_t MemoryBytes() const;
  int64_t tree_count() const { return static_cast<int64_t>(trees_.size()); }
  const GbdtConfig& config() const { return config_; }

  /// Writes the fitted ensemble in a line-based text format.
  void SerializeTo(std::ostream* out) const;
  /// Reads an ensemble previously written by SerializeTo.
  static Result<Gbdt> DeserializeFrom(std::istream* in);

 private:
  /// Raw additive scores: 1 value for regression, num_classes logits for
  /// classification.
  std::vector<double> RawScores(const double* row) const;

  GbdtConfig config_;
  bool fitted_ = false;
  double base_score_ = 0.0;                // regression prior (mean)
  std::vector<double> base_class_scores_;  // classification log-prior
  // Regression: trees_[r] has 1 tree. Classification: trees_[r] has
  // num_classes trees.
  std::vector<std::vector<DecisionTree>> trees_;
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_GBDT_H_
