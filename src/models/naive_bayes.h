#ifndef OEBENCH_MODELS_NAIVE_BAYES_H_
#define OEBENCH_MODELS_NAIVE_BAYES_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Gaussian naive Bayes classifier. The concept-drift statistics pipeline
/// follows the Menelaus examples and trains GaussianNB per window for
/// classification tasks (paper §4.3), feeding its error stream into
/// DDM / EDDM / ADWIN-accuracy.
class GaussianNb {
 public:
  explicit GaussianNb(int num_classes) : num_classes_(num_classes) {}

  Status Fit(const Matrix& x, const std::vector<double>& y);
  bool fitted() const { return fitted_; }

  int PredictClass(const double* row) const;
  int PredictClass(const std::vector<double>& x) const {
    return PredictClass(x.data());
  }
  /// Error rate over a dataset.
  double EvaluateErrorRate(const Matrix& x,
                           const std::vector<double>& y) const;

 private:
  int num_classes_;
  bool fitted_ = false;
  std::vector<double> log_prior_;
  Matrix mean_;  // class x feature
  Matrix var_;   // class x feature
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_NAIVE_BAYES_H_
