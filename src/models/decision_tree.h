#ifndef OEBENCH_MODELS_DECISION_TREE_H_
#define OEBENCH_MODELS_DECISION_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dataframe/table.h"
#include "linalg/matrix.h"

namespace oebench {

/// CART configuration. Gini impurity drives classification splits,
/// variance (SSE) reduction drives regression splits.
struct DecisionTreeConfig {
  TaskType task = TaskType::kRegression;
  int num_classes = 2;        // classification only
  int max_depth = 12;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Number of features examined per split; <= 0 means all (plain CART).
  /// Random-forest style learners set this to sqrt(d).
  int max_features = 0;
};

/// Batch-trained CART decision tree. This is the paper's "Naive-DT"
/// building block and the weak learner inside GBDT and SEA-DT.
class DecisionTree {
 public:
  explicit DecisionTree(DecisionTreeConfig config) : config_(config) {}

  /// Fits the tree to (x, y); `sample_weight` may be empty (all ones).
  /// `rng` is only consulted when max_features > 0.
  void Fit(const Matrix& x, const std::vector<double>& y,
           const std::vector<double>& sample_weight = {},
           Rng* rng = nullptr);

  bool fitted() const { return !nodes_.empty(); }

  /// Regression prediction (mean of the reached leaf).
  double PredictValue(const double* row) const;
  double PredictValue(const std::vector<double>& x) const {
    return PredictValue(x.data());
  }
  /// Classification prediction (majority class of the reached leaf).
  int PredictClass(const double* row) const;
  int PredictClass(const std::vector<double>& x) const {
    return PredictClass(x.data());
  }
  /// Class distribution at the reached leaf (classification only).
  std::vector<double> PredictProba(const double* row) const;

  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t MemoryBytes() const;
  const DecisionTreeConfig& config() const { return config_; }

  /// Writes the fitted tree (config + nodes) in a line-based text format.
  void SerializeTo(std::ostream* out) const;
  /// Reads a tree previously written by SerializeTo.
  static Result<DecisionTree> DeserializeFrom(std::istream* in);

 private:
  struct Node {
    int32_t feature = -1;       // -1 marks a leaf
    double threshold = 0.0;     // go left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;                 // regression leaf mean
    std::vector<double> class_counts;   // classification leaf histogram
  };

  int32_t BuildNode(const Matrix& x, const std::vector<double>& y,
                    const std::vector<double>& w,
                    std::vector<int64_t>& indices, int depth, Rng* rng);
  int32_t MakeLeaf(const std::vector<double>& y,
                   const std::vector<double>& w,
                   const std::vector<int64_t>& indices);
  const Node& Traverse(const double* row) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_DECISION_TREE_H_
