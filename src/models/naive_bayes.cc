#include "models/naive_bayes.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

Status GaussianNb::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != static_cast<int64_t>(y.size())) {
    return Status::InvalidArgument("x/y row mismatch");
  }
  if (x.rows() < 1) return Status::InvalidArgument("empty training data");
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  const int64_t k = num_classes_;

  std::vector<double> count(static_cast<size_t>(k), 0.0);
  mean_ = Matrix(k, d);
  var_ = Matrix(k, d);
  for (int64_t r = 0; r < n; ++r) {
    int c = static_cast<int>(y[static_cast<size_t>(r)]);
    OE_CHECK(c >= 0 && c < k);
    count[static_cast<size_t>(c)] += 1.0;
    const double* row = x.Row(r);
    for (int64_t f = 0; f < d; ++f) mean_.At(c, f) += row[f];
  }
  for (int64_t c = 0; c < k; ++c) {
    double cnt = count[static_cast<size_t>(c)];
    if (cnt > 0.0) {
      for (int64_t f = 0; f < d; ++f) mean_.At(c, f) /= cnt;
    }
  }
  for (int64_t r = 0; r < n; ++r) {
    int c = static_cast<int>(y[static_cast<size_t>(r)]);
    const double* row = x.Row(r);
    for (int64_t f = 0; f < d; ++f) {
      double dlt = row[f] - mean_.At(c, f);
      var_.At(c, f) += dlt * dlt;
    }
  }
  log_prior_.assign(static_cast<size_t>(k), 0.0);
  for (int64_t c = 0; c < k; ++c) {
    double cnt = count[static_cast<size_t>(c)];
    for (int64_t f = 0; f < d; ++f) {
      // Variance smoothing keeps degenerate columns finite.
      var_.At(c, f) = cnt > 0.0 ? var_.At(c, f) / cnt + 1e-9 : 1.0;
    }
    log_prior_[static_cast<size_t>(c)] =
        std::log((cnt + 1.0) / (static_cast<double>(n) + k));
  }
  fitted_ = true;
  return Status::OK();
}

int GaussianNb::PredictClass(const double* row) const {
  OE_CHECK(fitted_);
  std::vector<double> log_like = log_prior_;
  for (int64_t c = 0; c < num_classes_; ++c) {
    for (int64_t f = 0; f < mean_.cols(); ++f) {
      double v = var_.At(c, f);
      double dlt = row[f] - mean_.At(c, f);
      log_like[static_cast<size_t>(c)] +=
          -0.5 * (std::log(2.0 * M_PI * v) + dlt * dlt / v);
    }
  }
  return ArgMax(log_like);
}

double GaussianNb::EvaluateErrorRate(const Matrix& x,
                                     const std::vector<double>& y) const {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  if (x.rows() == 0) return 0.0;
  int64_t wrong = 0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    if (PredictClass(x.Row(r)) !=
        static_cast<int>(y[static_cast<size_t>(r)])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) / static_cast<double>(x.rows());
}

}  // namespace oebench
