#include "models/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "linalg/vector_ops.h"
#include "models/serialization.h"

namespace oebench {

namespace {

/// Weighted impurity bookkeeping for one side of a candidate split.
struct SplitStats {
  // Classification.
  std::vector<double> class_weight;
  // Regression.
  double sum = 0.0;
  double sum_sq = 0.0;
  double weight = 0.0;

  void Add(double y, double w, bool classification) {
    weight += w;
    if (classification) {
      class_weight[static_cast<size_t>(y)] += w;
    } else {
      sum += w * y;
      sum_sq += w * y * y;
    }
  }
  void Remove(double y, double w, bool classification) {
    weight -= w;
    if (classification) {
      class_weight[static_cast<size_t>(y)] -= w;
    } else {
      sum -= w * y;
      sum_sq -= w * y * y;
    }
  }
  /// Gini impurity (classification) or SSE (regression), both weighted.
  double Impurity(bool classification) const {
    if (weight <= 0.0) return 0.0;
    if (classification) {
      double gini = 1.0;
      for (double c : class_weight) {
        double p = c / weight;
        gini -= p * p;
      }
      return gini * weight;
    }
    return sum_sq - sum * sum / weight;
  }
};

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                       const std::vector<double>& sample_weight, Rng* rng) {
  OE_CHECK(x.rows() == static_cast<int64_t>(y.size()));
  OE_CHECK(x.rows() > 0) << "cannot fit a tree on empty data";
  nodes_.clear();
  std::vector<double> w = sample_weight;
  if (w.empty()) w.assign(y.size(), 1.0);
  OE_CHECK(w.size() == y.size());
  std::vector<int64_t> indices(y.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng fallback_rng(0);
  BuildNode(x, y, w, indices, 0, rng != nullptr ? rng : &fallback_rng);
}

int32_t DecisionTree::MakeLeaf(const std::vector<double>& y,
                               const std::vector<double>& w,
                               const std::vector<int64_t>& indices) {
  Node node;
  if (config_.task == TaskType::kClassification) {
    node.class_counts.assign(static_cast<size_t>(config_.num_classes), 0.0);
    for (int64_t i : indices) {
      node.class_counts[static_cast<size_t>(y[static_cast<size_t>(i)])] +=
          w[static_cast<size_t>(i)];
    }
  } else {
    double sum = 0.0;
    double weight = 0.0;
    for (int64_t i : indices) {
      sum += w[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
      weight += w[static_cast<size_t>(i)];
    }
    node.value = weight > 0.0 ? sum / weight : 0.0;
  }
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t DecisionTree::BuildNode(const Matrix& x, const std::vector<double>& y,
                                const std::vector<double>& w,
                                std::vector<int64_t>& indices, int depth,
                                Rng* rng) {
  const bool classification = config_.task == TaskType::kClassification;
  const int64_t n = static_cast<int64_t>(indices.size());

  bool pure = true;
  for (int64_t i = 1; i < n; ++i) {
    if (y[static_cast<size_t>(indices[static_cast<size_t>(i)])] !=
        y[static_cast<size_t>(indices[0])]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= config_.max_depth ||
      n < config_.min_samples_split) {
    return MakeLeaf(y, w, indices);
  }

  // Candidate feature set.
  const int64_t d = x.cols();
  std::vector<int64_t> features;
  if (config_.max_features > 0 && config_.max_features < d) {
    features = rng->SampleWithoutReplacement(d, config_.max_features);
  } else {
    features.resize(static_cast<size_t>(d));
    std::iota(features.begin(), features.end(), 0);
  }

  // Parent impurity baseline.
  SplitStats all;
  if (classification) {
    all.class_weight.assign(static_cast<size_t>(config_.num_classes), 0.0);
  }
  for (int64_t i : indices) {
    all.Add(y[static_cast<size_t>(i)], w[static_cast<size_t>(i)],
            classification);
  }
  double parent_impurity = all.Impurity(classification);

  double best_gain = 1e-12;
  int64_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int64_t>> sorted;
  sorted.reserve(static_cast<size_t>(n));
  for (int64_t f : features) {
    sorted.clear();
    for (int64_t i : indices) {
      sorted.emplace_back(x.At(i, f), i);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    SplitStats left;
    if (classification) {
      left.class_weight.assign(static_cast<size_t>(config_.num_classes),
                               0.0);
    }
    SplitStats right = all;
    // Walk split positions; threshold is the midpoint between adjacent
    // distinct values.
    for (int64_t k = 0; k < n - 1; ++k) {
      int64_t i = sorted[static_cast<size_t>(k)].second;
      left.Add(y[static_cast<size_t>(i)], w[static_cast<size_t>(i)],
               classification);
      right.Remove(y[static_cast<size_t>(i)], w[static_cast<size_t>(i)],
                   classification);
      double v = sorted[static_cast<size_t>(k)].first;
      double v_next = sorted[static_cast<size_t>(k + 1)].first;
      if (v == v_next) continue;
      int64_t n_left = k + 1;
      int64_t n_right = n - n_left;
      if (n_left < config_.min_samples_leaf ||
          n_right < config_.min_samples_leaf) {
        continue;
      }
      double gain = parent_impurity - left.Impurity(classification) -
                    right.Impurity(classification);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return MakeLeaf(y, w, indices);

  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  for (int64_t i : indices) {
    if (x.At(i, best_feature) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) {
    return MakeLeaf(y, w, indices);
  }

  // Reserve this node's slot before recursing so the root is node 0.
  int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  indices.clear();
  indices.shrink_to_fit();
  int32_t left = BuildNode(x, y, w, left_idx, depth + 1, rng);
  int32_t right = BuildNode(x, y, w, right_idx, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(self)];
  node.feature = static_cast<int32_t>(best_feature);
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::Traverse(const double* row) const {
  OE_CHECK(!nodes_.empty());
  int32_t cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    cur = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(cur)];
}

double DecisionTree::PredictValue(const double* row) const {
  return Traverse(row).value;
}

int DecisionTree::PredictClass(const double* row) const {
  return ArgMax(Traverse(row).class_counts);
}

std::vector<double> DecisionTree::PredictProba(const double* row) const {
  std::vector<double> counts = Traverse(row).class_counts;
  double total = 0.0;
  for (double c : counts) total += c;
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  }
  return counts;
}

void DecisionTree::SerializeTo(std::ostream* out) const {
  *out << "decision_tree v1\n";
  *out << std::setprecision(17);
  *out << (config_.task == TaskType::kClassification ? "cls" : "reg")
       << ' ' << config_.num_classes << ' ' << config_.max_depth << ' '
       << config_.min_samples_split << ' ' << config_.min_samples_leaf
       << ' ' << config_.max_features << '\n';
  *out << nodes_.size() << '\n';
  for (const Node& node : nodes_) {
    *out << node.feature << ' ' << node.threshold << ' ' << node.left
         << ' ' << node.right << ' ' << node.value;
    for (double c : node.class_counts) *out << ' ' << c;
    *out << '\n';
  }
}

Result<DecisionTree> DecisionTree::DeserializeFrom(std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != "decision_tree" ||
      version != "v1") {
    return Status::IoError("bad decision_tree header");
  }
  std::string task;
  DecisionTreeConfig config;
  if (!(*in >> task >> config.num_classes >> config.max_depth >>
        config.min_samples_split >> config.min_samples_leaf >>
        config.max_features)) {
    return Status::IoError("bad decision_tree config line");
  }
  config.task =
      task == "cls" ? TaskType::kClassification : TaskType::kRegression;
  size_t count = 0;
  if (!(*in >> count)) return Status::IoError("bad node count");
  DecisionTree tree(config);
  tree.nodes_.resize(count);
  for (Node& node : tree.nodes_) {
    // Thresholds/values may be non-finite if the training data was;
    // ReadSerializedDouble parses the nan/inf tokens operator<< wrote.
    if (!(*in >> node.feature) ||
        !ReadSerializedDouble(in, &node.threshold) ||
        !(*in >> node.left >> node.right) ||
        !ReadSerializedDouble(in, &node.value)) {
      return Status::IoError("truncated node record");
    }
    if (config.task == TaskType::kClassification && node.feature < 0) {
      node.class_counts.resize(static_cast<size_t>(config.num_classes));
      for (double& c : node.class_counts) {
        if (!ReadSerializedDouble(in, &c)) {
          return Status::IoError("truncated class counts");
        }
      }
    }
  }
  // Referential integrity of the child links.
  for (const Node& node : tree.nodes_) {
    if (node.feature < 0) continue;
    if (node.left < 0 || node.right < 0 ||
        node.left >= static_cast<int32_t>(count) ||
        node.right >= static_cast<int32_t>(count)) {
      return Status::IoError("node child index out of range");
    }
  }
  return tree;
}

int64_t DecisionTree::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += static_cast<int64_t>(sizeof(Node)) +
             static_cast<int64_t>(n.class_counts.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace oebench
