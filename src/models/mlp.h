#ifndef OEBENCH_MODELS_MLP_H_
#define OEBENCH_MODELS_MLP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "dataframe/table.h"
#include "linalg/matrix.h"

namespace oebench {

/// Configuration of the multilayer perceptron. The paper's default NN is a
/// 3-hidden-layer MLP [32, 16, 8] trained 10 epochs per window with batch
/// size 64 and learning rate 0.01 (§6.1); Figure 13 uses the 5- and
/// 7-layer variants.
struct MlpConfig {
  std::vector<int> hidden_sizes = {32, 16, 8};
  TaskType task = TaskType::kRegression;
  int num_classes = 2;  // classification only
  double learning_rate = 0.01;
  int batch_size = 64;
  /// 0 disables clipping. The paper observes NN loss exploding on extreme
  /// outliers (§5.3); clipping is off by default to reproduce that.
  double grad_clip = 0.0;
};

/// Returns the hidden layout the paper uses for an MLP with `layers`
/// hidden layers (3 -> [32,16,8], 5 -> [32,32,16,16,8],
/// 7 -> [32,32,32,16,16,16,8]); other depths interpolate the same pattern.
std::vector<int> PaperMlpHidden(int layers);

/// A plain feed-forward network: ReLU hidden layers, identity output with
/// MSE loss for regression, softmax + cross-entropy for classification.
/// Trained by mini-batch SGD. Copyable (EWC/LwF keep the previous window's
/// model as a frozen copy).
class Mlp {
 public:
  /// Hooks let incremental learners inject extra gradient terms without
  /// the network knowing about them.
  struct GradHooks {
    /// Called per sample during backprop with the absolute row index into
    /// the epoch's feature matrix and the raw output activations; may add
    /// to the output-layer delta (LwF distillation).
    std::function<void(int64_t row, const std::vector<double>& output,
                       std::vector<double>* delta)>
        output_hook;
    /// Called once per mini-batch after data gradients are accumulated;
    /// may add parameter-space gradient (EWC quadratic penalty).
    /// Arguments: current parameters and mutable gradients, both laid out
    /// as weights()/biases().
    std::function<void(const std::vector<Matrix>& weights,
                       const std::vector<std::vector<double>>& biases,
                       std::vector<Matrix>* weight_grads,
                       std::vector<std::vector<double>>* bias_grads)>
        param_hook;
  };

  Mlp(MlpConfig config, uint64_t seed);

  /// Lazily builds parameters the first time the input width is known.
  /// Calling again with a different width is a programming error (the
  /// incremental-feature challenge is handled upstream by the encoders).
  void EnsureInitialized(int64_t input_dim);
  bool initialized() const { return initialized_; }

  /// One epoch of shuffled mini-batch SGD over (x, y). For classification
  /// `y` holds class ids. Returns the mean per-sample training loss.
  double TrainEpoch(const Matrix& x, const std::vector<double>& y, Rng* rng,
                    const GradHooks* hooks = nullptr);

  /// Raw output activations for one input row (size 1 for regression,
  /// num_classes for classification — pre-softmax logits).
  std::vector<double> Forward(const double* row, int64_t dim) const;

  /// Regression prediction.
  double PredictValue(const std::vector<double>& x) const;
  /// Classification prediction (argmax over logits).
  int PredictClass(const std::vector<double>& x) const;
  /// Softmax probabilities (classification only).
  std::vector<double> PredictProba(const std::vector<double>& x) const;

  /// Mean task loss over a dataset: MSE for regression, cross-entropy for
  /// classification.
  double EvaluateLoss(const Matrix& x, const std::vector<double>& y) const;

  /// Accumulates squared data gradients (the diagonal empirical Fisher
  /// information EWC uses, §6.1) over the dataset into the given buffers,
  /// which are resized/zeroed to parameter shape.
  void ComputeSquaredGradients(const Matrix& x, const std::vector<double>& y,
                               std::vector<Matrix>* weight_sq,
                               std::vector<std::vector<double>>* bias_sq) const;

  /// Accumulates |d ||f(x)||^2 / d theta| over the dataset — the
  /// unsupervised importance weights of Memory Aware Synapses (Aljundi
  /// et al., 2018). Buffers are resized/zeroed to parameter shape.
  void ComputeOutputNormGradients(
      const Matrix& x, std::vector<Matrix>* weight_abs,
      std::vector<std::vector<double>>* bias_abs) const;

  const MlpConfig& config() const { return config_; }
  const std::vector<Matrix>& weights() const { return weights_; }
  const std::vector<std::vector<double>>& biases() const { return biases_; }

  /// Overwrites the parameters (shapes must match the initialised
  /// architecture). Used by the serialisation round-trip.
  void SetParameters(std::vector<Matrix> weights,
                     std::vector<std::vector<double>> biases);
  int64_t input_dim() const { return input_dim_; }

  int64_t ParameterCount() const;
  /// Rough live-memory estimate (bytes) for the paper's Table 6 analogue.
  int64_t MemoryBytes() const;

 private:
  /// How BackpropSample seeds the output-layer delta.
  enum class LossMode {
    kTask,        // MSE / softmax cross-entropy against `target`
    kOutputNorm,  // ||f(x)||^2 (unsupervised; `target` ignored)
  };

  /// Per-sample forward pass storing activations, then backprop into the
  /// gradient accumulators. Returns the sample loss.
  double BackpropSample(const double* row, double target, int64_t row_index,
                        const GradHooks* hooks,
                        std::vector<Matrix>* weight_grads,
                        std::vector<std::vector<double>>* bias_grads,
                        LossMode mode = LossMode::kTask) const;

  int OutputDim() const {
    return config_.task == TaskType::kClassification ? config_.num_classes
                                                     : 1;
  }

  MlpConfig config_;
  uint64_t seed_;
  bool initialized_ = false;
  int64_t input_dim_ = 0;
  // Layer l maps layer_dims_[l] -> layer_dims_[l+1].
  std::vector<int64_t> layer_dims_;
  std::vector<Matrix> weights_;              // [in x out] per layer
  std::vector<std::vector<double>> biases_;  // [out] per layer
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_MLP_H_
