#include "models/serialization.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace oebench {

bool ReadSerializedDouble(std::istream* in, double* out) {
  std::string token;
  if (!(*in >> token)) return false;
  const char* begin = token.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end != begin + token.size()) {
    in->setstate(std::ios::failbit);
    return false;
  }
  *out = value;
  return true;
}

void SerializeMlp(const Mlp& mlp, std::ostream* out) {
  OE_CHECK(mlp.initialized()) << "serialising an uninitialised MLP";
  const MlpConfig& config = mlp.config();
  *out << "mlp v1\n";
  *out << std::setprecision(17);
  *out << (config.task == TaskType::kClassification ? "cls" : "reg")
       << ' ' << config.num_classes << ' ' << config.learning_rate << ' '
       << config.batch_size << ' ' << config.grad_clip << '\n';
  *out << config.hidden_sizes.size();
  for (int h : config.hidden_sizes) *out << ' ' << h;
  *out << '\n';
  *out << mlp.input_dim() << '\n';
  for (size_t l = 0; l < mlp.weights().size(); ++l) {
    const Matrix& w = mlp.weights()[l];
    *out << w.rows() << ' ' << w.cols() << '\n';
    for (double v : w.data()) *out << v << ' ';
    *out << '\n';
    for (double b : mlp.biases()[l]) *out << b << ' ';
    *out << '\n';
  }
}

Result<Mlp> DeserializeMlp(std::istream* in) {
  std::string magic;
  std::string version;
  if (!(*in >> magic >> version) || magic != "mlp" || version != "v1") {
    return Status::IoError("bad mlp header");
  }
  std::string task;
  MlpConfig config;
  if (!(*in >> task >> config.num_classes >> config.learning_rate >>
        config.batch_size >> config.grad_clip)) {
    return Status::IoError("bad mlp config line");
  }
  config.task =
      task == "cls" ? TaskType::kClassification : TaskType::kRegression;
  size_t num_hidden = 0;
  if (!(*in >> num_hidden) || num_hidden == 0 || num_hidden > 64) {
    return Status::IoError("bad hidden layer count");
  }
  config.hidden_sizes.resize(num_hidden);
  for (int& h : config.hidden_sizes) {
    if (!(*in >> h) || h < 1) return Status::IoError("bad hidden size");
  }
  int64_t input_dim = 0;
  if (!(*in >> input_dim) || input_dim < 1) {
    return Status::IoError("bad input dim");
  }
  Mlp mlp(config, /*seed=*/0);
  mlp.EnsureInitialized(input_dim);
  std::vector<Matrix> weights;
  std::vector<std::vector<double>> biases;
  for (size_t l = 0; l < mlp.weights().size(); ++l) {
    int64_t rows = 0;
    int64_t cols = 0;
    if (!(*in >> rows >> cols)) return Status::IoError("bad layer shape");
    if (rows != mlp.weights()[l].rows() ||
        cols != mlp.weights()[l].cols()) {
      return Status::IoError("layer shape inconsistent with config");
    }
    Matrix w(rows, cols);
    for (double& v : w.data()) {
      // Weights can legitimately be non-finite (the paper's NN
      // blow-ups); ReadSerializedDouble accepts the nan/inf tokens
      // operator<< emitted for them.
      if (!ReadSerializedDouble(in, &v)) {
        return Status::IoError("truncated weights");
      }
    }
    std::vector<double> b(mlp.biases()[l].size());
    for (double& v : b) {
      if (!ReadSerializedDouble(in, &v)) {
        return Status::IoError("truncated biases");
      }
    }
    weights.push_back(std::move(w));
    biases.push_back(std::move(b));
  }
  mlp.SetParameters(std::move(weights), std::move(biases));
  return mlp;
}

std::string MlpToString(const Mlp& mlp) {
  std::ostringstream out;
  SerializeMlp(mlp, &out);
  return out.str();
}

Result<Mlp> MlpFromString(const std::string& text) {
  std::istringstream in(text);
  return DeserializeMlp(&in);
}

std::string GbdtToString(const Gbdt& model) {
  std::ostringstream out;
  model.SerializeTo(&out);
  return out.str();
}

Result<Gbdt> GbdtFromString(const std::string& text) {
  std::istringstream in(text);
  return Gbdt::DeserializeFrom(&in);
}

Status SaveMlp(const Mlp& mlp, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "'");
  SerializeMlp(mlp, &out);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Mlp> LoadMlp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return DeserializeMlp(&in);
}

}  // namespace oebench
