#ifndef OEBENCH_MODELS_HOEFFDING_TREE_H_
#define OEBENCH_MODELS_HOEFFDING_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"

namespace oebench {

/// How a Hoeffding-tree leaf turns its statistics into a prediction.
enum class LeafPrediction {
  /// Majority class of the leaf's observed weights.
  kMajorityClass,
  /// Gaussian naive Bayes over the leaf's per-feature class-conditional
  /// statistics (the classic VFDT-NB refinement; usually more accurate
  /// in young leaves).
  kNaiveBayes,
};

/// Configuration of the incremental Hoeffding (VFDT) classification tree,
/// the base learner of Adaptive Random Forest (Gomes et al., 2017).
struct HoeffdingTreeConfig {
  int num_classes = 2;
  LeafPrediction leaf_prediction = LeafPrediction::kMajorityClass;
  /// Split confidence delta in the Hoeffding bound.
  double split_confidence = 1e-5;
  /// Ties are broken when the bound drops below this.
  double tie_threshold = 0.05;
  /// Leaves re-evaluate their split decision every this many samples.
  int grace_period = 50;
  int max_depth = 20;
  /// Number of candidate thresholds evaluated per numeric attribute.
  int num_split_points = 10;
  /// Features considered per leaf; <= 0 means all. ARF uses sqrt(d).
  int max_features = 0;
};

/// Streaming decision tree for classification. Numeric attributes are
/// summarised per leaf with class-conditional Gaussian estimators; split
/// gains are evaluated at candidate thresholds between the observed
/// attribute range, and a split is performed when the Hoeffding bound
/// guarantees the best attribute wins (Domingos & Hulten, 2000).
class HoeffdingTree {
 public:
  HoeffdingTree(HoeffdingTreeConfig config, uint64_t seed);

  /// Learns from one example with the given weight (ARF feeds
  /// Poisson(6)-weighted samples).
  void Learn(const double* row, int64_t dim, int label, double weight = 1.0);

  /// Majority-class prediction at the reached leaf.
  int PredictClass(const double* row, int64_t dim) const;
  /// Normalised class distribution at the reached leaf.
  std::vector<double> PredictProba(const double* row, int64_t dim) const;

  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t MemoryBytes() const;
  int64_t samples_seen() const { return samples_seen_; }

  /// Leaf statistics are stored structure-of-arrays: one flat buffer in
  /// plane-major layout [plane][class][feature], where the planes are
  /// weight / mean / m2 / min / max. Per (class, feature) the five
  /// values form the classic Welford Gaussian estimator; the SoA layout
  /// makes the per-sample update contiguous across features, which is
  /// the tree's hot loop under ARF's Poisson-weighted sampling.
  static constexpr int kStatPlanes = 5;

  /// The hot kernel: folds one weighted sample into a leaf's statistics
  /// buffer (layout above, `kStatPlanes * num_classes * dim` doubles).
  /// Public and static so the micro-benchmarks and the differential
  /// kernel-equivalence tests can target it directly. Arithmetic per
  /// (class, feature) cell is bit-identical to the scalar Welford
  /// update; vectorization spans independent features only.
  static void AccumulateStats(double* stats, int64_t dim, int num_classes,
                              int label, const double* row, double weight);

 private:
  enum StatPlane { kWeightP = 0, kMeanP = 1, kM2P = 2, kMinP = 3, kMaxP = 4 };

  /// Snapshot of one (feature, class) Gaussian estimator, gathered from
  /// the SoA planes.
  struct GaussianStat {
    double weight = 0.0;
    double mean = 0.0;
    double m2 = 0.0;  // sum of squared deviations (Welford)
    double min = 0.0;
    double max = 0.0;

    double Variance() const;
    /// Probability mass of the Gaussian below `threshold`.
    double CdfBelow(double threshold) const;
  };

  struct Node {
    bool is_leaf = true;
    int32_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    int depth = 0;
    std::vector<double> class_weights;
    // Flat SoA statistics buffer (see kStatPlanes); allocated lazily on
    // first Learn at the leaf, cleared on split.
    std::vector<double> stats;
    // Features this leaf considers (subspace sampling for ARF).
    std::vector<int64_t> candidate_features;
    double weight_at_last_check = 0.0;
  };

  int32_t NewLeaf(int depth, int64_t dim);
  void LearnAtLeaf(int32_t leaf, const double* row, int64_t dim, int label,
                   double weight);
  void TrySplit(int32_t leaf, int64_t dim);
  /// Number of features covered by a node's stats buffer.
  int64_t StatDim(const Node& node) const;
  GaussianStat StatView(const Node& node, int64_t dim, int64_t feature,
                        int cls) const;
  /// Information gain of splitting `feature` at `threshold` in this leaf.
  double SplitGain(const Node& node, int64_t feature, double threshold) const;
  double Entropy(const std::vector<double>& class_weights) const;
  int32_t Route(const double* row) const;

  HoeffdingTreeConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  int64_t samples_seen_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_MODELS_HOEFFDING_TREE_H_
