#include "core/recommendation.h"

#include <cmath>
#include <limits>

namespace oebench {

namespace {

bool AtLeast(Level level, Level floor) {
  return static_cast<int>(level) >= static_cast<int>(floor);
}

}  // namespace

std::string RecommendAlgorithm(TaskType task, Level drift, Level anomaly,
                               Level missing, bool prefer_trees) {
  const bool high_drift = AtLeast(drift, Level::kMedHigh);
  const bool high_anomaly = AtLeast(anomaly, Level::kMedHigh);
  const bool high_missing = AtLeast(missing, Level::kMedHigh);

  if (task == TaskType::kClassification) {
    // §6.2: "tree models are generally recommended in classification
    // tasks with low anomaly"; among trees GBDT/SEA-GBDT win under high
    // drift, SEA-DT otherwise. With high anomaly the NN family holds up
    // better: naive NN / iCaRL, iCaRL especially under high drift.
    if (!high_anomaly || prefer_trees) {
      if (high_drift) return "SEA-GBDT";
      return "SEA-DT";
    }
    if (high_drift) return "iCaRL";
    return "Naive-NN";
  }
  // Regression. §6.2: trees win with high missing values; NNs win with
  // low missing values (naive NN / SEA-NN), iCaRL also strong when
  // missingness is high.
  if (high_missing) {
    if (prefer_trees) return "SEA-DT";
    return "iCaRL";
  }
  if (prefer_trees) return "Naive-GBDT";
  if (high_drift) return "SEA-NN";
  return "Naive-NN";
}

std::vector<double> DerivedRecommendation::Featurize(TaskType task,
                                                     Level drift,
                                                     Level anomaly,
                                                     Level missing) {
  return {task == TaskType::kClassification ? 1.0 : 0.0,
          static_cast<double>(drift), static_cast<double>(anomaly),
          static_cast<double>(missing)};
}

Result<DerivedRecommendation> DerivedRecommendation::Fit(
    const std::vector<ScenarioOutcome>& outcomes) {
  if (outcomes.size() < 2) {
    return Status::InvalidArgument("need at least 2 scenario outcomes");
  }
  DerivedRecommendation derived;
  // Intern winner labels.
  std::vector<double> y;
  std::vector<std::vector<double>> rows;
  for (const ScenarioOutcome& outcome : outcomes) {
    int label = -1;
    for (size_t i = 0; i < derived.labels_.size(); ++i) {
      if (derived.labels_[i] == outcome.winner) {
        label = static_cast<int>(i);
      }
    }
    if (label < 0) {
      label = static_cast<int>(derived.labels_.size());
      derived.labels_.push_back(outcome.winner);
    }
    y.push_back(label);
    rows.push_back(Featurize(outcome.task, outcome.drift, outcome.anomaly,
                             outcome.missing));
  }
  Matrix x = Matrix::FromRows(rows);

  DecisionTreeConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = static_cast<int>(derived.labels_.size());
  // Shallow, like the paper's hand-drawn Figure 9.
  config.max_depth = 4;
  config.min_samples_leaf = 2;
  config.min_samples_split = 4;
  auto tree = std::make_shared<DecisionTree>(config);
  tree->Fit(x, y);
  int correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (tree->PredictClass(rows[i]) == static_cast<int>(y[i])) ++correct;
  }
  derived.training_accuracy_ =
      static_cast<double>(correct) / static_cast<double>(rows.size());
  derived.tree_ = std::move(tree);
  return derived;
}

std::string DerivedRecommendation::Recommend(TaskType task, Level drift,
                                             Level anomaly,
                                             Level missing) const {
  OE_CHECK(tree_ != nullptr);
  int label = tree_->PredictClass(
      Featurize(task, drift, anomaly, missing));
  return labels_[static_cast<size_t>(label)];
}

std::string BestAlgorithm(const std::vector<RepeatedResult>& results) {
  std::string best = "(none)";
  double best_loss = std::numeric_limits<double>::infinity();
  for (const RepeatedResult& result : results) {
    if (result.not_applicable) continue;
    if (std::isfinite(result.loss_mean) && result.loss_mean < best_loss) {
      best_loss = result.loss_mean;
      best = result.learner;
    }
  }
  return best;
}

}  // namespace oebench
