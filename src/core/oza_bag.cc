#include "core/oza_bag.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

void OzaBagLearner::Begin(const PreparedStream& stream) {
  OE_CHECK(stream.task == TaskType::kClassification)
      << "OzaBag is classification-only";
  num_classes_ = stream.num_classes;
  members_.clear();
}

int OzaBagLearner::PredictRow(const double* row, int64_t dim) const {
  if (members_.empty()) return 0;
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& member : members_) {
    std::vector<double> proba = member->PredictProba(row, dim);
    for (size_t c = 0; c < votes.size(); ++c) votes[c] += proba[c];
  }
  return ArgMax(votes);
}

double OzaBagLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  int64_t wrong = 0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    if (PredictRow(window.features.Row(r), window.features.cols()) !=
        static_cast<int>(window.targets[static_cast<size_t>(r)])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) /
         static_cast<double>(window.features.rows());
}

void OzaBagLearner::TrainWindow(const WindowData& window) {
  if (members_.empty()) {
    HoeffdingTreeConfig tree_config;
    tree_config.num_classes = num_classes_;
    tree_config.leaf_prediction = LeafPrediction::kNaiveBayes;
    // Same per-tree feature subspace as ARF so the B3 ablation isolates
    // the drift machinery, not the subspacing.
    tree_config.max_features = std::max(
        2, static_cast<int>(std::round(
               std::sqrt(static_cast<double>(window.features.cols())))));
    for (int m = 0; m < config_.ensemble_size; ++m) {
      members_.push_back(std::make_unique<HoeffdingTree>(
          tree_config, rng_.NextSeed()));
    }
  }
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    const double* row = window.features.Row(r);
    int label = static_cast<int>(window.targets[static_cast<size_t>(r)]);
    for (auto& member : members_) {
      int weight = rng_.Poisson(1.0);
      if (weight > 0) {
        member->Learn(row, window.features.cols(), label,
                      static_cast<double>(weight));
      }
    }
  }
}

int64_t OzaBagLearner::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& member : members_) bytes += member->MemoryBytes();
  return bytes;
}

}  // namespace oebench
