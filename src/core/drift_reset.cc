#include "core/drift_reset.h"

#include <cmath>

#include "core/evaluator.h"

namespace oebench {

DriftResetLearner::DriftResetLearner(std::string inner_name,
                                     LearnerConfig config,
                                     double ph_lambda)
    : inner_name_(std::move(inner_name)),
      config_(std::move(config)),
      ph_lambda_(ph_lambda),
      detector_(/*delta=*/0.005, ph_lambda, /*min_samples=*/4) {}

void DriftResetLearner::RebuildInner() {
  Result<std::unique_ptr<StreamLearner>> inner =
      MakeLearner(inner_name_, config_, meta_.task, meta_.num_classes);
  OE_CHECK(inner.ok()) << inner.status().ToString();
  inner_ = std::move(*inner);
  inner_->Begin(meta_);
}

void DriftResetLearner::Begin(const PreparedStream& stream) {
  meta_ = PreparedStream();
  meta_.name = stream.name;
  meta_.task = stream.task;
  meta_.num_classes = stream.num_classes;
  detector_.Reset();
  last_test_loss_ = -1.0;
  resets_ = 0;
  RebuildInner();
}

double DriftResetLearner::TestLoss(const WindowData& window) {
  last_test_loss_ = inner_->TestLoss(window);
  return last_test_loss_;
}

void DriftResetLearner::TrainWindow(const WindowData& window) {
  bool reset = false;
  if (last_test_loss_ >= 0.0 && std::isfinite(last_test_loss_)) {
    reset = detector_.Update(last_test_loss_) == DriftSignal::kDrift;
  } else if (last_test_loss_ >= 0.0) {
    reset = true;  // the model blew up (§5.3); start over
  }
  if (reset) {
    ++resets_;
    RebuildInner();
    detector_.Reset();
  }
  inner_->TrainWindow(window);
}

int64_t DriftResetLearner::MemoryBytes() const {
  return inner_ != nullptr ? inner_->MemoryBytes() : 0;
}

}  // namespace oebench
