#include "core/ewc.h"

namespace oebench {

void EwcLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;

  Mlp::GradHooks hooks;
  if (has_anchor_) {
    hooks.param_hook = [this](const std::vector<Matrix>& weights,
                              const std::vector<std::vector<double>>& biases,
                              std::vector<Matrix>* weight_grads,
                              std::vector<std::vector<double>>* bias_grads) {
      const double lambda = config_.ewc_lambda;
      for (size_t l = 0; l < weights.size(); ++l) {
        const auto& w = weights[l].data();
        const auto& aw = anchor_weights_[l].data();
        const auto& fw = fisher_weights_[l].data();
        auto& gw = (*weight_grads)[l].data();
        for (size_t i = 0; i < w.size(); ++i) {
          gw[i] += lambda * fw[i] * (w[i] - aw[i]);
        }
        for (size_t i = 0; i < biases[l].size(); ++i) {
          (*bias_grads)[l][i] += lambda * fisher_biases_[l][i] *
                                 (biases[l][i] - anchor_biases_[l][i]);
        }
      }
    };
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(window.features, window.targets, &rng_,
                       has_anchor_ ? &hooks : nullptr);
  }

  // Snapshot this window's model and Fisher diagonal for the next window.
  model().ComputeSquaredGradients(window.features, window.targets,
                                  &fisher_weights_, &fisher_biases_);
  // Rescale the Fisher diagonal to a mean of 1e-6. The paper observes the
  // EWC penalty is tiny (1e-11..1e-6) and tunes lambda in {1e3, 1e4,
  // 1e5}; pinning the Fisher scale reproduces that regime independent of
  // the architecture and keeps SGD stable (lr * lambda * F << 1), while
  // still letting oversized lambdas "lead to loss explosions" as §6.1
  // reports.
  double fisher_sum = 0.0;
  int64_t fisher_count = 0;
  for (const Matrix& m : fisher_weights_) {
    for (double v : m.data()) fisher_sum += v;
    fisher_count += m.size();
  }
  for (const auto& b : fisher_biases_) {
    for (double v : b) fisher_sum += v;
    fisher_count += static_cast<int64_t>(b.size());
  }
  if (fisher_sum > 0.0 && fisher_count > 0) {
    double scale =
        1e-6 * static_cast<double>(fisher_count) / fisher_sum;
    for (Matrix& m : fisher_weights_) {
      for (double& v : m.data()) v *= scale;
    }
    for (auto& b : fisher_biases_) {
      for (double& v : b) v *= scale;
    }
  }
  anchor_weights_ = model().weights();
  anchor_biases_ = model().biases();
  has_anchor_ = true;
}

int64_t EwcLearner::MemoryBytes() const {
  int64_t bytes = NnLearnerBase::MemoryBytes();
  for (const Matrix& m : anchor_weights_) {
    bytes += m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const Matrix& m : fisher_weights_) {
    bytes += m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const auto& b : anchor_biases_) {
    bytes += static_cast<int64_t>(b.size() * sizeof(double));
  }
  for (const auto& b : fisher_biases_) {
    bytes += static_cast<int64_t>(b.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace oebench
