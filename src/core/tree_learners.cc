#include "core/tree_learners.h"

#include <istream>
#include <ostream>
#include <string>

namespace oebench {

void NaiveTreeLearner::Begin(const PreparedStream& stream) {
  task_ = stream.task;
  num_classes_ = stream.num_classes;
  tree_.reset();
}

double NaiveTreeLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  if (!tree_.has_value() || !tree_->fitted()) return 1.0;
  double total = 0.0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    double target = window.targets[static_cast<size_t>(r)];
    if (task_ == TaskType::kClassification) {
      total += tree_->PredictClass(window.features.Row(r)) ==
                       static_cast<int>(target)
                   ? 0.0
                   : 1.0;
    } else {
      double diff = tree_->PredictValue(window.features.Row(r)) - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(window.features.rows());
}

void NaiveTreeLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  DecisionTreeConfig tree_config;
  tree_config.task = task_;
  tree_config.num_classes = num_classes_;
  tree_config.max_depth = config_.tree_max_depth;
  tree_.emplace(tree_config);
  tree_->Fit(window.features, window.targets);
}

int64_t NaiveTreeLearner::MemoryBytes() const {
  return tree_.has_value() ? tree_->MemoryBytes() : 0;
}

Status NaiveTreeLearner::SaveState(std::ostream* out) const {
  *out << "tree-state v1\n";
  const bool have = tree_.has_value() && tree_->fitted();
  *out << (have ? 1 : 0) << '\n';
  if (have) tree_->SerializeTo(out);
  if (!*out) return Status::IoError("tree-state write failed");
  return Status::OK();
}

Status NaiveTreeLearner::LoadState(std::istream* in) {
  std::string magic;
  std::string version;
  int have = 0;
  if (!(*in >> magic >> version >> have) || magic != "tree-state" ||
      version != "v1") {
    return Status::IoError("bad tree-state header");
  }
  if (have == 0) {
    tree_.reset();
    return Status::OK();
  }
  OE_ASSIGN_OR_RETURN(DecisionTree restored,
                      DecisionTree::DeserializeFrom(in));
  tree_ = std::move(restored);
  return Status::OK();
}

void NaiveGbdtLearner::Begin(const PreparedStream& stream) {
  task_ = stream.task;
  num_classes_ = stream.num_classes;
  model_.reset();
}

double NaiveGbdtLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  if (!model_.has_value() || !model_->fitted()) return 1.0;
  double total = 0.0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    double target = window.targets[static_cast<size_t>(r)];
    if (task_ == TaskType::kClassification) {
      total += model_->PredictClass(window.features.Row(r)) ==
                       static_cast<int>(target)
                   ? 0.0
                   : 1.0;
    } else {
      double diff = model_->PredictValue(window.features.Row(r)) - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(window.features.rows());
}

void NaiveGbdtLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  GbdtConfig gbdt_config;
  gbdt_config.task = task_;
  gbdt_config.num_classes = num_classes_;
  gbdt_config.num_rounds = config_.ensemble_size;
  gbdt_config.max_depth = config_.gbdt_max_depth;
  model_.emplace(gbdt_config);
  model_->Fit(window.features, window.targets);
}

int64_t NaiveGbdtLearner::MemoryBytes() const {
  return model_.has_value() ? model_->MemoryBytes() : 0;
}

Status NaiveGbdtLearner::SaveState(std::ostream* out) const {
  *out << "gbdt-state v1\n";
  const bool have = model_.has_value() && model_->fitted();
  *out << (have ? 1 : 0) << '\n';
  if (have) model_->SerializeTo(out);
  if (!*out) return Status::IoError("gbdt-state write failed");
  return Status::OK();
}

Status NaiveGbdtLearner::LoadState(std::istream* in) {
  std::string magic;
  std::string version;
  int have = 0;
  if (!(*in >> magic >> version >> have) || magic != "gbdt-state" ||
      version != "v1") {
    return Status::IoError("bad gbdt-state header");
  }
  if (have == 0) {
    model_.reset();
    return Status::OK();
  }
  OE_ASSIGN_OR_RETURN(Gbdt restored, Gbdt::DeserializeFrom(in));
  model_ = std::move(restored);
  return Status::OK();
}

}  // namespace oebench
