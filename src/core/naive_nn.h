#ifndef OEBENCH_CORE_NAIVE_NN_H_
#define OEBENCH_CORE_NAIVE_NN_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "common/random.h"
#include "core/learner.h"
#include "models/mlp.h"

namespace oebench {

/// Shared plumbing of the NN-family learners (Naive-NN, EWC, LwF, iCaRL):
/// owns the MLP, translates windows into task losses, reports memory.
class NnLearnerBase : public StreamLearner {
 public:
  explicit NnLearnerBase(LearnerConfig config)
      : config_(std::move(config)), rng_(config_.seed) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  int64_t MemoryBytes() const override;

  /// Test-only access to the underlying network.
  const Mlp& ModelForTest() const { return *model_; }
  std::vector<Matrix> ParametersForTest() const {
    return model_->weights();
  }

 protected:
  /// Error rate / MSE of `model` on a window.
  double WindowLoss(const Mlp& model, const WindowData& window) const;
  Mlp& model() { return *model_; }
  const Mlp& model() const { return *model_; }
  bool has_model() const { return model_.has_value(); }

  /// Snapshot helpers for subclasses whose complete state is the MLP
  /// plus the training RNG ("nn-state v1" payload). Subclasses with
  /// extra state (Fisher matrices, exemplar buffers, frozen teachers)
  /// must not expose these through SupportsSnapshot.
  Status SaveNnState(std::ostream* out) const;
  Status LoadNnState(std::istream* in);

  LearnerConfig config_;
  TaskType task_ = TaskType::kRegression;
  int num_classes_ = 2;
  Rng rng_;

 private:
  std::optional<Mlp> model_;
};

/// The paper's "Naive-NN": plain SGD on each window, no continual-learning
/// machinery.
class NaiveNnLearner : public NnLearnerBase {
 public:
  explicit NaiveNnLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "Naive-NN"; }

  /// Naive-NN's full state is the MLP + rng_, and TrainWindow is a plain
  /// epoch loop over TrainEpoch with the persistent rng_ — so epochs=k
  /// is exactly k successive epochs=1 calls, enabling epoch-grid forking.
  bool SupportsSnapshot() const override { return true; }
  bool SupportsEpochFork() const override { return true; }
  Status SaveState(std::ostream* out) const override {
    return SaveNnState(out);
  }
  Status LoadState(std::istream* in) override { return LoadNnState(in); }
};

}  // namespace oebench

#endif  // OEBENCH_CORE_NAIVE_NN_H_
