#include "core/arf.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

void ArfLearner::Begin(const PreparedStream& stream) {
  OE_CHECK(stream.task == TaskType::kClassification)
      << "ARF is classification-only (N/A for regression in the paper)";
  num_classes_ = stream.num_classes;
  members_.clear();
  members_.resize(static_cast<size_t>(config_.ensemble_size));
}

std::unique_ptr<HoeffdingTree> ArfLearner::NewTree(int64_t dim) {
  HoeffdingTreeConfig tree_config;
  tree_config.num_classes = num_classes_;
  tree_config.leaf_prediction = LeafPrediction::kNaiveBayes;
  tree_config.max_features = std::max(
      2, static_cast<int>(std::round(std::sqrt(static_cast<double>(dim)))));
  return std::make_unique<HoeffdingTree>(tree_config, rng_.NextSeed());
}

int ArfLearner::PredictRow(const double* row, int64_t dim) const {
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  bool any = false;
  for (const Member& member : members_) {
    if (member.tree == nullptr) continue;
    std::vector<double> proba = member.tree->PredictProba(row, dim);
    for (size_t c = 0; c < votes.size(); ++c) votes[c] += proba[c];
    any = true;
  }
  if (!any) return 0;
  return ArgMax(votes);
}

double ArfLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  int64_t wrong = 0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    if (PredictRow(window.features.Row(r), window.features.cols()) !=
        static_cast<int>(window.targets[static_cast<size_t>(r)])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) /
         static_cast<double>(window.features.rows());
}

void ArfLearner::TrainWindow(const WindowData& window) {
  const int64_t dim = window.features.cols();
  for (Member& member : members_) {
    if (member.tree == nullptr) member.tree = NewTree(dim);
  }
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    const double* row = window.features.Row(r);
    int label = static_cast<int>(window.targets[static_cast<size_t>(r)]);
    for (Member& member : members_) {
      // Test-then-train per member for the drift detector.
      int pred = member.tree->PredictClass(row, dim);
      DriftSignal signal =
          member.detector.Update(pred == label ? 0.0 : 1.0);
      if (signal == DriftSignal::kWarning && member.background == nullptr) {
        member.background = NewTree(dim);
      } else if (signal == DriftSignal::kDrift) {
        // Promote the background tree (or restart cold).
        member.tree = member.background != nullptr
                          ? std::move(member.background)
                          : NewTree(dim);
        member.background = nullptr;
        member.detector.Reset();
      }
      int weight = rng_.Poisson(6.0);
      if (weight > 0) {
        member.tree->Learn(row, dim, label, static_cast<double>(weight));
        if (member.background != nullptr) {
          member.background->Learn(row, dim, label,
                                   static_cast<double>(weight));
        }
      }
    }
  }
}

int64_t ArfLearner::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Member& member : members_) {
    if (member.tree != nullptr) bytes += member.tree->MemoryBytes();
    if (member.background != nullptr) {
      bytes += member.background->MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace oebench
