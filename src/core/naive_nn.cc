#include "core/naive_nn.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "models/serialization.h"

namespace oebench {

void NnLearnerBase::Begin(const PreparedStream& stream) {
  task_ = stream.task;
  num_classes_ = stream.num_classes;
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = config_.hidden_sizes;
  mlp_config.task = task_;
  mlp_config.num_classes = num_classes_;
  mlp_config.learning_rate = config_.learning_rate;
  mlp_config.batch_size = config_.batch_size;
  model_.emplace(mlp_config, config_.seed);
}

double NnLearnerBase::WindowLoss(const Mlp& model,
                                 const WindowData& window) const {
  if (window.features.rows() == 0) return 0.0;
  if (!model.initialized()) return 1.0;
  double total = 0.0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    std::vector<double> row = window.features.RowVector(r);
    double target = window.targets[static_cast<size_t>(r)];
    if (task_ == TaskType::kClassification) {
      total += model.PredictClass(row) == static_cast<int>(target) ? 0.0
                                                                   : 1.0;
    } else {
      double diff = model.PredictValue(row) - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(window.features.rows());
}

double NnLearnerBase::TestLoss(const WindowData& window) {
  return WindowLoss(*model_, window);
}

Status NnLearnerBase::SaveNnState(std::ostream* out) const {
  if (!model_.has_value()) {
    return Status::FailedPrecondition("SaveState before Begin");
  }
  *out << "nn-state v1\n";
  // The MLP lazily initialises on the first training window; a snapshot
  // taken before that carries only the RNG.
  if (model_->initialized()) {
    *out << "init\n";
    SerializeMlp(*model_, out);
  } else {
    *out << "uninit\n";
  }
  rng_.SaveState(out);
  if (!*out) return Status::IoError("nn-state write failed");
  return Status::OK();
}

Status NnLearnerBase::LoadNnState(std::istream* in) {
  if (!model_.has_value()) {
    return Status::FailedPrecondition("LoadState before Begin");
  }
  std::string magic;
  std::string version;
  std::string init_tag;
  if (!(*in >> magic >> version >> init_tag) || magic != "nn-state" ||
      version != "v1") {
    return Status::IoError("bad nn-state header");
  }
  if (init_tag == "init") {
    OE_ASSIGN_OR_RETURN(Mlp restored, DeserializeMlp(in));
    model_ = std::move(restored);
  } else if (init_tag != "uninit") {
    return Status::IoError("bad nn-state init tag");
  }
  if (!rng_.LoadState(in)) return Status::IoError("bad nn-state rng");
  return Status::OK();
}

int64_t NnLearnerBase::MemoryBytes() const {
  return model_.has_value() && model_->initialized() ? model_->MemoryBytes()
                                                     : 0;
}

void NaiveNnLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(window.features, window.targets, &rng_);
  }
}

}  // namespace oebench
