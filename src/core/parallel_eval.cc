#include "core/parallel_eval.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/watchdog.h"
#include "core/chaos.h"
#include "linalg/vector_ops.h"
#include "sweep/reuse.h"

namespace oebench {

namespace {

/// FNV-1a 64-bit, folding in a length-prefixed string so that
/// ("ab","c") and ("a","bc") hash differently.
uint64_t FnvMix(uint64_t hash, const std::string& s) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  hash = (hash ^ s.size()) * kPrime;
  for (unsigned char c : s) {
    hash = (hash ^ c) * kPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ ((v >> (8 * byte)) & 0xff)) * kPrime;
  }
  return hash;
}

/// A pool sized for the sweep: `threads <= 1` degrades to inline
/// execution (the serial path), larger counts get that many workers.
int PoolWorkers(int threads) { return threads <= 1 ? 0 : threads; }

bool TaskSelected(const SweepConfig& config, const std::string& dataset,
                  const std::string& learner, int repeat) {
  if (!config.task_filter) return true;
  return config.task_filter(TaskIdentity{dataset, learner, repeat});
}

/// Latching stop poll: once config.stop_requested returns true, every
/// later call reports stopped without consulting it again.
class StopLatch {
 public:
  explicit StopLatch(const SweepConfig& config) : config_(config) {}
  bool Stopped() {
    if (!stopped_ && config_.stop_requested && config_.stop_requested()) {
      stopped_ = true;
    }
    return stopped_;
  }

 private:
  const SweepConfig& config_;
  bool stopped_ = false;
};

/// Outcome of one task's failure domain: either an EvalResult or a
/// structured TaskFailure — never an escaped exception.
struct TaskTry {
  bool ok = false;
  EvalResult result;
  TaskFailure failure;
};

/// Prefixes a failed dependency's status with the dataset name, so the
/// caller-facing message names the quarantined row.
Status PrefixStatus(const std::string& name, const Status& status) {
  return Status(status.code(), name + ": " + status.message());
}

/// Runs one task inside its failure domain: chaos injection, the
/// prequential run, non-finite explosion detection and the transient
/// retry loop all happen here, on the worker thread, and every failure
/// mode is folded into a TaskTry. The on_task_done / on_task_failed
/// hook fires before returning (still on the worker thread).
TaskTry ExecuteTask(const SweepConfig& config, const TaskIdentity& id,
                    const LearnerConfig& task_config,
                    const PreparedStream& stream, TaskWatchdog* watchdog,
                    double queued_seconds) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const double start_seconds = metrics->NowSeconds();
  // `queued_seconds` was stamped on the submitting thread, so the gap
  // to now is the time this task sat in the pool queue.
  metrics->GetHistogram("sweep.queue_wait_seconds")
      ->Record(std::max(0.0, start_seconds - queued_seconds));
  Gauge* inflight = metrics->GetGauge("sweep.tasks_inflight");
  inflight->Add(1.0);
  metrics->GetGauge("sweep.tasks_inflight_peak")->SetMax(inflight->value());

  TaskTry out;
  out.failure.task = id;
  const int attempts = std::max(1, config.task_attempts);
  const auto start = std::chrono::steady_clock::now();
  TaskWatchdog::Scope watch;
  if (watchdog != nullptr) {
    watch = watchdog->Watch(StrFormat("%s|%s|%d", id.dataset.c_str(),
                                      id.learner.c_str(), id.repeat));
  }
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    try {
      if (config.chaos != nullptr) config.chaos->OnTaskStart(id);
      Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
          id.learner, task_config, stream.task, stream.num_classes);
      if (!learner.ok()) {
        // The submitting thread's probe succeeded, so this is a learner
        // bug — but it still costs one cell, not the shard.
        out.failure.kind = TaskFailureKind::kException;
        out.failure.message = learner.status().ToString();
        break;
      }
      EvalResult result = RunPrequential(learner->get(), stream);
      if (config.chaos != nullptr) config.chaos->OnTaskResult(id, &result);
      if (!std::isfinite(result.mean_loss) ||
          !std::isfinite(result.faded_loss)) {
        // Deterministic for this (seed, data): retrying would explode
        // identically, so record it immediately.
        out.failure.kind = TaskFailureKind::kNonFinite;
        out.failure.message = StrFormat(
            "non-finite metric explosion: mean_loss=%g faded_loss=%g",
            result.mean_loss, result.faded_loss);
        break;
      }
      out.ok = true;
      out.result = std::move(result);
      break;
    } catch (const TransientTaskError& e) {
      if (attempt < attempts) {
        // Volatile: real transient faults (unlike seeded chaos) need
        // not strike identically from run to run.
        metrics->GetVolatileCounter("sweep.transient_retries")->Increment();
        continue;
      }
      out.failure.kind = TaskFailureKind::kTransient;
      out.failure.message =
          StrFormat("%s (persisted across %d attempt(s))", e.what(), attempts);
    } catch (const std::exception& e) {
      out.failure.kind = TaskFailureKind::kException;
      out.failure.message = e.what();
    } catch (...) {
      out.failure.kind = TaskFailureKind::kException;
      out.failure.message = "unknown exception";
    }
    break;
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (out.ok) {
    if (config.on_task_done) config.on_task_done(id, out.result);
  } else {
    out.failure.elapsed_seconds = elapsed;
    if (config.on_task_failed) config.on_task_failed(out.failure);
  }
  inflight->Add(-1.0);
  metrics->GetCounter("sweep.tasks_executed")->Increment();
  if (!out.ok) {
    metrics->GetCounter("sweep.tasks_failed")->Increment();
    metrics
        ->GetCounter(std::string("sweep.failures.") +
                     TaskFailureKindName(out.failure.kind))
        ->Increment();
  }
  metrics->GetHistogram("sweep.task_seconds")->Record(elapsed);
  metrics->RecordSpan(StrFormat("task:%s|%s|%d", id.dataset.c_str(),
                                id.learner.c_str(), id.repeat),
                      start_seconds, elapsed);
  return out;
}

/// The sweep-scoped watchdog: alive only while the sweep runs, null
/// when disabled.
std::unique_ptr<TaskWatchdog> MakeWatchdog(const SweepConfig& config) {
  if (config.watchdog_limit_ms <= 0) return nullptr;
  TaskWatchdog::Report report;
  if (config.on_overlong_task) {
    auto hook = config.on_overlong_task;
    report = [hook](const std::string& label, double elapsed) {
      // Labels are "dataset|learner|repeat"; decode for the hook.
      std::vector<std::string> parts = Split(label, '|');
      TaskIdentity id;
      if (parts.size() == 3) {
        id.dataset = parts[0];
        id.learner = parts[1];
        int64_t repeat = 0;
        if (ParseInt64(parts[2], &repeat)) {
          id.repeat = static_cast<int>(repeat);
        }
      } else {
        id.dataset = label;
      }
      hook(id, elapsed);
    };
  }
  return std::make_unique<TaskWatchdog>(config.watchdog_limit_ms,
                                        std::move(report));
}

/// RunRepeated-style aggregation over the runs a cell actually
/// executed (all repeats unless a task_filter kept some out).
void AggregateCell(SweepCell* cell) {
  if (cell->runs.empty()) return;
  std::vector<double> losses;
  for (const EvalResult& run : cell->runs) {
    losses.push_back(run.mean_loss);
    cell->repeated.peak_memory_bytes =
        std::max(cell->repeated.peak_memory_bytes, run.peak_memory_bytes);
  }
  cell->repeated.loss_mean = Mean(losses);
  cell->repeated.loss_stddev = StdDev(losses);
  cell->repeated.throughput = AggregateThroughput(cell->runs);
}

}  // namespace

const char* TaskFailureKindName(TaskFailureKind kind) {
  switch (kind) {
    case TaskFailureKind::kException:
      return "exception";
    case TaskFailureKind::kNonFinite:
      return "non-finite";
    case TaskFailureKind::kTransient:
      return "transient";
    case TaskFailureKind::kPrepare:
      return "prepare";
  }
  return "exception";
}

bool ParseTaskFailureKind(std::string_view text, TaskFailureKind* kind) {
  if (text == "exception") {
    *kind = TaskFailureKind::kException;
  } else if (text == "non-finite") {
    *kind = TaskFailureKind::kNonFinite;
  } else if (text == "transient") {
    *kind = TaskFailureKind::kTransient;
  } else if (text == "prepare") {
    *kind = TaskFailureKind::kPrepare;
  } else {
    return false;
  }
  return true;
}

uint64_t TaskSeed(uint64_t base_seed, const std::string& dataset,
                  const std::string& learner, int repeat) {
  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  hash = FnvMix(hash, base_seed);
  hash = FnvMix(hash, dataset);
  hash = FnvMix(hash, learner);
  hash = FnvMix(hash, static_cast<uint64_t>(repeat));
  // Push the hash through Rng child-seed derivation so the final seed
  // is well mixed even when identities differ in a single bit.
  Rng rng(hash);
  return rng.NextSeed();
}

SweepOutcome ParallelSweep(const std::vector<PreparedStream>& streams,
                           const std::vector<std::string>& learners,
                           const SweepConfig& config) {
  OE_CHECK(config.repeats > 0);
  SweepOutcome outcome;
  std::unique_ptr<TaskWatchdog> watchdog = MakeWatchdog(config);
  ThreadPool pool(PoolWorkers(config.threads));
  MetricsRegistry::Global()->GetGauge("pool.workers")->SetMax(
      static_cast<double>(PoolWorkers(config.threads)));
  StopLatch stop(config);

  // One future per executed (stream, learner, repeat), canonical order.
  // A pair that cannot be built (N/A, e.g. ARF on regression) is
  // detected here on the submitting thread and never reaches the pool.
  struct PairTasks {
    bool applicable = false;
    std::vector<std::future<TaskTry>> runs;
  };
  std::vector<PairTasks> pairs(streams.size() * learners.size());
  for (size_t d = 0; d < streams.size(); ++d) {
    const PreparedStream& stream = streams[d];
    for (size_t l = 0; l < learners.size(); ++l) {
      PairTasks& pair = pairs[d * learners.size() + l];
      Result<std::unique_ptr<StreamLearner>> probe = MakeLearner(
          learners[l], config.base_config, stream.task, stream.num_classes);
      if (!probe.ok()) {
        ++outcome.pairs_skipped;
        MetricsRegistry::Global()->GetCounter("sweep.pairs_skipped")
            ->Increment();
        continue;
      }
      pair.applicable = true;
      for (int rep = 0; rep < config.repeats; ++rep) {
        if (stop.Stopped()) break;
        if (!TaskSelected(config, stream.name, learners[l], rep)) continue;
        LearnerConfig task_config = config.base_config;
        task_config.seed = TaskSeed(config.base_config.seed, stream.name,
                                    learners[l], rep);
        TaskWatchdog* dog = watchdog.get();
        const double queued = MetricsRegistry::Global()->NowSeconds();
        pair.runs.push_back(pool.Submit([&stream, &learners, &config, l,
                                         rep, task_config, dog, queued] {
          return ExecuteTask(config,
                             TaskIdentity{stream.name, learners[l], rep},
                             task_config, stream, dog, queued);
        }));
        ++outcome.tasks_run;
      }
    }
  }

  // Reassemble in canonical order. Aggregation mirrors RunRepeated so
  // serial and parallel sweeps report the same statistics; failed
  // tasks quarantine their cell and land in outcome.failures.
  outcome.streams_prepared = static_cast<int64_t>(streams.size());
  MetricsRegistry::Global()->GetCounter("sweep.streams_prepared")
      ->Add(outcome.streams_prepared);
  outcome.rows.resize(streams.size());
  for (size_t d = 0; d < streams.size(); ++d) {
    SweepRow& row = outcome.rows[d];
    row.dataset = streams[d].name;
    row.cells.resize(learners.size());
    for (size_t l = 0; l < learners.size(); ++l) {
      PairTasks& pair = pairs[d * learners.size() + l];
      SweepCell& cell = row.cells[l];
      cell.repeated.learner = learners[l];
      cell.repeated.dataset = streams[d].name;
      if (!pair.applicable) {
        cell.repeated.not_applicable = true;
        continue;
      }
      for (std::future<TaskTry>& future : pair.runs) {
        TaskTry attempt = future.get();
        if (attempt.ok) {
          cell.runs.push_back(std::move(attempt.result));
        } else {
          ++cell.failed_runs;
          ++outcome.tasks_failed;
          outcome.failures.push_back(std::move(attempt.failure));
        }
      }
      AggregateCell(&cell);
    }
  }
  return outcome;
}

std::vector<Result<PreparedStream>> ParallelPrepare(
    const std::vector<StreamSpec>& specs, const PipelineOptions& options,
    int threads, const std::vector<std::string>& names) {
  OE_CHECK(names.empty() || names.size() == specs.size());
  ThreadPool pool(PoolWorkers(threads));
  std::vector<std::future<Result<PreparedStream>>> futures;
  futures.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const StreamSpec& spec = specs[i];
    futures.push_back(
        pool.Submit([&spec, &options]() -> Result<PreparedStream> {
          try {
            Result<GeneratedStream> stream = GenerateStream(spec);
            if (!stream.ok()) return PrefixStatus(spec.name, stream.status());
            Result<PreparedStream> prepared = PrepareStream(*stream, options);
            if (!prepared.ok()) {
              return PrefixStatus(spec.name, prepared.status());
            }
            return std::move(*prepared);
          } catch (const std::exception& e) {
            return Status::Internal(spec.name + ": " + std::string(e.what()));
          }
        }));
  }
  std::vector<Result<PreparedStream>> streams;
  streams.reserve(specs.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    streams.push_back(futures[i].get());
    if (streams.back().ok() && !names.empty()) {
      streams.back()->name = names[i];
    }
  }
  return streams;
}

SweepOutcome ParallelSweepEntries(const std::vector<CorpusEntry>& entries,
                                  const std::vector<std::string>& learners,
                                  const SweepConfig& config) {
  OE_CHECK(config.repeats > 0);
  SweepOutcome outcome;
  std::unique_ptr<TaskWatchdog> watchdog = MakeWatchdog(config);
  ThreadPool pool(PoolWorkers(config.threads));
  MetricsRegistry::Global()->GetGauge("pool.workers")->SetMax(
      static_cast<double>(PoolWorkers(config.threads)));

  // Per-entry plan, fixed before anything touches the pool. N/A pairs
  // are probed from the spec's task/num_classes — the pipeline copies
  // both into the prepared stream verbatim, so this is the same probe
  // the stream-based sweep runs, just without materialising the data.
  struct Plan {
    StreamSpec spec;
    std::vector<char> applicable;                       // per learner
    std::vector<std::vector<char>> selected;            // [learner][repeat]
    bool needs_stream = false;
    bool prepare_submitted = false;
    /// Set when generation/preprocessing failed: the whole row is
    /// quarantined — one TaskFailure{kPrepare} per selected task.
    Status prepare_error;
    /// Exact content key of the entry's stream (sweep::SpecCacheKey).
    /// Entries with equal keys produce identical streams, so only the
    /// first occurrence prepares; later ones take the retained result.
    std::string stream_key;
    /// Index of the earlier plan with the same stream_key, or -1 for
    /// the first (preparing) occurrence.
    std::ptrdiff_t dup_of = -1;
    std::future<Result<std::shared_ptr<const PreparedStream>>> prepared;
    std::vector<std::vector<std::future<TaskTry>>> futures;  // [l][run]
  };
  std::vector<Plan> plans(entries.size());
  for (size_t d = 0; d < entries.size(); ++d) {
    Plan& plan = plans[d];
    plan.spec = SpecFromEntry(entries[d], config.scale);
    plan.applicable.assign(learners.size(), 0);
    plan.selected.resize(learners.size());
    plan.futures.resize(learners.size());
    for (size_t l = 0; l < learners.size(); ++l) {
      Result<std::unique_ptr<StreamLearner>> probe =
          MakeLearner(learners[l], config.base_config, plan.spec.task,
                      plan.spec.num_classes);
      if (!probe.ok()) {
        ++outcome.pairs_skipped;
        MetricsRegistry::Global()->GetCounter("sweep.pairs_skipped")
            ->Increment();
        continue;
      }
      plan.applicable[l] = 1;
      plan.selected[l].assign(static_cast<size_t>(config.repeats), 0);
      for (int rep = 0; rep < config.repeats; ++rep) {
        if (!TaskSelected(config, plan.spec.name, learners[l], rep)) continue;
        plan.selected[l][static_cast<size_t>(rep)] = 1;
        plan.needs_stream = true;
      }
    }
  }

  // Content-keyed dedup across the manifest: a dataset referenced by
  // several entries (interleaved manifests, direct callers) is
  // prepared once, and the prepared result is retained until the last
  // referencing entry has submitted its tasks — it is NOT freed when
  // the first entry's tasks drain. `last_ref` marks that point.
  std::map<std::string, size_t> first_seen;
  std::map<std::string, size_t> last_ref;
  for (size_t d = 0; d < plans.size(); ++d) {
    Plan& plan = plans[d];
    if (!plan.needs_stream) continue;
    plan.stream_key = sweep::SpecCacheKey(plan.spec);
    auto seen = first_seen.find(plan.stream_key);
    if (seen == first_seen.end()) {
      first_seen.emplace(plan.stream_key, d);
    } else {
      plan.dup_of = static_cast<std::ptrdiff_t>(seen->second);
    }
    last_ref[plan.stream_key] = d;
  }

  if (config.reuse.prepare) {
    sweep::PreparedStreamCache::Global()->set_byte_budget(
        config.reuse.cache_bytes);
  }

  // Pipelined prepare + evaluate. Preparation runs a small lookahead
  // window ahead of the submission cursor instead of materialising the
  // whole corpus first; each eval task co-owns its stream through a
  // shared_ptr, so the buffers are freed the moment the last task's
  // closure is destroyed — the sweep's working set is the streams in
  // flight, not all 55. Determinism is untouched: stream content is a
  // function of the spec seed, task randomness of TaskSeed.
  const int lookahead = std::max(1, PoolWorkers(config.threads));
  size_t next_prepare = 0;
  int outstanding = 0;
  StopLatch stop(config);
  auto pump_prepares = [&] {
    while (next_prepare < plans.size() && outstanding < lookahead &&
           !stop.Stopped()) {
      Plan& plan = plans[next_prepare];
      // Duplicate entries neither prepare nor occupy a lookahead slot;
      // they consume the retained first-occurrence result below.
      if (plan.needs_stream && plan.dup_of < 0) {
        const StreamSpec& spec = plan.spec;
        const PipelineOptions& options = config.pipeline;
        const bool use_cache = config.reuse.prepare;
        plan.prepared = pool.Submit(
            [&spec, &options,
             use_cache]() -> Result<std::shared_ptr<const PreparedStream>> {
              try {
                if (use_cache) {
                  Result<std::shared_ptr<const PreparedStream>> cached =
                      sweep::PreparedStreamCache::Global()->GetOrPrepare(
                          spec, options);
                  if (!cached.ok()) {
                    return PrefixStatus(spec.name, cached.status());
                  }
                  return cached;
                }
                Result<GeneratedStream> stream = GenerateStream(spec);
                if (!stream.ok()) {
                  return PrefixStatus(spec.name, stream.status());
                }
                Result<PreparedStream> prepared =
                    PrepareStream(*stream, options);
                if (!prepared.ok()) {
                  return PrefixStatus(spec.name, prepared.status());
                }
                return std::shared_ptr<const PreparedStream>(
                    std::make_shared<PreparedStream>(std::move(*prepared)));
              } catch (const std::exception& e) {
                return Status::Internal(spec.name + ": " +
                                        std::string(e.what()));
              }
            });
        plan.prepare_submitted = true;
        ++outstanding;
      }
      ++next_prepare;
    }
  };
  pump_prepares();
  // First-occurrence results outlive their own entry when a later
  // entry re-references the stream; erased at the last reference.
  // Errors are retained too, so duplicate rows quarantine identically.
  std::map<std::string, Result<std::shared_ptr<const PreparedStream>>>
      retained;
  for (size_t d = 0; d < plans.size(); ++d) {
    Plan& plan = plans[d];
    if (!plan.needs_stream) continue;
    std::optional<Result<std::shared_ptr<const PreparedStream>>> resolved;
    if (plan.dup_of >= 0) {
      auto it = retained.find(plan.stream_key);
      // Absent only when a stop kept the first occurrence from being
      // submitted/resolved; nothing was submitted for this entry then.
      if (it == retained.end()) continue;
      resolved = it->second;
      // The elided re-prepare counts as a cache hit whether or not the
      // cross-sweep cache is on: the reuse came from retention.
      MetricsRegistry::Global()->GetCounter("reuse.prepare_hits")
          ->Increment();
    } else {
      // A stop can land between this plan's selection and its prepare;
      // nothing was submitted for it (or anything after it) then.
      if (!plan.prepare_submitted) continue;
      resolved = plan.prepared.get();
      --outstanding;
      pump_prepares();
      if (last_ref[plan.stream_key] > d) {
        retained.emplace(plan.stream_key, *resolved);
      }
    }
    if (last_ref[plan.stream_key] == d) retained.erase(plan.stream_key);
    Result<std::shared_ptr<const PreparedStream>>& stream_or = *resolved;
    if (!stream_or.ok()) {
      // The dataset itself is the failure domain here: quarantine the
      // whole row. Every selected task records a TaskFailure{kPrepare}
      // (reassembled below) and the failure hook fires for each, so a
      // shard's log names each lost task, not just the dataset.
      plan.prepare_error = stream_or.status();
      if (config.on_task_failed) {
        for (size_t l = 0; l < learners.size(); ++l) {
          if (!plan.applicable[l]) continue;
          for (int rep = 0; rep < config.repeats; ++rep) {
            if (!plan.selected[l][static_cast<size_t>(rep)]) continue;
            TaskFailure failure;
            failure.task = TaskIdentity{plan.spec.name, learners[l], rep};
            failure.kind = TaskFailureKind::kPrepare;
            failure.message = plan.prepare_error.ToString();
            config.on_task_failed(failure);
          }
        }
      }
      continue;
    }
    std::shared_ptr<const PreparedStream> stream = std::move(*stream_or);
    if (plan.dup_of < 0) {
      // Distinct streams only: a duplicate entry re-uses buffers, it
      // does not prepare anything.
      ++outcome.streams_prepared;
      MetricsRegistry::Global()->GetCounter("sweep.streams_prepared")
          ->Increment();
    }
    for (size_t l = 0; l < learners.size(); ++l) {
      if (!plan.applicable[l]) continue;
      for (int rep = 0; rep < config.repeats; ++rep) {
        if (stop.Stopped()) break;
        if (!plan.selected[l][static_cast<size_t>(rep)]) continue;
        LearnerConfig task_config = config.base_config;
        task_config.seed = TaskSeed(config.base_config.seed,
                                    plan.spec.name, learners[l], rep);
        TaskWatchdog* dog = watchdog.get();
        const double queued = MetricsRegistry::Global()->NowSeconds();
        plan.futures[l].push_back(
            pool.Submit([stream, &learners, &config, l, rep, task_config,
                         dog, queued] {
              return ExecuteTask(
                  config, TaskIdentity{stream->name, learners[l], rep},
                  task_config, *stream, dog, queued);
            }));
        ++outcome.tasks_run;
      }
    }
    // Our reference dies here; the last eval task frees the stream.
  }

  // Canonical-order reassembly, identical to the stream-based sweep.
  outcome.rows.resize(entries.size());
  for (size_t d = 0; d < entries.size(); ++d) {
    Plan& plan = plans[d];
    SweepRow& row = outcome.rows[d];
    row.dataset = plan.spec.name;
    row.cells.resize(learners.size());
    for (size_t l = 0; l < learners.size(); ++l) {
      SweepCell& cell = row.cells[l];
      cell.repeated.learner = learners[l];
      cell.repeated.dataset = plan.spec.name;
      if (!plan.applicable[l]) {
        cell.repeated.not_applicable = true;
        continue;
      }
      if (!plan.prepare_error.ok()) {
        // Quarantined row: one kPrepare failure per selected task, in
        // canonical repeat order (mirrors the hook calls above).
        for (int rep = 0; rep < config.repeats; ++rep) {
          if (!plan.selected[l][static_cast<size_t>(rep)]) continue;
          TaskFailure failure;
          failure.task = TaskIdentity{plan.spec.name, learners[l], rep};
          failure.kind = TaskFailureKind::kPrepare;
          failure.message = plan.prepare_error.ToString();
          ++cell.failed_runs;
          ++outcome.tasks_failed;
          outcome.failures.push_back(std::move(failure));
        }
        continue;
      }
      for (std::future<TaskTry>& future : plan.futures[l]) {
        TaskTry attempt = future.get();
        if (attempt.ok) {
          cell.runs.push_back(std::move(attempt.result));
        } else {
          ++cell.failed_runs;
          ++outcome.tasks_failed;
          outcome.failures.push_back(std::move(attempt.failure));
        }
      }
      AggregateCell(&cell);
    }
  }
  return outcome;
}

}  // namespace oebench
