#include "core/parallel_eval.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "linalg/vector_ops.h"

namespace oebench {

namespace {

/// FNV-1a 64-bit, folding in a length-prefixed string so that
/// ("ab","c") and ("a","bc") hash differently.
uint64_t FnvMix(uint64_t hash, const std::string& s) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  hash = (hash ^ s.size()) * kPrime;
  for (unsigned char c : s) {
    hash = (hash ^ c) * kPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ ((v >> (8 * byte)) & 0xff)) * kPrime;
  }
  return hash;
}

/// A pool sized for the sweep: `threads <= 1` degrades to inline
/// execution (the serial path), larger counts get that many workers.
int PoolWorkers(int threads) { return threads <= 1 ? 0 : threads; }

}  // namespace

uint64_t TaskSeed(uint64_t base_seed, const std::string& dataset,
                  const std::string& learner, int repeat) {
  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  hash = FnvMix(hash, base_seed);
  hash = FnvMix(hash, dataset);
  hash = FnvMix(hash, learner);
  hash = FnvMix(hash, static_cast<uint64_t>(repeat));
  // Push the hash through Rng child-seed derivation so the final seed
  // is well mixed even when identities differ in a single bit.
  Rng rng(hash);
  return rng.NextSeed();
}

SweepOutcome ParallelSweep(const std::vector<PreparedStream>& streams,
                           const std::vector<std::string>& learners,
                           const SweepConfig& config) {
  OE_CHECK(config.repeats > 0);
  SweepOutcome outcome;
  ThreadPool pool(PoolWorkers(config.threads));

  // One future per (stream, learner, repeat), canonical order. A pair
  // that cannot be built (N/A, e.g. ARF on regression) is detected
  // here on the submitting thread and never reaches the pool.
  struct PairTasks {
    bool applicable = false;
    std::vector<std::future<EvalResult>> runs;
  };
  std::vector<PairTasks> pairs(streams.size() * learners.size());
  for (size_t d = 0; d < streams.size(); ++d) {
    const PreparedStream& stream = streams[d];
    for (size_t l = 0; l < learners.size(); ++l) {
      PairTasks& pair = pairs[d * learners.size() + l];
      Result<std::unique_ptr<StreamLearner>> probe = MakeLearner(
          learners[l], config.base_config, stream.task, stream.num_classes);
      if (!probe.ok()) {
        ++outcome.pairs_skipped;
        continue;
      }
      pair.applicable = true;
      for (int rep = 0; rep < config.repeats; ++rep) {
        LearnerConfig task_config = config.base_config;
        task_config.seed = TaskSeed(config.base_config.seed, stream.name,
                                    learners[l], rep);
        pair.runs.push_back(pool.Submit([&stream, &learners, l,
                                         task_config] {
          Result<std::unique_ptr<StreamLearner>> learner =
              MakeLearner(learners[l], task_config, stream.task,
                          stream.num_classes);
          OE_CHECK(learner.ok()) << learner.status().ToString();
          return RunPrequential(learner->get(), stream);
        }));
        ++outcome.tasks_run;
      }
    }
  }

  // Reassemble in canonical order. Aggregation mirrors RunRepeated so
  // serial and parallel sweeps report the same statistics.
  outcome.rows.resize(streams.size());
  for (size_t d = 0; d < streams.size(); ++d) {
    SweepRow& row = outcome.rows[d];
    row.dataset = streams[d].name;
    row.cells.resize(learners.size());
    for (size_t l = 0; l < learners.size(); ++l) {
      PairTasks& pair = pairs[d * learners.size() + l];
      SweepCell& cell = row.cells[l];
      cell.repeated.learner = learners[l];
      cell.repeated.dataset = streams[d].name;
      if (!pair.applicable) {
        cell.repeated.not_applicable = true;
        continue;
      }
      std::vector<double> losses;
      for (std::future<EvalResult>& future : pair.runs) {
        cell.runs.push_back(future.get());
        const EvalResult& run = cell.runs.back();
        losses.push_back(run.mean_loss);
        cell.repeated.throughput += run.throughput;
        cell.repeated.peak_memory_bytes = std::max(
            cell.repeated.peak_memory_bytes, run.peak_memory_bytes);
      }
      cell.repeated.loss_mean = Mean(losses);
      cell.repeated.loss_stddev = StdDev(losses);
      cell.repeated.throughput /= static_cast<double>(config.repeats);
    }
  }
  return outcome;
}

std::vector<PreparedStream> ParallelPrepare(
    const std::vector<StreamSpec>& specs, const PipelineOptions& options,
    int threads, const std::vector<std::string>& names) {
  OE_CHECK(names.empty() || names.size() == specs.size());
  ThreadPool pool(PoolWorkers(threads));
  std::vector<std::future<PreparedStream>> futures;
  futures.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const StreamSpec& spec = specs[i];
    futures.push_back(pool.Submit([&spec, &options] {
      Result<GeneratedStream> stream = GenerateStream(spec);
      OE_CHECK(stream.ok()) << spec.name << ": "
                            << stream.status().ToString();
      Result<PreparedStream> prepared = PrepareStream(*stream, options);
      OE_CHECK(prepared.ok()) << spec.name << ": "
                              << prepared.status().ToString();
      return std::move(*prepared);
    }));
  }
  std::vector<PreparedStream> streams;
  streams.reserve(specs.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    streams.push_back(futures[i].get());
    if (!names.empty()) streams.back().name = names[i];
  }
  return streams;
}

SweepOutcome ParallelSweepEntries(const std::vector<CorpusEntry>& entries,
                                  const std::vector<std::string>& learners,
                                  const SweepConfig& config) {
  std::vector<StreamSpec> specs;
  specs.reserve(entries.size());
  for (const CorpusEntry& entry : entries) {
    specs.push_back(SpecFromEntry(entry, config.scale));
  }
  std::vector<PreparedStream> streams =
      ParallelPrepare(specs, config.pipeline, config.threads);
  return ParallelSweep(streams, learners, config);
}

}  // namespace oebench
