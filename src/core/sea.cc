#include "core/sea.h"

#include <algorithm>

#include "common/random.h"
#include "linalg/vector_ops.h"
#include "models/decision_tree.h"
#include "models/gbdt.h"
#include "models/mlp.h"

namespace oebench {

namespace {

class NnWindowModel : public WindowModel {
 public:
  NnWindowModel(const LearnerConfig& config, TaskType task, int num_classes,
                uint64_t seed)
      : config_(config), rng_(seed) {
    MlpConfig mlp_config;
    mlp_config.hidden_sizes = config.hidden_sizes;
    mlp_config.task = task;
    mlp_config.num_classes = num_classes;
    mlp_config.learning_rate = config.learning_rate;
    mlp_config.batch_size = config.batch_size;
    model_.emplace(mlp_config, seed);
  }

  void Fit(const WindowData& window) override {
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      model_->TrainEpoch(window.features, window.targets, &rng_);
    }
  }
  double PredictValue(const double* row) const override {
    std::vector<double> x(row, row + Dim());
    return model_->PredictValue(x);
  }
  std::vector<double> PredictProba(const double* row) const override {
    std::vector<double> x(row, row + Dim());
    return model_->PredictProba(x);
  }
  int64_t MemoryBytes() const override {
    return model_->initialized() ? model_->MemoryBytes() : 0;
  }

 private:
  int64_t Dim() const { return model_->weights()[0].rows(); }

  LearnerConfig config_;
  Rng rng_;
  std::optional<Mlp> model_;
};

class DtWindowModel : public WindowModel {
 public:
  DtWindowModel(const LearnerConfig& config, TaskType task, int num_classes)
      : tree_([&] {
          DecisionTreeConfig tree_config;
          tree_config.task = task;
          tree_config.num_classes = num_classes;
          tree_config.max_depth = config.tree_max_depth;
          return tree_config;
        }()) {}

  void Fit(const WindowData& window) override {
    tree_.Fit(window.features, window.targets);
  }
  double PredictValue(const double* row) const override {
    return tree_.PredictValue(row);
  }
  std::vector<double> PredictProba(const double* row) const override {
    return tree_.PredictProba(row);
  }
  int64_t MemoryBytes() const override { return tree_.MemoryBytes(); }

 private:
  DecisionTree tree_;
};

class GbdtWindowModel : public WindowModel {
 public:
  GbdtWindowModel(const LearnerConfig& config, TaskType task,
                  int num_classes)
      : model_([&] {
          GbdtConfig gbdt_config;
          gbdt_config.task = task;
          gbdt_config.num_classes = num_classes;
          gbdt_config.num_rounds = config.ensemble_size;
          gbdt_config.max_depth = config.gbdt_max_depth;
          return gbdt_config;
        }()) {}

  void Fit(const WindowData& window) override {
    model_.Fit(window.features, window.targets);
  }
  double PredictValue(const double* row) const override {
    return model_.PredictValue(row);
  }
  std::vector<double> PredictProba(const double* row) const override {
    return model_.PredictProba(row);
  }
  int64_t MemoryBytes() const override { return model_.MemoryBytes(); }

 private:
  Gbdt model_;
};

}  // namespace

void SeaLearner::Begin(const PreparedStream& stream) {
  task_ = stream.task;
  num_classes_ = stream.num_classes;
  next_seed_ = config_.seed;
  members_.clear();
}

std::unique_ptr<WindowModel> SeaLearner::NewMember() {
  switch (base_) {
    case SeaBase::kNn:
      return std::make_unique<NnWindowModel>(config_, task_, num_classes_,
                                             ++next_seed_);
    case SeaBase::kDt:
      return std::make_unique<DtWindowModel>(config_, task_, num_classes_);
    case SeaBase::kGbdt:
      return std::make_unique<GbdtWindowModel>(config_, task_,
                                               num_classes_);
  }
  return nullptr;
}

double SeaLearner::MemberLoss(const WindowModel& member,
                              const WindowData& window) const {
  if (window.features.rows() == 0) return 0.0;
  double total = 0.0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    double target = window.targets[static_cast<size_t>(r)];
    if (task_ == TaskType::kClassification) {
      int pred = ArgMax(member.PredictProba(window.features.Row(r)));
      total += pred == static_cast<int>(target) ? 0.0 : 1.0;
    } else {
      double diff = member.PredictValue(window.features.Row(r)) - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(window.features.rows());
}

double SeaLearner::EnsembleLoss(const WindowData& window) const {
  if (window.features.rows() == 0) return 0.0;
  if (members_.empty()) {
    return task_ == TaskType::kClassification ? 1.0 : 1.0;
  }
  double total = 0.0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    double target = window.targets[static_cast<size_t>(r)];
    if (task_ == TaskType::kClassification) {
      std::vector<double> proba(static_cast<size_t>(num_classes_), 0.0);
      for (const auto& member : members_) {
        std::vector<double> p = member->PredictProba(window.features.Row(r));
        for (size_t c = 0; c < proba.size(); ++c) proba[c] += p[c];
      }
      total += ArgMax(proba) == static_cast<int>(target) ? 0.0 : 1.0;
    } else {
      double sum = 0.0;
      for (const auto& member : members_) {
        sum += member->PredictValue(window.features.Row(r));
      }
      double diff = sum / static_cast<double>(members_.size()) - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(window.features.rows());
}

double SeaLearner::TestLoss(const WindowData& window) {
  return EnsembleLoss(window);
}

void SeaLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  std::unique_ptr<WindowModel> candidate = NewMember();
  candidate->Fit(window);

  if (static_cast<int>(members_.size()) < config_.ensemble_size) {
    members_.push_back(std::move(candidate));
    return;
  }
  // Replace the worst member on this window if the candidate beats it
  // (Street & Kim's quality-based replacement).
  double candidate_loss = MemberLoss(*candidate, window);
  size_t worst = 0;
  double worst_loss = -1.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    double loss = MemberLoss(*members_[m], window);
    if (loss > worst_loss) {
      worst_loss = loss;
      worst = m;
    }
  }
  if (candidate_loss < worst_loss) {
    members_[worst] = std::move(candidate);
  }
}

std::string SeaLearner::name() const {
  switch (base_) {
    case SeaBase::kNn:
      return "SEA-NN";
    case SeaBase::kDt:
      return "SEA-DT";
    case SeaBase::kGbdt:
      return "SEA-GBDT";
  }
  return "SEA";
}

int64_t SeaLearner::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& member : members_) bytes += member->MemoryBytes();
  return bytes;
}

}  // namespace oebench
