#include "core/selection.h"

#include <cmath>
#include <future>

#include "cluster/kmeans.h"
#include "common/thread_pool.h"
#include "linalg/pca.h"
#include "preprocess/normalizer.h"

namespace oebench {

Result<std::vector<DatasetProfile>> ExtractProfiles(
    const std::vector<StreamSpec>& specs, int threads,
    const ProfileOptions& options) {
  ThreadPool pool(threads <= 1 ? 0 : threads);
  std::vector<std::future<Result<DatasetProfile>>> futures;
  futures.reserve(specs.size());
  for (const StreamSpec& spec : specs) {
    futures.push_back(pool.Submit([&spec, &options]() -> Result<DatasetProfile> {
      OE_ASSIGN_OR_RETURN(GeneratedStream stream, GenerateStream(spec));
      return ProfileDataset(stream, options);
    }));
  }
  std::vector<DatasetProfile> profiles;
  profiles.reserve(specs.size());
  for (std::future<Result<DatasetProfile>>& future : futures) {
    Result<DatasetProfile> profile = future.get();
    // Harvest in input order; a failure still drains remaining futures
    // when the pool destructs.
    OE_RETURN_NOT_OK(profile.status());
    profiles.push_back(std::move(*profile));
  }
  return profiles;
}

namespace {

/// Stacks one facet's vectors (one per profile) into a matrix, normalises
/// columns, and PCA-reduces to at most 3 components (fewer if the facet
/// is narrower).
Result<Matrix> FacetEmbedding(
    const std::vector<std::vector<double>>& facet_rows) {
  Matrix m = Matrix::FromRows(facet_rows);
  Normalizer norm;
  OE_RETURN_NOT_OK(norm.Fit(m));
  norm.Transform(&m);
  int components = static_cast<int>(std::min<int64_t>(3, m.cols()));
  Pca pca;
  OE_RETURN_NOT_OK(pca.Fit(m, components));
  Matrix projected = pca.Transform(m);
  if (projected.cols() == 3) return projected;
  // Pad narrow facets with zero columns so every facet contributes the
  // same weight (the paper equalises facet dimensionality this way).
  Matrix padded(projected.rows(), 3);
  for (int64_t r = 0; r < projected.rows(); ++r) {
    for (int64_t c = 0; c < projected.cols(); ++c) {
      padded.At(r, c) = projected.At(r, c);
    }
  }
  return padded;
}

}  // namespace

Result<SelectionResult> SelectRepresentatives(
    const std::vector<DatasetProfile>& profiles, int k, uint64_t seed) {
  if (static_cast<int>(profiles.size()) < k) {
    return Status::InvalidArgument("need at least k profiles");
  }
  const size_t n = profiles.size();
  std::vector<std::vector<double>> basic(n);
  std::vector<std::vector<double>> missing(n);
  std::vector<std::vector<double>> data_drift(n);
  std::vector<std::vector<double>> concept_drift(n);
  std::vector<std::vector<double>> outliers(n);
  for (size_t i = 0; i < n; ++i) {
    basic[i] = profiles[i].BasicFacet();
    missing[i] = profiles[i].MissingFacet();
    data_drift[i] = profiles[i].DataDriftFacet();
    concept_drift[i] = profiles[i].ConceptDriftFacet();
    outliers[i] = profiles[i].OutlierFacet();
  }

  Matrix embedding;
  for (const auto* facet :
       {&basic, &missing, &data_drift, &concept_drift, &outliers}) {
    OE_ASSIGN_OR_RETURN(Matrix part, FacetEmbedding(*facet));
    if (embedding.rows() == 0) {
      embedding = part;
    } else {
      Matrix combined(embedding.rows(), embedding.cols() + part.cols());
      for (int64_t r = 0; r < embedding.rows(); ++r) {
        for (int64_t c = 0; c < embedding.cols(); ++c) {
          combined.At(r, c) = embedding.At(r, c);
        }
        for (int64_t c = 0; c < part.cols(); ++c) {
          combined.At(r, embedding.cols() + c) = part.At(r, c);
        }
      }
      embedding = std::move(combined);
    }
  }

  KMeans::Options options;
  options.k = k;
  options.seed = seed;
  KMeans kmeans(options);
  OE_ASSIGN_OR_RETURN(KMeansResult clusters, kmeans.Fit(embedding));

  SelectionResult out;
  out.assignments = clusters.assignments;
  out.representatives = KMeans::NearestRowPerCentroid(embedding, clusters);
  out.embedding = std::move(embedding);
  return out;
}

}  // namespace oebench
