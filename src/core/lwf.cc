#include "core/lwf.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

void LwfLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;

  Mlp::GradHooks hooks;
  // Soft targets of the frozen previous model, precomputed per row.
  std::vector<std::vector<double>> prev_outputs;
  if (previous_model_.has_value() && previous_model_->initialized()) {
    prev_outputs.resize(static_cast<size_t>(window.features.rows()));
    for (int64_t r = 0; r < window.features.rows(); ++r) {
      prev_outputs[static_cast<size_t>(r)] = previous_model_->Forward(
          window.features.Row(r), window.features.cols());
    }
    const double lambda = config_.lwf_lambda;
    const bool classification = task_ == TaskType::kClassification;
    hooks.output_hook = [this, &prev_outputs, lambda, classification](
                            int64_t row, const std::vector<double>& output,
                            std::vector<double>* delta) {
      const std::vector<double>& prev =
          prev_outputs[static_cast<size_t>(row)];
      if (classification) {
        // d/dz of T^2 * CE(softmax(prev/T), softmax(z/T))
        // = T * (softmax(z/T) - softmax(prev/T)).
        std::vector<double> soft_cur(output.size());
        std::vector<double> soft_prev(prev.size());
        for (size_t i = 0; i < output.size(); ++i) {
          soft_cur[i] = output[i] / kTemperature;
          soft_prev[i] = prev[i] / kTemperature;
        }
        SoftmaxInPlace(&soft_cur);
        SoftmaxInPlace(&soft_prev);
        for (size_t i = 0; i < delta->size(); ++i) {
          (*delta)[i] +=
              lambda * kTemperature * (soft_cur[i] - soft_prev[i]);
        }
      } else {
        // MSE distillation: lambda * 2 * (z - z_prev).
        (*delta)[0] += lambda * 2.0 * (output[0] - prev[0]);
      }
    };
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(window.features, window.targets, &rng_,
                       prev_outputs.empty() ? nullptr : &hooks);
  }
  previous_model_ = model();  // frozen copy for the next window
}

int64_t LwfLearner::MemoryBytes() const {
  int64_t bytes = NnLearnerBase::MemoryBytes();
  if (previous_model_.has_value() && previous_model_->initialized()) {
    bytes += previous_model_->MemoryBytes();
  }
  return bytes;
}

}  // namespace oebench
