#ifndef OEBENCH_CORE_ICARL_H_
#define OEBENCH_CORE_ICARL_H_

#include <vector>

#include "core/naive_nn.h"

namespace oebench {

/// iCaRL-style exemplar replay (Rebuffi et al., 2017), restricted per the
/// paper (§6.1) to the exemplar-selection strategy: herding keeps the
/// buffer's per-class members closest to the class mean in input space;
/// training concatenates the window with the buffer. Regression treats
/// all items as a single class. The nearest-mean classifier of the
/// original iCaRL is disregarded.
class IcarlLearner : public NnLearnerBase {
 public:
  explicit IcarlLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "iCaRL"; }
  int64_t MemoryBytes() const override;

  int64_t buffer_rows() const { return buffer_x_.rows(); }

 private:
  /// Rebuilds the exemplar buffer from (buffer + window) with herding.
  void UpdateBuffer(const WindowData& window);

  Matrix buffer_x_;
  std::vector<double> buffer_y_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_ICARL_H_
