#ifndef OEBENCH_CORE_TREE_LEARNERS_H_
#define OEBENCH_CORE_TREE_LEARNERS_H_

#include <iosfwd>
#include <optional>

#include "core/learner.h"
#include "models/decision_tree.h"
#include "models/gbdt.h"

namespace oebench {

/// "Naive-DT": a CART tree retrained from scratch on every window (trees
/// need no epochs or batches, §6.1).
class NaiveTreeLearner : public StreamLearner {
 public:
  explicit NaiveTreeLearner(LearnerConfig config)
      : config_(std::move(config)) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "Naive-DT"; }
  int64_t MemoryBytes() const override;

  /// The tree is retrained from scratch each window, so the last fitted
  /// tree (or its absence) is the learner's complete state. No epoch
  /// fork: trees have no epochs.
  bool SupportsSnapshot() const override { return true; }
  Status SaveState(std::ostream* out) const override;
  Status LoadState(std::istream* in) override;

 private:
  LearnerConfig config_;
  TaskType task_ = TaskType::kRegression;
  int num_classes_ = 2;
  std::optional<DecisionTree> tree_;
};

/// "Naive-GBDT": a gradient-boosted ensemble retrained on every window.
class NaiveGbdtLearner : public StreamLearner {
 public:
  explicit NaiveGbdtLearner(LearnerConfig config)
      : config_(std::move(config)) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "Naive-GBDT"; }
  int64_t MemoryBytes() const override;

  bool SupportsSnapshot() const override { return true; }
  Status SaveState(std::ostream* out) const override;
  Status LoadState(std::istream* in) override;

 private:
  LearnerConfig config_;
  TaskType task_ = TaskType::kRegression;
  int num_classes_ = 2;
  std::optional<Gbdt> model_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_TREE_LEARNERS_H_
