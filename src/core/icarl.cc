#include "core/icarl.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "linalg/vector_ops.h"

namespace oebench {

void IcarlLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;

  // Train on window + exemplars.
  Matrix train_x = window.features;
  std::vector<double> train_y = window.targets;
  if (buffer_x_.rows() > 0) {
    train_x = Matrix::VStack(train_x, buffer_x_);
    train_y.insert(train_y.end(), buffer_y_.begin(), buffer_y_.end());
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(train_x, train_y, &rng_);
  }
  UpdateBuffer(window);
}

void IcarlLearner::UpdateBuffer(const WindowData& window) {
  // Candidate pool: current buffer + new window.
  Matrix pool_x = buffer_x_.rows() > 0
                      ? Matrix::VStack(buffer_x_, window.features)
                      : window.features;
  std::vector<double> pool_y = buffer_y_;
  pool_y.insert(pool_y.end(), window.targets.begin(), window.targets.end());

  // Group rows by class (regression: one class).
  std::map<int, std::vector<int64_t>> by_class;
  for (int64_t r = 0; r < pool_x.rows(); ++r) {
    int cls = task_ == TaskType::kClassification
                  ? static_cast<int>(pool_y[static_cast<size_t>(r)])
                  : 0;
    by_class[cls].push_back(r);
  }
  const int num_groups = static_cast<int>(by_class.size());
  const int per_class =
      std::max(1, config_.buffer_size / std::max(num_groups, 1));

  std::vector<int64_t> selected;
  for (auto& [cls, rows] : by_class) {
    // Class mean in input space.
    std::vector<double> mean(static_cast<size_t>(pool_x.cols()), 0.0);
    for (int64_t r : rows) {
      const double* row = pool_x.Row(r);
      for (int64_t c = 0; c < pool_x.cols(); ++c) {
        mean[static_cast<size_t>(c)] += row[c];
      }
    }
    for (double& v : mean) v /= static_cast<double>(rows.size());

    // Herding: greedily add the row that keeps the running exemplar mean
    // closest to the class mean.
    std::vector<double> running(mean.size(), 0.0);
    std::vector<bool> used(rows.size(), false);
    int take = std::min<int>(per_class, static_cast<int>(rows.size()));
    for (int k = 0; k < take; ++k) {
      double best_dist = 1e300;
      size_t best_i = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (used[i]) continue;
        const double* row = pool_x.Row(rows[i]);
        double dist = 0.0;
        for (size_t c = 0; c < mean.size(); ++c) {
          double candidate =
              (running[c] + row[c]) / static_cast<double>(k + 1);
          double d = candidate - mean[c];
          dist += d * d;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best_i = i;
        }
      }
      used[best_i] = true;
      const double* row = pool_x.Row(rows[best_i]);
      for (size_t c = 0; c < mean.size(); ++c) running[c] += row[c];
      selected.push_back(rows[best_i]);
    }
  }
  // Trim to the global budget (classes may not divide it evenly).
  if (static_cast<int>(selected.size()) > config_.buffer_size) {
    selected.resize(static_cast<size_t>(config_.buffer_size));
  }
  buffer_x_ = pool_x.SelectRows(selected);
  buffer_y_.clear();
  buffer_y_.reserve(selected.size());
  for (int64_t r : selected) {
    buffer_y_.push_back(pool_y[static_cast<size_t>(r)]);
  }
}

int64_t IcarlLearner::MemoryBytes() const {
  return NnLearnerBase::MemoryBytes() +
         buffer_x_.size() * static_cast<int64_t>(sizeof(double)) +
         static_cast<int64_t>(buffer_y_.size() * sizeof(double));
}

}  // namespace oebench
