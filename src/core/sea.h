#ifndef OEBENCH_CORE_SEA_H_
#define OEBENCH_CORE_SEA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/learner.h"

namespace oebench {

/// Base-model family SEA can ensemble (paper evaluates SEA-NN, SEA-DT and
/// SEA-GBDT).
enum class SeaBase { kNn, kDt, kGbdt };

/// A batch model trained on exactly one window, the SEA ensemble member.
class WindowModel {
 public:
  virtual ~WindowModel() = default;
  virtual void Fit(const WindowData& window) = 0;
  virtual double PredictValue(const double* row) const = 0;
  /// Class probabilities (classification only).
  virtual std::vector<double> PredictProba(const double* row) const = 0;
  virtual int64_t MemoryBytes() const = 0;
};

/// Streaming Ensemble Algorithm (Street & Kim, 2001). Each window trains
/// one candidate member; while the ensemble has free slots the candidate
/// joins, otherwise it replaces the worst member if it scores better on
/// the current window. Prediction averages member outputs (probabilities
/// for classification, values for regression).
class SeaLearner : public StreamLearner {
 public:
  SeaLearner(SeaBase base, LearnerConfig config)
      : base_(base), config_(std::move(config)) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override;
  int64_t MemoryBytes() const override;

  int64_t ensemble_size() const {
    return static_cast<int64_t>(members_.size());
  }

 private:
  std::unique_ptr<WindowModel> NewMember();
  /// Loss of one member on a window under the task metric.
  double MemberLoss(const WindowModel& member,
                    const WindowData& window) const;
  /// Ensemble prediction loss on a window.
  double EnsembleLoss(const WindowData& window) const;

  SeaBase base_;
  LearnerConfig config_;
  TaskType task_ = TaskType::kRegression;
  int num_classes_ = 2;
  uint64_t next_seed_ = 0;
  std::vector<std::unique_ptr<WindowModel>> members_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_SEA_H_
