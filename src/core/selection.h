#ifndef OEBENCH_CORE_SELECTION_H_
#define OEBENCH_CORE_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "stats/profile.h"
#include "streamgen/stream_generator.h"

namespace oebench {

/// The §4.3 statistic-extraction pass over a set of stream specs:
/// generate each stream and extract its DatasetProfile, fanned out
/// across `threads` workers (one spec = one task; a spec's randomness
/// is self-contained in `spec.seed`, so results are identical for any
/// thread count). Profiles come back in input order. `threads <= 1`
/// runs inline. The first failed spec aborts the pass with its status.
Result<std::vector<DatasetProfile>> ExtractProfiles(
    const std::vector<StreamSpec>& specs, int threads,
    const ProfileOptions& options = {});

/// Result of the representative-dataset selection pipeline (§4.4).
struct SelectionResult {
  /// Cluster id per input profile.
  std::vector<int> assignments;
  /// Index (into the input profiles) of the dataset nearest each of the k
  /// cluster centres — the representatives.
  std::vector<int64_t> representatives;
  /// The concatenated per-facet PCA embedding each profile was clustered
  /// in (n x (3 * num_facets)).
  Matrix embedding;
};

/// The paper's selection pipeline: normalise every profile feature to
/// zero mean / unit variance across datasets, PCA each of the five facets
/// (basic, missing, data drift, concept drift, outliers) down to 3
/// dimensions, concatenate, k-means with k clusters, pick the profile
/// nearest each centre.
Result<SelectionResult> SelectRepresentatives(
    const std::vector<DatasetProfile>& profiles, int k = 5,
    uint64_t seed = 17);

}  // namespace oebench

#endif  // OEBENCH_CORE_SELECTION_H_
