#ifndef OEBENCH_CORE_NAIVE_BAYES_LEARNER_H_
#define OEBENCH_CORE_NAIVE_BAYES_LEARNER_H_

#include <vector>

#include "core/learner.h"

namespace oebench {

/// Incremental Gaussian naive Bayes stream learner — the classic
/// lightweight streaming baseline (the §4.3 statistics pipeline already
/// trains a *batch* GaussianNb per window; this variant accumulates the
/// per-class Gaussian sufficient statistics across the whole stream with
/// an optional exponential decay so old concepts fade). Classification
/// only.
class NaiveBayesLearner : public StreamLearner {
 public:
  /// `decay` in (0, 1]: per-window multiplier on the accumulated
  /// statistics (1 = remember everything; smaller = faster forgetting).
  explicit NaiveBayesLearner(LearnerConfig config, double decay = 0.9)
      : config_(std::move(config)), decay_(decay) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "Naive-Bayes"; }
  int64_t MemoryBytes() const override;

 private:
  int PredictRow(const double* row) const;

  LearnerConfig config_;
  double decay_;
  int num_classes_ = 2;
  int64_t dim_ = 0;
  // Per-class accumulated weight, and per-class-per-feature sum / sum of
  // squares (decayed); variance derives from them on demand.
  std::vector<double> class_weight_;
  std::vector<std::vector<double>> sum_;
  std::vector<std::vector<double>> sum_sq_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_NAIVE_BAYES_LEARNER_H_
