#ifndef OEBENCH_CORE_LWF_H_
#define OEBENCH_CORE_LWF_H_

#include <optional>

#include "core/naive_nn.h"

namespace oebench {

/// Learning without Forgetting (Li & Hoiem, 2017), stream-adapted per the
/// paper (§6.1): the previous window's frozen model provides soft targets.
/// Classification distils with temperature-softened cross-entropy;
/// regression substitutes an MSE term towards the previous model's output
/// (the paper's stated adaptation).
class LwfLearner : public NnLearnerBase {
 public:
  explicit LwfLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "LwF"; }
  int64_t MemoryBytes() const override;

 private:
  static constexpr double kTemperature = 2.0;
  std::optional<Mlp> previous_model_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_LWF_H_
