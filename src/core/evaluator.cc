#include "core/evaluator.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "core/arf.h"
#include "core/drift_reset.h"
#include "core/ewc.h"
#include "core/icarl.h"
#include "core/lwf.h"
#include "core/mas.h"
#include "core/naive_bayes_learner.h"
#include "core/naive_nn.h"
#include "core/oza_bag.h"
#include "core/sea.h"
#include "core/sam_knn.h"
#include "core/si.h"
#include "core/tree_learners.h"
#include "linalg/vector_ops.h"

namespace oebench {

namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Bytes-scale bucket bounds for the peak-memory histogram (1KB..1GB);
// shared across shards so snapshots merge.
const std::vector<double>& MemoryBytesBounds() {
  static const std::vector<double> kBounds = {
      1.0 * (1 << 10), 1.0 * (1 << 14), 1.0 * (1 << 17), 1.0 * (1 << 20),
      1.0 * (1 << 23), 1.0 * (1 << 26), 1.0 * (1 << 30)};
  return kBounds;
}

}  // namespace

std::vector<std::string> AllLearnerNames(TaskType task) {
  std::vector<std::string> names = {"Naive-NN",   "EWC",    "LwF",
                                    "iCaRL",      "SEA-NN", "Naive-DT",
                                    "Naive-GBDT", "SEA-DT", "SEA-GBDT"};
  if (task == TaskType::kClassification) names.push_back("ARF");
  return names;
}

std::vector<std::string> ExtendedLearnerNames(TaskType task) {
  std::vector<std::string> names = {"MAS", "SI", "DriftReset-NN",
                                    "DriftReset-DT"};
  if (task == TaskType::kClassification) {
    names.push_back("SAM-kNN");
    names.push_back("OzaBag");
    names.push_back("Naive-Bayes");
  }
  return names;
}

Result<std::unique_ptr<StreamLearner>> MakeLearner(
    const std::string& name, const LearnerConfig& config, TaskType task,
    int /*num_classes*/) {
  if (name == "Naive-NN") {
    return std::unique_ptr<StreamLearner>(new NaiveNnLearner(config));
  }
  if (name == "EWC") {
    return std::unique_ptr<StreamLearner>(new EwcLearner(config));
  }
  if (name == "LwF") {
    return std::unique_ptr<StreamLearner>(new LwfLearner(config));
  }
  if (name == "iCaRL") {
    return std::unique_ptr<StreamLearner>(new IcarlLearner(config));
  }
  if (name == "SEA-NN") {
    return std::unique_ptr<StreamLearner>(
        new SeaLearner(SeaBase::kNn, config));
  }
  if (name == "SEA-DT") {
    return std::unique_ptr<StreamLearner>(
        new SeaLearner(SeaBase::kDt, config));
  }
  if (name == "SEA-GBDT") {
    return std::unique_ptr<StreamLearner>(
        new SeaLearner(SeaBase::kGbdt, config));
  }
  if (name == "Naive-DT") {
    return std::unique_ptr<StreamLearner>(new NaiveTreeLearner(config));
  }
  if (name == "Naive-GBDT") {
    return std::unique_ptr<StreamLearner>(new NaiveGbdtLearner(config));
  }
  if (name == "MAS") {
    return std::unique_ptr<StreamLearner>(new MasLearner(config));
  }
  if (name == "SI") {
    return std::unique_ptr<StreamLearner>(new SiLearner(config));
  }
  if (name == "DriftReset-NN") {
    return std::unique_ptr<StreamLearner>(
        new DriftResetLearner("Naive-NN", config));
  }
  if (name == "DriftReset-DT") {
    return std::unique_ptr<StreamLearner>(
        new DriftResetLearner("Naive-DT", config));
  }
  if (name == "SAM-kNN") {
    if (task != TaskType::kClassification) {
      return Status::InvalidArgument("SAM-kNN is classification-only");
    }
    return std::unique_ptr<StreamLearner>(new SamKnnLearner(config));
  }
  if (name == "OzaBag") {
    if (task != TaskType::kClassification) {
      return Status::InvalidArgument("OzaBag is classification-only");
    }
    return std::unique_ptr<StreamLearner>(new OzaBagLearner(config));
  }
  if (name == "Naive-Bayes") {
    if (task != TaskType::kClassification) {
      return Status::InvalidArgument(
          "Naive-Bayes learner is classification-only");
    }
    return std::unique_ptr<StreamLearner>(new NaiveBayesLearner(config));
  }
  if (name == "ARF") {
    if (task != TaskType::kClassification) {
      return Status::InvalidArgument(
          "ARF is classification-only (N/A in the paper's tables)");
    }
    return std::unique_ptr<StreamLearner>(new ArfLearner(config));
  }
  return Status::NotFound("unknown learner '" + name + "'");
}

double TaskLoss(TaskType task, const std::vector<double>& predictions,
                const std::vector<double>& targets) {
  OE_CHECK(predictions.size() == targets.size());
  if (predictions.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (task == TaskType::kClassification) {
      total += static_cast<int>(predictions[i]) ==
                       static_cast<int>(targets[i])
                   ? 0.0
                   : 1.0;
    } else {
      double diff = predictions[i] - targets[i];
      total += diff * diff;
    }
  }
  return total / static_cast<double>(predictions.size());
}

namespace {

/// Shared test-then-train loop: windows before `start_window` are
/// assumed already trained into the learner (cold runs pass 0) and only
/// contribute to the item count.
EvalResult RunPrequentialFrom(StreamLearner* learner,
                              const PreparedStream& stream,
                              size_t start_window,
                              int64_t prefix_peak_memory) {
  using Clock = std::chrono::steady_clock;
  EvalResult result;
  result.learner = learner->name();
  result.dataset = stream.name;
  result.peak_memory_bytes = prefix_peak_memory;

  int64_t total_items = 0;
  for (size_t w = 0; w < stream.windows.size(); ++w) {
    const WindowData& window = stream.windows[w];
    total_items += window.features.rows();
    if (w < start_window) continue;
    if (w > 0) {
      Clock::time_point t0 = Clock::now();
      double loss = learner->TestLoss(window);
      result.test_seconds += Seconds(t0, Clock::now());
      result.per_window_loss.push_back(loss);
    }
    Clock::time_point t1 = Clock::now();
    learner->TrainWindow(window);
    result.train_seconds += Seconds(t1, Clock::now());
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes, learner->MemoryBytes());
  }
  // Mean over finite windows; non-finite losses (NN blow-ups on extreme
  // outliers) stay visible in per_window_loss.
  double sum = 0.0;
  int64_t finite = 0;
  for (double loss : result.per_window_loss) {
    if (std::isfinite(loss)) {
      sum += loss;
      ++finite;
    }
  }
  result.mean_loss = finite > 0 ? sum / static_cast<double>(finite)
                                : std::numeric_limits<double>::infinity();
  // Fading-factor prequential loss over the finite windows.
  constexpr double kFade = 0.98;
  double faded_num = 0.0;
  double faded_den = 0.0;
  for (double loss : result.per_window_loss) {
    if (!std::isfinite(loss)) continue;
    faded_num = kFade * faded_num + loss;
    faded_den = kFade * faded_den + 1.0;
  }
  result.faded_loss = faded_den > 0.0
                          ? faded_num / faded_den
                          : std::numeric_limits<double>::infinity();
  double total_seconds = result.test_seconds + result.train_seconds;
  result.items_processed = total_items;
  result.throughput = total_seconds > 0.0
                          ? static_cast<double>(total_items) / total_seconds
                          : 0.0;

  // Phase timings and work counts go to the process-wide registry; the
  // table5/table6/table10 benches read their columns from here instead
  // of keeping their own stopwatches.
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metrics->GetCounter("eval.runs")->Increment();
  metrics->GetCounter("eval.items")->Add(total_items);
  metrics->GetCounter("eval.windows")
      ->Add(static_cast<int64_t>(stream.windows.size()));
  metrics->GetHistogram("eval.train_seconds")->Record(result.train_seconds);
  metrics->GetHistogram("eval.test_seconds")->Record(result.test_seconds);
  metrics->GetHistogram("eval.peak_memory_bytes", MemoryBytesBounds())
      ->Record(static_cast<double>(result.peak_memory_bytes));
  return result;
}

}  // namespace

EvalResult RunPrequential(StreamLearner* learner,
                          const PreparedStream& stream) {
  learner->Begin(stream);
  return RunPrequentialFrom(learner, stream, /*start_window=*/0,
                            /*prefix_peak_memory=*/0);
}

EvalResult ResumePrequential(StreamLearner* learner,
                             const PreparedStream& stream,
                             size_t windows_trained,
                             int64_t prefix_peak_memory) {
  return RunPrequentialFrom(learner, stream, windows_trained,
                            prefix_peak_memory);
}

double AggregateThroughput(const std::vector<EvalResult>& runs) {
  double total_items = 0.0;
  double total_seconds = 0.0;
  for (const EvalResult& run : runs) {
    const double seconds = run.train_seconds + run.test_seconds;
    double items = static_cast<double>(run.items_processed);
    if (items <= 0.0 && run.throughput > 0.0 && seconds > 0.0) {
      // Rows reloaded from a result log carry only the ratio; recover
      // the item count so pooling stays items-weighted.
      items = run.throughput * seconds;
    }
    total_items += items;
    total_seconds += seconds;
  }
  if (!(total_seconds > 0.0)) return 0.0;
  const double throughput = total_items / total_seconds;
  return std::isfinite(throughput) && throughput > 0.0 ? throughput : 0.0;
}

RepeatedResult RunRepeated(const std::string& learner_name,
                           const LearnerConfig& base_config,
                           const PreparedStream& stream, int repeats) {
  RepeatedResult out;
  out.learner = learner_name;
  out.dataset = stream.name;
  std::vector<double> losses;
  std::vector<EvalResult> runs;
  for (int rep = 0; rep < repeats; ++rep) {
    LearnerConfig config = base_config;
    config.seed = base_config.seed + static_cast<uint64_t>(rep);
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(learner_name, config, stream.task, stream.num_classes);
    if (!learner.ok()) {
      out.not_applicable = true;
      return out;
    }
    EvalResult result = RunPrequential(learner->get(), stream);
    losses.push_back(result.mean_loss);
    out.peak_memory_bytes =
        std::max(out.peak_memory_bytes, result.peak_memory_bytes);
    runs.push_back(std::move(result));
  }
  out.loss_mean = Mean(losses);
  out.loss_stddev = StdDev(losses);
  // Pool items and seconds across repeats instead of averaging per-
  // repeat ratios: a repeat finishing under the timer resolution has
  // its ratio guarded to 0 and would drag a plain mean toward zero.
  out.throughput = AggregateThroughput(runs);
  return out;
}

}  // namespace oebench
