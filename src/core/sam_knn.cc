#include "core/sam_knn.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

void SamKnnLearner::Begin(const PreparedStream& stream) {
  OE_CHECK(stream.task == TaskType::kClassification)
      << "SAM-kNN is classification-only";
  num_classes_ = stream.num_classes;
  stm_.clear();
  ltm_.clear();
  stm_error_ = 0.0;
  ltm_error_ = 0.0;
  both_error_ = 0.0;
  arbitration_count_ = 0;
}

int SamKnnLearner::PredictWith(const Memory& memory,
                               const double* row) const {
  if (memory.empty()) return 0;
  const size_t dim = memory.front().x.size();
  // Partial selection of the k nearest samples.
  std::vector<std::pair<double, int>> nearest;  // (distance, label)
  nearest.reserve(memory.size());
  for (const Sample& sample : memory) {
    double dist = 0.0;
    for (size_t c = 0; c < dim; ++c) {
      double d = sample.x[c] - row[c];
      dist += d * d;
    }
    nearest.emplace_back(dist, sample.label);
  }
  size_t k = std::min<size_t>(static_cast<size_t>(options_.k),
                              nearest.size());
  std::partial_sort(nearest.begin(), nearest.begin() + k, nearest.end());
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < k; ++i) {
    votes[static_cast<size_t>(nearest[i].second)] += 1.0;
  }
  return ArgMax(votes);
}

int SamKnnLearner::Predict(const double* row) const {
  if (stm_.empty() && ltm_.empty()) return 0;
  if (ltm_.empty() || arbitration_count_ < 10) {
    return PredictWith(stm_, row);
  }
  // Use the memory with the best interleaved record (Losing et al.'s
  // arbitration between STM, LTM, and combined).
  double best = std::min({stm_error_, ltm_error_, both_error_});
  if (best == stm_error_) return PredictWith(stm_, row);
  if (best == ltm_error_) return PredictWith(ltm_, row);
  Memory combined = stm_;
  combined.insert(combined.end(), ltm_.begin(), ltm_.end());
  return PredictWith(combined, row);
}

double SamKnnLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  int64_t wrong = 0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    if (Predict(window.features.Row(r)) !=
        static_cast<int>(window.targets[static_cast<size_t>(r)])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) /
         static_cast<double>(window.features.rows());
}

double SamKnnLearner::MemoryError(const Memory& memory) const {
  if (memory.empty() || stm_.size() < 2) return 1.0;
  // Evaluate on the most recent STM samples (they define "now").
  size_t eval = std::min<size_t>(stm_.size(), 50);
  int wrong = 0;
  for (size_t i = stm_.size() - eval; i < stm_.size(); ++i) {
    if (PredictWith(memory, stm_[i].x.data()) != stm_[i].label) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(eval);
}

void SamKnnLearner::AdaptStmSize() {
  if (static_cast<int>(stm_.size()) <= options_.min_stm) return;
  // Candidate suffix lengths: full, 1/2, 1/4, ... >= min_stm.
  size_t best_len = stm_.size();
  double best_error = MemoryError(stm_);
  for (size_t len = stm_.size() / 2;
       len >= static_cast<size_t>(options_.min_stm); len /= 2) {
    Memory suffix(stm_.end() - static_cast<int64_t>(len), stm_.end());
    double error = MemoryError(suffix);
    if (error < best_error) {
      best_error = error;
      best_len = len;
    }
  }
  if (best_len == stm_.size()) return;
  // Archive the discarded prefix into the LTM, then clean it.
  size_t evict = stm_.size() - best_len;
  for (size_t i = 0; i < evict; ++i) {
    ltm_.push_back(std::move(stm_.front()));
    stm_.pop_front();
  }
  CleanLtm();
}

void SamKnnLearner::CleanLtm() {
  if (ltm_.empty() || stm_.empty()) return;
  Memory kept;
  for (Sample& sample : ltm_) {
    // A long-term sample survives only if the current STM neighbourhood
    // agrees with its label — contradicted knowledge is stale.
    if (PredictWith(stm_, sample.x.data()) == sample.label) {
      kept.push_back(std::move(sample));
    }
  }
  ltm_ = std::move(kept);
  while (static_cast<int>(ltm_.size()) > options_.max_ltm) {
    ltm_.pop_front();
  }
}

void SamKnnLearner::TrainWindow(const WindowData& window) {
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    const double* row = window.features.Row(r);
    int label = static_cast<int>(window.targets[static_cast<size_t>(r)]);
    // Interleaved test-then-train bookkeeping for memory arbitration
    // (every 4th sample — the estimates are smoothed anyway and the
    // combined-memory scan is the expensive part).
    if (!stm_.empty() && r % 4 == 0) {
      ++arbitration_count_;
      double alpha = 1.0 / std::min<double>(
                               static_cast<double>(arbitration_count_),
                               200.0);
      auto update = [&](double* error, const Memory& memory) {
        if (memory.empty()) return;
        double miss =
            PredictWith(memory, row) == label ? 0.0 : 1.0;
        *error += alpha * (miss - *error);
      };
      update(&stm_error_, stm_);
      update(&ltm_error_, ltm_);
      if (!ltm_.empty()) {
        Memory combined = stm_;
        combined.insert(combined.end(), ltm_.begin(), ltm_.end());
        update(&both_error_, combined);
      }
    }
    Sample sample;
    sample.x.assign(row, row + window.features.cols());
    sample.label = label;
    stm_.push_back(std::move(sample));
    if (static_cast<int>(stm_.size()) > options_.max_stm) {
      ltm_.push_back(std::move(stm_.front()));
      stm_.pop_front();
      while (static_cast<int>(ltm_.size()) > options_.max_ltm) {
        ltm_.pop_front();
      }
    }
  }
  AdaptStmSize();
}

int64_t SamKnnLearner::MemoryBytes() const {
  int64_t per_sample = 0;
  if (!stm_.empty()) {
    per_sample = static_cast<int64_t>(stm_.front().x.size() *
                                      sizeof(double)) +
                 static_cast<int64_t>(sizeof(Sample));
  } else if (!ltm_.empty()) {
    per_sample = static_cast<int64_t>(ltm_.front().x.size() *
                                      sizeof(double)) +
                 static_cast<int64_t>(sizeof(Sample));
  }
  return per_sample *
         static_cast<int64_t>(stm_.size() + ltm_.size());
}

}  // namespace oebench
