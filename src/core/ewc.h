#ifndef OEBENCH_CORE_EWC_H_
#define OEBENCH_CORE_EWC_H_

#include <vector>

#include "core/naive_nn.h"

namespace oebench {

/// Elastic Weight Consolidation (Kirkpatrick et al., 2017) adapted to
/// streams as in the paper (§6.1): only the *previous window's* model and
/// Fisher information are kept (infinite streams cannot keep one per
/// task). Training on window k adds the quadratic penalty
/// lambda * F_(k-1) (theta - theta_(k-1))^2 to the gradient.
class EwcLearner : public NnLearnerBase {
 public:
  explicit EwcLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "EWC"; }
  int64_t MemoryBytes() const override;

 private:
  bool has_anchor_ = false;
  std::vector<Matrix> anchor_weights_;
  std::vector<std::vector<double>> anchor_biases_;
  std::vector<Matrix> fisher_weights_;
  std::vector<std::vector<double>> fisher_biases_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_EWC_H_
