#ifndef OEBENCH_CORE_CHAOS_H_
#define OEBENCH_CORE_CHAOS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"

namespace oebench {

/// Compute-side analogue of common/io_env's FaultSchedule: a
/// deterministic plan of *task* faults for the sweep engine's failure
/// domain. Where FaultSchedule makes the disk hostile, ChaosSchedule
/// makes the learners hostile — a task that throws, a task whose
/// metrics explode to NaN, a task that stalls, a seeded shower of
/// transient faults that succeed on retry. The sweep engine must
/// convert each into one structured TaskFailure costing one cell, never
/// the shard.
struct ChaosSchedule {
  /// Nth distinct task to start (1-based, in start order — exact with
  /// one worker thread) throws std::runtime_error on every attempt.
  int64_t throw_at_task = 0;
  /// Nth task's metrics are poisoned to NaN after the prequential run,
  /// tripping the engine's non-finite explosion detector.
  int64_t nan_at_task = 0;
  /// Nth task sleeps `slow_ms` milliseconds before running — long
  /// enough to trip a wall-clock watchdog, but the task still succeeds.
  int64_t slow_at_task = 0;
  int64_t slow_ms = 0;
  /// When transient_p > 0: each task identity independently draws a
  /// seeded Bernoulli(transient_p); drawn tasks throw TransientTaskError
  /// on their *first* attempt only, so the engine's in-process retry
  /// succeeds. The draw hangs off the identity (TaskSeed-style), never
  /// off scheduling, so it is bit-reproducible at any thread count.
  uint64_t transient_seed = 0;
  double transient_p = 0.0;

  /// Parses the --chaos-schedule= syntax: comma-separated clauses
  ///   throw-at-task=N | nan-at-task=N | slow-at-task=N:MS |
  ///   transient=SEED:P
  /// Rejects unknown clauses, malformed numbers and duplicate clauses.
  static Result<ChaosSchedule> Parse(std::string_view spec);

  /// Canonical rendering of the schedule (diagnostics, logs).
  std::string ToString() const;
};

/// Executes a ChaosSchedule against the tasks of one sweep. Thread-
/// safe; ordinals are assigned once per distinct task identity (a
/// retried attempt keeps its ordinal), so ordinal faults fire exactly
/// once. Wire into SweepConfig::chaos.
class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosSchedule& schedule);

  /// Called by the engine on the worker thread as an attempt of `task`
  /// begins. May sleep (slow-at-task), throw std::runtime_error
  /// (throw-at-task) or throw TransientTaskError (transient).
  void OnTaskStart(const TaskIdentity& task);

  /// Called by the engine after the prequential run; poisons the
  /// metrics of the nan-at-task ordinal to quiet NaN.
  void OnTaskResult(const TaskIdentity& task, EvalResult* result);

  /// Distinct tasks that have started at least one attempt.
  int64_t tasks_started() const;
  /// Faults injected so far (throws, poisons, stalls, transients).
  int64_t faults_injected() const;

 private:
  /// Ordinal of `task` (assigning the next one on first sight).
  int64_t OrdinalFor(const TaskIdentity& task);

  ChaosSchedule schedule_;
  mutable std::mutex mu_;
  std::map<std::string, int64_t> ordinals_;
  std::set<std::string> transient_fired_;
  int64_t next_ordinal_ = 0;
  int64_t faults_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_CHAOS_H_
