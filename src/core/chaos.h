#ifndef OEBENCH_CORE_CHAOS_H_
#define OEBENCH_CORE_CHAOS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"

namespace oebench {

/// Compute-side analogue of common/io_env's FaultSchedule: a
/// deterministic plan of *task* faults for the sweep engine's failure
/// domain. Where FaultSchedule makes the disk hostile, ChaosSchedule
/// makes the learners hostile — a task that throws, a task whose
/// metrics explode to NaN, a task that stalls, a seeded shower of
/// transient faults that succeed on retry. The sweep engine must
/// convert each into one structured TaskFailure costing one cell, never
/// the shard.
struct ChaosSchedule {
  /// Nth distinct task to start (1-based, in start order — exact with
  /// one worker thread) throws std::runtime_error on every attempt.
  int64_t throw_at_task = 0;
  /// Nth task's metrics are poisoned to NaN after the prequential run,
  /// tripping the engine's non-finite explosion detector.
  int64_t nan_at_task = 0;
  /// Nth task sleeps `slow_ms` milliseconds before running — long
  /// enough to trip a wall-clock watchdog, but the task still succeeds.
  int64_t slow_at_task = 0;
  int64_t slow_ms = 0;
  /// When transient_p > 0: each task identity independently draws a
  /// seeded Bernoulli(transient_p); drawn tasks throw TransientTaskError
  /// on their *first* attempt only, so the engine's in-process retry
  /// succeeds. The draw hangs off the identity (TaskSeed-style), never
  /// off scheduling, so it is bit-reproducible at any thread count.
  /// Shared with the serve injector, where the identity is the stream.
  uint64_t transient_seed = 0;
  double transient_p = 0.0;
  /// Serve-side clauses (ISSUE 9). Ordinals here are 1-based session
  /// *registration* order, not start order — sessions register before
  /// any worker runs, so injection is worker-count invariant by
  /// construction. The Nth registered session throws std::runtime_error
  /// on every activation attempt:
  int64_t throw_at_activation = 0;
  /// The Nth registered session's final prequential metrics are
  /// poisoned to NaN, tripping the serve engine's explosion detector.
  int64_t nan_at_record = 0;

  /// Parses the --chaos-schedule= syntax: comma-separated clauses
  ///   throw-at-task=N | nan-at-task=N | slow-at-task=N:MS |
  ///   transient=SEED:P | throw-at-activation=N | nan-at-record=N
  /// Rejects unknown clauses, malformed numbers and duplicate clauses.
  static Result<ChaosSchedule> Parse(std::string_view spec);

  /// True when any sweep-only clause (throw-at-task, nan-at-task,
  /// slow-at-task) is set. Drivers use these to reject clauses their
  /// engine would silently ignore; `transient` belongs to both worlds.
  bool has_sweep_clauses() const;
  /// True when any serve-only clause (throw-at-activation,
  /// nan-at-record) is set.
  bool has_serve_clauses() const;

  /// Canonical rendering of the schedule (diagnostics, logs).
  std::string ToString() const;
};

/// Executes a ChaosSchedule against the tasks of one sweep. Thread-
/// safe; ordinals are assigned once per distinct task identity (a
/// retried attempt keeps its ordinal), so ordinal faults fire exactly
/// once. Wire into SweepConfig::chaos.
class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosSchedule& schedule);

  /// Called by the engine on the worker thread as an attempt of `task`
  /// begins. May sleep (slow-at-task), throw std::runtime_error
  /// (throw-at-task) or throw TransientTaskError (transient).
  void OnTaskStart(const TaskIdentity& task);

  /// Called by the engine after the prequential run; poisons the
  /// metrics of the nan-at-task ordinal to quiet NaN.
  void OnTaskResult(const TaskIdentity& task, EvalResult* result);

  /// Distinct tasks that have started at least one attempt.
  int64_t tasks_started() const;
  /// Faults injected so far (throws, poisons, stalls, transients).
  int64_t faults_injected() const;

 private:
  /// Ordinal of `task` (assigning the next one on first sight).
  int64_t OrdinalFor(const TaskIdentity& task);

  ChaosSchedule schedule_;
  mutable std::mutex mu_;
  std::map<std::string, int64_t> ordinals_;
  std::set<std::string> transient_fired_;
  int64_t next_ordinal_ = 0;
  int64_t faults_ = 0;
};

/// Executes the serve-side clauses of a ChaosSchedule against live
/// stream sessions. Unlike ChaosInjector, ordinals are not assigned on
/// first sight: the serve engine passes each session's registration
/// ordinal (session id + 1), fixed before any worker runs, so the same
/// streams are faulted at any worker count. Wire into
/// ServerOptions::chaos.
class ServeChaosInjector {
 public:
  explicit ServeChaosInjector(const ChaosSchedule& schedule);

  /// Called on the worker thread as an activation attempt of session
  /// `ordinal` begins. throw-at-activation throws std::runtime_error on
  /// every attempt (the engine quarantines on the first); transient
  /// throws TransientTaskError once per drawn stream identity, on the
  /// first attempt only, so the session's in-process retry clears it.
  void OnActivation(int64_t ordinal, std::string_view stream);

  /// Called as session `ordinal` delivers its final EvalResult; poisons
  /// the nan-at-record ordinal's metrics to quiet NaN.
  void OnSessionFinish(int64_t ordinal, EvalResult* result);

  /// True when the schedule has any clause a serve engine can fire —
  /// lets the engine skip hook plumbing entirely when idle.
  bool active() const;

  /// Faults injected so far (throws, poisons, transients).
  int64_t faults_injected() const;

 private:
  ChaosSchedule schedule_;
  mutable std::mutex mu_;
  std::set<std::string> transient_fired_;
  int64_t faults_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_CHAOS_H_
