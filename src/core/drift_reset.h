#ifndef OEBENCH_CORE_DRIFT_RESET_H_
#define OEBENCH_CORE_DRIFT_RESET_H_

#include <memory>
#include <string>

#include "core/learner.h"
#include "drift/page_hinkley.h"

namespace oebench {

/// Detect-and-reset meta-learner — the adaptation strategy the paper
/// sketches in §2.2 ("apply drift detectors and re-train the model after
/// drift alerts"). Wraps any base learner; a Page-Hinkley test on the
/// per-window test losses raises the alarm, upon which the base learner
/// is rebuilt from scratch and trained on the current window only, so
/// stale pre-drift knowledge is dropped instead of averaged away.
class DriftResetLearner : public StreamLearner {
 public:
  /// `inner_name` is any MakeLearner name; `ph_lambda` tunes alarm
  /// sensitivity on the window-loss stream.
  DriftResetLearner(std::string inner_name, LearnerConfig config,
                    double ph_lambda = 0.3);

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override {
    return "DriftReset(" + inner_name_ + ")";
  }
  int64_t MemoryBytes() const override;

  int64_t resets() const { return resets_; }

 private:
  void RebuildInner();

  std::string inner_name_;
  LearnerConfig config_;
  double ph_lambda_;
  PreparedStream meta_;  // windows stay empty; Begin() metadata only
  std::unique_ptr<StreamLearner> inner_;
  PageHinkley detector_;
  double last_test_loss_ = -1.0;
  int64_t resets_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_DRIFT_RESET_H_
