#ifndef OEBENCH_CORE_ARF_H_
#define OEBENCH_CORE_ARF_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/learner.h"
#include "drift/adwin.h"
#include "models/hoeffding_tree.h"

namespace oebench {

/// Adaptive Random Forest (Gomes et al., 2017) for classification
/// streams. Each ensemble member is a Hoeffding tree over a random
/// feature subspace, trained with Poisson(6) online bagging. A per-tree
/// ADWIN on the member's error stream raises warnings (start training a
/// background tree) and drifts (replace the member with its background
/// tree). Regression is N/A, matching the paper's tables.
class ArfLearner : public StreamLearner {
 public:
  explicit ArfLearner(LearnerConfig config)
      : config_(std::move(config)), rng_(config_.seed) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "ARF"; }
  int64_t MemoryBytes() const override;

 private:
  struct Member {
    std::unique_ptr<HoeffdingTree> tree;
    std::unique_ptr<HoeffdingTree> background;
    AdwinAccuracyDetector detector;
  };

  std::unique_ptr<HoeffdingTree> NewTree(int64_t dim);
  int PredictRow(const double* row, int64_t dim) const;

  LearnerConfig config_;
  Rng rng_;
  int num_classes_ = 2;
  std::vector<Member> members_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_ARF_H_
