#ifndef OEBENCH_CORE_PARALLEL_EVAL_H_
#define OEBENCH_CORE_PARALLEL_EVAL_H_

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"

namespace oebench {

class ChaosInjector;  // core/chaos.h
class TaskWatchdog;   // common/watchdog.h

/// Deterministic parallel sweep engine for the (dataset x learner)
/// grids behind Tables 4 and 9 and the 55-dataset statistic
/// extraction. The determinism contract: every task's randomness
/// derives from the task's *identity* — (base seed, dataset, learner,
/// repeat) — never from submission order, completion order, or which
/// worker ran it. Results are therefore bit-identical for any thread
/// count, and the engine reassembles them in canonical order
/// (dataset-major, then learner, then repeat) before returning.

/// Derives the RNG seed of one prequential run from its identity via
/// Rng child-seed derivation: the identity tuple is hashed (FNV-1a)
/// into an Rng whose first child seed becomes the task seed. Two
/// tasks that differ in any component get decorrelated seeds; the same
/// task always gets the same seed.
uint64_t TaskSeed(uint64_t base_seed, const std::string& dataset,
                  const std::string& learner, int repeat);

/// The identity of one prequential run inside a sweep — the unit the
/// sweep subsystem (src/sweep) partitions, logs and merges. Everything
/// about the run derives from this triple plus the sweep's config.
struct TaskIdentity {
  std::string dataset;
  std::string learner;
  int repeat = 0;
};

/// Why one task produced no result. Each class has a different cost
/// and recovery story (see DESIGN.md "Failure domains"):
///  - kException:  the task body threw — permanent for this sweep; the
///                 cell is quarantined, everything else continues.
///  - kNonFinite:  the prequential metrics exploded to NaN/inf — the
///                 numbers exist but cannot be trusted or aggregated.
///  - kTransient:  a TransientTaskError survived every in-process
///                 retry; a later --retry-failed resume usually clears
///                 it.
///  - kPrepare:    the dataset's generation/preprocessing failed — the
///                 whole row is quarantined (every selected task of the
///                 dataset records one of these).
enum class TaskFailureKind {
  kException,
  kNonFinite,
  kTransient,
  kPrepare,
};

/// Stable wire name of a failure kind ("exception", "non-finite",
/// "transient", "prepare") — the result log's failure records use it.
const char* TaskFailureKindName(TaskFailureKind kind);
bool ParseTaskFailureKind(std::string_view text, TaskFailureKind* kind);

/// One task that failed instead of producing an EvalResult. The sweep
/// engine records these (and keeps going) rather than unwinding the
/// pool: one poison task costs one cell, not the shard.
struct TaskFailure {
  TaskIdentity task;
  TaskFailureKind kind = TaskFailureKind::kException;
  /// what() / Status message of the underlying failure (single line).
  std::string message;
  /// Wall-clock seconds burned on the task across all attempts.
  double elapsed_seconds = 0.0;
};

/// Throw this from task code (or a ChaosInjector) to signal a fault
/// that may clear if the same task is simply re-executed; the engine
/// retries such tasks in-process up to SweepConfig::task_attempts
/// before recording a TaskFailure{kTransient}.
class TransientTaskError : public std::runtime_error {
 public:
  explicit TransientTaskError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cross-cell computation reuse knobs (DESIGN.md "Computation reuse").
/// Both features preserve bit-identical results — reuse changes *how
/// much* work runs, never what any task computes:
///  - `prepare`: route stream generation + preprocessing through the
///    process-global PreparedStreamCache (sweep/reuse.h), so repeated
///    sweeps / SelfCheck passes / ablation grids over the same
///    (dataset, preprocessing config) share one immutable prepared
///    stream instead of re-preparing it.
///  - `warmstart`: epoch-grid ablations fork every grid value from one
///    snapshot trained at epochs=1 on the warm-up window (learners
///    reporting SupportsEpochFork only; everything else falls back to
///    full replay and is counted in reuse.warmstart_fallbacks).
struct ReuseOptions {
  bool prepare = false;
  bool warmstart = false;
  /// Byte budget of the prepared-stream cache (LRU beyond this).
  int64_t cache_bytes = 256ll << 20;

  bool any() const { return prepare || warmstart; }
};

/// Knobs of one sweep. `base_config.seed` is the sweep's base seed.
struct SweepConfig {
  LearnerConfig base_config;
  int repeats = 3;
  /// Worker threads. <= 1 runs every task inline on the calling
  /// thread (today's serial behaviour); results do not depend on this.
  int threads = 1;
  /// Preprocessing applied by the entry-based sweep / ParallelPrepare.
  PipelineOptions pipeline;
  /// Corpus scale used by the entry-based sweep.
  double scale = 0.03;
  /// When set, only tasks whose identity passes the filter are
  /// executed (the sweep subsystem's `--shard i/n` / resume path).
  /// Cells keep the runs that did execute; aggregates then cover those
  /// runs only — sharded callers reconstruct full cells by merging
  /// result logs, not from a shard's SweepOutcome.
  std::function<bool(const TaskIdentity&)> task_filter;
  /// Invoked once per executed task, on the worker thread that ran it,
  /// as soon as its prequential run finishes — the durable-result-log
  /// hook. Must be thread-safe; it runs concurrently with other tasks.
  std::function<void(const TaskIdentity&, const EvalResult&)> on_task_done;
  /// Polled (on the submitting thread) before each task submission and
  /// stream preparation; once it returns true, no further work is
  /// started. Already-submitted tasks finish and are reported. The
  /// sweep subsystem uses this to stop burning CPU the moment the
  /// durable log hits a permanent I/O failure — results that can no
  /// longer be persisted are not worth computing. Must be thread-safe.
  std::function<bool()> stop_requested;
  /// Invoked once per *failed* task (after retries are exhausted), on
  /// the worker thread — the failure-record log hook. Must be
  /// thread-safe. Failures also land in SweepOutcome::failures either
  /// way.
  std::function<void(const TaskFailure&)> on_task_failed;
  /// Total attempts per task: a TransientTaskError is retried
  /// in-process until this many attempts have run. Other failure kinds
  /// never retry (an exception or NaN explosion is deterministic —
  /// identical seed, identical data — so a retry would just repeat it).
  int task_attempts = 2;
  /// Compute-side fault injector (tests, --chaos-schedule). Not owned;
  /// null disables chaos.
  ChaosInjector* chaos = nullptr;
  /// When > 0, a wall-clock watchdog reports (once per task, on stderr
  /// or via on_overlong_task) any task running longer than this many
  /// milliseconds — without killing it; slow is not dead, and killing
  /// a worker would forfeit determinism.
  int watchdog_limit_ms = 0;
  /// Override for the watchdog's stderr report (tests). Called on the
  /// watchdog thread with the task identity and its elapsed seconds.
  std::function<void(const TaskIdentity&, double)> on_overlong_task;
  /// Computation-reuse knobs; default off reproduces the historical
  /// prepare-per-sweep behaviour exactly.
  ReuseOptions reuse;
};

/// One (dataset, learner) cell: the per-repeat prequential results in
/// repeat order plus the same aggregate RunRepeated reports. For an
/// inapplicable pair (e.g. ARF on regression) `repeated.not_applicable`
/// is true and `runs` is empty — no task is ever submitted for it.
struct SweepCell {
  RepeatedResult repeated;
  std::vector<EvalResult> runs;
  /// Tasks of this cell that failed (details in SweepOutcome::failures).
  /// A cell with failed_runs > 0 is quarantined: `runs` holds only the
  /// repeats that succeeded and the aggregates cover those alone, so
  /// renderers must flag the cell rather than print the partial number.
  int64_t failed_runs = 0;
};

/// One dataset's row: cells in the input learner order.
struct SweepRow {
  std::string dataset;
  std::vector<SweepCell> cells;
};

struct SweepOutcome {
  /// One row per input dataset, in input order.
  std::vector<SweepRow> rows;
  /// Prequential runs actually executed.
  int64_t tasks_run = 0;
  /// (dataset, learner) pairs short-circuited as not applicable
  /// before reaching the pool.
  int64_t pairs_skipped = 0;
  /// Streams actually generated + preprocessed by the entry-based
  /// sweep. Without a task_filter this equals the entry count; with a
  /// shard filter only the shard's datasets are prepared.
  int64_t streams_prepared = 0;
  /// Tasks that failed instead of producing a result, in canonical
  /// (dataset-major) order. tasks_failed == failures.size(); kept as a
  /// counter for symmetry with tasks_run. Failed prequential runs are
  /// included in tasks_run; quarantined-by-prepare tasks are not (they
  /// never started).
  std::vector<TaskFailure> failures;
  int64_t tasks_failed = 0;
};

/// Fans repeats x (stream x learner) prequential runs out across
/// `config.threads` workers. Each run gets a fresh learner seeded with
/// TaskSeed(base, stream.name, learner, repeat).
SweepOutcome ParallelSweep(const std::vector<PreparedStream>& streams,
                           const std::vector<std::string>& learners,
                           const SweepConfig& config);

/// Generates and preprocesses each spec as one task (a spec's
/// randomness is self-contained in `spec.seed`, so parallel generation
/// is deterministic too). `names`, when non-empty, overrides the
/// prepared streams' names (Table 3 short names); it must then match
/// `specs` in length. Returns one Result per spec, in spec order: a
/// generation/pipeline failure yields that entry's Status (prefixed
/// with the spec name) and touches nothing else — callers report the
/// bad dataset and continue with the rest, they are never aborted.
std::vector<Result<PreparedStream>> ParallelPrepare(
    const std::vector<StreamSpec>& specs, const PipelineOptions& options,
    int threads, const std::vector<std::string>& names = {});

/// The Table 9 shape: generate + prepare each corpus entry at
/// `config.scale` and sweep the learner grid, all on one pool, with
/// memory bounded by the number of streams in flight rather than the
/// corpus size: a stream's buffers are released as soon as its last
/// task completes, and preparation runs a small lookahead window ahead
/// of evaluation instead of materialising all entries up front.
/// Entries none of whose tasks pass `config.task_filter` are never
/// generated at all (their row's cells stay empty). Results are
/// bit-identical to preparing everything first — stream randomness is
/// self-contained in the spec seed, task randomness in TaskSeed.
SweepOutcome ParallelSweepEntries(const std::vector<CorpusEntry>& entries,
                                  const std::vector<std::string>& learners,
                                  const SweepConfig& config);

}  // namespace oebench

#endif  // OEBENCH_CORE_PARALLEL_EVAL_H_
