#include "core/naive_bayes_learner.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

void NaiveBayesLearner::Begin(const PreparedStream& stream) {
  OE_CHECK(stream.task == TaskType::kClassification)
      << "Naive-Bayes learner is classification-only";
  num_classes_ = stream.num_classes;
  dim_ = 0;
  class_weight_.assign(static_cast<size_t>(num_classes_), 0.0);
  sum_.clear();
  sum_sq_.clear();
}

int NaiveBayesLearner::PredictRow(const double* row) const {
  double total = 0.0;
  for (double w : class_weight_) total += w;
  if (total <= 0.0 || dim_ == 0) return 0;
  std::vector<double> log_like(static_cast<size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    size_t ci = static_cast<size_t>(c);
    double weight = class_weight_[ci];
    log_like[ci] = std::log((weight + 1.0) /
                            (total + static_cast<double>(num_classes_)));
    if (weight < 2.0) continue;  // not enough evidence for Gaussians
    for (int64_t f = 0; f < dim_; ++f) {
      size_t fi = static_cast<size_t>(f);
      double mean = sum_[ci][fi] / weight;
      double var =
          sum_sq_[ci][fi] / weight - mean * mean + 1e-9;
      if (var <= 0.0) var = 1e-9;
      double diff = row[f] - mean;
      log_like[ci] +=
          -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
    }
  }
  return ArgMax(log_like);
}

double NaiveBayesLearner::TestLoss(const WindowData& window) {
  if (window.features.rows() == 0) return 0.0;
  int64_t wrong = 0;
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    if (PredictRow(window.features.Row(r)) !=
        static_cast<int>(window.targets[static_cast<size_t>(r)])) {
      ++wrong;
    }
  }
  return static_cast<double>(wrong) /
         static_cast<double>(window.features.rows());
}

void NaiveBayesLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  if (dim_ == 0) {
    dim_ = window.features.cols();
    sum_.assign(static_cast<size_t>(num_classes_),
                std::vector<double>(static_cast<size_t>(dim_), 0.0));
    sum_sq_.assign(static_cast<size_t>(num_classes_),
                   std::vector<double>(static_cast<size_t>(dim_), 0.0));
  }
  // Exponential decay before absorbing the new window: the open
  // environment's answer to unbounded accumulation under drift.
  for (int c = 0; c < num_classes_; ++c) {
    size_t ci = static_cast<size_t>(c);
    class_weight_[ci] *= decay_;
    for (int64_t f = 0; f < dim_; ++f) {
      sum_[ci][static_cast<size_t>(f)] *= decay_;
      sum_sq_[ci][static_cast<size_t>(f)] *= decay_;
    }
  }
  for (int64_t r = 0; r < window.features.rows(); ++r) {
    const double* row = window.features.Row(r);
    size_t ci = static_cast<size_t>(
        static_cast<int>(window.targets[static_cast<size_t>(r)]));
    class_weight_[ci] += 1.0;
    for (int64_t f = 0; f < dim_; ++f) {
      sum_[ci][static_cast<size_t>(f)] += row[f];
      sum_sq_[ci][static_cast<size_t>(f)] += row[f] * row[f];
    }
  }
}

int64_t NaiveBayesLearner::MemoryBytes() const {
  return static_cast<int64_t>(
      (class_weight_.size() +
       2 * static_cast<size_t>(num_classes_) * static_cast<size_t>(dim_)) *
      sizeof(double));
}

}  // namespace oebench
