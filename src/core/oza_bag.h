#ifndef OEBENCH_CORE_OZA_BAG_H_
#define OEBENCH_CORE_OZA_BAG_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/learner.h"
#include "models/hoeffding_tree.h"

namespace oebench {

/// OzaBag — online bagging (Oza & Russell, 2001) over Hoeffding trees:
/// each member sees every sample Poisson(1) times. The drift-free
/// counterpart of ARF, here as the ablation baseline that isolates how
/// much ARF's per-tree ADWIN monitoring and background trees actually
/// buy under open-environment drift. Classification only.
class OzaBagLearner : public StreamLearner {
 public:
  explicit OzaBagLearner(LearnerConfig config)
      : config_(std::move(config)), rng_(config_.seed) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "OzaBag"; }
  int64_t MemoryBytes() const override;

 private:
  int PredictRow(const double* row, int64_t dim) const;

  LearnerConfig config_;
  Rng rng_;
  int num_classes_ = 2;
  std::vector<std::unique_ptr<HoeffdingTree>> members_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_OZA_BAG_H_
