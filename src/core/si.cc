#include "core/si.h"

namespace oebench {

void SiLearner::EnsureBuffers() {
  if (!importance_weights_.empty()) return;
  for (size_t l = 0; l < model().weights().size(); ++l) {
    importance_weights_.emplace_back(model().weights()[l].rows(),
                                     model().weights()[l].cols());
    importance_biases_.emplace_back(model().biases()[l].size(), 0.0);
    path_weights_.emplace_back(model().weights()[l].rows(),
                               model().weights()[l].cols());
    path_biases_.emplace_back(model().biases()[l].size(), 0.0);
  }
}

void SiLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;
  model().EnsureInitialized(window.features.cols());
  EnsureBuffers();

  // Snapshot the trajectory start and clear the path integral.
  std::vector<Matrix> start_weights = model().weights();
  std::vector<std::vector<double>> start_biases = model().biases();
  for (size_t l = 0; l < path_weights_.size(); ++l) {
    std::fill(path_weights_[l].data().begin(),
              path_weights_[l].data().end(), 0.0);
    std::fill(path_biases_[l].begin(), path_biases_[l].end(), 0.0);
  }

  const double lr = config_.learning_rate;
  Mlp::GradHooks hooks;
  hooks.param_hook = [this, lr](
                         const std::vector<Matrix>& weights,
                         const std::vector<std::vector<double>>& biases,
                         std::vector<Matrix>* weight_grads,
                         std::vector<std::vector<double>>* bias_grads) {
    const double lambda = config_.ewc_lambda;
    for (size_t l = 0; l < weights.size(); ++l) {
      auto& gw = (*weight_grads)[l].data();
      if (has_anchor_) {
        const auto& w = weights[l].data();
        const auto& aw = anchor_weights_[l].data();
        const auto& iw = importance_weights_[l].data();
        for (size_t i = 0; i < w.size(); ++i) {
          gw[i] += lambda * iw[i] * (w[i] - aw[i]);
        }
        for (size_t i = 0; i < biases[l].size(); ++i) {
          (*bias_grads)[l][i] += lambda * importance_biases_[l][i] *
                                 (biases[l][i] - anchor_biases_[l][i]);
        }
      }
      // Path integral: -g * delta(theta) = lr * g^2 under plain SGD.
      auto& pw = path_weights_[l].data();
      for (size_t i = 0; i < gw.size(); ++i) {
        pw[i] += lr * gw[i] * gw[i];
      }
      for (size_t i = 0; i < (*bias_grads)[l].size(); ++i) {
        double g = (*bias_grads)[l][i];
        path_biases_[l][i] += lr * g * g;
      }
    }
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(window.features, window.targets, &rng_, &hooks);
  }

  // Fold the window's path integral into the importance estimate, with a
  // geometric decay so infinite streams stay bounded, then pin the scale
  // (matching EwcLearner so `ewc_lambda` sweeps compare).
  double sum = 0.0;
  int64_t count = 0;
  for (size_t l = 0; l < path_weights_.size(); ++l) {
    for (size_t i = 0; i < path_weights_[l].data().size(); ++i) {
      double displacement = model().weights()[l].data()[i] -
                            start_weights[l].data()[i];
      double omega = path_weights_[l].data()[i] /
                     (displacement * displacement + kXi);
      double& slot = importance_weights_[l].data()[i];
      slot = 0.5 * slot + omega;
      sum += slot;
      ++count;
    }
    for (size_t i = 0; i < path_biases_[l].size(); ++i) {
      double displacement =
          model().biases()[l][i] - start_biases[l][i];
      double omega = path_biases_[l][i] /
                     (displacement * displacement + kXi);
      double& slot = importance_biases_[l][i];
      slot = 0.5 * slot + omega;
      sum += slot;
      ++count;
    }
  }
  if (sum > 0.0 && count > 0) {
    double scale = 1e-6 * static_cast<double>(count) / sum;
    for (Matrix& m : importance_weights_) {
      for (double& v : m.data()) v *= scale;
    }
    for (auto& b : importance_biases_) {
      for (double& v : b) v *= scale;
    }
  }
  anchor_weights_ = model().weights();
  anchor_biases_ = model().biases();
  has_anchor_ = true;
}

int64_t SiLearner::MemoryBytes() const {
  int64_t bytes = NnLearnerBase::MemoryBytes();
  for (const Matrix& m : anchor_weights_) {
    bytes += m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const Matrix& m : importance_weights_) {
    bytes += 2 * m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const auto& b : anchor_biases_) {
    bytes += static_cast<int64_t>(b.size() * sizeof(double));
  }
  for (const auto& b : importance_biases_) {
    bytes += 2 * static_cast<int64_t>(b.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace oebench
