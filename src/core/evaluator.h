#ifndef OEBENCH_CORE_EVALUATOR_H_
#define OEBENCH_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/learner.h"

namespace oebench {

/// Outcome of one prequential run of one learner on one stream.
struct EvalResult {
  std::string learner;
  std::string dataset;
  /// Mean test loss over windows 1..n-1 (window 0 is the warm-up, §6.1).
  double mean_loss = 0.0;
  /// Fading-factor prequential loss (Gama, Sebastiao & Rodrigues, 2013 —
  /// the paper's reference on evaluating stream learners): recent
  /// windows weigh more, factor 0.98 per window. Emphasises how well the
  /// learner tracks the *current* environment.
  double faded_loss = 0.0;
  /// Test loss per evaluated window (index 0 = window 1's loss).
  std::vector<double> per_window_loss;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  /// Items processed per second across test + train (Table 5 analogue).
  double throughput = 0.0;
  /// Total items seen across all windows (numerator of `throughput`).
  int64_t items_processed = 0;
  /// Peak model memory over the run (Table 6 analogue).
  int64_t peak_memory_bytes = 0;
};

/// Pooled throughput over several runs: total items / total seconds,
/// never a mean of per-run ratios (a sub-timer-resolution run whose
/// ratio is guarded to 0 would deflate that mean). Runs without an item
/// count (e.g. reloaded from a result log) contribute
/// `throughput * seconds` items. Always finite; 0 when no time was
/// accumulated.
double AggregateThroughput(const std::vector<EvalResult>& runs);

/// Runs the test-then-train protocol (§6.1): train on window 0, then for
/// each later window test first, then train. A non-finite test loss is
/// recorded as-is (the paper reports NN loss exploding on extreme
/// outliers, §5.3) but clamped out of the mean so one window cannot make
/// the aggregate meaningless; `mean_loss` averages finite windows only.
EvalResult RunPrequential(StreamLearner* learner,
                          const PreparedStream& stream);

/// Warm-start variant: continues the protocol on a learner whose state
/// already covers windows [0, windows_trained) — the caller has run
/// Begin() and restored a snapshot (StreamLearner::LoadState) taken at
/// that point of the same stream. Testing resumes at
/// max(windows_trained, 1), so with windows_trained == 1 (fork right
/// after the warm-up window) the returned per_window_loss, mean_loss and
/// faded_loss are bit-identical to a cold RunPrequential of the same
/// learner state. `items_processed` still counts every window — parity
/// with the cold run — while train/test_seconds cover only the resumed
/// windows. `prefix_peak_memory` seeds peak_memory_bytes with the peak
/// observed while the snapshot's prefix was trained.
EvalResult ResumePrequential(StreamLearner* learner,
                             const PreparedStream& stream,
                             size_t windows_trained,
                             int64_t prefix_peak_memory);

/// Convenience: repeats RunPrequential with seeds {base, base+1, ...} on
/// freshly constructed learners, returning mean and stddev of mean_loss —
/// the "three random seeds" protocol of the paper's tables.
struct RepeatedResult {
  std::string learner;
  std::string dataset;
  double loss_mean = 0.0;
  double loss_stddev = 0.0;
  double throughput = 0.0;
  int64_t peak_memory_bytes = 0;
  bool not_applicable = false;  // e.g. ARF on regression
};
RepeatedResult RunRepeated(const std::string& learner_name,
                           const LearnerConfig& base_config,
                           const PreparedStream& stream, int repeats = 3);

}  // namespace oebench

#endif  // OEBENCH_CORE_EVALUATOR_H_
