#ifndef OEBENCH_CORE_LEARNER_H_
#define OEBENCH_CORE_LEARNER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "preprocess/pipeline.h"

namespace oebench {

/// Hyper-parameters shared by the benchmark learners, defaulting to the
/// paper's §6.1 setup: MLP [32,16,8], 10 epochs, batch 64, lr 0.01,
/// exemplar buffer 100, ensembles of 5.
struct LearnerConfig {
  std::vector<int> hidden_sizes = {32, 16, 8};
  int epochs = 10;
  int batch_size = 64;
  double learning_rate = 0.01;
  /// EWC regularisation factor (paper tunes {1e3, 1e4, 1e5}). The
  /// EwcLearner pins the Fisher scale so this range behaves as in the
  /// paper: small values act like naive training, huge values explode.
  double ewc_lambda = 1e4;
  /// LwF regularisation factor (paper tunes {0.01, 0.1, 1}).
  double lwf_lambda = 0.1;
  /// iCaRL exemplar buffer size.
  int buffer_size = 100;
  /// SEA / ARF ensemble size; GBDT tree count.
  int ensemble_size = 5;
  int tree_max_depth = 12;
  int gbdt_max_depth = 4;
  uint64_t seed = 1;
};

/// A stream learner evaluated test-then-train (§6.1): for every window
/// after the warm-up window the evaluator first calls TestLoss, then
/// TrainWindow.
class StreamLearner {
 public:
  virtual ~StreamLearner() = default;

  /// Called once with stream metadata before any window.
  virtual void Begin(const PreparedStream& stream) = 0;

  /// Loss of the *current* model on an unseen window: error rate for
  /// classification, MSE for regression.
  virtual double TestLoss(const WindowData& window) = 0;

  /// Updates the model with the window's data.
  virtual void TrainWindow(const WindowData& window) = 0;

  /// Display name ("Naive-NN", "EWC", ..., matching the paper's tables).
  virtual std::string name() const = 0;

  /// Live memory estimate of the model state (Table 6 analogue).
  virtual int64_t MemoryBytes() const = 0;

  /// Warm-start snapshot protocol (sweep/reuse, DESIGN.md "Computation
  /// reuse"). A learner that reports SupportsSnapshot() must serialise
  /// its *complete* mid-stream state — model parameters and any RNG —
  /// such that a freshly constructed learner with the same config,
  /// after Begin() on the same stream and LoadState(), continues
  /// bit-identically to the saved one. Learners carrying auxiliary
  /// state the text serialisers cannot capture (Fisher information,
  /// frozen previous models, exemplar buffers, ensembles) keep the
  /// default false and warm starts fall back to full replay for them.
  virtual bool SupportsSnapshot() const { return false; }

  /// True only when TrainWindow(config.epochs = k) is observationally
  /// identical to k successive TrainWindow calls at epochs = 1 on the
  /// same window — the property that lets an epoch-grid ablation fork
  /// every grid value from one shared trained prefix. Implies
  /// SupportsSnapshot().
  virtual bool SupportsEpochFork() const { return false; }

  virtual Status SaveState(std::ostream* /*out*/) const {
    return Status::NotImplemented(name() + " does not support snapshots");
  }
  virtual Status LoadState(std::istream* /*in*/) {
    return Status::NotImplemented(name() + " does not support snapshots");
  }
};

/// Names accepted by MakeLearner, in the paper's Table 4 column order.
std::vector<std::string> AllLearnerNames(TaskType task);

/// Extension learners beyond the paper's ten (§A.1 regularisers and the
/// §2.2 detect-and-reset strategy): "MAS", "SI", "DriftReset-NN",
/// "DriftReset-DT", plus "SAM-kNN" and "OzaBag" for classification streams.
std::vector<std::string> ExtendedLearnerNames(TaskType task);

/// Factory by paper name: "Naive-NN", "EWC", "LwF", "iCaRL", "SEA-NN",
/// "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF" — plus the
/// extension names above. ARF with a regression task returns an error
/// (N/A in the paper).
Result<std::unique_ptr<StreamLearner>> MakeLearner(
    const std::string& name, const LearnerConfig& config, TaskType task,
    int num_classes);

/// Mean loss of predictions vs targets under the task's metric: error
/// rate (classification, predictions are class ids) or MSE (regression).
double TaskLoss(TaskType task, const std::vector<double>& predictions,
                const std::vector<double>& targets);

}  // namespace oebench

#endif  // OEBENCH_CORE_LEARNER_H_
