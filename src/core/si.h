#ifndef OEBENCH_CORE_SI_H_
#define OEBENCH_CORE_SI_H_

#include <vector>

#include "core/naive_nn.h"

namespace oebench {

/// Synaptic Intelligence / PathInt (Zenke, Poole & Ganguli, 2017) — an
/// extension learner from the paper's §A.1 survey. Parameter importance
/// is the per-parameter contribution to the loss decrease along the
/// training trajectory: omega_i accumulates -g_i * delta(theta_i) during
/// SGD (= lr * g_i^2 for plain SGD), and at each window boundary
/// Omega_i = omega_i / ((theta_end - theta_start)^2 + xi) feeds the EWC
/// style quadratic penalty. Stream-adapted like the paper adapts EWC:
/// Omega decays geometrically instead of growing without bound.
class SiLearner : public NnLearnerBase {
 public:
  explicit SiLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "SI"; }
  int64_t MemoryBytes() const override;

 private:
  static constexpr double kXi = 1e-3;

  void EnsureBuffers();

  bool has_anchor_ = false;
  std::vector<Matrix> anchor_weights_;
  std::vector<std::vector<double>> anchor_biases_;
  std::vector<Matrix> importance_weights_;
  std::vector<std::vector<double>> importance_biases_;
  // Path-integral accumulators for the window in progress.
  std::vector<Matrix> path_weights_;
  std::vector<std::vector<double>> path_biases_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_SI_H_
