#ifndef OEBENCH_CORE_MAS_H_
#define OEBENCH_CORE_MAS_H_

#include <vector>

#include "core/naive_nn.h"

namespace oebench {

/// Memory Aware Synapses (Aljundi et al., 2018) — an extension learner
/// from the paper's §A.1 survey of regularisation-based incremental
/// learning. Like EWC it penalises movement of important parameters, but
/// importance is the *unsupervised* sensitivity of the model output:
/// Omega_i = E[ |d ||f(x)||^2 / d theta_i| ]. Stream-adapted the same
/// way the paper adapts EWC: only the previous window's anchor and
/// importance are kept, and the importance scale is pinned so the shared
/// `ewc_lambda` range behaves consistently.
class MasLearner : public NnLearnerBase {
 public:
  explicit MasLearner(LearnerConfig config)
      : NnLearnerBase(std::move(config)) {}

  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "MAS"; }
  int64_t MemoryBytes() const override;

 private:
  bool has_anchor_ = false;
  std::vector<Matrix> anchor_weights_;
  std::vector<std::vector<double>> anchor_biases_;
  std::vector<Matrix> importance_weights_;
  std::vector<std::vector<double>> importance_biases_;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_MAS_H_
