#ifndef OEBENCH_CORE_RECOMMENDATION_H_
#define OEBENCH_CORE_RECOMMENDATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "models/decision_tree.h"
#include "dataframe/table.h"
#include "streamgen/corpus.h"

namespace oebench {

/// The paper's Figure 9 decision tree, encoded from §6.2's narrative:
/// which algorithm to reach for given a scenario's task and its
/// drift / anomaly / missing-value levels. `prefer_trees` selects the
/// tree-family branch (tight time/memory budgets, §6.3).
std::string RecommendAlgorithm(TaskType task, Level drift, Level anomaly,
                               Level missing, bool prefer_trees = false);

/// Data-driven counterpart: the learner with the lowest mean loss among a
/// set of results for one dataset (ties break toward the earlier entry,
/// N/A entries skipped).
std::string BestAlgorithm(const std::vector<RepeatedResult>& results);

/// One dataset's scenario descriptor plus its measured winner — the raw
/// material Figure 9 is synthesised from ("based on the results of all
/// 55 datasets, we synthesize our recommendations ... into a decision
/// tree", §6.2).
struct ScenarioOutcome {
  TaskType task = TaskType::kRegression;
  Level drift = Level::kLow;
  Level anomaly = Level::kLow;
  Level missing = Level::kLow;
  std::string winner;
};

/// A derived recommendation tree: fits a shallow CART over the scenario
/// features (task, drift, anomaly, missing) with the measured winner as
/// the label, reproducing the paper's synthesis step mechanically.
class DerivedRecommendation {
 public:
  /// Fits the tree; needs at least 2 outcomes and 2 distinct winners
  /// (degenerate inputs yield a constant recommendation).
  static Result<DerivedRecommendation> Fit(
      const std::vector<ScenarioOutcome>& outcomes);

  /// Recommends an algorithm for a scenario.
  std::string Recommend(TaskType task, Level drift, Level anomaly,
                        Level missing) const;

  /// Fraction of the training outcomes whose winner the tree reproduces.
  double TrainingAccuracy() const { return training_accuracy_; }

  /// The distinct winner labels, index-aligned with the tree's classes.
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  DerivedRecommendation() = default;

  static std::vector<double> Featurize(TaskType task, Level drift,
                                       Level anomaly, Level missing);

  std::shared_ptr<const DecisionTree> tree_;
  std::vector<std::string> labels_;
  double training_accuracy_ = 0.0;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_RECOMMENDATION_H_
