#include "core/chaos.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace oebench {

namespace {

bool ParsePositive(std::string_view text, int64_t* out) {
  if (!ParseInt64(text, out)) return false;
  return *out >= 1;
}

/// Canonical identity key, same shape as the sweep subsystem's task
/// keys ("dataset|learner|repeat").
std::string IdentityKey(const TaskIdentity& task) {
  return task.dataset + "|" + task.learner + "|" +
         StrFormat("%d", task.repeat);
}

}  // namespace

Result<ChaosSchedule> ChaosSchedule::Parse(std::string_view spec) {
  ChaosSchedule schedule;
  bool seen_throw = false, seen_nan = false, seen_slow = false,
       seen_transient = false, seen_throw_activation = false,
       seen_nan_record = false;
  for (const std::string& clause : Split(spec, ',')) {
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      return Status::InvalidArgument("bad chaos clause '" + clause +
                                     "' (want key=value)");
    }
    std::string key = clause.substr(0, eq);
    std::string value = clause.substr(eq + 1);
    if (key == "throw-at-task" && !seen_throw) {
      if (!ParsePositive(value, &schedule.throw_at_task)) {
        return Status::InvalidArgument("throw-at-task needs N >= 1, got '" +
                                       value + "'");
      }
      seen_throw = true;
    } else if (key == "nan-at-task" && !seen_nan) {
      if (!ParsePositive(value, &schedule.nan_at_task)) {
        return Status::InvalidArgument("nan-at-task needs N >= 1, got '" +
                                       value + "'");
      }
      seen_nan = true;
    } else if (key == "slow-at-task" && !seen_slow) {
      size_t colon = value.find(':');
      if (colon == std::string::npos ||
          !ParsePositive(value.substr(0, colon), &schedule.slow_at_task) ||
          !ParsePositive(value.substr(colon + 1), &schedule.slow_ms)) {
        return Status::InvalidArgument(
            "slow-at-task needs N:MS with N, MS >= 1, got '" + value + "'");
      }
      seen_slow = true;
    } else if (key == "throw-at-activation" && !seen_throw_activation) {
      if (!ParsePositive(value, &schedule.throw_at_activation)) {
        return Status::InvalidArgument(
            "throw-at-activation needs N >= 1, got '" + value + "'");
      }
      seen_throw_activation = true;
    } else if (key == "nan-at-record" && !seen_nan_record) {
      if (!ParsePositive(value, &schedule.nan_at_record)) {
        return Status::InvalidArgument("nan-at-record needs N >= 1, got '" +
                                       value + "'");
      }
      seen_nan_record = true;
    } else if (key == "transient" && !seen_transient) {
      size_t colon = value.find(':');
      double p = 0.0;
      if (colon == std::string::npos ||
          !ParseUint64(value.substr(0, colon), &schedule.transient_seed) ||
          !ParseDouble(value.substr(colon + 1), &p) || !(p >= 0.0) ||
          !(p <= 1.0)) {
        return Status::InvalidArgument(
            "transient needs SEED:P with 0 <= P <= 1, got '" + value + "'");
      }
      schedule.transient_p = p;
      seen_transient = true;
    } else {
      return Status::InvalidArgument("unknown or repeated chaos clause '" +
                                     clause + "'");
    }
  }
  return schedule;
}

std::string ChaosSchedule::ToString() const {
  std::vector<std::string> clauses;
  if (throw_at_task > 0) {
    clauses.push_back(StrFormat("throw-at-task=%lld",
                                static_cast<long long>(throw_at_task)));
  }
  if (nan_at_task > 0) {
    clauses.push_back(StrFormat("nan-at-task=%lld",
                                static_cast<long long>(nan_at_task)));
  }
  if (slow_at_task > 0) {
    clauses.push_back(StrFormat("slow-at-task=%lld:%lld",
                                static_cast<long long>(slow_at_task),
                                static_cast<long long>(slow_ms)));
  }
  if (transient_p > 0.0) {
    clauses.push_back(StrFormat(
        "transient=%llu:%g",
        static_cast<unsigned long long>(transient_seed), transient_p));
  }
  if (throw_at_activation > 0) {
    clauses.push_back(
        StrFormat("throw-at-activation=%lld",
                  static_cast<long long>(throw_at_activation)));
  }
  if (nan_at_record > 0) {
    clauses.push_back(StrFormat("nan-at-record=%lld",
                                static_cast<long long>(nan_at_record)));
  }
  return Join(clauses, ",");
}

bool ChaosSchedule::has_sweep_clauses() const {
  return throw_at_task > 0 || nan_at_task > 0 || slow_at_task > 0;
}

bool ChaosSchedule::has_serve_clauses() const {
  return throw_at_activation > 0 || nan_at_record > 0;
}

ChaosInjector::ChaosInjector(const ChaosSchedule& schedule)
    : schedule_(schedule) {}

int64_t ChaosInjector::OrdinalFor(const TaskIdentity& task) {
  // Caller holds mu_.
  auto [it, inserted] = ordinals_.try_emplace(IdentityKey(task), 0);
  if (inserted) it->second = ++next_ordinal_;
  return it->second;
}

void ChaosInjector::OnTaskStart(const TaskIdentity& task) {
  int64_t ordinal;
  bool do_throw = false, do_slow = false, do_transient = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordinal = OrdinalFor(task);
    do_throw = ordinal == schedule_.throw_at_task;
    do_slow = ordinal == schedule_.slow_at_task;
    if (schedule_.transient_p > 0.0) {
      // Identity-keyed draw: the same task draws the same fate at any
      // thread count; the fault fires on the first attempt only, so
      // the engine's in-process retry clears it.
      const std::string key = IdentityKey(task);
      if (transient_fired_.count(key) == 0) {
        Rng rng(TaskSeed(schedule_.transient_seed, task.dataset,
                         task.learner, task.repeat));
        if (rng.Bernoulli(schedule_.transient_p)) {
          transient_fired_.insert(key);
          do_transient = true;
        }
      }
    }
    if (do_throw || do_slow || do_transient) ++faults_;
  }
  if (do_slow) {
    std::this_thread::sleep_for(std::chrono::milliseconds(schedule_.slow_ms));
  }
  if (do_throw) {
    throw std::runtime_error(StrFormat(
        "injected chaos throw on task #%lld (%s)",
        static_cast<long long>(ordinal), IdentityKey(task).c_str()));
  }
  if (do_transient) {
    throw TransientTaskError(StrFormat(
        "injected transient chaos fault on %s (seeded, clears on retry)",
        IdentityKey(task).c_str()));
  }
}

void ChaosInjector::OnTaskResult(const TaskIdentity& task,
                                 EvalResult* result) {
  bool poison = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (schedule_.nan_at_task > 0 &&
        OrdinalFor(task) == schedule_.nan_at_task) {
      poison = true;
      ++faults_;
    }
  }
  if (poison) {
    result->mean_loss = std::numeric_limits<double>::quiet_NaN();
    result->faded_loss = std::numeric_limits<double>::quiet_NaN();
  }
}

int64_t ChaosInjector::tasks_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ordinal_;
}

int64_t ChaosInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

ServeChaosInjector::ServeChaosInjector(const ChaosSchedule& schedule)
    : schedule_(schedule) {}

bool ServeChaosInjector::active() const {
  return schedule_.has_serve_clauses() || schedule_.transient_p > 0.0;
}

void ServeChaosInjector::OnActivation(int64_t ordinal,
                                      std::string_view stream) {
  bool do_throw = ordinal == schedule_.throw_at_activation;
  bool do_transient = false;
  if (do_throw || schedule_.transient_p > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (schedule_.transient_p > 0.0) {
      // Stream-identity-keyed draw, same sticky machinery as the sweep
      // injector: the same streams draw the same fate at any worker
      // count, and a drawn stream faults on one activation only so the
      // session's in-process retry clears it.
      const std::string key(stream);
      if (transient_fired_.count(key) == 0) {
        Rng rng(TaskSeed(schedule_.transient_seed, key, "serve",
                         static_cast<int>(ordinal)));
        if (rng.Bernoulli(schedule_.transient_p)) {
          transient_fired_.insert(key);
          do_transient = true;
        }
      }
    }
    if (do_throw || do_transient) ++faults_;
  }
  if (do_throw) {
    throw std::runtime_error(
        StrFormat("injected chaos throw on session #%lld (%.*s)",
                  static_cast<long long>(ordinal),
                  static_cast<int>(stream.size()), stream.data()));
  }
  if (do_transient) {
    throw TransientTaskError(StrFormat(
        "injected transient chaos fault on session #%lld (%.*s), clears "
        "on retry",
        static_cast<long long>(ordinal), static_cast<int>(stream.size()),
        stream.data()));
  }
}

void ServeChaosInjector::OnSessionFinish(int64_t ordinal,
                                         EvalResult* result) {
  if (schedule_.nan_at_record == 0 || ordinal != schedule_.nan_at_record) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++faults_;
  }
  result->mean_loss = std::numeric_limits<double>::quiet_NaN();
  result->faded_loss = std::numeric_limits<double>::quiet_NaN();
}

int64_t ServeChaosInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

}  // namespace oebench
