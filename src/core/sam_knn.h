#ifndef OEBENCH_CORE_SAM_KNN_H_
#define OEBENCH_CORE_SAM_KNN_H_

#include <deque>
#include <vector>

#include "core/learner.h"

namespace oebench {

/// SAM-kNN — k-nearest-neighbour classification with Self-Adjusting
/// Memory (Losing, Hammer & Wersing, 2016; the paper's reference [54],
/// whose Rialto dataset is part of the related-work discussion). Two
/// memories cooperate:
///
///  * a short-term memory (STM) of the most recent samples whose size is
///    re-chosen at every window boundary by minimising the interleaved
///    test-then-train error over candidate suffix lengths (the
///    self-adjustment that tracks drift), and
///  * a long-term memory (LTM) that archives samples evicted from the
///    STM, *cleaned* against the current STM: an archived sample whose
///    label disagrees with the STM's local neighbourhood is discarded as
///    stale knowledge.
///
/// Prediction consults whichever memory (STM, LTM, or their union)
/// currently has the lowest interleaved error. Classification only.
class SamKnnLearner : public StreamLearner {
 public:
  struct Options {
    int k = 5;
    int max_stm = 800;
    int min_stm = 50;
    int max_ltm = 1600;
  };

  explicit SamKnnLearner(LearnerConfig config)
      : SamKnnLearner(std::move(config), Options()) {}
  SamKnnLearner(LearnerConfig config, Options options)
      : config_(std::move(config)), options_(options) {}

  void Begin(const PreparedStream& stream) override;
  double TestLoss(const WindowData& window) override;
  void TrainWindow(const WindowData& window) override;
  std::string name() const override { return "SAM-kNN"; }
  int64_t MemoryBytes() const override;

  int64_t stm_size() const { return static_cast<int64_t>(stm_.size()); }
  int64_t ltm_size() const { return static_cast<int64_t>(ltm_.size()); }

 private:
  struct Sample {
    std::vector<double> x;
    int label = 0;
  };
  using Memory = std::deque<Sample>;

  int PredictWith(const Memory& memory, const double* row) const;
  int Predict(const double* row) const;
  /// Interleaved (leave-one-out style) error of `memory` on the most
  /// recent STM samples.
  double MemoryError(const Memory& memory) const;
  /// Shrinks the STM to the suffix length with the lowest interleaved
  /// error among {full, 1/2, 1/4, ...}, archiving the evicted prefix.
  void AdaptStmSize();
  /// Drops LTM samples contradicted by the current STM neighbourhoods.
  void CleanLtm();

  LearnerConfig config_;
  Options options_;
  int num_classes_ = 2;
  Memory stm_;
  Memory ltm_;
  // Running interleaved error estimates used for memory arbitration.
  double stm_error_ = 0.0;
  double ltm_error_ = 0.0;
  double both_error_ = 0.0;
  int64_t arbitration_count_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_CORE_SAM_KNN_H_
