#include "core/mas.h"

namespace oebench {

namespace {

/// Rescales the importance buffers to a mean of 1e-6 (the same scale
/// pinning EwcLearner applies to its Fisher diagonal) so lambda sweeps
/// behave identically across the regularisation family.
void PinImportanceScale(std::vector<Matrix>* weights,
                        std::vector<std::vector<double>>* biases) {
  double sum = 0.0;
  int64_t count = 0;
  for (const Matrix& m : *weights) {
    for (double v : m.data()) sum += v;
    count += m.size();
  }
  for (const auto& b : *biases) {
    for (double v : b) sum += v;
    count += static_cast<int64_t>(b.size());
  }
  if (sum <= 0.0 || count == 0) return;
  double scale = 1e-6 * static_cast<double>(count) / sum;
  for (Matrix& m : *weights) {
    for (double& v : m.data()) v *= scale;
  }
  for (auto& b : *biases) {
    for (double& v : b) v *= scale;
  }
}

}  // namespace

void MasLearner::TrainWindow(const WindowData& window) {
  if (window.features.rows() == 0) return;

  Mlp::GradHooks hooks;
  if (has_anchor_) {
    hooks.param_hook = [this](const std::vector<Matrix>& weights,
                              const std::vector<std::vector<double>>& biases,
                              std::vector<Matrix>* weight_grads,
                              std::vector<std::vector<double>>* bias_grads) {
      const double lambda = config_.ewc_lambda;
      for (size_t l = 0; l < weights.size(); ++l) {
        const auto& w = weights[l].data();
        const auto& aw = anchor_weights_[l].data();
        const auto& iw = importance_weights_[l].data();
        auto& gw = (*weight_grads)[l].data();
        for (size_t i = 0; i < w.size(); ++i) {
          gw[i] += lambda * iw[i] * (w[i] - aw[i]);
        }
        for (size_t i = 0; i < biases[l].size(); ++i) {
          (*bias_grads)[l][i] += lambda * importance_biases_[l][i] *
                                 (biases[l][i] - anchor_biases_[l][i]);
        }
      }
    };
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    model().TrainEpoch(window.features, window.targets, &rng_,
                       has_anchor_ ? &hooks : nullptr);
  }

  model().ComputeOutputNormGradients(window.features, &importance_weights_,
                                     &importance_biases_);
  PinImportanceScale(&importance_weights_, &importance_biases_);
  anchor_weights_ = model().weights();
  anchor_biases_ = model().biases();
  has_anchor_ = true;
}

int64_t MasLearner::MemoryBytes() const {
  int64_t bytes = NnLearnerBase::MemoryBytes();
  for (const Matrix& m : anchor_weights_) {
    bytes += m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const Matrix& m : importance_weights_) {
    bytes += m.size() * static_cast<int64_t>(sizeof(double));
  }
  for (const auto& b : anchor_biases_) {
    bytes += static_cast<int64_t>(b.size() * sizeof(double));
  }
  for (const auto& b : importance_biases_) {
    bytes += static_cast<int64_t>(b.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace oebench
