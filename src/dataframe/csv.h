#ifndef OEBENCH_DATAFRAME_CSV_H_
#define OEBENCH_DATAFRAME_CSV_H_

#include <string>

#include "common/status.h"
#include "dataframe/table.h"

namespace oebench {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  /// Quote character for RFC-4180-style quoted fields (embedded
  /// delimiters/newlines, doubled-quote escapes). '\0' — the default —
  /// disables quoting entirely and preserves the legacy line-split
  /// semantics byte for byte.
  char quote = '\0';
  /// First row holds column names.
  bool has_header = true;
  /// When a column has any non-numeric, non-missing cell it is parsed as
  /// categorical; otherwise numeric. Missing markers become NaN / missing
  /// codes.
  bool infer_types = true;
};

/// Reads a CSV file into a Table. Column types are inferred from the full
/// contents (two-pass). Real OEBench datasets are shipped as CSVs; this is
/// also how users feed their own streams into the pipeline.
Result<Table> ReadCsv(const std::string& path,
                      const CsvReadOptions& options = {});

/// Parses CSV content from a string (used by tests).
Result<Table> ReadCsvFromString(const std::string& content,
                                const CsvReadOptions& options = {});

/// Writes a table as CSV (missing cells become empty fields).
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace oebench

#endif  // OEBENCH_DATAFRAME_CSV_H_
