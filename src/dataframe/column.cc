#include "dataframe/column.h"

#include <cmath>

namespace oebench {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "?";
}

Column Column::Numeric(std::string name) {
  return Column(std::move(name), ColumnType::kNumeric);
}

Column Column::Categorical(std::string name,
                           std::vector<std::string> categories) {
  Column col(std::move(name), ColumnType::kCategorical);
  col.categories_ = std::move(categories);
  for (size_t i = 0; i < col.categories_.size(); ++i) {
    col.category_index_[col.categories_[i]] = static_cast<int32_t>(i);
  }
  return col;
}

void Column::AppendCategory(const std::string& label) {
  OE_DCHECK(type_ == ColumnType::kCategorical);
  auto it = category_index_.find(label);
  int32_t code;
  if (it == category_index_.end()) {
    code = static_cast<int32_t>(categories_.size());
    categories_.push_back(label);
    category_index_[label] = code;
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

void Column::AppendCode(int32_t code) {
  OE_DCHECK(type_ == ColumnType::kCategorical);
  OE_DCHECK(code == kMissingCode ||
            code < static_cast<int32_t>(categories_.size()))
      << "code " << code << " outside dictionary of column " << name_;
  codes_.push_back(code);
}

bool Column::IsMissing(int64_t i) const {
  if (type_ == ColumnType::kNumeric) {
    return std::isnan(numeric_[static_cast<size_t>(i)]);
  }
  return codes_[static_cast<size_t>(i)] == kMissingCode;
}

int64_t Column::CountMissing() const {
  int64_t count = 0;
  for (int64_t i = 0; i < size(); ++i) {
    if (IsMissing(i)) ++count;
  }
  return count;
}

Column Column::Slice(int64_t begin, int64_t end) const {
  OE_CHECK(begin >= 0 && begin <= end && end <= size());
  Column out(name_, type_);
  if (type_ == ColumnType::kNumeric) {
    out.numeric_.assign(numeric_.begin() + begin, numeric_.begin() + end);
  } else {
    out.codes_.assign(codes_.begin() + begin, codes_.begin() + end);
    out.categories_ = categories_;
    out.category_index_ = category_index_;
  }
  return out;
}

}  // namespace oebench
