#include "dataframe/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace oebench {

namespace {

struct RawCsv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Result<RawCsv> ParseRaw(std::istream& in, const CsvReadOptions& options) {
  RawCsv raw;
  std::string line;
  bool first = true;
  size_t width = 0;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && raw.rows.empty() && raw.header.empty()) continue;
    std::vector<std::string> fields = Split(line, options.delimiter);
    if (first) {
      width = fields.size();
      if (options.has_header) {
        raw.header = std::move(fields);
        first = false;
        continue;
      }
      raw.header.reserve(width);
      for (size_t i = 0; i < width; ++i) {
        raw.header.push_back("col" + std::to_string(i));
      }
      first = false;
    }
    if (fields.size() != width) {
      return Status::IoError("line " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(width));
    }
    raw.rows.push_back(std::move(fields));
  }
  if (raw.header.empty()) return Status::IoError("empty CSV input");
  return raw;
}

Result<Table> BuildTable(const RawCsv& raw, const CsvReadOptions& options) {
  const size_t width = raw.header.size();
  Table table;
  for (size_t c = 0; c < width; ++c) {
    bool numeric = true;
    if (options.infer_types) {
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        if (IsMissingMarker(cell)) continue;
        double v;
        if (!ParseDouble(cell, &v)) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      Column col = Column::Numeric(raw.header[c]);
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        double v;
        if (IsMissingMarker(cell) || !ParseDouble(cell, &v)) {
          col.AppendMissingNumeric();
        } else {
          col.AppendNumeric(v);
        }
      }
      OE_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    } else {
      Column col = Column::Categorical(raw.header[c]);
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        if (IsMissingMarker(cell)) {
          col.AppendMissingCategory();
        } else {
          col.AppendCategory(std::string(StripWhitespace(cell)));
        }
      }
      OE_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    }
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  OE_ASSIGN_OR_RETURN(RawCsv raw, ParseRaw(in, options));
  return BuildTable(raw, options);
}

Result<Table> ReadCsvFromString(const std::string& content,
                                const CsvReadOptions& options) {
  std::istringstream in(content);
  OE_ASSIGN_OR_RETURN(RawCsv raw, ParseRaw(in, options));
  return BuildTable(raw, options);
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << table.column(c).name();
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = table.column(c);
      if (col.IsMissing(r)) continue;  // empty field
      if (col.type() == ColumnType::kNumeric) {
        out << col.NumericAt(r);
      } else {
        out << col.CategoryName(col.CodeAt(r));
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace oebench
