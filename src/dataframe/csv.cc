#include "dataframe/csv.h"

#include <cmath>
#include <fstream>
#include <iterator>
#include <string_view>

#include "common/string_util.h"
#include "dataframe/csv_scan.h"

namespace oebench {

namespace {

struct RawCsv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Result<RawCsv> ParseRaw(std::string_view text, const CsvReadOptions& options) {
  RawCsv raw;
  const CsvScanResult scan =
      ScanCsvBlocked(text, {options.delimiter, options.quote});
  bool first = true;
  size_t width = 0;
  size_t field_begin = 0;
  for (size_t r = 0; r < scan.record_ends.size(); ++r) {
    const size_t field_end = scan.record_ends[r];
    const size_t count = field_end - field_begin;
    // Skip leading blank lines (a single empty unquoted field) before
    // any content, like the line-based reader did.
    if (count == 1 && raw.rows.empty() && raw.header.empty()) {
      const FieldSpan& only = scan.fields[field_begin];
      if (!only.quoted && only.begin == only.end) {
        field_begin = field_end;
        continue;
      }
    }
    std::vector<std::string> fields;
    fields.reserve(count);
    for (size_t f = field_begin; f < field_end; ++f) {
      fields.push_back(MaterializeField(text, scan.fields[f], options.quote));
    }
    field_begin = field_end;
    if (first) {
      width = fields.size();
      if (options.has_header) {
        raw.header = std::move(fields);
        first = false;
        continue;
      }
      raw.header.reserve(width);
      for (size_t i = 0; i < width; ++i) {
        raw.header.push_back("col" + std::to_string(i));
      }
      first = false;
    }
    if (fields.size() != width) {
      return Status::IoError("line " + std::to_string(r + 1) + " has " +
                             std::to_string(fields.size()) +
                             " fields, expected " + std::to_string(width));
    }
    raw.rows.push_back(std::move(fields));
  }
  if (raw.header.empty()) return Status::IoError("empty CSV input");
  return raw;
}

Result<Table> BuildTable(const RawCsv& raw, const CsvReadOptions& options) {
  const size_t width = raw.header.size();
  Table table;
  for (size_t c = 0; c < width; ++c) {
    bool numeric = true;
    if (options.infer_types) {
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        if (IsMissingMarker(cell)) continue;
        double v;
        if (!ParseDouble(cell, &v)) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      Column col = Column::Numeric(raw.header[c]);
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        double v;
        if (IsMissingMarker(cell) || !ParseDouble(cell, &v)) {
          col.AppendMissingNumeric();
        } else {
          col.AppendNumeric(v);
        }
      }
      OE_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    } else {
      Column col = Column::Categorical(raw.header[c]);
      for (const auto& row : raw.rows) {
        const std::string& cell = row[c];
        if (IsMissingMarker(cell)) {
          col.AppendMissingCategory();
        } else {
          col.AppendCategory(std::string(StripWhitespace(cell)));
        }
      }
      OE_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    }
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read from '" + path + "' failed");
  OE_ASSIGN_OR_RETURN(RawCsv raw, ParseRaw(content, options));
  return BuildTable(raw, options);
}

Result<Table> ReadCsvFromString(const std::string& content,
                                const CsvReadOptions& options) {
  OE_ASSIGN_OR_RETURN(RawCsv raw, ParseRaw(content, options));
  return BuildTable(raw, options);
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << table.column(c).name();
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = table.column(c);
      if (col.IsMissing(r)) continue;  // empty field
      if (col.type() == ColumnType::kNumeric) {
        out << col.NumericAt(r);
      } else {
        out << col.CategoryName(col.CodeAt(r));
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace oebench
