#ifndef OEBENCH_DATAFRAME_COLUMN_H_
#define OEBENCH_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace oebench {

/// Column physical type. Relational streams in OEBench carry numeric
/// measurements and categorical attributes; timestamps are dropped during
/// preprocessing (paper §4.3 step 2) so no temporal type is needed.
enum class ColumnType { kNumeric, kCategorical };

const char* ColumnTypeToString(ColumnType type);

/// A single named column. Numeric cells are doubles with NaN encoding a
/// missing value (mirroring pandas). Categorical cells are dictionary
/// codes with -1 encoding a missing value.
class Column {
 public:
  static constexpr int32_t kMissingCode = -1;

  /// Creates an empty numeric column.
  static Column Numeric(std::string name);
  /// Creates an empty categorical column with the given dictionary.
  static Column Categorical(std::string name,
                            std::vector<std::string> categories = {});

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  int64_t size() const {
    return type_ == ColumnType::kNumeric
               ? static_cast<int64_t>(numeric_.size())
               : static_cast<int64_t>(codes_.size());
  }

  // --- numeric access -------------------------------------------------
  void AppendNumeric(double value) {
    OE_DCHECK(type_ == ColumnType::kNumeric);
    numeric_.push_back(value);
  }
  void AppendMissingNumeric() {
    AppendNumeric(std::numeric_limits<double>::quiet_NaN());
  }
  double NumericAt(int64_t i) const {
    OE_DCHECK(type_ == ColumnType::kNumeric);
    return numeric_[static_cast<size_t>(i)];
  }
  void SetNumeric(int64_t i, double v) {
    OE_DCHECK(type_ == ColumnType::kNumeric);
    numeric_[static_cast<size_t>(i)] = v;
  }
  const std::vector<double>& numeric_values() const { return numeric_; }
  std::vector<double>& mutable_numeric_values() { return numeric_; }

  // --- categorical access ----------------------------------------------
  /// Appends a category by label, interning it into the dictionary.
  void AppendCategory(const std::string& label);
  /// Appends a pre-interned dictionary code (must be < dictionary size,
  /// or kMissingCode).
  void AppendCode(int32_t code);
  void AppendMissingCategory() { AppendCode(kMissingCode); }
  int32_t CodeAt(int64_t i) const {
    OE_DCHECK(type_ == ColumnType::kCategorical);
    return codes_[static_cast<size_t>(i)];
  }
  const std::string& CategoryName(int32_t code) const {
    return categories_[static_cast<size_t>(code)];
  }
  int64_t num_categories() const {
    return static_cast<int64_t>(categories_.size());
  }
  const std::vector<int32_t>& codes() const { return codes_; }
  const std::vector<std::string>& categories() const { return categories_; }

  /// True when cell i holds no value (NaN / kMissingCode).
  bool IsMissing(int64_t i) const;
  /// Number of missing cells.
  int64_t CountMissing() const;

  /// Returns a column holding rows [begin, end).
  Column Slice(int64_t begin, int64_t end) const;

 private:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  ColumnType type_;
  std::vector<double> numeric_;              // kNumeric payload
  std::vector<int32_t> codes_;               // kCategorical payload
  std::vector<std::string> categories_;      // dictionary
  std::unordered_map<std::string, int32_t> category_index_;
};

}  // namespace oebench

#endif  // OEBENCH_DATAFRAME_COLUMN_H_
