#ifndef OEBENCH_DATAFRAME_CSV_SCAN_H_
#define OEBENCH_DATAFRAME_CSV_SCAN_H_

// CSV field scanner: splits raw CSV text into field/record boundary
// spans without materialising strings. Two implementations with
// identical semantics:
//
//   ScanCsvScalar  — byte-at-a-time state machine (the reference).
//   ScanCsvBlocked — parabix-style byte classification: delimiter /
//                    newline / quote bitmasks are built per 64-byte
//                    block (SSE2 compare+movemask when available,
//                    scalar bit-setting otherwise), then the same
//                    state machine walks set bits only, skipping the
//                    plain-content bytes between separators entirely.
//
// The randomized fuzz suite in tests/dataframe_test.cc asserts the two
// agree span-for-span on quoted fields, embedded delimiters/newlines,
// CRLF, truncated final records, and >64-byte fields straddling block
// boundaries.
//
// Grammar (getline/Split-compatible when `quote` is disabled, which is
// the CsvReadOptions default — the legacy reader's byte-for-byte
// behavior is pinned by tests):
//   - records are separated by '\n'; a trailing '\n' does not open an
//     empty final record; empty input has zero records;
//   - fields are separated by `delimiter` outside quotes;
//   - if the last field of a record is unquoted, non-empty, and ends
//     with '\r', exactly one '\r' is stripped (CRLF input);
//   - when `quote` is enabled, a field beginning with the quote char is
//     quoted: content runs to the matching quote, doubled quotes escape
//     one quote char (span marked `escaped`), delimiters/newlines/CRs
//     inside are literal content, bytes between the closing quote and
//     the next separator are ignored, and an unterminated quote runs to
//     end of input.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace oebench {

struct CsvScanOptions {
  char delimiter = ',';
  /// '\0' disables quote handling entirely (legacy semantics).
  char quote = '\0';
};

/// Half-open content span of one field within the scanned text. For
/// quoted fields the span covers the content between the quotes.
struct FieldSpan {
  size_t begin = 0;
  size_t end = 0;
  bool quoted = false;
  /// Quoted content contains doubled-quote escapes; materialisation
  /// must collapse them.
  bool escaped = false;

  bool operator==(const FieldSpan&) const = default;
};

struct CsvScanResult {
  std::vector<FieldSpan> fields;
  /// Exclusive end index into `fields` for each record, in order:
  /// record r spans fields [record_ends[r-1], record_ends[r]).
  std::vector<size_t> record_ends;

  bool operator==(const CsvScanResult&) const = default;
};

/// Reference byte-at-a-time scan.
CsvScanResult ScanCsvScalar(std::string_view text,
                            const CsvScanOptions& options = {});

/// Blocked scan over 64-byte classification masks. Bit-identical output
/// to ScanCsvScalar for every input.
CsvScanResult ScanCsvBlocked(std::string_view text,
                             const CsvScanOptions& options = {});

/// Field content as a string: substring for plain spans, doubled-quote
/// collapse for escaped ones.
std::string MaterializeField(std::string_view text, const FieldSpan& span,
                             char quote);

}  // namespace oebench

#endif  // OEBENCH_DATAFRAME_CSV_SCAN_H_
