#ifndef OEBENCH_DATAFRAME_TABLE_H_
#define OEBENCH_DATAFRAME_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataframe/column.h"
#include "linalg/matrix.h"

namespace oebench {

/// The machine-learning task attached to a stream (paper §2: we only keep
/// X -> Y tasks; the target is one designated column).
enum class TaskType { kClassification, kRegression };

const char* TaskTypeToString(TaskType type);

/// An in-memory relational table: a set of equally sized named columns.
/// This is the unit the preprocessing pipeline, the statistic extractors
/// and the windowing operate on.
class Table {
 public:
  Table() = default;

  /// Appends a column; its length must match existing columns (or the
  /// table must be empty). Column names must be unique.
  Status AddColumn(Column column);

  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  int64_t num_columns() const {
    return static_cast<int64_t>(columns_.size());
  }

  const Column& column(int64_t i) const {
    return columns_[static_cast<size_t>(i)];
  }
  Column& mutable_column(int64_t i) { return columns_[static_cast<size_t>(i)]; }

  /// Index of the column with the given name, or error.
  Result<int64_t> ColumnIndex(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Rows [begin, end) as a new table.
  Table Slice(int64_t begin, int64_t end) const;

  /// Selected rows (indices may repeat) as a new table.
  Table SelectRows(const std::vector<int64_t>& indices) const;

  /// Fraction of rows with at least one missing cell, fraction of columns
  /// with at least one missing cell, and fraction of missing cells overall
  /// (the three missing-value statistics of paper §4.3).
  struct MissingStats {
    double row_ratio = 0.0;
    double column_ratio = 0.0;
    double cell_ratio = 0.0;
  };
  MissingStats ComputeMissingStats() const;

  /// Converts all-numeric content to a dense matrix (one row per table
  /// row). Categorical columns must have been one-hot encoded first;
  /// returns an error if any column is categorical. Missing numeric cells
  /// become NaN in the matrix.
  Result<Matrix> ToMatrix() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace oebench

#endif  // OEBENCH_DATAFRAME_TABLE_H_
