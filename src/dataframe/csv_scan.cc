#include "dataframe/csv_scan.h"

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace oebench {

namespace {

// Strips one trailing '\r' from the last field of a just-finished record
// (getline-compatible CRLF handling). Quoted fields keep their content
// verbatim.
inline void TrimRecordCr(std::string_view text, FieldSpan* last) {
  if (!last->quoted && last->end > last->begin &&
      text[last->end - 1] == '\r') {
    --last->end;
  }
}

}  // namespace

CsvScanResult ScanCsvScalar(std::string_view text,
                            const CsvScanOptions& options) {
  CsvScanResult out;
  const size_t n = text.size();
  const char delim = options.delimiter;
  const char quote = options.quote;
  size_t pos = 0;
  while (pos < n) {
    bool record_done = false;
    while (!record_done) {
      FieldSpan span;
      if (quote != '\0' && pos < n && text[pos] == quote) {
        span.quoted = true;
        ++pos;
        span.begin = pos;
        while (true) {
          if (pos >= n) {
            // Unterminated quote: content runs to end of input.
            span.end = pos;
            record_done = true;
            break;
          }
          if (text[pos] == quote) {
            if (pos + 1 < n && text[pos + 1] == quote) {
              span.escaped = true;
              pos += 2;
              continue;
            }
            span.end = pos;
            ++pos;
            // Ignore stray bytes between the closing quote and the next
            // separator.
            while (pos < n && text[pos] != delim && text[pos] != '\n') ++pos;
            if (pos >= n) {
              record_done = true;
            } else if (text[pos] == delim) {
              ++pos;
            } else {
              ++pos;
              record_done = true;
            }
            break;
          }
          ++pos;
        }
      } else {
        span.begin = pos;
        while (pos < n && text[pos] != delim && text[pos] != '\n') ++pos;
        span.end = pos;
        if (pos >= n) {
          record_done = true;
        } else if (text[pos] == delim) {
          ++pos;
        } else {
          ++pos;
          record_done = true;
        }
      }
      out.fields.push_back(span);
    }
    TrimRecordCr(text, &out.fields.back());
    out.record_ends.push_back(out.fields.size());
  }
  return out;
}

namespace {

// Byte-classification masks over 64-byte blocks: bit i of word w is set
// when text[w*64 + i] matches the class. Built with SSE2
// compare+movemask when available, scalar bit-setting otherwise — the
// masks are identical either way.
struct ScanMasks {
  std::vector<uint64_t> sep;    // delimiter OR newline
  std::vector<uint64_t> quote;  // quote char (empty mask when disabled)
};

void BuildMasks(std::string_view text, char delim, char quote,
                ScanMasks* masks) {
  const size_t n = text.size();
  const size_t words = (n + 63) / 64;
  masks->sep.assign(words, 0);
  masks->quote.assign(words, 0);
  const char* p = text.data();
  size_t i = 0;
#if defined(__SSE2__)
  const __m128i vd = _mm_set1_epi8(delim);
  const __m128i vn = _mm_set1_epi8('\n');
  const __m128i vq = _mm_set1_epi8(quote);
  for (; i + 64 <= n; i += 64) {
    uint64_t md = 0;
    uint64_t mn = 0;
    uint64_t mq = 0;
    for (int k = 0; k < 4; ++k) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + i + 16 * k));
      md |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, vd))))
            << (16 * k);
      mn |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, vn))))
            << (16 * k);
      if (quote != '\0') {
        mq |= static_cast<uint64_t>(static_cast<uint32_t>(
                  _mm_movemask_epi8(_mm_cmpeq_epi8(v, vq))))
              << (16 * k);
      }
    }
    const size_t w = i >> 6;
    masks->sep[w] = md | mn;
    masks->quote[w] = mq;
  }
#endif
  for (; i < n; ++i) {
    const char ch = p[i];
    const uint64_t bit = uint64_t{1} << (i & 63);
    if (ch == delim || ch == '\n') masks->sep[i >> 6] |= bit;
    if (quote != '\0' && ch == quote) masks->quote[i >> 6] |= bit;
  }
}

// First set bit at position >= pos, or n when none.
inline size_t NextSet(const std::vector<uint64_t>& m, size_t pos, size_t n) {
  size_t w = pos >> 6;
  if (w >= m.size()) return n;
  uint64_t word = m[w] & (~uint64_t{0} << (pos & 63));
  while (word == 0) {
    if (++w >= m.size()) return n;
    word = m[w];
  }
  const size_t r = (w << 6) +
                   static_cast<size_t>(__builtin_ctzll(word));
  return r < n ? r : n;
}

inline bool BitSet(const std::vector<uint64_t>& m, size_t pos) {
  return (m[pos >> 6] >> (pos & 63)) & 1;
}

}  // namespace

CsvScanResult ScanCsvBlocked(std::string_view text,
                             const CsvScanOptions& options) {
  CsvScanResult out;
  const size_t n = text.size();
  if (n == 0) return out;
  const char delim = options.delimiter;
  const char quote = options.quote;
  ScanMasks masks;
  BuildMasks(text, delim, quote, &masks);
  size_t pos = 0;
  while (pos < n) {
    bool record_done = false;
    while (!record_done) {
      FieldSpan span;
      if (quote != '\0' && pos < n && text[pos] == quote) {
        span.quoted = true;
        ++pos;
        span.begin = pos;
        while (true) {
          const size_t q = NextSet(masks.quote, pos, n);
          if (q >= n) {
            span.end = n;
            pos = n;
            record_done = true;
            break;
          }
          if (q + 1 < n && BitSet(masks.quote, q + 1)) {
            span.escaped = true;
            pos = q + 2;
            continue;
          }
          span.end = q;
          pos = NextSet(masks.sep, q + 1, n);
          if (pos >= n) {
            record_done = true;
          } else if (text[pos] == delim) {
            ++pos;
          } else {
            ++pos;
            record_done = true;
          }
          break;
        }
      } else {
        span.begin = pos;
        const size_t end = NextSet(masks.sep, pos, n);
        span.end = end;
        pos = end;
        if (pos >= n) {
          record_done = true;
        } else if (text[pos] == delim) {
          ++pos;
        } else {
          ++pos;
          record_done = true;
        }
      }
      out.fields.push_back(span);
    }
    TrimRecordCr(text, &out.fields.back());
    out.record_ends.push_back(out.fields.size());
  }
  return out;
}

std::string MaterializeField(std::string_view text, const FieldSpan& span,
                             char quote) {
  std::string_view raw = text.substr(span.begin, span.end - span.begin);
  if (!span.escaped) return std::string(raw);
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    out.push_back(raw[i]);
    if (raw[i] == quote && i + 1 < raw.size() && raw[i + 1] == quote) ++i;
  }
  return out;
}

}  // namespace oebench
