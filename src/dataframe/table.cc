#include "dataframe/table.h"

namespace oebench {

const char* TaskTypeToString(TaskType type) {
  switch (type) {
    case TaskType::kClassification:
      return "classification";
    case TaskType::kRegression:
      return "regression";
  }
  return "?";
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows()));
  }
  for (const Column& existing : columns_) {
    if (existing.name() == column.name()) {
      return Status::AlreadyExists("duplicate column '" + column.name() +
                                   "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<int64_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int64_t>(i);
  }
  return Status::NotFound("no column named '" + name + "'");
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

Table Table::Slice(int64_t begin, int64_t end) const {
  Table out;
  for (const Column& c : columns_) {
    Status st = out.AddColumn(c.Slice(begin, end));
    OE_CHECK(st.ok());
  }
  return out;
}

Table Table::SelectRows(const std::vector<int64_t>& indices) const {
  Table out;
  for (const Column& c : columns_) {
    if (c.type() == ColumnType::kNumeric) {
      Column nc = Column::Numeric(c.name());
      for (int64_t i : indices) nc.AppendNumeric(c.NumericAt(i));
      OE_CHECK(out.AddColumn(std::move(nc)).ok());
    } else {
      Column cc = Column::Categorical(c.name(), c.categories());
      for (int64_t i : indices) cc.AppendCode(c.CodeAt(i));
      OE_CHECK(out.AddColumn(std::move(cc)).ok());
    }
  }
  return out;
}

Table::MissingStats Table::ComputeMissingStats() const {
  MissingStats stats;
  const int64_t rows = num_rows();
  const int64_t cols = num_columns();
  if (rows == 0 || cols == 0) return stats;

  int64_t rows_with_missing = 0;
  int64_t cols_with_missing = 0;
  int64_t missing_cells = 0;
  std::vector<bool> row_missing(static_cast<size_t>(rows), false);
  for (const Column& c : columns_) {
    bool any = false;
    for (int64_t r = 0; r < rows; ++r) {
      if (c.IsMissing(r)) {
        any = true;
        ++missing_cells;
        row_missing[static_cast<size_t>(r)] = true;
      }
    }
    if (any) ++cols_with_missing;
  }
  for (bool b : row_missing) {
    if (b) ++rows_with_missing;
  }
  stats.row_ratio =
      static_cast<double>(rows_with_missing) / static_cast<double>(rows);
  stats.column_ratio =
      static_cast<double>(cols_with_missing) / static_cast<double>(cols);
  stats.cell_ratio = static_cast<double>(missing_cells) /
                     static_cast<double>(rows * cols);
  return stats;
}

Result<Matrix> Table::ToMatrix() const {
  for (const Column& c : columns_) {
    if (c.type() != ColumnType::kNumeric) {
      return Status::InvalidArgument(
          "ToMatrix requires all-numeric columns; '" + c.name() +
          "' is categorical (one-hot encode first)");
    }
  }
  Matrix m(num_rows(), num_columns());
  for (int64_t c = 0; c < num_columns(); ++c) {
    const std::vector<double>& vals = columns_[static_cast<size_t>(c)]
                                          .numeric_values();
    for (int64_t r = 0; r < num_rows(); ++r) {
      m.At(r, c) = vals[static_cast<size_t>(r)];
    }
  }
  return m;
}

}  // namespace oebench
