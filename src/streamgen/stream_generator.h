#ifndef OEBENCH_STREAMGEN_STREAM_GENERATOR_H_
#define OEBENCH_STREAMGEN_STREAM_GENERATOR_H_

#include "common/status.h"
#include "streamgen/stream_spec.h"

namespace oebench {

/// Realises a StreamSpec into a concrete table-with-ground-truth.
///
/// Generative model: each row draws latent factors z ~ N(0, I); numeric
/// features are linear mixes of the factors plus a seasonal term, a
/// drift-pattern-dependent mean shift, and observation noise. The target
/// is a mildly non-linear function of the features under a concept weight
/// vector w(t) that moves according to the drift pattern, so the stream
/// exhibits genuine covariate drift (feature means move) *and* concept
/// drift (the X -> Y mapping moves) in the patterns of the paper's
/// Appendix Table 13. Missing values, feature dropouts, anomaly events
/// and point anomalies are injected afterwards per the spec.
Result<GeneratedStream> GenerateStream(const StreamSpec& spec);

}  // namespace oebench

#endif  // OEBENCH_STREAMGEN_STREAM_GENERATOR_H_
