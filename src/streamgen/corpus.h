#ifndef OEBENCH_STREAMGEN_CORPUS_H_
#define OEBENCH_STREAMGEN_CORPUS_H_

#include <string>
#include <vector>

#include "streamgen/stream_spec.h"

namespace oebench {

/// Qualitative level of an open-environment characteristic, matching the
/// labels the paper assigns each dataset in Tables 3/4/9 (Low, Medium
/// low, Medium high, High).
enum class Level { kLow, kMedLow, kMedHigh, kHigh };

const char* LevelToString(Level level);

/// A corpus entry: one of the paper's 55 real datasets, described by its
/// published shape (instances, features, task) and its open-environment
/// character, from which a synthetic StreamSpec is derived.
struct CorpusEntry {
  std::string name;
  std::string category;
  TaskType task = TaskType::kRegression;
  int64_t instances = 10000;
  int features = 8;
  int categorical_features = 0;
  int classes = 2;
  Level drift = Level::kLow;
  Level anomaly = Level::kLow;
  Level missing = Level::kLow;
  DriftPattern pattern = DriftPattern::kGradual;
};

/// The 55 corpus entries (20 classification from Table 11, 35 regression
/// from Table 12), with drift/anomaly/missing levels from Table 9 and
/// drift patterns from Appendix Table 13.
const std::vector<CorpusEntry>& Corpus();

/// Converts an entry into a concrete StreamSpec. `scale` multiplies the
/// published instance count (benchmarks run scaled down; rows are clamped
/// to [1200, 40000] so every stream stays usable). The seed mixes the
/// entry index with `seed_salt` so repeated runs (the paper repeats 3x)
/// get fresh randomness.
StreamSpec SpecFromEntry(const CorpusEntry& entry, double scale,
                         uint64_t seed_salt = 0);

/// All 55 specs at the given scale.
std::vector<StreamSpec> BuildCorpusSpecs(double scale,
                                         uint64_t seed_salt = 0);

}  // namespace oebench

#endif  // OEBENCH_STREAMGEN_CORPUS_H_
