#include "streamgen/stream_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"
#include "linalg/vector_ops.h"

namespace oebench {

namespace {

constexpr int kNumLatentFactors = 3;
constexpr double kTwoPi = 6.283185307179586;

/// Time-varying multiplier in [0, 1] describing how far the concept has
/// moved from its initial state at stream position frac in [0, 1].
double DriftPhase(const StreamSpec& spec, double frac,
                  std::vector<double>* switch_fracs) {
  switch (spec.drift_pattern) {
    case DriftPattern::kNone:
      return 0.0;
    case DriftPattern::kGradual:
      return frac;
    case DriftPattern::kAbrupt:
      if (switch_fracs->empty()) switch_fracs->push_back(0.5);
      return frac >= 0.5 ? 1.0 : 0.0;
    case DriftPattern::kRecurrent:
      return 0.5 -
             0.5 * std::cos(kTwoPi * frac / spec.drift_period_fraction);
    case DriftPattern::kIncremental: {
      // Staircase of small steps.
      constexpr int kSteps = 8;
      return std::floor(frac * kSteps) / static_cast<double>(kSteps);
    }
    case DriftPattern::kIncrementalAbrupt: {
      if (switch_fracs->empty()) switch_fracs->push_back(0.5);
      constexpr int kSteps = 8;
      double base = std::floor(frac * kSteps) / (2.0 * kSteps);
      return frac >= 0.5 ? base + 0.5 : base;
    }
    case DriftPattern::kIncrementalReoccurring: {
      constexpr int kSteps = 6;
      double stair = std::floor(frac * kSteps) / static_cast<double>(kSteps);
      double wave =
          0.5 - 0.5 * std::cos(kTwoPi * frac / spec.drift_period_fraction);
      return 0.5 * stair + 0.5 * wave;
    }
  }
  return 0.0;
}

}  // namespace

Result<GeneratedStream> GenerateStream(const StreamSpec& spec) {
  if (spec.num_instances < 10) {
    return Status::InvalidArgument("stream needs >= 10 instances");
  }
  if (spec.num_numeric_features < 2) {
    return Status::InvalidArgument("stream needs >= 2 numeric features");
  }
  if (spec.task == TaskType::kClassification && spec.num_classes < 2) {
    return Status::InvalidArgument("classification needs >= 2 classes");
  }

  Rng rng(spec.seed);
  const int64_t n = spec.num_instances;
  const int d_num = spec.num_numeric_features;
  const int d_cat = spec.num_categorical_features;

  // --- fixed generative structure ---------------------------------------
  // Factor loadings: feature_j = loadings_j . z.
  std::vector<std::vector<double>> loadings(static_cast<size_t>(d_num));
  std::vector<double> seasonal_phase(static_cast<size_t>(d_num));
  std::vector<double> drift_direction(static_cast<size_t>(d_num));
  for (int j = 0; j < d_num; ++j) {
    auto& l = loadings[static_cast<size_t>(j)];
    l.resize(kNumLatentFactors);
    for (double& v : l) v = rng.Gaussian();
    seasonal_phase[static_cast<size_t>(j)] = rng.Uniform(0.0, kTwoPi);
    drift_direction[static_cast<size_t>(j)] = rng.Gaussian();
  }
  // Concept weights before/after drift. Classification keeps one weight
  // vector per class.
  const int num_concept_vectors =
      spec.task == TaskType::kClassification ? spec.num_classes : 1;
  std::vector<std::vector<double>> w0(
      static_cast<size_t>(num_concept_vectors));
  std::vector<std::vector<double>> w1(
      static_cast<size_t>(num_concept_vectors));
  for (int c = 0; c < num_concept_vectors; ++c) {
    auto& a = w0[static_cast<size_t>(c)];
    auto& b = w1[static_cast<size_t>(c)];
    a.resize(static_cast<size_t>(d_num));
    b.resize(static_cast<size_t>(d_num));
    for (int j = 0; j < d_num; ++j) {
      a[static_cast<size_t>(j)] = rng.Gaussian();
      b[static_cast<size_t>(j)] =
          a[static_cast<size_t>(j)] +
          spec.drift_magnitude * rng.Gaussian();
    }
  }
  // Per-category target offsets for the categorical features.
  std::vector<std::vector<double>> cat_effect(static_cast<size_t>(d_cat));
  for (int j = 0; j < d_cat; ++j) {
    cat_effect[static_cast<size_t>(j)].resize(
        static_cast<size_t>(spec.categories_per_feature));
    for (double& v : cat_effect[static_cast<size_t>(j)]) {
      v = 0.5 * rng.Gaussian();
    }
  }

  // --- generate rows -----------------------------------------------------
  Matrix x(n, d_num);
  std::vector<std::vector<int32_t>> cat_codes(
      static_cast<size_t>(d_cat),
      std::vector<int32_t>(static_cast<size_t>(n)));
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<double> z(kNumLatentFactors);
  std::vector<double> switch_fracs;
  GeneratedStream out;

  for (int64_t t = 0; t < n; ++t) {
    double frac = static_cast<double>(t) / static_cast<double>(n);
    double phase = DriftPhase(spec, frac, &switch_fracs);
    for (double& v : z) v = rng.Gaussian();

    double seasonal =
        spec.seasonal_amplitude *
        std::sin(kTwoPi * frac / std::max(spec.drift_period_fraction, 1e-3));
    for (int j = 0; j < d_num; ++j) {
      const auto& l = loadings[static_cast<size_t>(j)];
      double v = 0.0;
      for (int f = 0; f < kNumLatentFactors; ++f) {
        v += l[static_cast<size_t>(f)] * z[static_cast<size_t>(f)];
      }
      v += seasonal *
           std::sin(seasonal_phase[static_cast<size_t>(j)] + kTwoPi * frac /
                        std::max(spec.drift_period_fraction, 1e-3));
      // Covariate drift: feature means move with the concept phase.
      v += 0.6 * spec.drift_magnitude * phase *
           drift_direction[static_cast<size_t>(j)];
      v += spec.noise_level * rng.Gaussian();
      x.At(t, j) = v;
    }
    for (int j = 0; j < d_cat; ++j) {
      // Category distribution tilts with the drift phase.
      std::vector<double> probs(
          static_cast<size_t>(spec.categories_per_feature), 1.0);
      probs[0] += 2.0 * phase;
      probs[probs.size() - 1] += 2.0 * (1.0 - phase);
      cat_codes[static_cast<size_t>(j)][static_cast<size_t>(t)] =
          static_cast<int32_t>(rng.Categorical(probs));
    }

    // Concept: interpolated weights at this phase.
    auto weight_at = [&](int c, int j) {
      return (1.0 - phase) * w0[static_cast<size_t>(c)]
                                 [static_cast<size_t>(j)] +
             phase * w1[static_cast<size_t>(c)][static_cast<size_t>(j)];
    };
    if (spec.task == TaskType::kRegression) {
      double target = 0.0;
      for (int j = 0; j < d_num; ++j) {
        target += weight_at(0, j) * x.At(t, j);
      }
      // Mild non-linearity so trees and NNs genuinely differ.
      target += 0.3 * x.At(t, 0) * x.At(t, 1);
      target += 0.2 * std::tanh(x.At(t, 2));
      for (int j = 0; j < d_cat; ++j) {
        target += cat_effect[static_cast<size_t>(j)][static_cast<size_t>(
            cat_codes[static_cast<size_t>(j)][static_cast<size_t>(t)])];
      }
      target += spec.noise_level * rng.Gaussian();
      y[static_cast<size_t>(t)] = target;
    } else {
      std::vector<double> scores(static_cast<size_t>(spec.num_classes));
      for (int c = 0; c < spec.num_classes; ++c) {
        double s = 0.0;
        for (int j = 0; j < d_num; ++j) {
          s += weight_at(c, j) * x.At(t, j);
        }
        s += 0.2 * std::tanh(x.At(t, c % d_num) * x.At(t, (c + 1) % d_num));
        for (int j = 0; j < d_cat; ++j) {
          s += (c % 2 == 0 ? 1.0 : -1.0) *
               cat_effect[static_cast<size_t>(j)][static_cast<size_t>(
                   cat_codes[static_cast<size_t>(j)][static_cast<size_t>(
                       t)])];
        }
        s += spec.noise_level * 2.0 * rng.Gaussian();
        // Emerging classes: a class not yet introduced cannot be the
        // label (its concept simply does not exist yet, §2.3).
        if (spec.class_emergence_fraction > 0.0 && c > 0 &&
            frac < static_cast<double>(c) *
                       spec.class_emergence_fraction) {
          s = -1e18;
        }
        scores[static_cast<size_t>(c)] = s;
      }
      y[static_cast<size_t>(t)] = ArgMax(scores);
    }
  }

  // --- inject anomalies ----------------------------------------------------
  std::vector<bool> outlier_mask(static_cast<size_t>(n), false);
  for (const AnomalyEvent& event : spec.anomaly_events) {
    int64_t begin = static_cast<int64_t>(event.start_frac * n);
    int64_t end = std::min<int64_t>(
        n, static_cast<int64_t>(event.end_frac * n));
    for (int64_t t = begin; t < end; ++t) {
      if (!rng.Bernoulli(event.rate)) continue;
      int affected = std::max(1, event.num_affected);
      for (int k = 0; k < affected && k < d_num; ++k) {
        int j = (event.feature + k) % d_num;
        // Primary sensor takes the full hit; correlated ones decay.
        x.At(t, j) += event.magnitude / (1.0 + 0.3 * k);
      }
      if (spec.task == TaskType::kRegression) {
        y[static_cast<size_t>(t)] += 0.5 * event.magnitude;
      }
      outlier_mask[static_cast<size_t>(t)] = true;
    }
  }
  for (int64_t t = 0; t < n; ++t) {
    if (spec.point_anomaly_rate > 0.0 &&
        rng.Bernoulli(spec.point_anomaly_rate)) {
      int j = static_cast<int>(rng.UniformInt(d_num));
      x.At(t, j) = spec.point_anomaly_magnitude *
                   (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      outlier_mask[static_cast<size_t>(t)] = true;
    }
  }
  for (int64_t t = 0; t < n; ++t) {
    if (outlier_mask[static_cast<size_t>(t)]) {
      out.true_outlier_rows.push_back(t);
    }
  }

  // --- inject missingness --------------------------------------------------
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  if (spec.base_missing_rate > 0.0) {
    for (int64_t t = 0; t < n; ++t) {
      for (int j = 0; j < d_num; ++j) {
        if (rng.Bernoulli(spec.base_missing_rate)) x.At(t, j) = kNan;
      }
    }
  }
  for (const FeatureDropout& dropout : spec.dropouts) {
    if (dropout.feature >= d_num) continue;
    int64_t begin = static_cast<int64_t>(dropout.start_frac * n);
    int64_t end = std::min<int64_t>(
        n, static_cast<int64_t>(dropout.end_frac * n));
    for (int64_t t = begin; t < end; ++t) {
      if (rng.Bernoulli(dropout.missing_rate)) {
        x.At(t, dropout.feature) = kNan;
      }
    }
  }

  // --- assemble the table ---------------------------------------------------
  for (int j = 0; j < d_num; ++j) {
    Column col = Column::Numeric("num" + std::to_string(j));
    col.mutable_numeric_values() = x.ColVector(j);
    OE_RETURN_NOT_OK(out.table.AddColumn(std::move(col)));
  }
  for (int j = 0; j < d_cat; ++j) {
    std::vector<std::string> dictionary;
    for (int c = 0; c < spec.categories_per_feature; ++c) {
      dictionary.push_back("c" + std::to_string(c));
    }
    Column col =
        Column::Categorical("cat" + std::to_string(j), dictionary);
    for (int64_t t = 0; t < n; ++t) {
      col.AppendCode(cat_codes[static_cast<size_t>(j)][static_cast<size_t>(
          t)]);
    }
    OE_RETURN_NOT_OK(out.table.AddColumn(std::move(col)));
  }
  Column target = Column::Numeric("target");
  target.mutable_numeric_values() = std::move(y);
  OE_RETURN_NOT_OK(out.table.AddColumn(std::move(target)));

  for (double f : switch_fracs) {
    out.true_drift_rows.push_back(static_cast<int64_t>(f * n));
  }
  out.spec = spec;
  return out;
}

}  // namespace oebench
