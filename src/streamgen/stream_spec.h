#ifndef OEBENCH_STREAMGEN_STREAM_SPEC_H_
#define OEBENCH_STREAMGEN_STREAM_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataframe/table.h"

namespace oebench {

/// Drift pattern of a synthetic stream, mirroring the taxonomy the paper
/// observes in real data (§2.2, Appendix Table 13): gradual, abrupt,
/// recurrent (seasonal), and the INSECTS-style incremental variants.
enum class DriftPattern {
  kNone,
  kGradual,
  kAbrupt,
  kRecurrent,
  kIncremental,
  kIncrementalAbrupt,
  kIncrementalReoccurring,
};

const char* DriftPatternToString(DriftPattern pattern);

/// A feature whose availability changes mid-stream: the
/// incremental/decremental feature-space challenge (§2.1, Figure 4).
/// Between `start_frac` and `end_frac` of the stream the feature is
/// missing with probability `missing_rate`; outside it is always present.
/// An *incremental* feature uses start_frac = 0 (absent from the start,
/// appearing later); a *decremental* feature uses end_frac = 1.
struct FeatureDropout {
  int feature = 0;
  double start_frac = 0.0;
  double end_frac = 1.0;
  double missing_rate = 1.0;
};

/// A sustained anomalous episode (the paper's Beijing flood / haze events,
/// §5.3, Figure 8): within [start_frac, end_frac) each row is anomalous
/// with probability `rate`, shifting `num_affected` consecutive features
/// starting at `feature` by a decaying multiple of `magnitude` standard
/// deviations (a flood moves precipitation *and* the correlated weather
/// sensors), and dragging the target along for regression streams.
struct AnomalyEvent {
  double start_frac = 0.0;
  double end_frac = 0.0;
  double rate = 1.0;
  int feature = 0;
  double magnitude = 8.0;
  int num_affected = 3;
};

/// Full description of a synthetic relational data stream. One spec per
/// real dataset of the paper's corpus; the generator realises the spec
/// into a Table with the matching open-environment phenomena.
struct StreamSpec {
  std::string name;
  /// Dataset field from Table 11/12 ("Ecology", "Commerce", "Power",
  /// "S&T", "Social", "Others").
  std::string category;
  TaskType task = TaskType::kRegression;
  int64_t num_instances = 5000;
  int num_numeric_features = 8;
  int num_categorical_features = 0;
  int categories_per_feature = 4;
  int num_classes = 2;  // classification only
  /// Emerging new classes (§2.3, open-environment challenge #1): when
  /// positive, class c only starts appearing after fraction
  /// c * class_emergence_fraction of the stream (class 0 exists from the
  /// start). 0 disables staggering and all classes mix from row 0.
  double class_emergence_fraction = 0.0;
  int64_t window_size = 250;

  DriftPattern drift_pattern = DriftPattern::kNone;
  /// Scale of the concept / covariate movement (0 disables).
  double drift_magnitude = 1.0;
  /// Period of recurrent drift as a fraction of the stream length.
  double drift_period_fraction = 0.25;
  /// Seasonal amplitude added to feature means (covariate drift).
  double seasonal_amplitude = 0.0;

  /// Observation / label noise level.
  double noise_level = 0.1;

  /// MCAR missing-cell probability applied to every feature cell.
  double base_missing_rate = 0.0;
  std::vector<FeatureDropout> dropouts;

  std::vector<AnomalyEvent> anomaly_events;
  /// Probability of an isolated extreme point anomaly per row.
  double point_anomaly_rate = 0.0;
  double point_anomaly_magnitude = 10.0;

  uint64_t seed = 42;
};

/// A realised stream plus its ground truth (which real data lacks — the
/// paper calls this out as the core difficulty of benchmarking detectors
/// on real streams, §6.7/§6.8; synthetic streams give it back to us).
struct GeneratedStream {
  StreamSpec spec;
  /// Feature columns plus a final "target" column.
  Table table;
  /// Rows the generator made anomalous (events + point anomalies).
  std::vector<int64_t> true_outlier_rows;
  /// Rows where an abrupt concept switch happened.
  std::vector<int64_t> true_drift_rows;
};

}  // namespace oebench

#endif  // OEBENCH_STREAMGEN_STREAM_SPEC_H_
