#include "streamgen/representative.h"

#include "common/logging.h"

namespace oebench {

const std::vector<RepresentativeInfo>& RepresentativeDatasets() {
  static const std::vector<RepresentativeInfo>& infos =
      *new std::vector<RepresentativeInfo>{
          {"ROOM", "room_occupancy", Level::kMedHigh, Level::kHigh,
           Level::kLow},
          {"ELECTRICITY", "electricity_prices", Level::kMedHigh,
           Level::kMedHigh, Level::kLow},
          {"INSECTS", "insects_incr_reocc_bal", Level::kMedLow,
           Level::kMedHigh, Level::kLow},
          {"AIR", "beijing_air_shunyi", Level::kLow, Level::kMedLow,
           Level::kHigh},
          {"POWER", "tetouan_power", Level::kHigh, Level::kMedLow,
           Level::kLow},
      };
  return infos;
}

StreamSpec RepresentativeSpec(const std::string& short_name, double scale,
                              uint64_t seed_salt) {
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    if (info.short_name != short_name) continue;
    for (const CorpusEntry& entry : Corpus()) {
      if (entry.name == info.corpus_name) {
        return SpecFromEntry(entry, scale, seed_salt);
      }
    }
  }
  OE_CHECK(false) << "unknown representative dataset '" << short_name
                  << "'";
  return StreamSpec();
}

std::vector<StreamSpec> RepresentativeSpecs(double scale,
                                            uint64_t seed_salt) {
  std::vector<StreamSpec> specs;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    specs.push_back(RepresentativeSpec(info.short_name, scale, seed_salt));
  }
  return specs;
}

}  // namespace oebench
