#include "streamgen/corpus.h"

#include <algorithm>

#include "common/logging.h"

namespace oebench {

const char* LevelToString(Level level) {
  switch (level) {
    case Level::kLow:
      return "Low";
    case Level::kMedLow:
      return "Medium low";
    case Level::kMedHigh:
      return "Medium high";
    case Level::kHigh:
      return "High";
  }
  return "?";
}

namespace {

using DP = DriftPattern;
using L = Level;
using T = TaskType;

constexpr T kCls = T::kClassification;
constexpr T kReg = T::kRegression;

/// The paper's 55 datasets (Tables 11 & 12), with open-environment levels
/// from Table 9 and drift patterns from Appendix Table 13 where given.
std::vector<CorpusEntry> BuildEntries() {
  std::vector<CorpusEntry> e;
  // --- classification (Table 11) -----------------------------------------
  e.push_back({"bitcoin_heist", "Commerce", kCls, 2916697, 6, 0, 27,
               L::kHigh, L::kHigh, L::kLow, DP::kAbrupt});
  e.push_back({"room_occupancy", "Others", kCls, 10129, 14, 2, 4,
               L::kMedHigh, L::kHigh, L::kLow, DP::kRecurrent});
  e.push_back({"electricity_prices", "Commerce", kCls, 45312, 7, 0, 2,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kGradual});
  e.push_back({"airlines", "Commerce", kCls, 539383, 4, 2, 2, L::kMedLow,
               L::kLow, L::kLow, DP::kGradual});
  e.push_back({"forest_covertype", "S&T", kCls, 581012, 44, 10, 7,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kGradual});
  e.push_back({"insects_abrupt_bal", "S&T", kCls, 52848, 33, 0, 6,
               L::kMedLow, L::kMedHigh, L::kLow, DP::kAbrupt});
  e.push_back({"insects_abrupt_imbal", "S&T", kCls, 355275, 33, 0, 6,
               L::kMedLow, L::kMedHigh, L::kLow, DP::kAbrupt});
  e.push_back({"insects_incr_bal", "S&T", kCls, 57018, 33, 0, 6,
               L::kMedHigh, L::kMedLow, L::kLow, DP::kIncremental});
  e.push_back({"insects_incr_imbal", "S&T", kCls, 452044, 33, 0, 6,
               L::kMedLow, L::kMedHigh, L::kLow, DP::kIncremental});
  e.push_back({"insects_incr_abrupt_bal", "S&T", kCls, 79986, 33, 0, 6,
               L::kMedHigh, L::kHigh, L::kLow, DP::kIncrementalAbrupt});
  e.push_back({"insects_incr_abrupt_imbal", "S&T", kCls, 452044, 33, 0, 6,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kIncrementalAbrupt});
  e.push_back({"insects_gradual_bal", "S&T", kCls, 24150, 33, 0, 6,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kGradual});
  e.push_back({"insects_gradual_imbal", "S&T", kCls, 143323, 33, 0, 6,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kGradual});
  e.push_back({"insects_incr_reocc_bal", "S&T", kCls, 79986, 33, 0, 6,
               L::kMedLow, L::kMedHigh, L::kLow,
               DP::kIncrementalReoccurring});
  e.push_back({"insects_incr_reocc_imbal", "S&T", kCls, 452044, 33, 0, 6,
               L::kMedHigh, L::kMedHigh, L::kLow,
               DP::kIncrementalReoccurring});
  e.push_back({"insects_out_of_control", "S&T", kCls, 905145, 33, 0, 24,
               L::kLow, L::kMedHigh, L::kLow, DP::kNone});
  e.push_back({"kddcup99", "S&T", kCls, 494021, 34, 7, 23, L::kMedLow,
               L::kLow, L::kLow, DP::kAbrupt});
  e.push_back({"noaa_weather", "Ecology", kCls, 18159, 8, 0, 2,
               L::kMedHigh, L::kMedLow, L::kLow, DP::kRecurrent});
  e.push_back({"safe_driver", "Commerce", kCls, 595212, 40, 17, 2, L::kLow,
               L::kLow, L::kLow, DP::kNone});
  e.push_back({"ble_rssi", "Others", kCls, 9984, 5, 0, 3, L::kMedHigh,
               L::kMedHigh, L::kLow, DP::kAbrupt});
  // --- regression (Table 12) ----------------------------------------------
  e.push_back({"italian_air_quality", "Ecology", kReg, 9358, 12, 0, 2,
               L::kHigh, L::kMedHigh, L::kHigh, DP::kRecurrent});
  e.push_back({"energy_prediction", "Power", kReg, 19735, 25, 0, 2,
               L::kHigh, L::kHigh, L::kLow, DP::kGradual});
  const char* kBeijingSites[] = {
      "aotizhongxin", "changping", "dingling", "dongsi",
      "guanyuan",     "gucheng",   "huairou",  "nongzhanguan",
      "shunyi",       "tiantan",   "wanliu",   "wanshouxigong"};
  for (const char* site : kBeijingSites) {
    L anomaly = (std::string(site) == "dongsi" ||
                 std::string(site) == "tiantan")
                    ? L::kMedHigh
                    : L::kMedLow;
    L missing = std::string(site) == "shunyi" ? L::kHigh : L::kLow;
    L drift = std::string(site) == "shunyi" ? L::kLow : L::kMedLow;
    e.push_back({std::string("beijing_air_") + site, "Ecology", kReg,
                 35064, 11, 0, 2, drift, anomaly, missing,
                 DP::kRecurrent});
  }
  e.push_back({"beijing_pm25", "Ecology", kReg, 43824, 7, 0, 2,
               L::kMedHigh, L::kHigh, L::kLow, DP::kRecurrent});
  const char* kIndianCities[] = {"bangalore", "bhubhneshwar", "chennai",
                                 "delhi",     "lucknow",      "mumbai",
                                 "rajasthan"};
  for (const char* city : kIndianCities) {
    L drift = (std::string(city) == "bangalore" ||
               std::string(city) == "lucknow")
                  ? L::kMedLow
                  : L::kLow;
    e.push_back({std::string("indian_weather_") + city, "Ecology", kReg,
                 11894, 5, 0, 2, drift, L::kLow, L::kHigh,
                 DP::kRecurrent});
  }
  e.push_back({"household_power", "Power", kReg, 2075259, 6, 0, 2,
               L::kHigh, L::kMedHigh, L::kLow, DP::kGradual});
  e.push_back({"metro_traffic", "Commerce", kReg, 48204, 5, 2, 2, L::kLow,
               L::kMedLow, L::kLow, DP::kRecurrent});
  const char* kFiveCities[] = {"beijing", "chengdu", "guangzhou",
                               "shanghai", "shenyang"};
  for (const char* city : kFiveCities) {
    L anomaly = std::string(city) == "chengdu" || std::string(city) ==
                                                      "shenyang"
                    ? L::kHigh
                    : L::kMedLow;
    L drift =
        std::string(city) == "guangzhou" ? L::kHigh : L::kMedHigh;
    e.push_back({std::string("five_cities_pm25_") + city, "Ecology", kReg,
                 52584, 8, 0, 2, drift, anomaly, L::kHigh,
                 DP::kRecurrent});
  }
  e.push_back({"tetouan_power", "Power", kReg, 52417, 7, 0, 2, L::kHigh,
               L::kMedLow, L::kLow, DP::kGradual});
  e.push_back({"bike_sharing", "Commerce", kReg, 10886, 5, 2, 2,
               L::kMedHigh, L::kMedLow, L::kLow, DP::kRecurrent});
  e.push_back({"allstate_claims", "Commerce", kReg, 188318, 14, 20, 2,
               L::kLow, L::kLow, L::kLow, DP::kNone});
  e.push_back({"portugal_election", "Social", kReg, 21643, 24, 4, 2,
               L::kMedHigh, L::kMedHigh, L::kLow, DP::kAbrupt});
  e.push_back({"news_popularity", "Social", kReg, 93239, 9, 2, 2,
               L::kMedLow, L::kMedLow, L::kLow, DP::kGradual});
  e.push_back({"taxi_duration", "Commerce", kReg, 1458644, 9, 2, 2,
               L::kMedHigh, L::kMedLow, L::kLow, DP::kGradual});
  return e;
}

double DriftMagnitude(Level level) {
  switch (level) {
    case Level::kLow:
      return 0.25;
    case Level::kMedLow:
      return 0.7;
    case Level::kMedHigh:
      return 1.4;
    case Level::kHigh:
      return 2.4;
  }
  return 0.0;
}

}  // namespace

const std::vector<CorpusEntry>& Corpus() {
  static const std::vector<CorpusEntry>& entries =
      *new std::vector<CorpusEntry>(BuildEntries());
  OE_CHECK(entries.size() == 55)
      << "corpus must list exactly 55 datasets, found " << entries.size();
  return entries;
}

StreamSpec SpecFromEntry(const CorpusEntry& entry, double scale,
                         uint64_t seed_salt) {
  StreamSpec spec;
  spec.name = entry.name;
  spec.category = entry.category;
  spec.task = entry.task;
  int64_t rows = static_cast<int64_t>(
      static_cast<double>(entry.instances) * scale);
  spec.num_instances = std::clamp<int64_t>(rows, 1200, 40000);
  spec.num_numeric_features = entry.features;
  spec.num_categorical_features = entry.categorical_features;
  spec.num_classes = entry.classes;
  // ~40 windows per stream regardless of scale, at least 30 rows each.
  spec.window_size = std::max<int64_t>(30, spec.num_instances / 40);
  spec.drift_pattern = entry.pattern;
  spec.drift_magnitude =
      entry.pattern == DriftPattern::kNone ? 0.0 : DriftMagnitude(entry.drift);
  spec.drift_period_fraction = 0.25;
  spec.seasonal_amplitude =
      entry.pattern == DriftPattern::kRecurrent ? 0.8 : 0.0;
  spec.noise_level = 0.25;

  switch (entry.missing) {
    case Level::kLow:
      spec.base_missing_rate = 0.002;
      break;
    case Level::kMedLow:
      spec.base_missing_rate = 0.02;
      break;
    case Level::kMedHigh:
      spec.base_missing_rate = 0.06;
      break;
    case Level::kHigh:
      spec.base_missing_rate = 0.12;
      // High-missing streams also show the incremental/decremental
      // feature phenomenon (sensor installation / breakdown, §5.1).
      spec.dropouts.push_back({0, 0.0, 0.45, 1.0});    // incremental
      spec.dropouts.push_back({1, 0.65, 1.0, 0.85});   // decremental
      break;
  }
  switch (entry.anomaly) {
    case Level::kLow:
      spec.point_anomaly_rate = 0.0005;
      break;
    case Level::kMedLow:
      spec.point_anomaly_rate = 0.004;
      break;
    case Level::kMedHigh:
      spec.point_anomaly_rate = 0.01;
      spec.anomaly_events.push_back({0.55, 0.60, 0.8, 1, 6.0});
      break;
    case Level::kHigh:
      spec.point_anomaly_rate = 0.02;
      spec.anomaly_events.push_back({0.35, 0.42, 0.9, 1, 8.0});
      spec.anomaly_events.push_back({0.72, 0.76, 0.9, 2, 10.0});
      break;
  }
  // Stable per-dataset seed, salted per repetition.
  uint64_t h = 1469598103934665603ull;
  for (char c : entry.name) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  spec.seed = h ^ (seed_salt * 0x9E3779B97F4A7C15ull);
  return spec;
}

std::vector<StreamSpec> BuildCorpusSpecs(double scale, uint64_t seed_salt) {
  std::vector<StreamSpec> specs;
  specs.reserve(Corpus().size());
  for (const CorpusEntry& entry : Corpus()) {
    specs.push_back(SpecFromEntry(entry, scale, seed_salt));
  }
  return specs;
}

}  // namespace oebench
