#ifndef OEBENCH_STREAMGEN_REPRESENTATIVE_H_
#define OEBENCH_STREAMGEN_REPRESENTATIVE_H_

#include <string>
#include <vector>

#include "streamgen/corpus.h"
#include "streamgen/stream_spec.h"

namespace oebench {

/// One of the paper's five representative datasets (Table 3), with its
/// published open-environment character.
struct RepresentativeInfo {
  std::string short_name;   // ROOM / ELECTRICITY / INSECTS / AIR / POWER
  std::string corpus_name;  // matching Corpus() entry name
  Level drift = Level::kLow;
  Level anomaly = Level::kLow;
  Level missing = Level::kLow;
};

/// The five Table 3 datasets: Room Occupancy Estimation, Electricity
/// Prices, INSECTS-Incremental-reoccurring (balanced), Beijing Multi-Site
/// Air-Quality Shunyi, and Power Consumption of Tetouan City.
const std::vector<RepresentativeInfo>& RepresentativeDatasets();

/// Spec for one representative dataset at the given scale (see
/// SpecFromEntry for scaling rules). Aborts if `short_name` is unknown.
StreamSpec RepresentativeSpec(const std::string& short_name, double scale,
                              uint64_t seed_salt = 0);

/// All five specs at the given scale, in Table 3 order.
std::vector<StreamSpec> RepresentativeSpecs(double scale,
                                            uint64_t seed_salt = 0);

}  // namespace oebench

#endif  // OEBENCH_STREAMGEN_REPRESENTATIVE_H_
