#include "streamgen/stream_spec.h"

namespace oebench {

const char* DriftPatternToString(DriftPattern pattern) {
  switch (pattern) {
    case DriftPattern::kNone:
      return "none";
    case DriftPattern::kGradual:
      return "gradual";
    case DriftPattern::kAbrupt:
      return "abrupt";
    case DriftPattern::kRecurrent:
      return "recurrent";
    case DriftPattern::kIncremental:
      return "incremental";
    case DriftPattern::kIncrementalAbrupt:
      return "incremental-abrupt";
    case DriftPattern::kIncrementalReoccurring:
      return "incremental-reoccurring";
  }
  return "?";
}

}  // namespace oebench
