#include "preprocess/one_hot.h"

#include <limits>
#include <unordered_map>

namespace oebench {

Status OneHotEncoder::Fit(const Table& table) {
  plans_.clear();
  num_output_columns_ = 0;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnPlan plan;
    plan.name = col.name();
    if (col.type() == ColumnType::kCategorical) {
      plan.categorical = true;
      plan.categories = col.categories();
      num_output_columns_ += static_cast<int64_t>(plan.categories.size());
    } else {
      num_output_columns_ += 1;
    }
    plans_.push_back(std::move(plan));
  }
  fitted_ = true;
  return Status::OK();
}

Result<Table> OneHotEncoder::Transform(const Table& table) const {
  if (!fitted_) return Status::FailedPrecondition("encoder not fitted");
  if (table.num_columns() != static_cast<int64_t>(plans_.size())) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  Table out;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    const ColumnPlan& plan = plans_[static_cast<size_t>(c)];
    if (col.name() != plan.name) {
      return Status::InvalidArgument("column order differs from fit time");
    }
    if (!plan.categorical) {
      if (col.type() != ColumnType::kNumeric) {
        return Status::InvalidArgument("column '" + col.name() +
                                       "' changed type since fit");
      }
      OE_RETURN_NOT_OK(out.AddColumn(col));
      continue;
    }
    if (col.type() != ColumnType::kCategorical) {
      return Status::InvalidArgument("column '" + col.name() +
                                     "' changed type since fit");
    }
    // Map this table's dictionary codes onto the fitted dictionary by
    // label so re-encoded windows stay consistent.
    std::unordered_map<std::string, size_t> fitted_index;
    for (size_t k = 0; k < plan.categories.size(); ++k) {
      fitted_index[plan.categories[k]] = k;
    }
    std::vector<Column> indicators;
    indicators.reserve(plan.categories.size());
    for (const std::string& cat : plan.categories) {
      indicators.push_back(Column::Numeric(plan.name + "=" + cat));
    }
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      if (col.IsMissing(r)) {
        for (Column& ind : indicators) ind.AppendNumeric(kNan);
        continue;
      }
      const std::string& label = col.CategoryName(col.CodeAt(r));
      auto it = fitted_index.find(label);
      for (size_t k = 0; k < indicators.size(); ++k) {
        double v =
            (it != fitted_index.end() && it->second == k) ? 1.0 : 0.0;
        indicators[k].AppendNumeric(v);
      }
    }
    for (Column& ind : indicators) {
      OE_RETURN_NOT_OK(out.AddColumn(std::move(ind)));
    }
  }
  return out;
}

}  // namespace oebench
