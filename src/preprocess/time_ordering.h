#ifndef OEBENCH_PREPROCESS_TIME_ORDERING_H_
#define OEBENCH_PREPROCESS_TIME_ORDERING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataframe/table.h"

namespace oebench {

/// Paper §4.3 step 2 for user-supplied CSVs: "Order instances by time,
/// then remove time-related attributes to maintain the temporal context
/// without interfering with the dataset's statistical characteristics."

/// Returns a copy of `table` with rows sorted ascending by the given
/// column (numeric: by value, missing last; categorical: by label).
/// The sort is stable, preserving the original order of ties.
Result<Table> SortByColumn(const Table& table,
                           const std::string& column_name);

/// Returns a copy of `table` without the named columns. Unknown names
/// are an error (catches typos in user pipelines).
Result<Table> DropColumns(const Table& table,
                          const std::vector<std::string>& column_names);

/// Heuristic list of time-related columns: names containing one of
/// {"time", "date", "timestamp", "year", "month", "day", "hour"}
/// case-insensitively. What the paper removes by hand per dataset.
std::vector<std::string> GuessTimeColumns(const Table& table);

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_TIME_ORDERING_H_
