#ifndef OEBENCH_PREPROCESS_WINDOWING_H_
#define OEBENCH_PREPROCESS_WINDOWING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// A half-open row range [begin, end) of a stream.
struct WindowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Partitions `num_rows` rows into consecutive non-overlapping windows of
/// `window_size` rows (paper §4.3 step 6). The final window keeps the
/// remainder if it holds at least half a window; otherwise the remainder
/// is merged into the previous window so every window has a usable amount
/// of data.
Result<std::vector<WindowRange>> MakeWindows(int64_t num_rows,
                                             int64_t window_size);

/// One preprocessed window of a supervised stream: features and targets.
struct WindowData {
  Matrix features;                  // window_rows x d, NaN = missing
  std::vector<double> targets;      // regression value or class id
};

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_WINDOWING_H_
