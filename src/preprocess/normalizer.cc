#include "preprocess/normalizer.h"

#include <algorithm>
#include <cmath>

namespace oebench {

Status Normalizer::Fit(const Matrix& data) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("cannot fit normalizer on empty data");
  }
  mean_ = data.ColumnMeans();
  stddev_ = data.ColumnStdDevs();
  fitted_ = true;
  return Status::OK();
}

void Normalizer::Transform(Matrix* data) const {
  OE_CHECK(fitted_);
  OE_CHECK(data->cols() == static_cast<int64_t>(mean_.size()));
  for (int64_t r = 0; r < data->rows(); ++r) {
    double* row = data->Row(r);
    for (int64_t c = 0; c < data->cols(); ++c) {
      if (std::isnan(row[c])) continue;
      row[c] = TransformValue(c, row[c]);
    }
  }
}

double Normalizer::TransformValue(int64_t col, double v) const {
  size_t i = static_cast<size_t>(col);
  // Zero-variance columns divide by 1 (sklearn StandardScaler semantics).
  // Dividing by a tiny epsilon instead would blow features up by orders
  // of magnitude the moment an all-constant (e.g. all-missing, imputed)
  // first-window column starts carrying real values — the
  // incremental-feature case of §5.1.
  double scale = stddev_[i] < kEpsilon ? 1.0 : stddev_[i];
  return (v - mean_[i]) / scale;
}

double Normalizer::InverseTransformValue(int64_t col, double v) const {
  size_t i = static_cast<size_t>(col);
  double scale = stddev_[i] < kEpsilon ? 1.0 : stddev_[i];
  return v * scale + mean_[i];
}

}  // namespace oebench
