#include "preprocess/windowing.h"

namespace oebench {

Result<std::vector<WindowRange>> MakeWindows(int64_t num_rows,
                                             int64_t window_size) {
  if (window_size < 1) {
    return Status::InvalidArgument("window_size must be >= 1");
  }
  if (num_rows < 1) {
    return Status::InvalidArgument("num_rows must be >= 1");
  }
  std::vector<WindowRange> windows;
  int64_t begin = 0;
  while (begin < num_rows) {
    int64_t end = std::min(begin + window_size, num_rows);
    windows.push_back({begin, end});
    begin = end;
  }
  // Merge a too-small trailing remainder into the previous window.
  if (windows.size() >= 2 &&
      windows.back().size() * 2 < window_size) {
    windows[windows.size() - 2].end = windows.back().end;
    windows.pop_back();
  }
  return windows;
}

}  // namespace oebench
