#ifndef OEBENCH_PREPROCESS_ONE_HOT_H_
#define OEBENCH_PREPROCESS_ONE_HOT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataframe/table.h"

namespace oebench {

/// Expands categorical columns into 0/1 indicator columns (paper §4.3
/// step 3). Numeric columns pass through unchanged. A missing categorical
/// cell becomes NaN in every indicator column of that attribute so that a
/// downstream imputer sees it as missing rather than as "all categories
/// absent".
///
/// The encoder is fitted once (learning each column's dictionary) and can
/// then transform later windows consistently; categories unseen at fit
/// time map to all-zero indicators (the open-environment "new class in a
/// feature" case is deliberately not widened mid-stream — models cannot
/// grow inputs without retraining, which is exactly the incremental
/// feature challenge of §2.1).
class OneHotEncoder {
 public:
  /// Records the dictionary of every categorical column of `table`.
  Status Fit(const Table& table);

  /// Returns an all-numeric table. Indicator columns are named
  /// "<col>=<category>".
  Result<Table> Transform(const Table& table) const;

  /// Number of output columns after encoding.
  int64_t num_output_columns() const { return num_output_columns_; }

  bool fitted() const { return fitted_; }

 private:
  struct ColumnPlan {
    std::string name;
    bool categorical = false;
    std::vector<std::string> categories;  // fitted dictionary
  };
  bool fitted_ = false;
  std::vector<ColumnPlan> plans_;
  int64_t num_output_columns_ = 0;
};

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_ONE_HOT_H_
