#ifndef OEBENCH_PREPROCESS_IMPUTER_H_
#define OEBENCH_PREPROCESS_IMPUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Fills missing (NaN) cells of a feature matrix. Fitted on reference data
/// (the window being processed, or — for the "oracle" variant of Figure 5 —
/// the whole stream), then applied to matrices of the same width.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Learns whatever statistics the strategy needs from `data` (which may
  /// itself contain NaNs).
  virtual Status Fit(const Matrix& data) = 0;

  /// Replaces every NaN in `*data` in place. Columns that were entirely
  /// missing at fit time are filled with 0.
  virtual Status Transform(Matrix* data) const = 0;

  /// Strategy name for reports ("knn(k=2)", "mean", ...).
  virtual std::string name() const = 0;
};

/// Fills with 0 (paper Figure 14 baseline "filling with zero").
class ZeroImputer : public Imputer {
 public:
  Status Fit(const Matrix& data) override;
  Status Transform(Matrix* data) const override;
  std::string name() const override { return "zero"; }

 private:
  int64_t cols_ = -1;
};

/// Fills with the fit-time column mean (Figure 14 "filling with average").
class MeanImputer : public Imputer {
 public:
  Status Fit(const Matrix& data) override;
  Status Transform(Matrix* data) const override;
  std::string name() const override { return "mean"; }

 private:
  std::vector<double> means_;
};

/// scikit-learn style KNNImputer with nan-euclidean distances: a missing
/// cell is the average of that column over the k nearest fit-time rows
/// that observe the column. The paper's default pipeline uses k = 2
/// (§4.3 step 4, §6.6).
class KnnImputer : public Imputer {
 public:
  explicit KnnImputer(int k = 2) : k_(k) {}

  Status Fit(const Matrix& data) override;
  Status Transform(Matrix* data) const override;
  std::string name() const override {
    return "knn(k=" + std::to_string(k_) + ")";
  }

 private:
  int k_;
  Matrix reference_;
  std::vector<double> fallback_means_;
};

/// Regression imputer (Figure 14 "regression imputer"): per column, a ridge
/// regression of that column on all others (mean-imputed) predicts missing
/// cells.
class RegressionImputer : public Imputer {
 public:
  explicit RegressionImputer(double l2 = 1e-3) : l2_(l2) {}

  Status Fit(const Matrix& data) override;
  Status Transform(Matrix* data) const override;
  std::string name() const override { return "regression"; }

 private:
  double l2_;
  std::vector<double> means_;
  // Per-column weights over the other columns, plus intercept at the end.
  std::vector<std::vector<double>> weights_;
};

/// Factory by strategy name: "zero", "mean", "knn" (uses `knn_k`),
/// "regression".
Result<std::unique_ptr<Imputer>> MakeImputer(const std::string& strategy,
                                             int knn_k = 2);

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_IMPUTER_H_
