#ifndef OEBENCH_PREPROCESS_NORMALIZER_H_
#define OEBENCH_PREPROCESS_NORMALIZER_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Standardises features to zero mean / unit variance using statistics of
/// the *fit* data only. The paper (§6.1) fits on the first window to
/// simulate "only the statistics of the first few samples are available
/// to get started", then applies those statistics to every later window.
/// NaNs are ignored when fitting and passed through when transforming.
class Normalizer {
 public:
  /// Computes per-column mean and standard deviation (NaN-skipping).
  Status Fit(const Matrix& data);

  /// (x - mean) / max(std, epsilon), applied in place.
  void Transform(Matrix* data) const;

  /// Normalises a single value of column `col`.
  double TransformValue(int64_t col, double v) const;
  /// Undoes the normalisation of a single value of column `col`.
  double InverseTransformValue(int64_t col, double v) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }
  bool fitted() const { return fitted_; }

 private:
  static constexpr double kEpsilon = 1e-9;
  bool fitted_ = false;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_NORMALIZER_H_
