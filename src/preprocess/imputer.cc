#include "preprocess/imputer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/eigen.h"
#include "linalg/simd.h"
#include "linalg/vector_ops.h"

namespace oebench {

// ---------------------------------------------------------------- Zero

Status ZeroImputer::Fit(const Matrix& data) {
  cols_ = data.cols();
  return Status::OK();
}

Status ZeroImputer::Transform(Matrix* data) const {
  if (cols_ < 0) return Status::FailedPrecondition("imputer not fitted");
  if (data->cols() != cols_) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  simd::FillNanWith(data->data().data(),
                    static_cast<int64_t>(data->data().size()), 0.0);
  return Status::OK();
}

// ---------------------------------------------------------------- Mean

Status MeanImputer::Fit(const Matrix& data) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  means_ = data.ColumnMeans();
  return Status::OK();
}

Status MeanImputer::Transform(Matrix* data) const {
  if (means_.empty()) return Status::FailedPrecondition("imputer not fitted");
  if (data->cols() != static_cast<int64_t>(means_.size())) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  for (int64_t r = 0; r < data->rows(); ++r) {
    simd::FillNanWithRow(data->Row(r), means_.data(), data->cols());
  }
  return Status::OK();
}

// ----------------------------------------------------------------- KNN

Status KnnImputer::Fit(const Matrix& data) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  if (k_ < 1) return Status::InvalidArgument("knn imputer needs k >= 1");
  reference_ = data;
  fallback_means_ = data.ColumnMeans();
  return Status::OK();
}

Status KnnImputer::Transform(Matrix* data) const {
  if (reference_.rows() == 0) {
    return Status::FailedPrecondition("imputer not fitted");
  }
  if (data->cols() != reference_.cols()) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  const int64_t d = data->cols();
  const int64_t n_ref = reference_.rows();
  // One distance buffer reused across query rows; the scan itself runs
  // over raw row pointers (no per-reference-row copies).
  std::vector<std::pair<double, int64_t>> dist;
  dist.reserve(static_cast<size_t>(n_ref));
  for (int64_t r = 0; r < data->rows(); ++r) {
    double* row = data->Row(r);
    if (!simd::HasNan(row, d)) continue;

    // Distances to every reference row (nan-euclidean), computed once per
    // query row; neighbours are then filtered per missing column so that a
    // neighbour missing the same column is skipped (sklearn semantics).
    // The query values are read before any cell of `row` is filled below,
    // so scanning `row` in place matches the old copy-then-scan exactly.
    dist.clear();
    for (int64_t i = 0; i < n_ref; ++i) {
      int64_t used = 0;
      double sum =
          simd::NanSquaredDistanceSeq(row, reference_.Row(i), d, &used);
      if (used == 0) continue;  // +inf distance: never a neighbour
      double scale = static_cast<double>(d) / static_cast<double>(used);
      double dd = std::sqrt(scale * sum);
      if (std::isfinite(dd)) dist.emplace_back(dd, i);
    }
    std::sort(dist.begin(), dist.end());

    for (int64_t c = 0; c < d; ++c) {
      if (!std::isnan(row[c])) continue;
      double sum = 0.0;
      int found = 0;
      for (const auto& [dd, idx] : dist) {
        double v = reference_.At(idx, c);
        if (std::isnan(v)) continue;
        sum += v;
        if (++found == k_) break;
      }
      row[c] = found > 0 ? sum / found : fallback_means_[static_cast<size_t>(c)];
      if (std::isnan(row[c])) row[c] = 0.0;  // all-NaN column at fit time
    }
  }
  return Status::OK();
}

// ----------------------------------------------------------- Regression

Status RegressionImputer::Fit(const Matrix& data) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("need >= 2 rows to fit regressions");
  }
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  means_ = data.ColumnMeans();
  for (double& m : means_) {
    if (std::isnan(m)) m = 0.0;
  }

  // Mean-imputed design copy: regressions must see complete predictors.
  Matrix filled = data;
  for (int64_t r = 0; r < n; ++r) {
    simd::FillNanWithRow(filled.Row(r), means_.data(), d);
  }

  weights_.assign(static_cast<size_t>(d), {});
  for (int64_t target = 0; target < d; ++target) {
    // Rows where the target column was actually observed.
    std::vector<int64_t> train_rows;
    for (int64_t r = 0; r < n; ++r) {
      if (!std::isnan(data.At(r, target))) train_rows.push_back(r);
    }
    std::vector<double>& w = weights_[static_cast<size_t>(target)];
    w.assign(static_cast<size_t>(d), 0.0);  // d-1 predictors + intercept
    if (train_rows.size() < 2) {
      w[static_cast<size_t>(d - 1)] = means_[static_cast<size_t>(target)];
      continue;
    }
    // Ridge normal equations over the d-1 predictor columns + intercept.
    const int64_t p = d - 1;
    Matrix xtx(p + 1, p + 1);
    std::vector<double> xty(static_cast<size_t>(p + 1), 0.0);
    std::vector<double> x(static_cast<size_t>(p + 1), 0.0);
    for (int64_t r : train_rows) {
      int64_t j = 0;
      for (int64_t c = 0; c < d; ++c) {
        if (c == target) continue;
        x[static_cast<size_t>(j++)] = filled.At(r, c);
      }
      x[static_cast<size_t>(p)] = 1.0;  // intercept
      double y = data.At(r, target);
      for (int64_t a = 0; a <= p; ++a) {
        simd::Axpy(xtx.Row(a) + a, x.data() + a, p + 1 - a,
                   x[static_cast<size_t>(a)]);
        xty[static_cast<size_t>(a)] += x[static_cast<size_t>(a)] * y;
      }
    }
    for (int64_t a = 0; a <= p; ++a) {
      for (int64_t b = 0; b < a; ++b) xtx.At(a, b) = xtx.At(b, a);
      if (a < p) xtx.At(a, a) += l2_;
    }
    w = SolveLinearSystem(std::move(xtx), std::move(xty));
  }
  return Status::OK();
}

Status RegressionImputer::Transform(Matrix* data) const {
  if (weights_.empty()) return Status::FailedPrecondition("imputer not fitted");
  const int64_t d = data->cols();
  if (d != static_cast<int64_t>(weights_.size())) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  for (int64_t r = 0; r < data->rows(); ++r) {
    double* row = data->Row(r);
    // Predictor vector with means standing in for any missing predictor.
    for (int64_t target = 0; target < d; ++target) {
      if (!std::isnan(row[target])) continue;
      const std::vector<double>& w = weights_[static_cast<size_t>(target)];
      double pred = w[static_cast<size_t>(d - 1)];  // intercept
      int64_t j = 0;
      for (int64_t c = 0; c < d; ++c) {
        if (c == target) continue;
        double v = std::isnan(row[c]) ? means_[static_cast<size_t>(c)]
                                      : row[c];
        pred += w[static_cast<size_t>(j++)] * v;
      }
      row[target] = std::isfinite(pred) ? pred
                                        : means_[static_cast<size_t>(target)];
    }
  }
  return Status::OK();
}

// -------------------------------------------------------------- factory

Result<std::unique_ptr<Imputer>> MakeImputer(const std::string& strategy,
                                             int knn_k) {
  if (strategy == "zero") {
    return std::unique_ptr<Imputer>(new ZeroImputer());
  }
  if (strategy == "mean") {
    return std::unique_ptr<Imputer>(new MeanImputer());
  }
  if (strategy == "knn") {
    return std::unique_ptr<Imputer>(new KnnImputer(knn_k));
  }
  if (strategy == "regression") {
    return std::unique_ptr<Imputer>(new RegressionImputer());
  }
  return Status::InvalidArgument("unknown imputer strategy '" + strategy +
                                 "'");
}

}  // namespace oebench
