#include "preprocess/pipeline.h"

#include <chrono>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/random.h"
#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"
#include "preprocess/one_hot.h"

namespace oebench {

namespace {

/// Splits the generated table into a feature table and a target vector.
Status SplitFeaturesTarget(const Table& table, Table* features,
                           std::vector<double>* target) {
  OE_ASSIGN_OR_RETURN(int64_t target_idx, table.ColumnIndex("target"));
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (c == target_idx) continue;
    OE_RETURN_NOT_OK(features->AddColumn(table.column(c)));
  }
  *target = table.column(target_idx).numeric_values();
  return Status::OK();
}

/// Seconds elapsed since `begin` on the steady clock.
double SecondsSince(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

PreparedStream StreamContext::Header() const {
  PreparedStream out;
  out.name = name;
  out.task = task;
  out.num_classes = num_classes;
  out.feature_names = feature_names;
  return out;
}

Result<StreamContext> BuildStreamContext(const GeneratedStream& stream,
                                         const PipelineOptions& options) {
  Table table = stream.table;
  if (options.shuffle) {
    Rng rng(options.shuffle_seed);
    std::vector<int64_t> order(static_cast<size_t>(table.num_rows()));
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    table = table.SelectRows(order);
  }

  Table features;
  std::vector<double> target;
  OE_RETURN_NOT_OK(SplitFeaturesTarget(table, &features, &target));

  // One-hot encode categoricals (§4.3 step 3).
  OneHotEncoder encoder;
  OE_RETURN_NOT_OK(encoder.Fit(features));
  OE_ASSIGN_OR_RETURN(Table encoded, encoder.Transform(features));
  OE_ASSIGN_OR_RETURN(Matrix x, encoded.ToMatrix());

  StreamContext ctx;
  ctx.name = stream.spec.name;
  ctx.task = stream.spec.task;
  ctx.num_classes = stream.spec.num_classes;
  ctx.feature_names = encoded.ColumnNames();
  ctx.options = options;

  // Optionally discard chronically missing features (Figure 5 "Discard").
  if (options.discard_missing_above > 0.0) {
    std::vector<int64_t> kept;
    std::vector<std::string> kept_names;
    for (int64_t c = 0; c < x.cols(); ++c) {
      int64_t missing = 0;
      for (int64_t r = 0; r < x.rows(); ++r) {
        if (std::isnan(x.At(r, c))) ++missing;
      }
      double ratio =
          static_cast<double>(missing) / static_cast<double>(x.rows());
      if (ratio <= options.discard_missing_above) {
        kept.push_back(c);
        kept_names.push_back(ctx.feature_names[static_cast<size_t>(c)]);
      }
    }
    if (kept.empty()) {
      return Status::InvalidArgument(
          "discard_missing_above removed every feature");
    }
    x = x.SelectCols(kept);
    ctx.feature_names = std::move(kept_names);
  }

  // Window layout (§4.3 step 6, window factor from §6.4.2).
  int64_t window_size = std::max<int64_t>(
      10, static_cast<int64_t>(std::llround(
              static_cast<double>(stream.spec.window_size) *
              options.window_factor)));
  OE_ASSIGN_OR_RETURN(ctx.ranges, MakeWindows(x.rows(), window_size));

  // Oracle-scope imputation sees the whole stream up front; per-window
  // imputation belongs to the WindowPipeline (whose Create also
  // validates the strategy name — same error either way).
  if (options.impute_scope == ImputeScope::kOracle) {
    OE_ASSIGN_OR_RETURN(std::unique_ptr<Imputer> imputer,
                        MakeImputer(options.imputer, options.knn_k));
    const auto t0 = std::chrono::steady_clock::now();
    OE_RETURN_NOT_OK(imputer->Fit(x));
    OE_RETURN_NOT_OK(imputer->Transform(&x));
    ctx.oracle_impute_seconds += SecondsSince(t0);
  }

  ctx.x = std::move(x);
  ctx.target = std::move(target);
  return ctx;
}

Result<std::unique_ptr<WindowPipeline>> WindowPipeline::Create(
    const PipelineOptions& options) {
  std::unique_ptr<WindowPipeline> pipeline(new WindowPipeline(options));
  OE_ASSIGN_OR_RETURN(pipeline->imputer_,
                      MakeImputer(options.imputer, options.knn_k));
  return pipeline;
}

Result<WindowData> WindowPipeline::PrepareWindow(const StreamContext& ctx,
                                                 size_t w) {
  if (w >= ctx.ranges.size()) {
    return Status::InvalidArgument("window index out of range");
  }
  const WindowRange& range = ctx.ranges[w];
  WindowData window;
  window.features = ctx.x.Slice(range.begin, range.end);
  window.targets.assign(ctx.target.begin() + range.begin,
                        ctx.target.begin() + range.end);
  return Prepare(ctx, w, std::move(window));
}

Result<WindowData> WindowPipeline::PrepareWindowRows(
    const StreamContext& ctx, size_t w, const std::vector<int64_t>& rows) {
  if (w >= ctx.ranges.size()) {
    return Status::InvalidArgument("window index out of range");
  }
  const WindowRange& range = ctx.ranges[w];
  // The full contiguous range takes the exact batch path (Slice), so a
  // loss-free serving run is bit-identical to PrepareStream by
  // construction; only a window with gaps selects rows individually.
  if (static_cast<int64_t>(rows.size()) == range.size()) {
    return PrepareWindow(ctx, w);
  }
  WindowData window;
  window.features = ctx.x.SelectRows(rows);
  window.targets.reserve(rows.size());
  for (int64_t r : rows) {
    if (r < range.begin || r >= range.end) {
      return Status::InvalidArgument("row outside its window range");
    }
    window.targets.push_back(ctx.target[static_cast<size_t>(r)]);
  }
  return Prepare(ctx, w, std::move(window));
}

Result<WindowData> WindowPipeline::Prepare(const StreamContext& ctx,
                                           size_t w, WindowData window) {
  const PipelineOptions& options = options_;
  if (options.impute_scope == ImputeScope::kPerWindow) {
    const auto t0 = std::chrono::steady_clock::now();
    OE_RETURN_NOT_OK(imputer_->Fit(window.features));
    OE_RETURN_NOT_OK(imputer_->Transform(&window.features));
    impute_seconds_ += SecondsSince(t0);
  }
  if (options.normalize) {
    // First-window statistics drive normalisation (§6.1).
    if (!norm_fitted_) {
      norm_fitted_ = true;
      OE_RETURN_NOT_OK(feature_norm_.Fit(window.features));
      if (ctx.task == TaskType::kRegression) {
        Matrix t(static_cast<int64_t>(window.targets.size()), 1);
        for (size_t i = 0; i < window.targets.size(); ++i) {
          t.At(static_cast<int64_t>(i), 0) = window.targets[i];
        }
        OE_RETURN_NOT_OK(target_norm_.Fit(t));
      }
    }
    feature_norm_.Transform(&window.features);
    if (ctx.task == TaskType::kRegression) {
      for (double& v : window.targets) {
        v = target_norm_.TransformValue(0, v);
      }
    }
  }

  // Per-window outlier removal (Figure 16) happens after imputation and
  // normalisation so the detector sees what the model would see.
  if (!options.outlier_removal.empty() && window.features.rows() >= 8) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> scores;
    if (options.outlier_removal == "ecod") {
      Ecod detector;
      OE_ASSIGN_OR_RETURN(scores, detector.FitScore(window.features));
    } else if (options.outlier_removal == "iforest") {
      IsolationForest::Options ifo;
      ifo.num_trees = 50;
      ifo.seed = 13 + w;
      IsolationForest detector(ifo);
      OE_ASSIGN_OR_RETURN(scores, detector.FitScore(window.features));
    } else {
      return Status::InvalidArgument("unknown outlier_removal '" +
                                     options.outlier_removal + "'");
    }
    std::vector<bool> mask = ThresholdOutliers(scores);
    std::vector<int64_t> keep;
    for (int64_t r = 0; r < window.features.rows(); ++r) {
      if (!mask[static_cast<size_t>(r)]) keep.push_back(r);
    }
    if (!keep.empty() &&
        keep.size() < static_cast<size_t>(window.features.rows())) {
      Matrix pruned = window.features.SelectRows(keep);
      std::vector<double> pruned_targets;
      pruned_targets.reserve(keep.size());
      for (int64_t r : keep) {
        pruned_targets.push_back(window.targets[static_cast<size_t>(r)]);
      }
      window.features = std::move(pruned);
      window.targets = std::move(pruned_targets);
    }
    detect_seconds_ += SecondsSince(t0);
  }
  return window;
}

Result<PreparedStream> PrepareStream(const GeneratedStream& stream,
                                     const PipelineOptions& options) {
  OE_ASSIGN_OR_RETURN(StreamContext ctx,
                      BuildStreamContext(stream, options));
  OE_ASSIGN_OR_RETURN(std::unique_ptr<WindowPipeline> pipeline,
                      WindowPipeline::Create(options));

  PreparedStream out = ctx.Header();
  for (size_t w = 0; w < ctx.ranges.size(); ++w) {
    OE_ASSIGN_OR_RETURN(WindowData window, pipeline->PrepareWindow(ctx, w));
    out.windows.push_back(std::move(window));
  }
  out.ranges = ctx.ranges;

  // Imputation and outlier-detection time accumulate across the whole
  // stream and land in the registry as one sample per prepared stream.
  MetricsRegistry* metrics = MetricsRegistry::Global();
  metrics->GetCounter("prepare.streams")->Increment();
  metrics->GetCounter("prepare.rows")->Add(ctx.x.rows());
  metrics->GetCounter("prepare.windows")
      ->Add(static_cast<int64_t>(out.windows.size()));
  metrics->GetHistogram("prepare.impute_seconds")
      ->Record(ctx.oracle_impute_seconds + pipeline->impute_seconds());
  metrics->GetHistogram("prepare.detect_seconds")
      ->Record(pipeline->detect_seconds());
  return out;
}

}  // namespace oebench
