#include "preprocess/pipeline.h"

#include <chrono>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/random.h"
#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"
#include "preprocess/imputer.h"
#include "preprocess/normalizer.h"
#include "preprocess/one_hot.h"

namespace oebench {

namespace {

/// Splits the generated table into a feature table and a target vector.
Status SplitFeaturesTarget(const Table& table, Table* features,
                           std::vector<double>* target) {
  OE_ASSIGN_OR_RETURN(int64_t target_idx, table.ColumnIndex("target"));
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    if (c == target_idx) continue;
    OE_RETURN_NOT_OK(features->AddColumn(table.column(c)));
  }
  *target = table.column(target_idx).numeric_values();
  return Status::OK();
}

/// Seconds elapsed since `begin` on the steady clock.
double SecondsSince(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

Result<PreparedStream> PrepareStream(const GeneratedStream& stream,
                                     const PipelineOptions& options) {
  // Imputation and outlier-detection time accumulate across the whole
  // stream and land in the registry as one sample per prepared stream.
  double impute_seconds = 0.0;
  double detect_seconds = 0.0;
  Table table = stream.table;
  if (options.shuffle) {
    Rng rng(options.shuffle_seed);
    std::vector<int64_t> order(static_cast<size_t>(table.num_rows()));
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    table = table.SelectRows(order);
  }

  Table features;
  std::vector<double> target;
  OE_RETURN_NOT_OK(SplitFeaturesTarget(table, &features, &target));

  // One-hot encode categoricals (§4.3 step 3).
  OneHotEncoder encoder;
  OE_RETURN_NOT_OK(encoder.Fit(features));
  OE_ASSIGN_OR_RETURN(Table encoded, encoder.Transform(features));
  OE_ASSIGN_OR_RETURN(Matrix x, encoded.ToMatrix());

  PreparedStream out;
  out.name = stream.spec.name;
  out.task = stream.spec.task;
  out.num_classes = stream.spec.num_classes;
  out.feature_names = encoded.ColumnNames();

  // Optionally discard chronically missing features (Figure 5 "Discard").
  if (options.discard_missing_above > 0.0) {
    std::vector<int64_t> kept;
    std::vector<std::string> kept_names;
    for (int64_t c = 0; c < x.cols(); ++c) {
      int64_t missing = 0;
      for (int64_t r = 0; r < x.rows(); ++r) {
        if (std::isnan(x.At(r, c))) ++missing;
      }
      double ratio =
          static_cast<double>(missing) / static_cast<double>(x.rows());
      if (ratio <= options.discard_missing_above) {
        kept.push_back(c);
        kept_names.push_back(out.feature_names[static_cast<size_t>(c)]);
      }
    }
    if (kept.empty()) {
      return Status::InvalidArgument(
          "discard_missing_above removed every feature");
    }
    x = x.SelectCols(kept);
    out.feature_names = std::move(kept_names);
  }

  // Window layout (§4.3 step 6, window factor from §6.4.2).
  int64_t window_size = std::max<int64_t>(
      10, static_cast<int64_t>(std::llround(
              static_cast<double>(stream.spec.window_size) *
              options.window_factor)));
  OE_ASSIGN_OR_RETURN(std::vector<WindowRange> ranges,
                      MakeWindows(x.rows(), window_size));

  // Oracle-scope imputation sees the whole stream up front.
  OE_ASSIGN_OR_RETURN(std::unique_ptr<Imputer> imputer,
                      MakeImputer(options.imputer, options.knn_k));
  if (options.impute_scope == ImputeScope::kOracle) {
    const auto t0 = std::chrono::steady_clock::now();
    OE_RETURN_NOT_OK(imputer->Fit(x));
    OE_RETURN_NOT_OK(imputer->Transform(&x));
    impute_seconds += SecondsSince(t0);
  }

  // First-window statistics drive normalisation (§6.1).
  Normalizer feature_norm;
  Normalizer target_norm;
  bool regression = out.task == TaskType::kRegression;

  for (size_t w = 0; w < ranges.size(); ++w) {
    const WindowRange& range = ranges[w];
    WindowData window;
    window.features = x.Slice(range.begin, range.end);
    window.targets.assign(target.begin() + range.begin,
                          target.begin() + range.end);

    if (options.impute_scope == ImputeScope::kPerWindow) {
      const auto t0 = std::chrono::steady_clock::now();
      OE_RETURN_NOT_OK(imputer->Fit(window.features));
      OE_RETURN_NOT_OK(imputer->Transform(&window.features));
      impute_seconds += SecondsSince(t0);
    }
    if (options.normalize) {
      if (w == 0) {
        OE_RETURN_NOT_OK(feature_norm.Fit(window.features));
        if (regression) {
          Matrix t(static_cast<int64_t>(window.targets.size()), 1);
          for (size_t i = 0; i < window.targets.size(); ++i) {
            t.At(static_cast<int64_t>(i), 0) = window.targets[i];
          }
          OE_RETURN_NOT_OK(target_norm.Fit(t));
        }
      }
      feature_norm.Transform(&window.features);
      if (regression) {
        for (double& v : window.targets) {
          v = target_norm.TransformValue(0, v);
        }
      }
    }

    // Per-window outlier removal (Figure 16) happens after imputation and
    // normalisation so the detector sees what the model would see.
    if (!options.outlier_removal.empty() && window.features.rows() >= 8) {
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<double> scores;
      if (options.outlier_removal == "ecod") {
        Ecod detector;
        OE_ASSIGN_OR_RETURN(scores, detector.FitScore(window.features));
      } else if (options.outlier_removal == "iforest") {
        IsolationForest::Options ifo;
        ifo.num_trees = 50;
        ifo.seed = 13 + w;
        IsolationForest detector(ifo);
        OE_ASSIGN_OR_RETURN(scores, detector.FitScore(window.features));
      } else {
        return Status::InvalidArgument("unknown outlier_removal '" +
                                       options.outlier_removal + "'");
      }
      std::vector<bool> mask = ThresholdOutliers(scores);
      std::vector<int64_t> keep;
      for (int64_t r = 0; r < window.features.rows(); ++r) {
        if (!mask[static_cast<size_t>(r)]) keep.push_back(r);
      }
      if (!keep.empty() &&
          keep.size() < static_cast<size_t>(window.features.rows())) {
        Matrix pruned = window.features.SelectRows(keep);
        std::vector<double> pruned_targets;
        pruned_targets.reserve(keep.size());
        for (int64_t r : keep) {
          pruned_targets.push_back(
              window.targets[static_cast<size_t>(r)]);
        }
        window.features = std::move(pruned);
        window.targets = std::move(pruned_targets);
      }
      detect_seconds += SecondsSince(t0);
    }
    out.windows.push_back(std::move(window));
  }
  out.ranges = std::move(ranges);

  MetricsRegistry* metrics = MetricsRegistry::Global();
  metrics->GetCounter("prepare.streams")->Increment();
  metrics->GetCounter("prepare.rows")->Add(x.rows());
  metrics->GetCounter("prepare.windows")
      ->Add(static_cast<int64_t>(out.windows.size()));
  metrics->GetHistogram("prepare.impute_seconds")->Record(impute_seconds);
  metrics->GetHistogram("prepare.detect_seconds")->Record(detect_seconds);
  return out;
}

}  // namespace oebench
