#ifndef OEBENCH_PREPROCESS_PIPELINE_H_
#define OEBENCH_PREPROCESS_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "preprocess/imputer.h"
#include "preprocess/normalizer.h"
#include "preprocess/windowing.h"
#include "streamgen/stream_spec.h"

namespace oebench {

/// When the missing-value filler gets to see data (Figure 5's three
/// curves).
enum class ImputeScope {
  /// Fit the imputer on each window as it arrives ("Filling (normal)").
  kPerWindow,
  /// Fit the imputer on the whole stream ("Filling (oracle)") — an upper
  /// bound impossible in deployment.
  kOracle,
};

/// Options of the paper's preprocessing pipeline (§4.3 steps 2-6 plus the
/// experiment knobs of §6.4-§6.8).
struct PipelineOptions {
  /// "zero" | "mean" | "knn" | "regression" (§6.6 / Figure 14).
  std::string imputer = "knn";
  int knn_k = 2;
  ImputeScope impute_scope = ImputeScope::kPerWindow;
  /// Multiplies the stream's default window size (§6.4.2 / Figure 11).
  double window_factor = 1.0;
  /// Normalise features (and regression targets) with first-window
  /// statistics (§6.1).
  bool normalize = true;
  /// Drop features missing in more than this fraction of rows overall
  /// ("Discard" in Figure 5); <= 0 disables.
  double discard_missing_above = 0.0;
  /// "" | "ecod" | "iforest": remove detected outliers per window before
  /// testing and training (§6.8 / Figure 16).
  std::string outlier_removal;
  /// Shuffle rows first to destroy drift (the "no drift" control of
  /// Figure 15).
  bool shuffle = false;
  uint64_t shuffle_seed = 99;
};

/// A stream after preprocessing: one-hot encoded, windowed, imputed and
/// normalised; ready for test-then-train evaluation.
struct PreparedStream {
  std::string name;
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
  std::vector<WindowData> windows;
  std::vector<WindowRange> ranges;
  /// Feature names after encoding/discarding.
  std::vector<std::string> feature_names;
};

/// The stream-global half of preprocessing: everything that is fixed
/// once the raw stream is known and never changes as windows arrive —
/// the (optionally shuffled) encoded feature matrix, targets, window
/// layout, and the oracle-scope imputation. Built once per stream; the
/// per-window half (WindowPipeline below) then consumes it window by
/// window. The online serving layer (src/serve) keeps one StreamContext
/// per live session and materialises windows incrementally as records
/// arrive; the batch PrepareStream materialises them all in one loop.
/// Both paths run the exact same code, which is what makes serving
/// outputs bit-identical to a batch run.
struct StreamContext {
  std::string name;
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
  std::vector<std::string> feature_names;
  /// One-hot encoded (and, under kOracle scope, already imputed)
  /// features; NaN = missing.
  Matrix x;
  std::vector<double> target;
  std::vector<WindowRange> ranges;
  PipelineOptions options;
  /// Seconds spent in the oracle-scope whole-stream imputation (0 under
  /// kPerWindow scope).
  double oracle_impute_seconds = 0.0;

  /// Metadata-only PreparedStream (no windows): what a learner's
  /// Begin() needs (name/task/num_classes/feature_names).
  PreparedStream Header() const;
};

/// Runs the stream-global pipeline prefix: shuffle, feature/target
/// split, one-hot encoding, chronic-missing discard, window layout and
/// oracle-scope imputation.
Result<StreamContext> BuildStreamContext(const GeneratedStream& stream,
                                         const PipelineOptions& options = {});

/// The per-window half of preprocessing: missing-value imputation
/// (kPerWindow scope), first-window normalisation statistics, and
/// per-window outlier removal. Owns the imputer/normalizer/detector
/// state a stream carries across windows, so one instance serves one
/// stream and windows MUST be prepared in order (w = 0, 1, 2, ... —
/// window 0 fits the normalisation statistics every later window uses).
/// Not thread-safe; the serving layer serialises all calls for a
/// session.
class WindowPipeline {
 public:
  /// Validates options.imputer; the returned pipeline is bound to one
  /// stream's window sequence.
  static Result<std::unique_ptr<WindowPipeline>> Create(
      const PipelineOptions& options);

  /// Prepares window `w` from its full row range `ctx.ranges[w]` —
  /// exactly what the batch PrepareStream does.
  Result<WindowData> PrepareWindow(const StreamContext& ctx, size_t w);

  /// Prepares window `w` from an explicit subset of its rows (ascending
  /// absolute row indices) — the serving path under record loss, where
  /// dropped records leave gaps in a window. With `rows` equal to the
  /// full range this is bit-identical to PrepareWindow.
  Result<WindowData> PrepareWindowRows(const StreamContext& ctx, size_t w,
                                       const std::vector<int64_t>& rows);

  /// Cumulative seconds spent imputing / detecting outliers across the
  /// windows prepared so far.
  double impute_seconds() const { return impute_seconds_; }
  double detect_seconds() const { return detect_seconds_; }

 private:
  explicit WindowPipeline(const PipelineOptions& options)
      : options_(options) {}

  Result<WindowData> Prepare(const StreamContext& ctx, size_t w,
                             WindowData window);

  PipelineOptions options_;
  std::unique_ptr<Imputer> imputer_;
  Normalizer feature_norm_;
  Normalizer target_norm_;
  /// Set once the first prepared window fits the normalisation
  /// statistics. In a loss-free run that window is w = 0, matching the
  /// batch pipeline bit-for-bit; under record loss it keeps later
  /// windows well-defined even when window 0 was dropped wholesale.
  bool norm_fitted_ = false;
  double impute_seconds_ = 0.0;
  double detect_seconds_ = 0.0;
};

/// Runs the full preprocessing pipeline on a generated stream:
/// BuildStreamContext + a WindowPipeline pass over every window.
Result<PreparedStream> PrepareStream(const GeneratedStream& stream,
                                     const PipelineOptions& options = {});

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_PIPELINE_H_
