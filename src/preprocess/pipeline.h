#ifndef OEBENCH_PREPROCESS_PIPELINE_H_
#define OEBENCH_PREPROCESS_PIPELINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "preprocess/windowing.h"
#include "streamgen/stream_spec.h"

namespace oebench {

/// When the missing-value filler gets to see data (Figure 5's three
/// curves).
enum class ImputeScope {
  /// Fit the imputer on each window as it arrives ("Filling (normal)").
  kPerWindow,
  /// Fit the imputer on the whole stream ("Filling (oracle)") — an upper
  /// bound impossible in deployment.
  kOracle,
};

/// Options of the paper's preprocessing pipeline (§4.3 steps 2-6 plus the
/// experiment knobs of §6.4-§6.8).
struct PipelineOptions {
  /// "zero" | "mean" | "knn" | "regression" (§6.6 / Figure 14).
  std::string imputer = "knn";
  int knn_k = 2;
  ImputeScope impute_scope = ImputeScope::kPerWindow;
  /// Multiplies the stream's default window size (§6.4.2 / Figure 11).
  double window_factor = 1.0;
  /// Normalise features (and regression targets) with first-window
  /// statistics (§6.1).
  bool normalize = true;
  /// Drop features missing in more than this fraction of rows overall
  /// ("Discard" in Figure 5); <= 0 disables.
  double discard_missing_above = 0.0;
  /// "" | "ecod" | "iforest": remove detected outliers per window before
  /// testing and training (§6.8 / Figure 16).
  std::string outlier_removal;
  /// Shuffle rows first to destroy drift (the "no drift" control of
  /// Figure 15).
  bool shuffle = false;
  uint64_t shuffle_seed = 99;
};

/// A stream after preprocessing: one-hot encoded, windowed, imputed and
/// normalised; ready for test-then-train evaluation.
struct PreparedStream {
  std::string name;
  TaskType task = TaskType::kRegression;
  int num_classes = 2;
  std::vector<WindowData> windows;
  std::vector<WindowRange> ranges;
  /// Feature names after encoding/discarding.
  std::vector<std::string> feature_names;
};

/// Runs the full preprocessing pipeline on a generated stream.
Result<PreparedStream> PrepareStream(const GeneratedStream& stream,
                                     const PipelineOptions& options = {});

}  // namespace oebench

#endif  // OEBENCH_PREPROCESS_PIPELINE_H_
