#include "preprocess/time_ordering.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>

namespace oebench {

Result<Table> SortByColumn(const Table& table,
                           const std::string& column_name) {
  OE_ASSIGN_OR_RETURN(int64_t idx, table.ColumnIndex(column_name));
  const Column& key = table.column(idx);
  std::vector<int64_t> order(static_cast<size_t>(table.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  if (key.type() == ColumnType::kNumeric) {
    std::stable_sort(order.begin(), order.end(),
                     [&key](int64_t a, int64_t b) {
                       double va = key.NumericAt(a);
                       double vb = key.NumericAt(b);
                       bool na = std::isnan(va);
                       bool nb = std::isnan(vb);
                       if (na != nb) return nb;  // missing keys sort last
                       if (na && nb) return false;
                       return va < vb;
                     });
  } else {
    std::stable_sort(order.begin(), order.end(),
                     [&key](int64_t a, int64_t b) {
                       bool ma = key.IsMissing(a);
                       bool mb = key.IsMissing(b);
                       if (ma != mb) return mb;
                       if (ma && mb) return false;
                       return key.CategoryName(key.CodeAt(a)) <
                              key.CategoryName(key.CodeAt(b));
                     });
  }
  return table.SelectRows(order);
}

Result<Table> DropColumns(const Table& table,
                          const std::vector<std::string>& column_names) {
  for (const std::string& name : column_names) {
    OE_RETURN_NOT_OK(table.ColumnIndex(name).status());
  }
  Table out;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.column(c).name();
    bool dropped = false;
    for (const std::string& victim : column_names) {
      if (victim == name) dropped = true;
    }
    if (!dropped) {
      OE_RETURN_NOT_OK(out.AddColumn(table.column(c)));
    }
  }
  return out;
}

std::vector<std::string> GuessTimeColumns(const Table& table) {
  static const char* kMarkers[] = {"time", "date",  "timestamp", "year",
                                   "month", "day",  "hour"};
  std::vector<std::string> found;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    std::string lower = table.column(c).name();
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    for (const char* marker : kMarkers) {
      if (lower.find(marker) != std::string::npos) {
        found.push_back(table.column(c).name());
        break;
      }
    }
  }
  return found;
}

}  // namespace oebench
