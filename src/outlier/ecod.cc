#include "outlier/ecod.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"

namespace oebench {

namespace {

/// Fraction of fitted values <= v (left ECDF), with the +1 smoothing ECOD
/// uses so tail probabilities never hit zero.
double LeftTail(const std::vector<double>& sorted, double v) {
  auto it = std::upper_bound(sorted.begin(), sorted.end(), v);
  double count = static_cast<double>(it - sorted.begin());
  return (count + 1.0) / (static_cast<double>(sorted.size()) + 2.0);
}

double RightTail(const std::vector<double>& sorted, double v) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  double count = static_cast<double>(sorted.end() - it);
  return (count + 1.0) / (static_cast<double>(sorted.size()) + 2.0);
}

double SampleSkewness(const std::vector<double>& v) {
  if (v.size() < 3) return 0.0;
  double m = Mean(v);
  double s2 = 0.0;
  double s3 = 0.0;
  for (double x : v) {
    double d = x - m;
    s2 += d * d;
    s3 += d * d * d;
  }
  double n = static_cast<double>(v.size());
  s2 /= n;
  s3 /= n;
  double sd = std::sqrt(s2);
  if (sd < 1e-12) return 0.0;
  return s3 / (sd * sd * sd);
}

}  // namespace

Result<std::vector<double>> Ecod::FitScore(const Matrix& data) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("ECOD needs at least 2 rows");
  }
  const int64_t d = data.cols();
  sorted_columns_.clear();
  skewness_.clear();
  sorted_columns_.reserve(static_cast<size_t>(d));
  skewness_.reserve(static_cast<size_t>(d));
  for (int64_t c = 0; c < d; ++c) {
    std::vector<double> col = data.ColVector(c);
    skewness_.push_back(SampleSkewness(col));
    std::sort(col.begin(), col.end());
    sorted_columns_.push_back(std::move(col));
  }
  return Score(data);
}

double Ecod::ScoreRow(const double* row) const {
  double left_sum = 0.0;
  double right_sum = 0.0;
  double skew_sum = 0.0;
  for (size_t c = 0; c < sorted_columns_.size(); ++c) {
    double lt = LeftTail(sorted_columns_[c], row[c]);
    double rt = RightTail(sorted_columns_[c], row[c]);
    double left = -std::log(lt);
    double right = -std::log(rt);
    left_sum += left;
    right_sum += right;
    skew_sum += skewness_[c] < 0.0 ? left : right;
  }
  return std::max({left_sum, right_sum, skew_sum});
}

Result<std::vector<double>> Ecod::Score(const Matrix& data) const {
  if (!fitted()) return Status::FailedPrecondition("ECOD not fitted");
  if (data.cols() != static_cast<int64_t>(sorted_columns_.size())) {
    return Status::InvalidArgument("column count differs from fit time");
  }
  std::vector<double> scores(static_cast<size_t>(data.rows()));
  for (int64_t r = 0; r < data.rows(); ++r) {
    scores[static_cast<size_t>(r)] = ScoreRow(data.Row(r));
  }
  return scores;
}

std::vector<bool> ThresholdOutliers(const std::vector<double>& scores,
                                    double num_stddevs) {
  double mean = Mean(scores);
  double sd = StdDev(scores);
  double threshold = mean + num_stddevs * sd;
  std::vector<bool> mask(scores.size(), false);
  for (size_t i = 0; i < scores.size(); ++i) {
    mask[i] = scores[i] > threshold;
  }
  return mask;
}

}  // namespace oebench
