#include "outlier/isolation_forest.h"

#include <algorithm>
#include <cmath>

namespace oebench {

double IsolationForest::AveragePathLength(double n) {
  if (n <= 1.0) return 0.0;
  if (n == 2.0) return 1.0;
  double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

int32_t IsolationForest::Build(const Matrix& data,
                               std::vector<int64_t>& indices, int depth,
                               int max_depth, Rng* rng, Tree* tree) const {
  int32_t self = static_cast<int32_t>(tree->size());
  tree->emplace_back();
  if (static_cast<int>(indices.size()) <= 1 || depth >= max_depth) {
    (*tree)[static_cast<size_t>(self)].size =
        static_cast<double>(indices.size());
    return self;
  }
  // Random feature with a non-degenerate range; give up after a few tries.
  int32_t feature = -1;
  double lo = 0.0;
  double hi = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    int32_t f = static_cast<int32_t>(rng->UniformInt(data.cols()));
    lo = data.At(indices[0], f);
    hi = lo;
    for (int64_t i : indices) {
      lo = std::min(lo, data.At(i, f));
      hi = std::max(hi, data.At(i, f));
    }
    if (hi > lo) {
      feature = f;
      break;
    }
  }
  if (feature < 0) {
    (*tree)[static_cast<size_t>(self)].size =
        static_cast<double>(indices.size());
    return self;
  }
  double threshold = rng->Uniform(lo, hi);
  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  for (int64_t i : indices) {
    if (data.At(i, feature) < threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  indices.clear();
  indices.shrink_to_fit();
  int32_t left = Build(data, left_idx, depth + 1, max_depth, rng, tree);
  int32_t right = Build(data, right_idx, depth + 1, max_depth, rng, tree);
  IsoNode& node = (*tree)[static_cast<size_t>(self)];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return self;
}

Status IsolationForest::Fit(const Matrix& data) {
  if (data.rows() < 2) {
    return Status::InvalidArgument("isolation forest needs >= 2 rows");
  }
  trees_.clear();
  Rng rng(options_.seed);
  int64_t psi =
      std::min<int64_t>(options_.subsample_size, data.rows());
  int max_depth =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(psi)))) + 1;
  c_norm_ = AveragePathLength(static_cast<double>(psi));
  if (c_norm_ <= 0.0) c_norm_ = 1.0;
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<int64_t> sample =
        rng.SampleWithoutReplacement(data.rows(), psi);
    Tree tree;
    Build(data, sample, 0, max_depth, &rng, &tree);
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double IsolationForest::PathLength(const Tree& tree,
                                   const double* row) const {
  int32_t cur = 0;
  double depth = 0.0;
  while (tree[static_cast<size_t>(cur)].feature >= 0) {
    const IsoNode& node = tree[static_cast<size_t>(cur)];
    cur = row[node.feature] < node.threshold ? node.left : node.right;
    depth += 1.0;
  }
  return depth + AveragePathLength(tree[static_cast<size_t>(cur)].size);
}

Result<std::vector<double>> IsolationForest::Score(const Matrix& data) const {
  if (!fitted()) return Status::FailedPrecondition("forest not fitted");
  std::vector<double> scores(static_cast<size_t>(data.rows()));
  for (int64_t r = 0; r < data.rows(); ++r) {
    double avg_path = 0.0;
    for (const Tree& tree : trees_) {
      avg_path += PathLength(tree, data.Row(r));
    }
    avg_path /= static_cast<double>(trees_.size());
    scores[static_cast<size_t>(r)] = std::pow(2.0, -avg_path / c_norm_);
  }
  return scores;
}

Result<std::vector<double>> IsolationForest::FitScore(const Matrix& data) {
  OE_RETURN_NOT_OK(Fit(data));
  return Score(data);
}

}  // namespace oebench
