#ifndef OEBENCH_OUTLIER_ECOD_H_
#define OEBENCH_OUTLIER_ECOD_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// ECOD — unsupervised outlier detection using empirical cumulative
/// distribution functions (Li, Zhao, Hu, Botta, Ionescu & Chen, 2022).
/// For every dimension the left and right empirical tail probabilities of
/// each point are computed; a point's outlier score is the maximum over
/// the aggregated negative log tail probabilities (left, right, and a
/// skewness-directed mix). Parameter free, which is why ADBench and the
/// paper (§4.3) recommend it.
class Ecod {
 public:
  /// Fits the per-dimension ECDFs on `data` and scores the same rows.
  /// (ECOD is transductive: fit and score are one step.)
  Result<std::vector<double>> FitScore(const Matrix& data);

  /// Scores new rows against the fitted ECDFs (tail probabilities are
  /// interpolated from the fit sample).
  Result<std::vector<double>> Score(const Matrix& data) const;

  bool fitted() const { return !sorted_columns_.empty(); }

 private:
  double ScoreRow(const double* row) const;

  // Per-dimension sorted fit values (for ECDF lookup) and skewness sign.
  std::vector<std::vector<double>> sorted_columns_;
  std::vector<double> skewness_;
};

/// Boolean outlier mask from scores using the paper's rule: a point is an
/// outlier when its score exceeds mean + 3 * stddev of the window's scores
/// (§4.3 "setting the threshold at three standard deviations above the
/// mean score").
std::vector<bool> ThresholdOutliers(const std::vector<double>& scores,
                                    double num_stddevs = 3.0);

}  // namespace oebench

#endif  // OEBENCH_OUTLIER_ECOD_H_
