#ifndef OEBENCH_OUTLIER_ISOLATION_FOREST_H_
#define OEBENCH_OUTLIER_ISOLATION_FOREST_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace oebench {

/// Isolation Forest (Liu, Ting & Zhou, 2008). Builds `num_trees` random
/// binary partition trees over sub-samples of the data; points that
/// isolate in few splits get high anomaly scores. Scores follow the
/// original paper: s(x) = 2^(-E[h(x)] / c(psi)) in (0, 1).
class IsolationForest {
 public:
  struct Options {
    int num_trees = 100;
    int subsample_size = 256;
    uint64_t seed = 13;
  };

  IsolationForest() : IsolationForest(Options()) {}
  explicit IsolationForest(Options options) : options_(options) {}

  /// Builds the forest on `data`.
  Status Fit(const Matrix& data);
  /// Anomaly scores in (0, 1); higher is more anomalous.
  Result<std::vector<double>> Score(const Matrix& data) const;
  /// Fit + score in one call (matching the per-window pipeline usage).
  Result<std::vector<double>> FitScore(const Matrix& data);

  bool fitted() const { return !trees_.empty(); }

 private:
  struct IsoNode {
    int32_t feature = -1;  // -1 marks an external (leaf) node
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    double size = 0.0;  // points that ended in this external node
  };
  using Tree = std::vector<IsoNode>;

  int32_t Build(const Matrix& data, std::vector<int64_t>& indices, int depth,
                int max_depth, Rng* rng, Tree* tree) const;
  double PathLength(const Tree& tree, const double* row) const;

  /// Average unsuccessful-search path length c(n) of a BST with n nodes.
  static double AveragePathLength(double n);

  Options options_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;
};

}  // namespace oebench

#endif  // OEBENCH_OUTLIER_ISOLATION_FOREST_H_
