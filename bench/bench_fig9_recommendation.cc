// Reproduces Figure 9: the recommendation decision tree, both as the
// static tree encoded from §6.2 and as a data-driven validation — for
// each representative dataset, does the recommended algorithm land in the
// measured top 3?

#include <cstdio>

#include "bench/bench_util.h"
#include "core/recommendation.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 9",
                     "Algorithm recommendations per scenario");
  std::printf("Static decision tree (from §6.2):\n");
  struct Scenario {
    const char* label;
    TaskType task;
    Level drift;
    Level anomaly;
    Level missing;
  };
  const Scenario scenarios[] = {
      {"cls, high drift, low anomaly", TaskType::kClassification,
       Level::kHigh, Level::kLow, Level::kLow},
      {"cls, low drift, low anomaly", TaskType::kClassification,
       Level::kLow, Level::kLow, Level::kLow},
      {"cls, high drift, high anomaly", TaskType::kClassification,
       Level::kHigh, Level::kHigh, Level::kLow},
      {"cls, low drift, high anomaly", TaskType::kClassification,
       Level::kLow, Level::kHigh, Level::kLow},
      {"reg, high missing", TaskType::kRegression, Level::kLow,
       Level::kLow, Level::kHigh},
      {"reg, low missing, high drift", TaskType::kRegression, Level::kHigh,
       Level::kLow, Level::kLow},
      {"reg, low missing, low drift", TaskType::kRegression, Level::kLow,
       Level::kLow, Level::kLow},
  };
  for (const Scenario& s : scenarios) {
    std::printf("  %-32s -> %-10s (tree-budget: %s)\n", s.label,
                RecommendAlgorithm(s.task, s.drift, s.anomaly, s.missing)
                    .c_str(),
                RecommendAlgorithm(s.task, s.drift, s.anomaly, s.missing,
                                   true)
                    .c_str());
  }

  std::printf("\nData-driven validation on the representatives:\n");
  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::vector<RepeatedResult> results;
    for (const std::string& name : AllLearnerNames(stream.task)) {
      results.push_back(RunRepeated(name, config, stream, 1));
    }
    std::string recommended = RecommendAlgorithm(
        stream.task, info.drift, info.anomaly, info.missing);
    // Rank of the recommendation.
    double rec_loss = 0.0;
    for (const RepeatedResult& r : results) {
      if (r.learner == recommended) rec_loss = r.loss_mean;
    }
    int rank = 1;
    for (const RepeatedResult& r : results) {
      if (!r.not_applicable && r.learner != recommended &&
          r.loss_mean < rec_loss) {
        ++rank;
      }
    }
    std::printf("  %-12s recommended %-10s measured-best %-10s rank of "
                "recommendation: %d/%zu\n",
                info.short_name.c_str(), recommended.c_str(),
                BestAlgorithm(results).c_str(), rank, results.size());
  }
  std::printf(
      "\nPaper shape check: the recommendation is the '(almost) best'\n"
      "algorithm — it should rank in the top half on every dataset.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.06, 1));
  return 0;
}
