// Reproduces Figure 15: loss curves of the best algorithms on ROOM and
// AIR, on the natural (drifting) stream vs a randomly shuffled
// (drift-free) version. Shape to reproduce: drifting streams show loss
// spikes; shuffled streams decay steadily (Finding 5), and the NN family
// adapts to drift better than trees.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 15",
                     "Drift vs shuffled (no-drift) loss curves");
  // The paper plots "the best algorithms" of each dataset — accumulating
  // learners (iCaRL won ROOM, the NN family won AIR in Table 4), which
  // can actually exploit a shuffled (stationary) stream.
  for (const char* dataset : {"ROOM", "AIR"}) {
    for (const char* learner : {"iCaRL", "Naive-NN"}) {
      for (bool shuffle : {false, true}) {
        PipelineOptions options;
        options.shuffle = shuffle;
        options.shuffle_seed = flags.seed + 99;
        PreparedStream stream =
            bench::MakePrepared(dataset, flags.scale, options);
        LearnerConfig config;
        config.seed = flags.seed;
        Result<std::unique_ptr<StreamLearner>> l = MakeLearner(
            learner, config, stream.task, stream.num_classes);
        OE_CHECK(l.ok());
        EvalResult result = RunPrequential(l->get(), stream);
        // Spikiness: max window loss relative to the mean.
        double max_loss = 0.0;
        for (double v : result.per_window_loss) {
          if (std::isfinite(v)) max_loss = std::max(max_loss, v);
        }
        std::printf("%-6s %-9s %-9s mean %.4f  max/mean %5.2f  %s\n",
                    dataset, learner, shuffle ? "shuffled" : "drift",
                    result.mean_loss,
                    result.mean_loss > 0 ? max_loss / result.mean_loss
                                         : 0.0,
                    bench::Spark(result.per_window_loss).c_str());
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: 'drift' rows have higher mean loss and larger\n"
      "max/mean spikes than their 'shuffled' counterparts.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
