// Reproduces Figure 11: loss vs window-size factor {0.25, 0.5, 1, 2, 4},
// NN-based methods and tree-based methods. Shape to reproduce: smaller
// windows generally help (more frequent updates, Finding 2), but
// excessively small windows can hurt (the paper's INSECTS case).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 11", "Loss vs window-size factor");
  const std::vector<std::string> nn_learners = {"Naive-NN", "iCaRL",
                                                "SEA-NN"};
  const std::vector<std::string> tree_learners = {"Naive-DT", "Naive-GBDT",
                                                  "SEA-DT"};
  const double factor_grid[] = {0.25, 0.5, 1.0, 2.0, 4.0};

  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    std::printf("\n%-12s %7s", info.short_name.c_str(), "factor");
    for (const std::string& name : nn_learners) {
      std::printf(" %10s", name.c_str());
    }
    for (const std::string& name : tree_learners) {
      std::printf(" %10s", name.c_str());
    }
    std::printf("\n");
    for (double factor : factor_grid) {
      PipelineOptions options;
      options.window_factor = factor;
      // With --reuse=prepare the five window factors share one
      // *generated* stream (the cache keys generation separately from
      // preprocessing), so the raw stream is synthesized once per
      // dataset instead of once per factor.
      std::shared_ptr<const PreparedStream> stream =
          bench::MakePreparedShared(info.short_name, flags.scale, options,
                                    0, flags.reuse);
      LearnerConfig config;
      config.seed = flags.seed;
      std::printf("%-12s %7.2f", "", factor);
      for (const std::string& name : nn_learners) {
        std::printf(" %10.4f",
                    RunRepeated(name, config, *stream, flags.repeats)
                        .loss_mean);
        std::fflush(stdout);
      }
      for (const std::string& name : tree_learners) {
        std::printf(" %10.4f",
                    RunRepeated(name, config, *stream, flags.repeats)
                        .loss_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape check: loss mostly rises with the factor (larger\n"
      "windows = rarer updates), with occasional reversals at 0.25.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
