// Reproduces Table 2: histogram of the 55-dataset corpus by instance
// count and feature count, compared with the USP DS subset the paper
// cites. Counts come from the published dataset shapes recorded in the
// corpus (scale-independent).
//
// A second section runs the §4.3 statistic-extraction pass over all 55
// generated streams (fanned across --threads workers; identical numbers
// for any thread count) and checks that the realised open-environment
// statistics line up with the qualitative levels the corpus assigns.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/selection.h"
#include "streamgen/corpus.h"

namespace oebench {
namespace {

int CountSize(int64_t lo, int64_t hi) {
  int count = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.instances >= lo && entry.instances <= hi) ++count;
  }
  return count;
}

int CountFeatures(int lo, int hi) {
  int count = 0;
  for (const CorpusEntry& entry : Corpus()) {
    int f = entry.features + entry.categorical_features;
    if (f >= lo && f <= hi) ++count;
  }
  return count;
}

void PrintRealizedStats(const bench::BenchFlags& flags) {
  std::printf("\nRealised corpus statistics (§4.3 extraction at scale "
              "%.2f):\n", flags.scale);
  Result<std::vector<DatasetProfile>> profiles =
      ExtractProfiles(BuildCorpusSpecs(flags.scale), flags.threads);
  OE_CHECK(profiles.ok()) << profiles.status().ToString();

  // Mean realised score per qualitative level: levels should order the
  // realised statistics (the generator honours its labels).
  const std::vector<CorpusEntry>& corpus = Corpus();
  const Level levels[] = {Level::kLow, Level::kMedLow, Level::kMedHigh,
                          Level::kHigh};
  std::printf("%-10s %12s %12s %12s\n", "Level", "missing", "drift",
              "anomaly");
  for (Level level : levels) {
    double missing = 0.0, drift = 0.0, anomaly = 0.0;
    int n_missing = 0, n_drift = 0, n_anomaly = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
      const DatasetProfile& p = (*profiles)[i];
      if (corpus[i].missing == level) {
        missing += p.MissingScore();
        ++n_missing;
      }
      if (corpus[i].drift == level) {
        drift += p.DriftScore();
        ++n_drift;
      }
      if (corpus[i].anomaly == level) {
        anomaly += p.AnomalyScore();
        ++n_anomaly;
      }
    }
    // "-" marks levels no corpus entry uses for that characteristic.
    auto cell = [](double sum, int n) {
      return n > 0 ? StrFormat("%.4f", sum / n) : std::string("-");
    };
    std::printf("%-10s %12s %12s %12s\n", LevelToString(level),
                cell(missing, n_missing).c_str(),
                cell(drift, n_drift).c_str(),
                cell(anomaly, n_anomaly).c_str());
  }
}

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 2",
                     "Histogram information of the collected corpus");
  std::printf("%-28s %14s %14s %15s %10s\n", "Size", "5,000-20,000",
              "20,001-50,000", "50,001-200,000", ">200,000");
  std::printf("%-28s %14d %14d %15d %10d\n", "#Datasets (OEBench, ours)",
              CountSize(5000, 20000), CountSize(20001, 50000),
              CountSize(50001, 200000),
              CountSize(200001, INT64_MAX));
  std::printf("%-28s %14d %14d %15d %10d   (paper: 13 / 17 / 13 / 12)\n",
              "#Datasets (paper)", 13, 17, 13, 12);
  std::printf("\n%-28s %14s %14s %15s %10s\n", "#Features", "5-10", "11-20",
              "21-50", ">50");
  std::printf("%-28s %14d %14d %15d %10d\n", "#Datasets (OEBench, ours)",
              CountFeatures(5, 10), CountFeatures(11, 20),
              CountFeatures(21, 50), CountFeatures(51, 1 << 20));
  std::printf("%-28s %14d %14d %15d %10d   (paper: 15 / 23 / 14 / 3)\n",
              "#Datasets (paper)", 15, 23, 14, 3);

  std::printf("\nCorpus: %zu datasets (%d classification, %d regression)\n",
              Corpus().size(),
              [] {
                int c = 0;
                for (const CorpusEntry& e : Corpus()) {
                  if (e.task == TaskType::kClassification) ++c;
                }
                return c;
              }(),
              [] {
                int c = 0;
                for (const CorpusEntry& e : Corpus()) {
                  if (e.task == TaskType::kRegression) ++c;
                }
                return c;
              }());

  PrintRealizedStats(flags);
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.0, 1));
  return 0;
}
