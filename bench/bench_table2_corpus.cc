// Reproduces Table 2: histogram of the 55-dataset corpus by instance
// count and feature count, compared with the USP DS subset the paper
// cites. Counts come from the published dataset shapes recorded in the
// corpus (scale-independent).

#include <cstdio>

#include "bench/bench_util.h"
#include "streamgen/corpus.h"

namespace oebench {
namespace {

int CountSize(int64_t lo, int64_t hi) {
  int count = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.instances >= lo && entry.instances <= hi) ++count;
  }
  return count;
}

int CountFeatures(int lo, int hi) {
  int count = 0;
  for (const CorpusEntry& entry : Corpus()) {
    int f = entry.features + entry.categorical_features;
    if (f >= lo && f <= hi) ++count;
  }
  return count;
}

void Run() {
  bench::PrintHeader("Table 2",
                     "Histogram information of the collected corpus");
  std::printf("%-28s %14s %14s %15s %10s\n", "Size", "5,000-20,000",
              "20,001-50,000", "50,001-200,000", ">200,000");
  std::printf("%-28s %14d %14d %15d %10d\n", "#Datasets (OEBench, ours)",
              CountSize(5000, 20000), CountSize(20001, 50000),
              CountSize(50001, 200000),
              CountSize(200001, INT64_MAX));
  std::printf("%-28s %14d %14d %15d %10d   (paper: 13 / 17 / 13 / 12)\n",
              "#Datasets (paper)", 13, 17, 13, 12);
  std::printf("\n%-28s %14s %14s %15s %10s\n", "#Features", "5-10", "11-20",
              "21-50", ">50");
  std::printf("%-28s %14d %14d %15d %10d\n", "#Datasets (OEBench, ours)",
              CountFeatures(5, 10), CountFeatures(11, 20),
              CountFeatures(21, 50), CountFeatures(51, 1 << 20));
  std::printf("%-28s %14d %14d %15d %10d   (paper: 15 / 23 / 14 / 3)\n",
              "#Datasets (paper)", 15, 23, 14, 3);

  std::printf("\nCorpus: %zu datasets (%d classification, %d regression)\n",
              Corpus().size(),
              [] {
                int c = 0;
                for (const CorpusEntry& e : Corpus()) {
                  if (e.task == TaskType::kClassification) ++c;
                }
                return c;
              }(),
              [] {
                int c = 0;
                for (const CorpusEntry& e : Corpus()) {
                  if (e.task == TaskType::kRegression) ++c;
                }
                return c;
              }());
}

}  // namespace
}  // namespace oebench

int main() {
  oebench::Run();
  return 0;
}
