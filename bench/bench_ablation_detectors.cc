// Ablation the paper could not run on real data (§6.7: "there is no
// ground truth of the drift occurrences"): with synthetic streams the
// drift instant is known, so every detector can be scored on detection
// rate, detection delay (in windows) and false-alarm rate. Covers the
// paper's detector set plus the Appendix Table 8 extensions implemented
// here (Page-Hinkley, ECDD, HDDM-A, FW-DDM).

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "drift/adwin.h"
#include "drift/cdbd.h"
#include "drift/ddm.h"
#include "drift/ecdd.h"
#include "drift/eddm.h"
#include "drift/fw_ddm.h"
#include "drift/hdddm.h"
#include "drift/hddm_a.h"
#include "drift/kdq_tree.h"
#include "drift/ks_test.h"
#include "drift/page_hinkley.h"
#include "drift/pca_cd.h"
#include "drift/perm.h"
#include "models/linear_model.h"

namespace oebench {
namespace {

struct Score {
  int detections = 0;       // runs where drift was flagged post-switch
  double total_delay = 0.0; // windows from the switch to the first alarm
  int false_alarm_runs = 0; // stationary runs with any drift alarm
  int runs = 0;
};

PreparedStream MakeRun(bool drifting, uint64_t seed) {
  StreamSpec spec;
  spec.name = "ablation";
  spec.task = TaskType::kRegression;
  spec.num_instances = 4000;
  spec.num_numeric_features = 6;
  spec.window_size = 200;
  spec.drift_pattern =
      drifting ? DriftPattern::kAbrupt : DriftPattern::kNone;
  spec.drift_magnitude = drifting ? 2.5 : 0.0;
  spec.noise_level = 0.15;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  OE_CHECK(prepared.ok());
  return *prepared;
}

/// Runs a per-window drift oracle `signal_fn(w)` over the stream and
/// scores it against the known switch at the middle window.
void ScoreRun(const std::function<DriftSignal(size_t)>& signal_fn,
              size_t num_windows, bool drifting, Score* score) {
  const size_t switch_window = num_windows / 2;
  ++score->runs;
  bool alarmed_before = false;
  for (size_t w = 1; w < num_windows; ++w) {
    DriftSignal signal = signal_fn(w);
    if (signal != DriftSignal::kDrift) continue;
    if (!drifting) {
      if (!alarmed_before) ++score->false_alarm_runs;
      alarmed_before = true;
      continue;
    }
    if (w < switch_window) {
      if (!alarmed_before) ++score->false_alarm_runs;
      alarmed_before = true;
    } else {
      ++score->detections;
      score->total_delay += static_cast<double>(w - switch_window);
      return;  // first post-switch alarm scores the run
    }
  }
}

void Report(const char* name, const Score& drift_score,
            const Score& stationary_score) {
  double rate = drift_score.runs > 0
                    ? static_cast<double>(drift_score.detections) /
                          drift_score.runs
                    : 0.0;
  double delay = drift_score.detections > 0
                     ? drift_score.total_delay / drift_score.detections
                     : -1.0;
  double fa = static_cast<double>(drift_score.false_alarm_runs +
                                  stationary_score.false_alarm_runs) /
              (drift_score.runs + stationary_score.runs);
  std::printf("%-14s detect %.0f%%  mean delay %5.1f windows  "
              "false-alarm runs %.0f%%\n",
              name, 100 * rate, delay, 100 * fa);
}

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Ablation A",
                     "Detector accuracy against ground-truth drift "
                     "(abrupt concept+covariate switch at mid-stream)");
  const int kRuns = 5;

  // --- ND batch detectors ------------------------------------------------
  struct NdCase {
    const char* name;
    std::function<std::unique_ptr<BatchDetectorND>()> make;
  };
  const NdCase nd_cases[] = {
      {"hdddm", [] { return std::make_unique<Hdddm>(); }},
      {"kdq_tree",
       [] {
         return std::make_unique<KdqTreeDetector>();
       }},
      {"pca_cd", [] { return std::make_unique<PcaCd>(); }},
  };
  for (const NdCase& c : nd_cases) {
    Score drift_score;
    Score stationary_score;
    for (int run = 0; run < kRuns; ++run) {
      for (bool drifting : {true, false}) {
        PreparedStream stream =
            MakeRun(drifting, flags.seed + run * 2 + (drifting ? 0 : 1));
        std::unique_ptr<BatchDetectorND> detector = c.make();
        detector->Update(stream.windows[0].features);
        std::vector<DriftSignal> signals(stream.windows.size(),
                                         DriftSignal::kStable);
        for (size_t w = 1; w < stream.windows.size(); ++w) {
          signals[w] = detector->Update(stream.windows[w].features);
        }
        ScoreRun([&](size_t w) { return signals[w]; },
                 stream.windows.size(), drifting,
                 drifting ? &drift_score : &stationary_score);
      }
    }
    Report(c.name, drift_score, stationary_score);
  }

  // --- 1-D per-column detectors (first column) ---------------------------
  {
    Score drift_score;
    Score stationary_score;
    for (int run = 0; run < kRuns; ++run) {
      for (bool drifting : {true, false}) {
        PreparedStream stream =
            MakeRun(drifting, flags.seed + run * 2 + (drifting ? 0 : 1));
        KsWindowDetector detector;
        std::vector<DriftSignal> signals(stream.windows.size(),
                                         DriftSignal::kStable);
        for (size_t w = 0; w < stream.windows.size(); ++w) {
          signals[w] =
              detector.Update(stream.windows[w].features.ColVector(0));
        }
        ScoreRun([&](size_t w) { return signals[w]; },
                 stream.windows.size(), drifting,
                 drifting ? &drift_score : &stationary_score);
      }
    }
    Report("ks(col0)", drift_score, stationary_score);
  }

  // --- concept-drift detectors on a model's error stream ------------------
  struct SeqCase {
    const char* name;
    std::function<std::unique_ptr<StreamErrorDetector>()> make;
  };
  const SeqCase seq_cases[] = {
      {"ddm", [] { return std::make_unique<Ddm>(); }},
      {"eddm", [] { return std::make_unique<Eddm>(); }},
      {"adwin_acc",
       [] { return std::make_unique<AdwinAccuracyDetector>(); }},
      {"page_hinkley",
       [] { return std::make_unique<PageHinkley>(0.005, 10.0); }},
      {"ecdd", [] { return std::make_unique<Ecdd>(); }},
      {"hddm_a", [] { return std::make_unique<HddmA>(); }},
      {"fw_ddm", [] { return std::make_unique<FwDdm>(); }},
  };
  for (const SeqCase& c : seq_cases) {
    Score drift_score;
    Score stationary_score;
    for (int run = 0; run < kRuns; ++run) {
      for (bool drifting : {true, false}) {
        PreparedStream stream =
            MakeRun(drifting, flags.seed + run * 2 + (drifting ? 0 : 1));
        // Fixed model trained on window 0; binarised regression errors
        // (loss above 2x the warm-up loss), per the §4.3 pipeline.
        LinearRegression model(1e-3);
        OE_CHECK(model
                     .Fit(stream.windows[0].features,
                          stream.windows[0].targets)
                     .ok());
        double threshold =
            2.0 * std::max(model.EvaluateMse(stream.windows[0].features,
                                             stream.windows[0].targets),
                           1e-9);
        std::unique_ptr<StreamErrorDetector> detector = c.make();
        std::vector<DriftSignal> signals(stream.windows.size(),
                                         DriftSignal::kStable);
        for (size_t w = 1; w < stream.windows.size(); ++w) {
          const WindowData& window = stream.windows[w];
          for (int64_t r = 0; r < window.features.rows(); ++r) {
            double diff = model.PredictValue(window.features.Row(r)) -
                          window.targets[static_cast<size_t>(r)];
            DriftSignal s =
                detector->Update(diff * diff > threshold ? 1.0 : 0.0);
            if (s == DriftSignal::kDrift) signals[w] = s;
          }
        }
        ScoreRun([&](size_t w) { return signals[w]; },
                 stream.windows.size(), drifting,
                 drifting ? &drift_score : &stationary_score);
      }
    }
    Report(c.name, drift_score, stationary_score);
  }

  // --- PERM ----------------------------------------------------------------
  {
    Score drift_score;
    Score stationary_score;
    for (int run = 0; run < kRuns; ++run) {
      for (bool drifting : {true, false}) {
        PreparedStream stream =
            MakeRun(drifting, flags.seed + run * 2 + (drifting ? 0 : 1));
        PermDetector detector(PermDetector::LinearRegressionEval());
        std::vector<DriftSignal> signals(stream.windows.size(),
                                         DriftSignal::kStable);
        for (size_t w = 0; w < stream.windows.size(); ++w) {
          signals[w] = detector.Update(stream.windows[w].features,
                                       stream.windows[w].targets);
        }
        ScoreRun([&](size_t w) { return signals[w]; },
                 stream.windows.size(), drifting,
                 drifting ? &drift_score : &stationary_score);
      }
    }
    Report("perm", drift_score, stationary_score);
  }
  std::printf(
      "\nReading: everything detects this strong switch almost instantly;\n"
      "the discriminating column is the false-alarm rate, where the\n"
      "conservative detectors (ADWIN, HDDM-A, FW-DDM, PCA-CD) separate\n"
      "from the trigger-happy ones (EDDM, Page-Hinkley, ECDD) — the\n"
      "sensitivity/stability trade-off the paper's Appendix A.2\n"
      "discusses, now quantified against ground truth.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
