// Micro-benchmarks for the serve-layer hot paths added for batched
// admission, the shared state pool, and timer-wheel paced replay: the
// SPSC ring's single-record push/pop vs the batched TryPushN/TryPopN
// (one release store per run instead of per record), the StatePool
// hit path (key encode + map lookup under the mutex — what every
// pooled session Init pays after the first), and TimerWheel
// schedule/advance throughput at several events-per-tick densities.
// Emits BENCH_micro_serve.json; run with
// --baseline=BENCH_micro_serve.json to gate against the committed
// snapshot (exit 1 on >20% regression).

#include <cstdint>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.h"
#include "common/random.h"
#include "serve/ring_buffer.h"
#include "serve/state_pool.h"
#include "serve/timer_wheel.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

constexpr int64_t kRingItems = 4096;

// ------------------------------------------------------------ SPSC ring

// Single-record baseline: one release store of tail_ and one of head_
// per record. Single-threaded on purpose — this isolates the index
// publication cost the batched path amortises, without scheduler noise.
void BM_RingPushPopSingle(benchmark::State& state) {
  serve::SpscRingBuffer<int64_t> ring(1024);
  int64_t value = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < kRingItems; ++i) {
      benchmark::DoNotOptimize(ring.TryPush(i));
      benchmark::DoNotOptimize(ring.TryPop(&value));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRingItems);
}
BENCHMARK(BM_RingPushPopSingle);

// Batched path: the same record volume moved in runs of Arg records,
// one tail_/head_ release store per run.
void BM_RingPushPopBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  serve::SpscRingBuffer<int64_t> ring(1024);
  std::vector<int64_t> drained(batch);
  for (auto _ : state) {
    for (int64_t base = 0; base < kRingItems;
         base += static_cast<int64_t>(batch)) {
      benchmark::DoNotOptimize(
          ring.TryPushN(batch, [base](size_t i) {
            return base + static_cast<int64_t>(i);
          }));
      benchmark::DoNotOptimize(ring.TryPopN(drained.data(), batch));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRingItems);
}
BENCHMARK(BM_RingPushPopBatch)->Arg(4)->Arg(16)->Arg(64);

// ------------------------------------------------------------ StatePool

// The pool hit path — exact spec/pipeline key encode plus the map
// lookup under the mutex. Every pooled session Init after the first
// pays exactly this instead of a full BuildStreamContext.
void BM_StatePoolHit(benchmark::State& state) {
  const CorpusEntry& entry = Corpus()[0];
  const StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, /*salt=*/1);
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  const PipelineOptions options;
  serve::StatePool pool;
  OE_CHECK(pool.GetOrBuild(*stream, options).ok());  // warm the entry
  for (auto _ : state) {
    Result<std::shared_ptr<const StreamContext>> ctx =
        pool.GetOrBuild(*stream, options);
    benchmark::DoNotOptimize(ctx->get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatePoolHit);

// ----------------------------------------------------------- TimerWheel

// Schedule + drain a full paced run: Arg events hashed into the wheel
// up front (the load generator schedules a window of arrivals at a
// time), then AdvanceTick until empty. Deadlines are pseudo-random
// across a 1000-tick horizon, so slots collide and far-future entries
// survive revolutions — the shape the wheel sees under bursty rates.
void BM_TimerWheelScheduleDrain(benchmark::State& state) {
  const int64_t events = state.range(0);
  Rng rng(42);
  std::vector<double> deadlines(static_cast<size_t>(events));
  for (double& d : deadlines) d = rng.Uniform() * 1.0;  // 1000 x 1ms ticks
  std::vector<serve::TimerWheel<int64_t>::Entry> due;
  for (auto _ : state) {
    serve::TimerWheel<int64_t> wheel(/*tick_seconds=*/1e-3, 256);
    for (int64_t i = 0; i < events; ++i) {
      wheel.Schedule(deadlines[static_cast<size_t>(i)], i);
    }
    while (wheel.pending() > 0) {
      benchmark::DoNotOptimize(wheel.AdvanceTick(&due));
    }
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_TimerWheelScheduleDrain)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::bench::RunMicroSuite(argc, argv,
                                       "BENCH_micro_serve.json");
}
