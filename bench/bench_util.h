#ifndef OEBENCH_BENCH_BENCH_UTIL_H_
#define OEBENCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "preprocess/pipeline.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace bench {

/// Command-line knobs shared by every bench binary. All benches run
/// scaled-down versions of the paper's streams by default so the whole
/// suite finishes on a small CPU budget; pass a larger --scale for
/// paper-sized runs.
struct BenchFlags {
  double scale = 0.08;
  int repeats = 3;
  uint64_t seed = 1;
  /// Worker threads for the parallel sweeps (default: hardware
  /// concurrency). 1 runs serially; results are identical either way —
  /// every task's seed derives from its identity, not its schedule.
  int threads = 1;
};

inline BenchFlags ParseFlags(int argc, char** argv,
                             double default_scale = 0.08,
                             int default_repeats = 3) {
  BenchFlags flags;
  flags.scale = default_scale;
  flags.repeats = default_repeats;
  flags.threads = ThreadPool::HardwareThreads();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // `--threads 4` (the documented form) and `--threads=4` both work;
    // likewise for the other flags.
    if (arg == "--threads" || arg == "--scale" || arg == "--repeats" ||
        arg == "--seed") {
      if (i + 1 < argc) arg += "=" + std::string(argv[++i]);
    }
    double value = 0.0;
    if (arg.rfind("--scale=", 0) == 0 &&
        ParseDouble(arg.substr(8), &value)) {
      flags.scale = value;
    } else if (arg.rfind("--repeats=", 0) == 0 &&
               ParseDouble(arg.substr(10), &value)) {
      flags.repeats = static_cast<int>(value);
    } else if (arg.rfind("--seed=", 0) == 0 &&
               ParseDouble(arg.substr(7), &value)) {
      flags.seed = static_cast<uint64_t>(value);
    } else if (arg.rfind("--threads=", 0) == 0 &&
               ParseDouble(arg.substr(10), &value)) {
      flags.threads = static_cast<int>(value);
    }
  }
  return flags;
}

/// Generates and preprocesses one representative dataset (Table 3 name:
/// ROOM / ELECTRICITY / INSECTS / AIR / POWER).
inline PreparedStream MakePrepared(const std::string& short_name,
                                   double scale,
                                   const PipelineOptions& options = {},
                                   uint64_t seed_salt = 0) {
  StreamSpec spec = RepresentativeSpec(short_name, scale, seed_salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok()) << stream.status().ToString();
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  OE_CHECK(prepared.ok()) << prepared.status().ToString();
  PreparedStream out = std::move(*prepared);
  out.name = short_name;
  return out;
}

/// Formats a loss value the way the paper's tables do, with N/A support.
inline std::string FormatLoss(const RepeatedResult& result) {
  if (result.not_applicable) return "N/A";
  return StrFormat("%.3f±%.3f", result.loss_mean, result.loss_stddev);
}

/// Unicode sparkline of a series (for the loss-curve "figures").
inline std::string Spark(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += "!";
      continue;
    }
    int idx = hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 7.999) : 0;
    out += kLevels[idx];
  }
  return out;
}

/// Prints a horizontal rule + title, so every bench output reads like the
/// corresponding paper exhibit.
inline void PrintHeader(const std::string& exhibit,
                        const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exhibit.c_str(), caption.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace oebench

#endif  // OEBENCH_BENCH_BENCH_UTIL_H_
