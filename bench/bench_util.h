#ifndef OEBENCH_BENCH_BENCH_UTIL_H_
#define OEBENCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/io_env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/chaos.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "preprocess/pipeline.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"
#include "sweep/manifest.h"
#include "sweep/reuse.h"

namespace oebench {
namespace bench {

/// Command-line knobs shared by every bench binary. All benches run
/// scaled-down versions of the paper's streams by default so the whole
/// suite finishes on a small CPU budget; pass a larger --scale for
/// paper-sized runs. The sharded-sweep flags (--shard/--log/--resume/
/// --merge/--spawn/--selfcheck/--datasets) are wired up by the
/// sweep-capable drivers (oebench_sweep, bench_table4, bench_table9)
/// and ignored elsewhere.
struct BenchFlags {
  double scale = 0.08;
  int repeats = 3;
  uint64_t seed = 1;
  /// Worker threads for the parallel sweeps (default: hardware
  /// concurrency). 1 runs serially; results are identical either way —
  /// every task's seed derives from its identity, not its schedule.
  int threads = 1;
  /// Training epochs override; 0 keeps the bench's default.
  int epochs = 0;
  /// Limit corpus sweeps to the first N entries (0 = all 55).
  int datasets = 0;
  /// This invocation's shard of the canonical task manifest.
  sweep::Shard shard;
  /// Durable result log to write (shard runs) — empty = no log.
  std::string log_path;
  /// Keep an existing log's rows; re-run only missing tasks.
  bool resume = false;
  /// Merge mode: reassemble shard logs instead of running anything.
  bool merge = false;
  std::vector<std::string> merge_logs;
  /// oebench_sweep only: spawn N shard subprocesses, then merge.
  int spawn = 0;
  /// oebench_sweep only: verify shard+merge bit-identity for n=1,2,3.
  bool selfcheck = false;
  /// oebench_sweep only: fault-injection schedule for the result log's
  /// I/O environment (see FaultSchedule::Parse). Empty = real I/O.
  std::string fault_schedule;
  /// oebench_sweep only: compute-fault chaos schedule injected into the
  /// sweep's task execution (see ChaosSchedule::Parse). Empty = none.
  std::string chaos_schedule;
  /// With --resume: re-execute the tasks the log recorded as failed.
  bool retry_failed = false;
  /// Circuit breaker: stop the shard once more than N tasks have
  /// failed. -1 = unlimited (failures are logged, shard finishes).
  int64_t max_task_failures = -1;
  /// Merge mode: accept quarantined cells (exit 0 with a partial
  /// table + quarantine report instead of failing the merge).
  bool allow_quarantined = false;
  /// Print the manifest, shard spans and planned task count; run
  /// nothing.
  bool dry_run = false;
  /// Watchdog: report tasks running longer than this many ms on
  /// stderr (without killing them). 0 = no watchdog.
  int watchdog_ms = 0;
  /// Dump a JSON snapshot of the metrics registry here on exit
  /// (sweep-capable benches). In --merge mode this is the rollup of
  /// the per-shard files given via --metrics-in.
  std::string metrics_out;
  /// Emit only the deterministic metric sections (counters), so two
  /// identical runs produce byte-identical snapshot files.
  bool deterministic_metrics = false;
  /// Merge mode: per-shard metrics files to aggregate into the
  /// --metrics-out rollup. Repeatable.
  std::vector<std::string> metrics_in;
  /// Cross-cell computation reuse (--reuse=prepare,warmstart and
  /// --reuse-cache-mb). Off by default: results are bit-identical
  /// either way, reuse only elides repeated work.
  ReuseOptions reuse;
};

[[noreturn]] inline void FlagsUsageAndExit(const char* argv0,
                                           const std::string& error) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --scale=F      fraction of published instance counts (>= 0)\n"
      "  --repeats=N    random-seed repeats per (dataset, learner)\n"
      "  --seed=N       base seed of the sweep\n"
      "  --threads=N    worker threads (1 = serial; same results)\n"
      "  --epochs=N     training epochs (default: bench-specific)\n"
      "sweep-capable benches (oebench_sweep, bench_table4, bench_table9):\n"
      "  --datasets=N   only the first N corpus entries\n"
      "  --shard=I/N    run shard I of N (0-based) of the task manifest\n"
      "  --log=PATH     durable result log for this shard\n"
      "  --resume       keep logged rows, re-run only missing tasks\n"
      "  --merge LOG... merge shard logs and print the full table\n"
      "  --spawn=N      oebench_sweep: run N shard subprocesses + merge\n"
      "  --selfcheck    oebench_sweep: verify shard/merge bit-identity\n"
      "  --fault-schedule=SPEC\n"
      "                 oebench_sweep: inject result-log I/O faults, e.g.\n"
      "                 fail-append=3,crash-at-byte=512,fail-read=2,\n"
      "                 torn-read=1:64 (crash-recovery tests; see DESIGN.md)\n"
      "  --chaos-schedule=SPEC\n"
      "                 oebench_sweep: inject compute faults into tasks,\n"
      "                 e.g. throw-at-task=3,nan-at-task=5,slow-at-task=2:50,\n"
      "                 transient=7:0.25 (see DESIGN.md failure domains)\n"
      "  --retry-failed with --resume: re-run the tasks recorded as failed\n"
      "  --max-task-failures=N\n"
      "                 stop the shard once more than N tasks failed\n"
      "                 (default: unlimited — failures are logged and\n"
      "                 quarantined at merge)\n"
      "  --allow-quarantined\n"
      "                 merge: print a partial table + quarantine report\n"
      "                 instead of failing on quarantined cells\n"
      "  --watchdog-ms=N\n"
      "                 report tasks running longer than N ms on stderr\n"
      "  --dry-run      print the manifest/shard plan and run nothing\n"
      "  --metrics-out=PATH\n"
      "                 dump a JSON metrics snapshot on exit; with\n"
      "                 --merge, the rollup of the --metrics-in files\n"
      "  --metrics-in=PATH\n"
      "                 merge: per-shard metrics file to aggregate into\n"
      "                 the --metrics-out rollup (repeatable)\n"
      "  --deterministic-metrics\n"
      "                 emit only the deterministic metric sections\n"
      "                 (snapshots from identical runs diff empty)\n"
      "  --reuse=SPEC   computation reuse: off (default) or a comma list\n"
      "                 of prepare (shared prepared-stream cache) and\n"
      "                 warmstart (epoch-grid snapshot forking); results\n"
      "                 are bit-identical either way\n"
      "  --reuse-cache-mb=N\n"
      "                 prepared-stream cache byte budget in MiB\n"
      "                 (default 256)\n"
      "Flags take --flag=value or --flag value.\n",
      argv0);
  std::exit(2);
}

inline BenchFlags ParseFlags(int argc, char** argv,
                             double default_scale = 0.08,
                             int default_repeats = 3) {
  BenchFlags flags;
  flags.scale = default_scale;
  flags.repeats = default_repeats;
  flags.threads = ThreadPool::HardwareThreads();
  bool merge_mode = false;
  bool shard_set = false;
  auto fail = [&](const std::string& msg) -> void {
    FlagsUsageAndExit(argv[0], msg);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // After --merge, bare arguments are shard-log paths.
      if (merge_mode) {
        flags.merge_logs.push_back(arg);
        continue;
      }
      fail("unexpected argument '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    // `--flag value` (the documented form) and `--flag=value` both work.
    auto need_value = [&]() -> std::string {
      if (has_value) return value;
      if (i + 1 >= argc) fail("--" + name + " needs a value");
      return argv[++i];
    };
    auto int_value = [&](int min_value) -> int {
      std::string text = need_value();
      int64_t parsed = 0;
      if (!ParseInt64(text, &parsed) || parsed < min_value ||
          parsed > 1000000000) {
        fail("--" + name + " needs an integer >= " +
             StrFormat("%d", min_value) + ", got '" + text + "'");
      }
      return static_cast<int>(parsed);
    };
    auto no_value = [&] {
      if (has_value) fail("--" + name + " takes no value");
    };
    if (name == "scale") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed >= 0.0)) {
        fail("--scale needs a number >= 0, got '" + text + "'");
      }
      flags.scale = parsed;
    } else if (name == "repeats") {
      flags.repeats = int_value(1);
    } else if (name == "seed") {
      std::string text = need_value();
      if (!ParseUint64(text, &flags.seed)) {
        fail("--seed needs an unsigned integer, got '" + text + "'");
      }
    } else if (name == "threads") {
      flags.threads = int_value(1);
    } else if (name == "epochs") {
      // 0 is the documented "use the bench default" sentinel.
      flags.epochs = int_value(0);
    } else if (name == "datasets") {
      flags.datasets = int_value(1);
    } else if (name == "spawn") {
      flags.spawn = int_value(1);
    } else if (name == "shard") {
      std::string text = need_value();
      if (shard_set) {
        fail("duplicate --shard (already " +
             StrFormat("%d/%d", flags.shard.index, flags.shard.count) +
             "); one invocation runs exactly one shard span");
      }
      if (!sweep::ParseShard(text, &flags.shard)) {
        fail("--shard needs I/N with 0 <= I < N, got '" + text + "'");
      }
      shard_set = true;
    } else if (name == "fault-schedule") {
      std::string text = need_value();
      Result<FaultSchedule> schedule = FaultSchedule::Parse(text);
      if (!schedule.ok()) {
        fail("--fault-schedule: " + schedule.status().message());
      }
      flags.fault_schedule = text;
    } else if (name == "chaos-schedule") {
      std::string text = need_value();
      Result<ChaosSchedule> schedule = ChaosSchedule::Parse(text);
      if (!schedule.ok()) {
        fail("--chaos-schedule: " + schedule.status().message());
      }
      flags.chaos_schedule = text;
    } else if (name == "max-task-failures") {
      std::string text = need_value();
      int64_t parsed = 0;
      if (!ParseInt64(text, &parsed) || parsed < 0) {
        fail("--max-task-failures needs an integer >= 0, got '" + text +
             "'");
      }
      flags.max_task_failures = parsed;
    } else if (name == "watchdog-ms") {
      flags.watchdog_ms = int_value(1);
    } else if (name == "retry-failed") {
      no_value();
      flags.retry_failed = true;
    } else if (name == "allow-quarantined") {
      no_value();
      flags.allow_quarantined = true;
    } else if (name == "dry-run") {
      no_value();
      flags.dry_run = true;
    } else if (name == "log") {
      flags.log_path = need_value();
    } else if (name == "metrics-out") {
      flags.metrics_out = need_value();
    } else if (name == "metrics-in") {
      flags.metrics_in.push_back(need_value());
    } else if (name == "deterministic-metrics") {
      no_value();
      flags.deterministic_metrics = true;
    } else if (name == "reuse") {
      std::string text = need_value();
      Status parsed = sweep::ParseReuseSpec(text, &flags.reuse);
      if (!parsed.ok()) fail(parsed.message());
    } else if (name == "reuse-cache-mb") {
      flags.reuse.cache_bytes = static_cast<int64_t>(int_value(1)) << 20;
    } else if (name == "resume") {
      no_value();
      flags.resume = true;
    } else if (name == "selfcheck") {
      no_value();
      flags.selfcheck = true;
    } else if (name == "merge") {
      flags.merge = true;
      merge_mode = true;
      if (has_value) flags.merge_logs.push_back(value);
    } else {
      fail("unknown flag --" + name);
    }
  }
  if (flags.merge && flags.merge_logs.empty()) {
    fail("--merge needs at least one shard log");
  }
  // Contradictory mode combinations: merge reassembles existing shard
  // logs and runs nothing, so the run-a-shard flags make no sense with
  // it — reject them instead of silently ignoring one side.
  if (flags.merge && shard_set) {
    fail("--merge cannot be combined with --shard (merge reassembles "
         "existing shard logs; it does not run a shard)");
  }
  if (flags.merge && !flags.log_path.empty()) {
    fail("--merge cannot be combined with --log (merge reads shard logs "
         "as arguments; it does not write one)");
  }
  if (flags.merge && flags.resume) {
    fail("--merge cannot be combined with --resume (resume re-runs a "
         "shard; merge runs nothing)");
  }
  if (flags.dry_run && flags.merge) {
    fail("--dry-run cannot be combined with --merge (the dry run plans "
         "a shard execution; merge runs nothing)");
  }
  if (!flags.fault_schedule.empty() && flags.log_path.empty()) {
    fail("--fault-schedule requires --log (faults are injected into the "
         "result log's I/O environment)");
  }
  if (flags.deterministic_metrics && flags.metrics_out.empty()) {
    fail("--deterministic-metrics only applies to --metrics-out");
  }
  if (!flags.metrics_in.empty() && !flags.merge) {
    fail("--metrics-in only applies to --merge (it feeds the rollup)");
  }
  if (!flags.metrics_in.empty() && flags.metrics_out.empty()) {
    fail("--metrics-in needs --metrics-out for the rollup destination");
  }
  if (flags.retry_failed && !flags.resume) {
    fail("--retry-failed requires --resume (it re-runs tasks an "
         "existing log recorded as failed)");
  }
  if (flags.allow_quarantined && !flags.merge) {
    fail("--allow-quarantined only applies to --merge");
  }
  for (size_t a = 0; a < flags.merge_logs.size(); ++a) {
    for (size_t b = a + 1; b < flags.merge_logs.size(); ++b) {
      if (flags.merge_logs[a] == flags.merge_logs[b]) {
        fail("--merge lists '" + flags.merge_logs[a] +
             "' twice; each shard log merges once");
      }
    }
  }
  return flags;
}

/// Generates and preprocesses one representative dataset (Table 3 name:
/// ROOM / ELECTRICITY / INSECTS / AIR / POWER).
inline PreparedStream MakePrepared(const std::string& short_name,
                                   double scale,
                                   const PipelineOptions& options = {},
                                   uint64_t seed_salt = 0) {
  StreamSpec spec = RepresentativeSpec(short_name, scale, seed_salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok()) << stream.status().ToString();
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  OE_CHECK(prepared.ok()) << prepared.status().ToString();
  PreparedStream out = std::move(*prepared);
  out.name = short_name;
  return out;
}

/// Shared-ownership variant of MakePrepared that routes through the
/// process-global PreparedStreamCache when `reuse.prepare` is on — the
/// ablation benches (fig10/11/12) call it so their per-grid re-prepares
/// of the same dataset hit the cache. The returned stream is identical
/// either way; only the work is elided.
inline std::shared_ptr<const PreparedStream> MakePreparedShared(
    const std::string& short_name, double scale,
    const PipelineOptions& options = {}, uint64_t seed_salt = 0,
    const ReuseOptions& reuse = {}) {
  if (reuse.prepare) {
    sweep::PreparedStreamCache* cache = sweep::PreparedStreamCache::Global();
    cache->set_byte_budget(reuse.cache_bytes);
    Result<std::shared_ptr<const PreparedStream>> cached =
        cache->GetOrPrepare(RepresentativeSpec(short_name, scale, seed_salt),
                            options, short_name);
    OE_CHECK(cached.ok()) << cached.status().ToString();
    return *cached;
  }
  return std::make_shared<const PreparedStream>(
      MakePrepared(short_name, scale, options, seed_salt));
}

/// Formats a loss value the way the paper's tables do, with N/A support.
inline std::string FormatLoss(const RepeatedResult& result) {
  if (result.not_applicable) return "N/A";
  return StrFormat("%.3f±%.3f", result.loss_mean, result.loss_stddev);
}

/// Unicode sparkline of a series (for the loss-curve "figures").
/// Non-finite values render as "!" and are excluded from the scale; an
/// all-non-finite series is all "!".
inline std::string Spark(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  bool any_finite = false;
  double lo = 0.0;
  double hi = 0.0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    if (!any_finite) {
      lo = hi = v;
      any_finite = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += "!";
      continue;
    }
    int idx;
    if (hi > lo) {
      idx = static_cast<int>((v - lo) / (hi - lo) * 7.999);
    } else {
      // Constant series: mid-scale for a nonzero plateau (all-minimum
      // glyphs would read as "collapsed to the floor"), floor glyph
      // only when the series really sits at zero.
      idx = v != 0.0 ? 3 : 0;
    }
    out += kLevels[idx];
  }
  return out;
}

/// Writes one metrics snapshot as JSON to `path` through the I/O
/// environment (so fault injection and tests can intercept it).
inline Status WriteMetricsFile(const std::string& path,
                               const MetricsSnapshot& snapshot,
                               bool deterministic, IoEnv* env = nullptr) {
  if (env == nullptr) env = IoEnv::Default();
  MetricsJsonOptions options;
  options.deterministic = deterministic;
  const std::string json = MetricsToJson(snapshot, options);
  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  OE_RETURN_NOT_OK((*file)->Append(json));
  OE_RETURN_NOT_OK((*file)->Sync());
  return (*file)->Close();
}

/// Dumps the process registry to --metrics-out (no-op when unset).
/// A snapshot that cannot be written fails loudly: a sweep whose
/// instrumentation silently vanished would be worse than one that
/// exits nonzero.
inline void MaybeWriteMetrics(const BenchFlags& flags, IoEnv* env = nullptr) {
  if (flags.metrics_out.empty()) return;
  const MetricsSnapshot snapshot = MetricsRegistry::Global()->Snapshot();
  Status status = WriteMetricsFile(flags.metrics_out, snapshot,
                                   flags.deterministic_metrics, env);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                 flags.metrics_out.c_str(), status.ToString().c_str());
    std::exit(1);
  }
}

/// Merge-mode rollup: parse every per-shard metrics file and fold them
/// into one snapshot (counters sum, gauges max, histograms add).
inline Result<MetricsSnapshot> RollupMetricsFiles(
    const std::vector<std::string>& paths, IoEnv* env = nullptr) {
  if (env == nullptr) env = IoEnv::Default();
  MetricsSnapshot rollup;
  for (const std::string& path : paths) {
    Result<std::string> text = env->ReadFile(path);
    if (!text.ok()) {
      return Status(text.status().code(),
                    "cannot read metrics file " + path + ": " +
                        text.status().message());
    }
    MetricsSnapshot shard;
    Status parsed = ParseMetricsJson(*text, &shard);
    if (!parsed.ok()) {
      return Status(parsed.code(), path + ": " + parsed.message());
    }
    OE_RETURN_NOT_OK(MergeMetricsSnapshots(shard, &rollup));
  }
  return rollup;
}

/// Merge-mode metrics plumbing shared by the sweep-capable drivers:
/// rolls the --metrics-in shard files up into --metrics-out, or dumps
/// the local registry when no shard files were given. Returns 0 on
/// success or no-op, otherwise the process exit code (2 for unusable
/// input files, 1 for an unwritable output).
inline int MergeModeMetrics(const BenchFlags& flags, IoEnv* env = nullptr) {
  if (flags.metrics_out.empty()) return 0;
  if (flags.metrics_in.empty()) {
    MaybeWriteMetrics(flags, env);
    return 0;
  }
  Result<MetricsSnapshot> rollup = RollupMetricsFiles(flags.metrics_in, env);
  if (!rollup.ok()) {
    std::fprintf(stderr, "metrics rollup failed: %s\n",
                 rollup.status().ToString().c_str());
    return 2;
  }
  Status written = WriteMetricsFile(flags.metrics_out, *rollup,
                                    flags.deterministic_metrics, env);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                 flags.metrics_out.c_str(), written.ToString().c_str());
    return 1;
  }
  return 0;
}

/// Per-cell registry reader for the single-cell table benches (tables
/// 5/6/10): BeginCell() zeroes the registry before a cell's runs,
/// CollectCell() reads back what the evaluator instrumentation
/// recorded for them. These benches keep no stopwatches of their own.
struct CellMetrics {
  int64_t items = 0;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  double peak_memory_bytes = 0.0;

  double RuntimeSeconds() const { return train_seconds + test_seconds; }
  double Throughput() const {
    const double seconds = RuntimeSeconds();
    if (!(seconds > 0.0)) return 0.0;
    const double value = static_cast<double>(items) / seconds;
    return std::isfinite(value) ? value : 0.0;
  }
};

inline void BeginCell() { MetricsRegistry::Global()->Reset(); }

inline CellMetrics CollectCell() {
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  CellMetrics cell;
  if (auto it = snap.counters.find("eval.items"); it != snap.counters.end()) {
    cell.items = it->second;
  }
  if (auto it = snap.histograms.find("eval.train_seconds");
      it != snap.histograms.end()) {
    cell.train_seconds = it->second.sum;
  }
  if (auto it = snap.histograms.find("eval.test_seconds");
      it != snap.histograms.end()) {
    cell.test_seconds = it->second.sum;
  }
  if (auto it = snap.histograms.find("eval.peak_memory_bytes");
      it != snap.histograms.end() && it->second.count > 0) {
    cell.peak_memory_bytes = it->second.max;
  }
  return cell;
}

/// Prints a horizontal rule + title, so every bench output reads like the
/// corresponding paper exhibit.
inline void PrintHeader(const std::string& exhibit,
                        const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exhibit.c_str(), caption.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace oebench

#endif  // OEBENCH_BENCH_BENCH_UTIL_H_
