// Reproduces Figure 14: NN test loss on the high-missing AIR-like stream
// per missing-value filling method — KNN imputer (k = 2, 5, 10, 20),
// regression imputer, mean filling, zero filling. Shape to reproduce:
// KNN and regression beat mean/zero, and KNN's k barely matters
// (Finding 4 recommends k = 2 for cost).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 14",
                     "Loss per missing-value filling method (AIR)");
  struct Method {
    const char* label;
    const char* strategy;
    int k;
  };
  const Method methods[] = {
      {"knn(k=2)", "knn", 2},     {"knn(k=5)", "knn", 5},
      {"knn(k=10)", "knn", 10},   {"knn(k=20)", "knn", 20},
      {"regression", "regression", 0},
      {"mean", "mean", 0},        {"zero", "zero", 0},
  };
  std::printf("%-14s %12s %12s\n", "method", "Naive-NN", "Naive-DT");
  double knn_loss = 0.0;
  double zero_loss = 0.0;
  for (const Method& method : methods) {
    PipelineOptions options;
    options.imputer = method.strategy;
    options.knn_k = method.k;
    PreparedStream stream =
        bench::MakePrepared("AIR", flags.scale, options);
    LearnerConfig config;
    config.seed = flags.seed;
    RepeatedResult nn =
        RunRepeated("Naive-NN", config, stream, flags.repeats);
    RepeatedResult dt =
        RunRepeated("Naive-DT", config, stream, flags.repeats);
    if (std::string(method.label) == "knn(k=2)") knn_loss = nn.loss_mean;
    if (std::string(method.label) == "zero") zero_loss = nn.loss_mean;
    std::printf("%-14s %12.4f %12.4f\n", method.label, nn.loss_mean,
                dt.loss_mean);
    std::fflush(stdout);
  }
  std::printf(
      "\nknn(k=2) vs zero on Naive-NN: %.4f vs %.4f (%s)\n"
      "Paper shape check: KNN/regression <= mean/zero; k variation small.\n",
      knn_loss, zero_loss,
      knn_loss <= zero_loss ? "KNN wins, as in the paper"
                            : "unexpected ordering");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
