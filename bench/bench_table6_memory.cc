// Reproduces Table 6: peak model memory (KB) of the ten algorithms on the
// five representative datasets. Shape to reproduce: Naive-DT smallest;
// EWC ~2.2x and LwF ~2x Naive-NN (extra parameter copies); SEA-NN ~5x
// (ensemble of five); ARF largest and growing with the stream.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 6", "Peak model memory (KB)");
  const std::vector<std::string> learners = {
      "Naive-NN", "EWC",        "LwF",    "iCaRL",    "SEA-NN",
      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %11s", name.c_str());
  }
  std::printf("\n");

  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::fflush(stdout);
    for (const std::string& name : learners) {
      // Peak memory comes from the metrics layer (the max of the
      // evaluator's eval.peak_memory_bytes histogram for this cell).
      bench::BeginCell();
      RepeatedResult result = RunRepeated(name, config, stream, 1);
      if (result.not_applicable) {
        std::printf(" %11s", "N/A");
      } else {
        std::printf(" %11.1f",
                    bench::CollectCell().peak_memory_bytes / 1024.0);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: DT < GBDT < Naive-NN < iCaRL < LwF < EWC <\n"
      "SEA-NN << ARF.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
