// Reproduces Table 9 (appendix): every algorithm on all 55 corpus
// datasets. By default this runs a scaled-down single-seed sweep with the
// cheaper learner set so the whole bench suite stays fast; pass
// --scale/--repeats for a fuller run. The headline finding it reproduces:
// no algorithm consistently outperforms the others across the corpus.
//
// The sweep fans (dataset x learner x repeat) tasks across --threads
// workers (default: hardware concurrency). Result rows are byte-identical
// for any thread count: each task's seed derives from its identity, and
// rows are printed in canonical corpus order after the sweep completes.

#include <chrono>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/parallel_eval.h"
#include "core/recommendation.h"
#include "streamgen/corpus.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 9",
                     "All-corpus sweep (scaled; single seed by default)");
  const std::vector<std::string> learners = {"Naive-NN", "iCaRL",
                                             "Naive-DT", "Naive-GBDT",
                                             "SEA-DT", "SEA-GBDT"};
  std::printf("%-28s %-6s %-6s", "Dataset", "Task", "Drift");
  for (const std::string& name : learners) {
    std::printf(" %11s", name.c_str());
  }
  std::printf(" %11s\n", "Best");
  std::fflush(stdout);

  SweepConfig config;
  config.base_config.seed = flags.seed;
  config.base_config.epochs = 5;  // keep the 55-dataset sweep affordable
  config.repeats = flags.repeats;
  config.threads = flags.threads;
  config.scale = flags.scale;

  auto t0 = std::chrono::steady_clock::now();
  SweepOutcome sweep = ParallelSweepEntries(Corpus(), learners, config);
  double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::map<std::string, int> wins;
  std::vector<ScenarioOutcome> outcomes;
  const std::vector<CorpusEntry>& corpus = Corpus();
  for (size_t d = 0; d < corpus.size(); ++d) {
    const CorpusEntry& entry = corpus[d];
    const SweepRow& row = sweep.rows[d];
    std::printf("%-28.28s %-6s %-6s", entry.name.c_str(),
                entry.task == TaskType::kClassification ? "cls" : "reg",
                LevelToString(entry.drift));
    std::vector<RepeatedResult> results;
    for (const SweepCell& cell : row.cells) {
      results.push_back(cell.repeated);
      std::printf(" %11.3f", cell.repeated.loss_mean);
    }
    std::string best = BestAlgorithm(results);
    ++wins[best];
    outcomes.push_back({entry.task, entry.drift, entry.anomaly,
                        entry.missing, best});
    std::printf(" %11s\n", best.c_str());
  }
  std::printf("\nWin counts (no silver bullet — several learners win):\n");
  for (const auto& [name, count] : wins) {
    std::printf("  %-12s %d\n", name.c_str(), count);
  }
  std::fprintf(stderr,
               "\n[timing] %lld prequential runs in %.1f s on %d thread(s)\n",
               static_cast<long long>(sweep.tasks_run), sweep_seconds,
               flags.threads);

  // Synthesize the Figure 9 recommendation tree from these outcomes,
  // exactly as §6.2 does from the paper's Table 9.
  Result<DerivedRecommendation> derived =
      DerivedRecommendation::Fit(outcomes);
  if (derived.ok()) {
    std::printf(
        "\nDerived recommendation tree (CART over task/drift/anomaly/"
        "missing,\ntraining accuracy %.0f%%):\n",
        100.0 * derived->TrainingAccuracy());
    struct Probe {
      const char* label;
      TaskType task;
      Level drift;
      Level anomaly;
      Level missing;
    };
    const Probe probes[] = {
        {"cls, high drift", TaskType::kClassification, Level::kHigh,
         Level::kLow, Level::kLow},
        {"cls, low drift", TaskType::kClassification, Level::kLow,
         Level::kLow, Level::kLow},
        {"reg, high missing", TaskType::kRegression, Level::kLow,
         Level::kLow, Level::kHigh},
        {"reg, low missing", TaskType::kRegression, Level::kLow,
         Level::kLow, Level::kLow},
        {"reg, high drift", TaskType::kRegression, Level::kHigh,
         Level::kLow, Level::kLow},
    };
    for (const Probe& probe : probes) {
      std::printf("  %-20s -> %s\n", probe.label,
                  derived
                      ->Recommend(probe.task, probe.drift, probe.anomaly,
                                  probe.missing)
                      .c_str());
    }
  }
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.03, 1));
  return 0;
}
