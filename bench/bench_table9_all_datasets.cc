// Reproduces Table 9 (appendix): every algorithm on all 55 corpus
// datasets. By default this runs a scaled-down single-seed sweep with the
// cheaper learner set so the whole bench suite stays fast; pass
// --scale/--repeats for a fuller run. The headline finding it reproduces:
// no algorithm consistently outperforms the others across the corpus.
//
// The sweep fans (dataset x learner x repeat) tasks across --threads
// workers (default: hardware concurrency). Result rows are byte-identical
// for any thread count: each task's seed derives from its identity, and
// rows are printed in canonical corpus order after the sweep completes.
//
// The sweep can also be distributed: `--shard i/n --log shard_i.log`
// runs one slice of the task manifest per invocation (resumable with
// --resume after a crash), and `--merge shard_0.log ... shard_n-1.log`
// reassembles the table — byte-identical to a single-process run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_util.h"
#include "core/parallel_eval.h"
#include "core/recommendation.h"
#include "streamgen/corpus.h"
#include "sweep/merge.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

const std::vector<std::string>& Learners() {
  static const std::vector<std::string> kLearners = {
      "Naive-NN", "iCaRL", "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT"};
  return kLearners;
}

std::vector<CorpusEntry> Entries(const bench::BenchFlags& flags) {
  std::vector<CorpusEntry> entries = Corpus();
  if (flags.datasets > 0 &&
      static_cast<size_t>(flags.datasets) < entries.size()) {
    entries.resize(flags.datasets);
  }
  return entries;
}

SweepConfig MakeConfig(const bench::BenchFlags& flags) {
  SweepConfig config;
  config.base_config.seed = flags.seed;
  // Keep the 55-dataset sweep affordable by default.
  config.base_config.epochs = flags.epochs > 0 ? flags.epochs : 5;
  config.repeats = flags.repeats;
  config.threads = flags.threads;
  config.scale = flags.scale;
  config.reuse = flags.reuse;
  return config;
}

void PrintColumns() {
  bench::PrintHeader("Table 9",
                     "All-corpus sweep (scaled; single seed by default)");
  std::printf("%-28s %-6s %-6s", "Dataset", "Task", "Drift");
  for (const std::string& name : Learners()) {
    std::printf(" %11s", name.c_str());
  }
  std::printf(" %11s\n", "Best");
  std::fflush(stdout);
}

void PrintRows(const std::vector<CorpusEntry>& entries,
               const SweepOutcome& sweep) {
  std::map<std::string, int> wins;
  std::vector<ScenarioOutcome> outcomes;
  for (size_t d = 0; d < entries.size(); ++d) {
    const CorpusEntry& entry = entries[d];
    const SweepRow& row = sweep.rows[d];
    std::printf("%-28.28s %-6s %-6s", entry.name.c_str(),
                entry.task == TaskType::kClassification ? "cls" : "reg",
                LevelToString(entry.drift));
    std::vector<RepeatedResult> results;
    for (const SweepCell& cell : row.cells) {
      results.push_back(cell.repeated);
      std::printf(" %11.3f", cell.repeated.loss_mean);
    }
    std::string best = BestAlgorithm(results);
    ++wins[best];
    outcomes.push_back({entry.task, entry.drift, entry.anomaly,
                        entry.missing, best});
    std::printf(" %11s\n", best.c_str());
  }
  std::printf("\nWin counts (no silver bullet — several learners win):\n");
  for (const auto& [name, count] : wins) {
    std::printf("  %-12s %d\n", name.c_str(), count);
  }

  // Synthesize the Figure 9 recommendation tree from these outcomes,
  // exactly as §6.2 does from the paper's Table 9.
  Result<DerivedRecommendation> derived =
      DerivedRecommendation::Fit(outcomes);
  if (derived.ok()) {
    std::printf(
        "\nDerived recommendation tree (CART over task/drift/anomaly/"
        "missing,\ntraining accuracy %.0f%%):\n",
        100.0 * derived->TrainingAccuracy());
    struct Probe {
      const char* label;
      TaskType task;
      Level drift;
      Level anomaly;
      Level missing;
    };
    const Probe probes[] = {
        {"cls, high drift", TaskType::kClassification, Level::kHigh,
         Level::kLow, Level::kLow},
        {"cls, low drift", TaskType::kClassification, Level::kLow,
         Level::kLow, Level::kLow},
        {"reg, high missing", TaskType::kRegression, Level::kLow,
         Level::kLow, Level::kHigh},
        {"reg, low missing", TaskType::kRegression, Level::kLow,
         Level::kLow, Level::kLow},
        {"reg, high drift", TaskType::kRegression, Level::kHigh,
         Level::kLow, Level::kLow},
    };
    for (const Probe& probe : probes) {
      std::printf("  %-20s -> %s\n", probe.label,
                  derived
                      ->Recommend(probe.task, probe.drift, probe.anomaly,
                                  probe.missing)
                      .c_str());
    }
  }
}

/// Merge mode: no evaluation — reassemble shard logs into the exact
/// sweep outcome and print the same table a direct run prints.
int RunMerge(const bench::BenchFlags& flags) {
  // Roll up per-shard metrics files (if any) before the table merge, so
  // an unusable metrics input fails as early as an unusable shard log.
  if (int code = bench::MergeModeMetrics(flags); code != 0) return code;
  std::vector<CorpusEntry> entries = Entries(flags);
  SweepConfig config = MakeConfig(flags);
  sweep::TaskManifest manifest =
      sweep::EntriesManifest(entries, Learners(), config.repeats);
  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, sweep::Shard{}),
      flags.merge_logs);
  if (!merged.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  PrintColumns();
  PrintRows(entries, *merged);
  return 0;
}

/// Shard mode: run one slice of the manifest into a durable log.
int RunShard(const bench::BenchFlags& flags) {
  sweep::ShardRunOptions options;
  options.config = MakeConfig(flags);
  options.shard = flags.shard;
  options.log_path = flags.log_path;
  options.resume = flags.resume;
  Result<sweep::ShardRunStats> stats =
      sweep::RunCorpusShard(Entries(flags), Learners(), options);
  // Dump metrics even for a failed shard: the snapshot is often the
  // evidence of what went wrong.
  bench::MaybeWriteMetrics(flags);
  if (!stats.ok()) {
    std::fprintf(stderr, "shard failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[shard %d/%d] %lld task(s): %lld executed, %lld resumed, "
               "%lld n/a -> %s\n",
               flags.shard.index, flags.shard.count,
               static_cast<long long>(stats->shard_tasks),
               static_cast<long long>(stats->tasks_executed),
               static_cast<long long>(stats->tasks_resumed),
               static_cast<long long>(stats->na_logged),
               options.log_path.c_str());
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  if (flags.merge) return RunMerge(flags);
  if (flags.shard.count > 1 || !flags.log_path.empty()) {
    return RunShard(flags);
  }

  PrintColumns();
  std::vector<CorpusEntry> entries = Entries(flags);
  auto t0 = std::chrono::steady_clock::now();
  SweepOutcome sweep = ParallelSweepEntries(entries, Learners(),
                                            MakeConfig(flags));
  double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  PrintRows(entries, sweep);
  bench::MaybeWriteMetrics(flags);
  std::fprintf(stderr,
               "\n[timing] %lld prequential runs in %.1f s on %d thread(s)\n",
               static_cast<long long>(sweep.tasks_run), sweep_seconds,
               flags.threads);
  return 0;
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.03, 1));
}
